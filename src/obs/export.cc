#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace fedflow::obs {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Deterministic display order: spans_[i] indices sorted by
/// (start, name, id). Span ids are assigned in creation order, which races
/// across pool threads; start times and names do not.
std::vector<size_t> SortedIndices(const std::vector<Span>& spans) {
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&spans](size_t a, size_t b) {
    const Span& sa = spans[a];
    const Span& sb = spans[b];
    if (sa.start_us != sb.start_us) return sa.start_us < sb.start_us;
    if (sa.name != sb.name) return sa.name < sb.name;
    return sa.id < sb.id;
  });
  return order;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Span>& spans) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (size_t idx : SortedIndices(spans)) {
    const Span& span = spans[idx];
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"X\",\"name\":\"" << JsonEscape(span.name)
       << "\",\"cat\":\"" << LayerName(span.layer)
       << "\",\"pid\":1,\"tid\":" << span.trace_id
       << ",\"ts\":" << span.start_us
       << ",\"dur\":" << (span.end_us - span.start_us) << ",\"args\":{"
       << "\"span_id\":" << span.id << ",\"parent_id\":" << span.parent
       << ",\"trace_id\":" << span.trace_id;
    for (const auto& [key, value] : span.attributes) {
      os << ",\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << "\"";
    }
    os << "}}";
    // Span events become instant events on the same virtual thread.
    for (const auto& event : span.events) {
      os << ",\n{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << JsonEscape(event.name)
         << "\",\"cat\":\"" << LayerName(span.layer)
         << "\",\"pid\":1,\"tid\":" << span.trace_id
         << ",\"ts\":" << event.time_us << ",\"args\":{\"span_id\":" << span.id
         << ",\"detail\":\"" << JsonEscape(event.detail) << "\"}}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

std::string SpanTreeString(const std::vector<Span>& spans) {
  // parent id -> child display order (children already globally sorted).
  std::map<SpanId, std::vector<size_t>> children;
  std::vector<size_t> roots;
  std::vector<size_t> order = SortedIndices(spans);
  // A remote-parent span whose parent id is unknown locally still renders
  // under that parent if present; otherwise it is a root.
  auto known = [&spans](SpanId id) { return id != 0 && id <= spans.size(); };
  for (size_t idx : order) {
    const Span& span = spans[idx];
    if (known(span.parent)) {
      children[span.parent].push_back(idx);
    } else {
      roots.push_back(idx);
    }
  }
  std::ostringstream os;
  // Iterative DFS keeping sorted sibling order.
  struct Frame {
    size_t idx;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back(Frame{*it, 0});
  }
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Span& span = spans[frame.idx];
    for (int i = 0; i < frame.depth; ++i) os << "  ";
    os << "[" << LayerName(span.layer) << "] " << span.name << "  "
       << span.start_us << ".." << span.end_us << " (+"
       << (span.end_us - span.start_us) << " us)";
    for (const auto& [key, value] : span.attributes) {
      os << "  " << key << "=" << value;
    }
    if (span.remote_parent) os << "  remote-parent";
    os << "\n";
    for (const auto& event : span.events) {
      for (int i = 0; i < frame.depth + 1; ++i) os << "  ";
      os << "@" << event.time_us << " " << event.name;
      if (!event.detail.empty()) os << " (" << event.detail << ")";
      os << "\n";
    }
    auto kids = children.find(span.id);
    if (kids != children.end()) {
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
        stack.push_back(Frame{*it, frame.depth + 1});
      }
    }
  }
  return os.str();
}

TimeBreakdown BreakdownFromSpans(const std::vector<Span>& spans) {
  std::vector<SpanCharge> charges;
  for (const Span& span : spans) {
    charges.insert(charges.end(), span.charges.begin(), span.charges.end());
  }
  std::sort(charges.begin(), charges.end(),
            [](const SpanCharge& a, const SpanCharge& b) {
              return a.seq < b.seq;
            });
  TimeBreakdown breakdown;
  for (const SpanCharge& charge : charges) {
    breakdown.Add(charge.step, charge.duration_us);
  }
  return breakdown;
}

VDuration LayerTotal(const std::vector<Span>& spans, Layer layer) {
  VDuration total = 0;
  for (const Span& span : spans) {
    if (span.layer != layer) continue;
    for (const SpanCharge& charge : span.charges) {
      total += charge.duration_us;
    }
  }
  return total;
}

}  // namespace fedflow::obs
