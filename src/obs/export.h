// Exporters over a span snapshot: Chrome trace_event JSON (loadable in
// chrome://tracing / Perfetto), a human-readable span tree, and the
// breakdown reconstruction used to validate that the trace accounts for
// every microsecond the clock charged.
#ifndef FEDFLOW_OBS_EXPORT_H_
#define FEDFLOW_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/vclock.h"
#include "obs/trace.h"

namespace fedflow::obs {

/// Renders spans as a Chrome trace_event JSON document ("X" complete events;
/// ts/dur are virtual microseconds, cat is the layer tag, span/parent ids and
/// attributes ride in args). Spans are emitted sorted by (start, name, id) so
/// output is deterministic even when pool threads raced on span creation.
std::string ChromeTraceJson(const std::vector<Span>& spans);

/// Renders an indented tree, one line per span:
///   [layer] name  start..end (+dur us)  k=v ...
/// Children are ordered by (start, name, id) under their parent.
std::string SpanTreeString(const std::vector<Span>& spans);

/// Reassembles a TimeBreakdown from all span charges, ordered by the global
/// charge sequence — reproducing the clock breakdown's step-insertion order
/// exactly. If the instrumentation is complete, the result compares equal
/// (same entries, same order, same durations) to SimClock::breakdown().
TimeBreakdown BreakdownFromSpans(const std::vector<Span>& spans);

/// Sum of charges recorded under spans tagged with `layer`.
VDuration LayerTotal(const std::vector<Span>& spans, Layer layer);

}  // namespace fedflow::obs

#endif  // FEDFLOW_OBS_EXPORT_H_
