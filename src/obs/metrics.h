// MetricsRegistry: named counters, gauges and virtual-time histograms for
// the integration stack — per-function call counts, retry attempts, warmth
// transitions, workflow checkpoint/resume counts, pool occupancy and queue
// depth. All values are derived from deterministic virtual time or
// deterministic event counts, so a given workload always produces the same
// registry contents.
#ifndef FEDFLOW_OBS_METRICS_H_
#define FEDFLOW_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/row_source.h"
#include "common/vclock.h"

namespace fedflow::obs {

/// A virtual-time histogram: count/sum/min/max plus exponential buckets
/// (powers of two, in microseconds). Deterministic for deterministic input.
class Histogram {
 public:
  void Observe(VDuration value_us);

  uint64_t count() const { return count_; }
  VDuration sum() const { return sum_; }
  /// Minimum observed value (0 when empty).
  VDuration min() const { return count_ == 0 ? 0 : min_; }
  /// Maximum observed value (0 when empty).
  VDuration max() const { return count_ == 0 ? 0 : max_; }

  /// (upper_bound_us, count) pairs for non-empty power-of-two buckets, in
  /// increasing bound order. The final catch-all bucket has bound -1.
  std::vector<std::pair<VDuration, uint64_t>> Buckets() const;

 private:
  uint64_t count_ = 0;
  VDuration sum_ = 0;
  VDuration min_ = 0;
  VDuration max_ = 0;
  // counts_[i] counts observations with value <= 2^i µs; index kOverflow
  // catches the rest.
  static constexpr int kNumBuckets = 40;
  uint64_t counts_[kNumBuckets + 1] = {};
};

/// An exact latency summary: keeps every observation and answers nearest-rank
/// percentile queries (p50/p99/p999). Exact rather than sketched so the load
/// bench golden is reproducible to the microsecond; the load harness observes
/// at most a few thousand flows, so storing all samples is cheap.
class LatencySummary {
 public:
  void Observe(VDuration value_us);

  uint64_t count() const { return samples_.size(); }
  VDuration sum() const { return sum_; }
  VDuration min() const;
  VDuration max() const;

  /// Nearest-rank percentile: the smallest observation such that at least
  /// `permille`/1000 of all observations are <= it. `Percentile(500)` is the
  /// median, `Percentile(999)` the p999. Returns 0 when empty.
  VDuration Percentile(int permille) const;

 private:
  void SortIfNeeded() const;

  mutable std::vector<VDuration> samples_;
  mutable bool sorted_ = true;
  VDuration sum_ = 0;
};

/// Thread-safe registry of counters, gauges and histograms, keyed by name.
/// Metric names use dotted paths ("call.count.GetNoSuppComp",
/// "warmth.to_hot", "pool.controller.in_use").
class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (creating it at zero on first use).
  void Inc(const std::string& name, uint64_t delta = 1);

  /// Current value of a counter (0 when it was never incremented).
  uint64_t counter(const std::string& name) const;

  /// Sets gauge `name` to `value`. Unlike counters, gauges move both ways
  /// (queue depth, pool occupancy).
  void SetGauge(const std::string& name, int64_t value);

  /// Like SetGauge, but only raises the gauge — for high-water marks such as
  /// "load.queue.max_depth".
  void SetGaugeMax(const std::string& name, int64_t value);

  /// Current value of a gauge (0 when it was never set).
  int64_t gauge(const std::string& name) const;

  /// Records one observation into histogram `name`.
  void Observe(const std::string& name, VDuration value_us);

  /// Copy of histogram `name` (empty histogram when never observed).
  Histogram histogram(const std::string& name) const;

  /// All counters in name order.
  std::map<std::string, uint64_t> Counters() const;

  /// All gauges in name order.
  std::map<std::string, int64_t> Gauges() const;

  /// All histogram names in name order.
  std::vector<std::string> HistogramNames() const;

  /// Human-readable dump: counters, gauges, then histogram summaries, each
  /// in name order.
  std::string ToString() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Escapes one dot-delimited metric-name segment so that embedded free-form
/// identifiers (tenant names, function names) cannot collide with the
/// delimiter: "%" -> "%25", "." -> "%2E". A segment without either character
/// — every identifier the repo's own scenarios use — round-trips unchanged,
/// so established metric names are unaffected.
std::string EscapeMetricSegment(const std::string& segment);

/// The registry name a tenant-scoped metric lands under:
/// "tenant.<tenant>.<name>" with the tenant segment escaped (see
/// EscapeMetricSegment; tenants "a.b" and "a" with a metric "b..." no longer
/// collide). Shared with fedtrace/fedload output so tenant breakdowns read
/// uniformly.
std::string TenantMetricName(const std::string& tenant,
                             const std::string& name);

/// A tenant-scoped view over a MetricsRegistry: Inc/Observe prefix every
/// name with "tenant.<tenant>.". A view over a null registry drops writes,
/// so call sites need no null checks.
class TenantMetrics {
 public:
  TenantMetrics(MetricsRegistry* registry, std::string tenant)
      : registry_(registry), tenant_(std::move(tenant)) {}

  void Inc(const std::string& name, uint64_t delta = 1) {
    if (registry_ != nullptr) {
      registry_->Inc(TenantMetricName(tenant_, name), delta);
    }
  }
  void Observe(const std::string& name, VDuration value_us) {
    if (registry_ != nullptr) {
      registry_->Observe(TenantMetricName(tenant_, name), value_us);
    }
  }

  const std::string& tenant() const { return tenant_; }

 private:
  MetricsRegistry* registry_;
  std::string tenant_;
};

/// Publishes one pipeline's execution statistics into `registry` (no-op on
/// null): cumulative counters "pipeline.rows_emitted",
/// "pipeline.batches_emitted", "pipeline.columnar_batches" and per-filter
/// selectivities "pipeline.filter.<label>.rows_in" / ".rows_kept" (label
/// escaped via EscapeMetricSegment) accumulate across calls; the gauge
/// "pipeline.peak_resident_rows" is a high-water mark across calls.
void ExportPipelineStats(const PipelineStats& stats,
                         MetricsRegistry* registry);

}  // namespace fedflow::obs

#endif  // FEDFLOW_OBS_METRICS_H_
