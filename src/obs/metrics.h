// MetricsRegistry: named counters and virtual-time histograms for the
// integration stack — per-function call counts, retry attempts, warmth
// transitions, workflow checkpoint/resume counts. All values are derived
// from deterministic virtual time or deterministic event counts, so a given
// workload always produces the same registry contents.
#ifndef FEDFLOW_OBS_METRICS_H_
#define FEDFLOW_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/vclock.h"

namespace fedflow::obs {

/// A virtual-time histogram: count/sum/min/max plus exponential buckets
/// (powers of two, in microseconds). Deterministic for deterministic input.
class Histogram {
 public:
  void Observe(VDuration value_us);

  uint64_t count() const { return count_; }
  VDuration sum() const { return sum_; }
  /// Minimum observed value (0 when empty).
  VDuration min() const { return count_ == 0 ? 0 : min_; }
  /// Maximum observed value (0 when empty).
  VDuration max() const { return count_ == 0 ? 0 : max_; }

  /// (upper_bound_us, count) pairs for non-empty power-of-two buckets, in
  /// increasing bound order. The final catch-all bucket has bound -1.
  std::vector<std::pair<VDuration, uint64_t>> Buckets() const;

 private:
  uint64_t count_ = 0;
  VDuration sum_ = 0;
  VDuration min_ = 0;
  VDuration max_ = 0;
  // counts_[i] counts observations with value <= 2^i µs; index kOverflow
  // catches the rest.
  static constexpr int kNumBuckets = 40;
  uint64_t counts_[kNumBuckets + 1] = {};
};

/// Thread-safe registry of counters and histograms, keyed by name. Metric
/// names use dotted paths ("call.count.GetNoSuppComp", "warmth.to_hot").
class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (creating it at zero on first use).
  void Inc(const std::string& name, uint64_t delta = 1);

  /// Current value of a counter (0 when it was never incremented).
  uint64_t counter(const std::string& name) const;

  /// Records one observation into histogram `name`.
  void Observe(const std::string& name, VDuration value_us);

  /// Copy of histogram `name` (empty histogram when never observed).
  Histogram histogram(const std::string& name) const;

  /// All counters in name order.
  std::map<std::string, uint64_t> Counters() const;

  /// All histogram names in name order.
  std::vector<std::string> HistogramNames() const;

  /// Human-readable dump: counters then histogram summaries, name order.
  std::string ToString() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace fedflow::obs

#endif  // FEDFLOW_OBS_METRICS_H_
