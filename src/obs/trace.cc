#include "obs/trace.h"

namespace fedflow::obs {

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kFdbs:
      return "fdbs";
    case Layer::kCoupling:
      return "coupling";
    case Layer::kRmi:
      return "rmi";
    case Layer::kWfms:
      return "wfms";
    case Layer::kAppsys:
      return "appsys";
    case Layer::kPlan:
      return "plan";
  }
  return "unknown";
}

std::string Span::attribute(const std::string& key) const {
  std::string value;
  for (const auto& [k, v] : attributes) {
    if (k == key) value = v;
  }
  return value;
}

SpanId Tracer::StartSpan(const std::string& name, Layer layer, SpanId parent,
                         VTime start_us) {
  if (!enabled_) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  if (parent != 0 && parent <= spans_.size()) {
    span.trace_id = spans_[parent - 1].trace_id;
  } else {
    span.parent = 0;
    span.trace_id = next_trace_id_++;
  }
  span.name = name;
  span.layer = layer;
  span.start_us = start_us;
  span.end_us = start_us;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

SpanId Tracer::StartRemoteSpan(const std::string& name, Layer layer,
                               const TraceContext& ctx, VTime start_us) {
  if (!enabled_) return 0;
  if (!ctx.valid()) return StartSpan(name, layer, 0, start_us);
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = spans_.size() + 1;
  span.parent = ctx.span_id;
  span.trace_id = ctx.trace_id;
  span.remote_parent = true;
  span.name = name;
  span.layer = layer;
  span.start_us = start_us;
  span.end_us = start_us;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(SpanId id, VTime end_us) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.finished) return;
  span.end_us = end_us;
  span.finished = true;
}

void Tracer::SetAttribute(SpanId id, const std::string& key,
                          const std::string& value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  spans_[id - 1].attributes.emplace_back(key, value);
}

void Tracer::SetStatus(SpanId id, const Status& status) {
  SetAttribute(id, "status", StatusCodeName(status.code()));
}

void Tracer::AddEvent(SpanId id, VTime time_us, const std::string& name,
                      const std::string& detail) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  spans_[id - 1].events.push_back(SpanEvent{time_us, name, detail});
}

void Tracer::AddCharge(SpanId id, const std::string& step,
                       VDuration duration_us) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  spans_[id - 1].charges.push_back(
      SpanCharge{step, duration_us, next_charge_seq_++});
}

TraceContext Tracer::ContextOf(SpanId id) const {
  if (id == 0) return {};
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return {};
  return TraceContext{spans_[id - 1].trace_id, id};
}

std::vector<Span> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  next_trace_id_ = 1;
  next_charge_seq_ = 1;
}

}  // namespace fedflow::obs
