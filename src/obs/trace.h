// fedtrace: virtual-time distributed tracing across the integration stack.
//
// A Span is one timed piece of work (a federated call, an RMI leg, a workflow
// activity, a local-function execution), stamped with virtual-clock
// timestamps and tagged with the architectural layer it ran in. Spans form a
// tree; across the RMI boundary the parent link is established by
// *propagation*: the caller marshals its TraceContext into the request
// header, and the server side parents its spans under the decoded context —
// exactly the shape of cross-process context propagation in production
// tracing systems, minus the wall clock.
//
// The Tracer is default-off and every operation on a disabled tracer is a
// no-op, so wiring it through the stack leaves untraced runs bit-identical.
// Spans additionally accumulate "charges": the (step, duration) pairs the
// SimClock records while the span is current. Summing all charges of a trace
// reproduces the clock's TimeBreakdown exactly (export.h), which is how the
// subsystem validates that no virtual time escapes the span tree.
#ifndef FEDFLOW_OBS_TRACE_H_
#define FEDFLOW_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/vclock.h"

namespace fedflow::obs {

/// Architectural layer a span belongs to (the paper's Fig. 2 tiers).
enum class Layer {
  kFdbs,      ///< FDBS executor: statements, lateral A-UDTF steps
  kCoupling,  ///< coupling layer: I-UDTFs, SQL/MED wrapper, A-UDTF shims
  kRmi,       ///< simulated RMI channel legs (client call / server serve)
  kWfms,      ///< workflow engine: process instances and activities
  kAppsys,    ///< local-function execution inside an application system
  kPlan,      ///< plan compiler/optimizer: compile, passes, lowering checks
};

/// Stable lower-case layer name ("fdbs", "coupling", ...).
const char* LayerName(Layer layer);

/// Span identifier; 0 means "no span".
using SpanId = uint64_t;

/// The propagated identity of a span: what crosses the RMI boundary inside
/// the request header. trace_id == 0 marks an absent/invalid context.
struct TraceContext {
  uint64_t trace_id = 0;
  SpanId span_id = 0;

  bool valid() const { return trace_id != 0 && span_id != 0; }
};

/// A point event attached to a span (audit records, faults, retries).
struct SpanEvent {
  VTime time_us = 0;
  std::string name;
  std::string detail;
};

/// One (step, duration) portion of virtual time recorded while the span was
/// current. `seq` is the global charge order, so a breakdown reassembled
/// from charges preserves the clock's step-insertion order.
struct SpanCharge {
  std::string step;
  VDuration duration_us = 0;
  uint64_t seq = 0;
};

/// One completed (or still-open) span.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = trace root
  uint64_t trace_id = 0;
  std::string name;
  Layer layer = Layer::kFdbs;
  VTime start_us = 0;
  VTime end_us = 0;
  bool finished = false;
  /// True when the parent link was established from a TraceContext decoded
  /// off the wire rather than from an in-memory span handle.
  bool remote_parent = false;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<SpanEvent> events;
  std::vector<SpanCharge> charges;

  /// Last value set for `key`, or "" when absent.
  std::string attribute(const std::string& key) const;
};

/// Collects spans for one integration server. Thread-safe: workflow
/// activities on pool threads record concurrently. Disabled (the default)
/// every member is a cheap no-op and StartSpan returns 0, which all other
/// members accept and ignore — instrumentation never needs null checks.
class Tracer {
 public:
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Opens a span. parent == 0 starts a new trace (fresh trace id);
  /// otherwise the span joins its parent's trace. Returns 0 when disabled.
  SpanId StartSpan(const std::string& name, Layer layer, SpanId parent,
                   VTime start_us);

  /// Opens a span whose parent arrived over the wire as a TraceContext
  /// (RMI server side). An invalid context starts a new trace.
  SpanId StartRemoteSpan(const std::string& name, Layer layer,
                         const TraceContext& ctx, VTime start_us);

  /// Closes a span. No-op for id 0 or an unknown/already-finished span.
  void EndSpan(SpanId id, VTime end_us);

  void SetAttribute(SpanId id, const std::string& key,
                    const std::string& value);

  /// Sets the conventional "status" attribute from a Status code.
  void SetStatus(SpanId id, const Status& status);

  void AddEvent(SpanId id, VTime time_us, const std::string& name,
                const std::string& detail = "");

  /// Records a (step, duration) portion of virtual time against the span.
  void AddCharge(SpanId id, const std::string& step, VDuration duration_us);

  /// The propagatable identity of `id` ({} when unknown/disabled).
  TraceContext ContextOf(SpanId id) const;

  /// Copies out all spans recorded so far, in creation (id) order.
  std::vector<Span> Snapshot() const;

  /// Number of spans recorded so far.
  size_t span_count() const;

  /// Drops all recorded spans (the enabled/disabled switch is untouched).
  void Reset();

 private:
  bool enabled_ = false;
  mutable std::mutex mu_;
  std::vector<Span> spans_;       // spans_[id - 1]
  uint64_t next_trace_id_ = 1;
  uint64_t next_charge_seq_ = 1;
};

/// Cross-thread handle for instrumenting work that runs away from the
/// session stack (workflow activities on pool threads): an explicit parent
/// instead of ambient state. `base_us` maps the callee's relative virtual
/// times (engine token timestamps start at 0 per instance) onto the
/// session's clock timeline.
struct TraceHandle {
  Tracer* tracer = nullptr;
  SpanId parent = 0;
  VTime base_us = 0;

  bool active() const { return tracer != nullptr && tracer->enabled(); }
};

/// Per-statement trace state on the navigating (single) thread: the ambient
/// span stack plus the clock-charge hook. While a TraceSession is installed
/// as the SimClock's observer, every Charge/ChargeWork lands in the current
/// span's charge list — the completeness invariant behind trace-derived
/// breakdowns.
class TraceSession : public ClockObserver {
 public:
  /// Does not attach itself; callers install it with clock->set_observer().
  TraceSession(Tracer* tracer, SimClock* clock)
      : tracer_(tracer), clock_(clock) {}

  bool active() const { return tracer_ != nullptr && tracer_->enabled(); }
  Tracer* tracer() const { return tracer_; }
  SimClock* clock() const { return clock_; }

  /// The span charges and child spans currently attach to (0 = none yet).
  SpanId current() const { return stack_.empty() ? 0 : stack_.back(); }

  /// Explicit-parent handle for work leaving this thread.
  TraceHandle handle() const { return TraceHandle{tracer_, current()}; }

  void Push(SpanId id) { stack_.push_back(id); }
  void Pop() {
    if (!stack_.empty()) stack_.pop_back();
  }

  void OnCharge(const std::string& step, VDuration duration_us) override {
    if (active()) tracer_->AddCharge(current(), step, duration_us);
  }

 private:
  Tracer* tracer_;
  SimClock* clock_;
  std::vector<SpanId> stack_;
};

/// RAII span over the session's clock: starts at construction time
/// (clock->now()), becomes the session's current span, and on destruction
/// pops itself and closes at the then-current clock time. Inactive sessions
/// (null pointer or disabled tracer) make every member a no-op.
class SpanScope {
 public:
  SpanScope(TraceSession* session, const std::string& name, Layer layer)
      : session_(session) {
    if (session_ == nullptr || !session_->active()) return;
    VTime now = session_->clock() != nullptr ? session_->clock()->now() : 0;
    id_ = session_->tracer()->StartSpan(name, layer, session_->current(), now);
    session_->Push(id_);
  }

  ~SpanScope() {
    if (id_ == 0) return;
    session_->Pop();
    VTime now = session_->clock() != nullptr ? session_->clock()->now() : 0;
    session_->tracer()->EndSpan(id_, now);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  SpanId id() const { return id_; }

  void SetAttribute(const std::string& key, const std::string& value) {
    if (id_ != 0) session_->tracer()->SetAttribute(id_, key, value);
  }

  void SetStatus(const Status& status) {
    if (id_ != 0) session_->tracer()->SetStatus(id_, status);
  }

  void AddEvent(const std::string& name, const std::string& detail = "") {
    if (id_ == 0) return;
    VTime now = session_->clock() != nullptr ? session_->clock()->now() : 0;
    session_->tracer()->AddEvent(id_, now, name, detail);
  }

 private:
  TraceSession* session_;
  SpanId id_ = 0;
};

}  // namespace fedflow::obs

#endif  // FEDFLOW_OBS_TRACE_H_
