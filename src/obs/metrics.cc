#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace fedflow::obs {

void Histogram::Observe(VDuration value_us) {
  if (count_ == 0 || value_us < min_) min_ = value_us;
  if (count_ == 0 || value_us > max_) max_ = value_us;
  ++count_;
  sum_ += value_us;
  int bucket = 0;
  while (bucket < kNumBuckets && value_us > (VDuration{1} << bucket)) {
    ++bucket;
  }
  ++counts_[bucket];
}

std::vector<std::pair<VDuration, uint64_t>> Histogram::Buckets() const {
  std::vector<std::pair<VDuration, uint64_t>> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] != 0) out.emplace_back(VDuration{1} << i, counts_[i]);
  }
  if (counts_[kNumBuckets] != 0) out.emplace_back(-1, counts_[kNumBuckets]);
  return out;
}

void LatencySummary::Observe(VDuration value_us) {
  samples_.push_back(value_us);
  sorted_ = samples_.size() <= 1;
  sum_ += value_us;
}

VDuration LatencySummary::min() const {
  if (samples_.empty()) return 0;
  SortIfNeeded();
  return samples_.front();
}

VDuration LatencySummary::max() const {
  if (samples_.empty()) return 0;
  SortIfNeeded();
  return samples_.back();
}

VDuration LatencySummary::Percentile(int permille) const {
  if (samples_.empty()) return 0;
  SortIfNeeded();
  if (permille <= 0) return samples_.front();
  if (permille >= 1000) return samples_.back();
  // Nearest-rank: rank = ceil(permille/1000 * N), 1-based.
  const uint64_t n = samples_.size();
  uint64_t rank = (static_cast<uint64_t>(permille) * n + 999) / 1000;
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

void LatencySummary::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

void MetricsRegistry::Inc(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::SetGaugeMax(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

int64_t MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, VDuration value_us) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Observe(value_us);
}

Histogram MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

std::map<std::string, uint64_t> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, int64_t> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    os << name << " = " << value << " (gauge)\n";
  }
  for (const auto& [name, hist] : histograms_) {
    os << name << ": count=" << hist.count() << " sum=" << hist.sum()
       << "us min=" << hist.min() << "us max=" << hist.max() << "us\n";
  }
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string EscapeMetricSegment(const std::string& segment) {
  std::string out;
  out.reserve(segment.size());
  for (char c : segment) {
    if (c == '%') {
      out.append("%25");
    } else if (c == '.') {
      out.append("%2E");
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string TenantMetricName(const std::string& tenant,
                             const std::string& name) {
  std::string out;
  out.reserve(7 + tenant.size() + 1 + name.size());
  out.append("tenant.").append(EscapeMetricSegment(tenant)).append(".").append(
      name);
  return out;
}

void ExportPipelineStats(const PipelineStats& stats,
                         MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->Inc("pipeline.rows_emitted", stats.rows_emitted);
  registry->Inc("pipeline.batches_emitted", stats.batches_emitted);
  registry->Inc("pipeline.columnar_batches", stats.columnar_batches);
  registry->SetGaugeMax("pipeline.peak_resident_rows",
                        static_cast<int64_t>(stats.peak_resident_rows));
  for (const PipelineStats::FilterStat& f : stats.filter_stats) {
    const std::string base = "pipeline.filter." + EscapeMetricSegment(f.label);
    registry->Inc(base + ".rows_in", f.rows_in);
    registry->Inc(base + ".rows_kept", f.rows_kept);
  }
}

}  // namespace fedflow::obs
