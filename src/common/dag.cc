#include "common/dag.h"

#include <algorithm>
#include <cstdint>

namespace fedflow::dag {

TopoSort StableTopologicalSort(const std::vector<std::vector<size_t>>& deps) {
  const size_t n = deps.size();
  std::vector<std::vector<size_t>> d = deps;
  std::vector<int> pending(n, 0);
  for (size_t i = 0; i < n; ++i) {
    std::sort(d[i].begin(), d[i].end());
    d[i].erase(std::unique(d[i].begin(), d[i].end()), d[i].end());
    pending[i] = static_cast<int>(d[i].size());
  }
  TopoSort result;
  result.order.reserve(n);
  std::vector<bool> done(n, false);
  for (size_t round = 0; round < n; ++round) {
    size_t chosen = SIZE_MAX;
    for (size_t i = 0; i < n; ++i) {
      if (!done[i] && pending[i] == 0) {
        chosen = i;
        break;
      }
    }
    if (chosen == SIZE_MAX) break;  // everything left sits on/behind a cycle
    done[chosen] = true;
    result.order.push_back(chosen);
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      for (size_t dep : d[i]) {
        if (dep == chosen) --pending[i];
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!done[i]) result.cyclic.push_back(i);
  }
  return result;
}

std::vector<std::vector<bool>> Reachability(
    const std::vector<std::vector<size_t>>& succ) {
  const size_t n = succ.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> stack(succ[i].begin(), succ[i].end());
    while (!stack.empty()) {
      size_t j = stack.back();
      stack.pop_back();
      if (j >= n || reach[i][j]) continue;
      reach[i][j] = true;
      for (size_t k : succ[j]) stack.push_back(k);
    }
  }
  return reach;
}

}  // namespace fedflow::dag
