#include "common/column_batch.h"

#include <algorithm>

namespace fedflow {

Value ColumnData::GetValue(size_t row) const {
  if (generic_) return generics_[row];
  if (nulls_[row] != 0) return Value::Null();
  switch (type_) {
    case DataType::kNull:
      return Value::Null();  // unreachable: kNull columns are generic
    case DataType::kBool:
      return Value::Bool(bools_[row] != 0);
    case DataType::kInt:
      return Value::Int(ints_[row]);
    case DataType::kBigInt:
      return Value::BigInt(bigints_[row]);
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kVarchar:
      return Value::Varchar(strings_[row]);
  }
  return Value::Null();
}

void ColumnData::Reserve(size_t rows) {
  nulls_.reserve(rows);
  if (generic_) {
    generics_.reserve(rows);
    return;
  }
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      bools_.reserve(rows);
      break;
    case DataType::kInt:
      ints_.reserve(rows);
      break;
    case DataType::kBigInt:
      bigints_.reserve(rows);
      break;
    case DataType::kDouble:
      doubles_.reserve(rows);
      break;
    case DataType::kVarchar:
      strings_.reserve(rows);
      break;
  }
}

void ColumnData::PushDefault() {
  if (generic_) {
    generics_.emplace_back();
    return;
  }
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      bools_.push_back(0);
      break;
    case DataType::kInt:
      ints_.push_back(0);
      break;
    case DataType::kBigInt:
      bigints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kVarchar:
      strings_.emplace_back();
      break;
  }
}

void ColumnData::Degrade() {
  if (generic_) return;
  std::vector<Value> values;
  values.reserve(nulls_.size());
  for (size_t i = 0; i < nulls_.size(); ++i) {
    if (nulls_[i] != 0) {
      values.emplace_back();
      continue;
    }
    switch (type_) {
      case DataType::kNull:
        values.emplace_back();
        break;
      case DataType::kBool:
        values.push_back(Value::Bool(bools_[i] != 0));
        break;
      case DataType::kInt:
        values.push_back(Value::Int(ints_[i]));
        break;
      case DataType::kBigInt:
        values.push_back(Value::BigInt(bigints_[i]));
        break;
      case DataType::kDouble:
        values.push_back(Value::Double(doubles_[i]));
        break;
      case DataType::kVarchar:
        values.push_back(Value::Varchar(std::move(strings_[i])));
        break;
    }
  }
  bools_.clear();
  ints_.clear();
  bigints_.clear();
  doubles_.clear();
  strings_.clear();
  generics_ = std::move(values);
  generic_ = true;
}

void ColumnData::AppendNull() {
  nulls_.push_back(1);
  PushDefault();
}

void ColumnData::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (!generic_ && v.type() != type_) Degrade();
  nulls_.push_back(0);
  if (generic_) {
    generics_.push_back(v);
    return;
  }
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      bools_.push_back(v.AsBool() ? 1 : 0);
      break;
    case DataType::kInt:
      ints_.push_back(v.AsInt());
      break;
    case DataType::kBigInt:
      bigints_.push_back(v.AsBigInt());
      break;
    case DataType::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case DataType::kVarchar:
      strings_.push_back(v.AsVarchar());
      break;
  }
}

void ColumnData::AppendValueMove(Value&& v) {
  if (!generic_ && !v.is_null() && v.type() == DataType::kVarchar &&
      type_ == DataType::kVarchar) {
    nulls_.push_back(0);
    strings_.push_back(std::move(v).TakeVarchar());
    return;
  }
  if (generic_ && !v.is_null()) {
    nulls_.push_back(0);
    generics_.push_back(std::move(v));
    return;
  }
  AppendValue(v);
}

void ColumnData::AppendValueRepeated(const Value& v, size_t n) {
  if (n == 0) return;
  if (v.is_null()) {
    nulls_.insert(nulls_.end(), n, 1);
    if (generic_) {
      generics_.insert(generics_.end(), n, Value::Null());
    } else {
      switch (type_) {
        case DataType::kNull:
          break;
        case DataType::kBool:
          bools_.insert(bools_.end(), n, 0);
          break;
        case DataType::kInt:
          ints_.insert(ints_.end(), n, 0);
          break;
        case DataType::kBigInt:
          bigints_.insert(bigints_.end(), n, 0);
          break;
        case DataType::kDouble:
          doubles_.insert(doubles_.end(), n, 0.0);
          break;
        case DataType::kVarchar:
          strings_.insert(strings_.end(), n, std::string());
          break;
      }
    }
    return;
  }
  if (!generic_ && v.type() != type_) Degrade();
  nulls_.insert(nulls_.end(), n, 0);
  if (generic_) {
    generics_.insert(generics_.end(), n, v);
    return;
  }
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      bools_.insert(bools_.end(), n, v.AsBool() ? 1 : 0);
      break;
    case DataType::kInt:
      ints_.insert(ints_.end(), n, v.AsInt());
      break;
    case DataType::kBigInt:
      bigints_.insert(bigints_.end(), n, v.AsBigInt());
      break;
    case DataType::kDouble:
      doubles_.insert(doubles_.end(), n, v.AsDouble());
      break;
    case DataType::kVarchar:
      strings_.insert(strings_.end(), n, v.AsVarchar());
      break;
  }
}

void ColumnData::AppendRange(const ColumnData& src, size_t begin, size_t end) {
  if (begin >= end) return;
  if (generic_ == src.generic_ && type_ == src.type_) {
    nulls_.insert(nulls_.end(), src.nulls_.begin() + begin,
                  src.nulls_.begin() + end);
    if (generic_) {
      generics_.insert(generics_.end(), src.generics_.begin() + begin,
                       src.generics_.begin() + end);
      return;
    }
    switch (type_) {
      case DataType::kNull:
        break;
      case DataType::kBool:
        bools_.insert(bools_.end(), src.bools_.begin() + begin,
                      src.bools_.begin() + end);
        break;
      case DataType::kInt:
        ints_.insert(ints_.end(), src.ints_.begin() + begin,
                     src.ints_.begin() + end);
        break;
      case DataType::kBigInt:
        bigints_.insert(bigints_.end(), src.bigints_.begin() + begin,
                        src.bigints_.begin() + end);
        break;
      case DataType::kDouble:
        doubles_.insert(doubles_.end(), src.doubles_.begin() + begin,
                        src.doubles_.begin() + end);
        break;
      case DataType::kVarchar:
        strings_.insert(strings_.end(), src.strings_.begin() + begin,
                        src.strings_.begin() + end);
        break;
    }
    return;
  }
  for (size_t i = begin; i < end; ++i) AppendValue(src.GetValue(i));
}

void ColumnData::MoveAppend(ColumnData&& src) {
  if (src.size() == 0) return;
  if (size() == 0 && generic_ == src.generic_ && type_ == src.type_) {
    *this = std::move(src);
    return;
  }
  if (generic_ == src.generic_ && type_ == src.type_) {
    nulls_.insert(nulls_.end(), src.nulls_.begin(), src.nulls_.end());
    if (generic_) {
      generics_.insert(generics_.end(),
                       std::make_move_iterator(src.generics_.begin()),
                       std::make_move_iterator(src.generics_.end()));
      return;
    }
    switch (type_) {
      case DataType::kNull:
        break;
      case DataType::kBool:
        bools_.insert(bools_.end(), src.bools_.begin(), src.bools_.end());
        break;
      case DataType::kInt:
        ints_.insert(ints_.end(), src.ints_.begin(), src.ints_.end());
        break;
      case DataType::kBigInt:
        bigints_.insert(bigints_.end(), src.bigints_.begin(),
                        src.bigints_.end());
        break;
      case DataType::kDouble:
        doubles_.insert(doubles_.end(), src.doubles_.begin(),
                        src.doubles_.end());
        break;
      case DataType::kVarchar:
        strings_.insert(strings_.end(),
                        std::make_move_iterator(src.strings_.begin()),
                        std::make_move_iterator(src.strings_.end()));
        break;
    }
    return;
  }
  AppendRange(src, 0, src.size());
}

void ColumnData::AppendGathered(const ColumnData& src,
                                const std::vector<uint32_t>& sel) {
  if (sel.empty()) return;
  if (generic_ != src.generic_ || type_ != src.type_) {
    for (uint32_t i : sel) AppendValue(src.GetValue(i));
    return;
  }
  nulls_.reserve(nulls_.size() + sel.size());
  for (uint32_t i : sel) nulls_.push_back(src.nulls_[i]);
  if (generic_) {
    generics_.reserve(generics_.size() + sel.size());
    for (uint32_t i : sel) generics_.push_back(src.generics_[i]);
    return;
  }
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      bools_.reserve(bools_.size() + sel.size());
      for (uint32_t i : sel) bools_.push_back(src.bools_[i]);
      break;
    case DataType::kInt:
      ints_.reserve(ints_.size() + sel.size());
      for (uint32_t i : sel) ints_.push_back(src.ints_[i]);
      break;
    case DataType::kBigInt:
      bigints_.reserve(bigints_.size() + sel.size());
      for (uint32_t i : sel) bigints_.push_back(src.bigints_[i]);
      break;
    case DataType::kDouble:
      doubles_.reserve(doubles_.size() + sel.size());
      for (uint32_t i : sel) doubles_.push_back(src.doubles_[i]);
      break;
    case DataType::kVarchar:
      strings_.reserve(strings_.size() + sel.size());
      for (uint32_t i : sel) strings_.push_back(src.strings_[i]);
      break;
  }
}

ColumnData ColumnData::FromBools(std::vector<uint8_t> vals,
                                 std::vector<uint8_t> nulls) {
  ColumnData col(DataType::kBool);
  col.bools_ = std::move(vals);
  col.nulls_ = std::move(nulls);
  return col;
}

ColumnData ColumnData::FromInts(std::vector<int32_t> vals,
                                std::vector<uint8_t> nulls) {
  ColumnData col(DataType::kInt);
  col.ints_ = std::move(vals);
  col.nulls_ = std::move(nulls);
  return col;
}

ColumnData ColumnData::FromBigInts(std::vector<int64_t> vals,
                                   std::vector<uint8_t> nulls) {
  ColumnData col(DataType::kBigInt);
  col.bigints_ = std::move(vals);
  col.nulls_ = std::move(nulls);
  return col;
}

ColumnData ColumnData::FromDoubles(std::vector<double> vals,
                                   std::vector<uint8_t> nulls) {
  ColumnData col(DataType::kDouble);
  col.doubles_ = std::move(vals);
  col.nulls_ = std::move(nulls);
  return col;
}

ColumnData ColumnData::FromStrings(std::vector<std::string> vals,
                                   std::vector<uint8_t> nulls) {
  ColumnData col(DataType::kVarchar);
  col.strings_ = std::move(vals);
  col.nulls_ = std::move(nulls);
  return col;
}

ColumnData ColumnData::FromValues(std::vector<Value> vals) {
  ColumnData col(DataType::kNull);
  col.nulls_.reserve(vals.size());
  for (const Value& v : vals) col.nulls_.push_back(v.is_null() ? 1 : 0);
  col.generics_ = std::move(vals);
  return col;
}

Result<ColumnData> ColumnData::CastTo(DataType target) const {
  // Already uniformly the target type: the cast is the identity.
  if (!generic_ && type_ == target) return *this;
  const size_t n = size();
  // Typed widening loops — semantically identical to Value::CastTo for
  // these source/target pairs, minus the per-value boxing.
  if (!generic_ && type_ == DataType::kInt && target == DataType::kBigInt) {
    std::vector<int64_t> out(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (nulls_[i] == 0) out[i] = static_cast<int64_t>(ints_[i]);
    }
    return FromBigInts(std::move(out), nulls_);
  }
  if (!generic_ && type_ == DataType::kInt && target == DataType::kDouble) {
    std::vector<double> out(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (nulls_[i] == 0) out[i] = static_cast<double>(ints_[i]);
    }
    return FromDoubles(std::move(out), nulls_);
  }
  if (!generic_ && type_ == DataType::kBigInt && target == DataType::kDouble) {
    std::vector<double> out(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (nulls_[i] == 0) out[i] = static_cast<double>(bigints_[i]);
    }
    return FromDoubles(std::move(out), nulls_);
  }
  // Everything else (narrowing, parsing, generic columns): the scalar cast
  // per value, erroring at the first failing row like the row path.
  ColumnData out(target);
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value v = GetValue(i);
    if (!v.is_null() && v.type() != target) {
      FEDFLOW_ASSIGN_OR_RETURN(v, v.CastTo(target));
    }
    out.AppendValueMove(std::move(v));
  }
  return out;
}

ColumnBatch::ColumnBatch(const Schema& schema) : schema_(schema) {
  columns_.reserve(schema_.num_columns());
  for (const Column& c : schema_.columns()) columns_.emplace_back(c.type);
}

ColumnBatch ColumnBatch::FromRows(const Schema& schema,
                                  std::vector<Row>&& rows) {
  ColumnBatch batch(schema);
  batch.Reserve(rows.size());
  for (Row& row : rows) {
    for (size_t c = 0; c < batch.columns_.size(); ++c) {
      batch.columns_[c].AppendValueMove(std::move(row[c]));
    }
  }
  batch.num_rows_ = rows.size();
  rows.clear();
  return batch;
}

ColumnBatch ColumnBatch::FromRowsCopy(const Schema& schema,
                                      const std::vector<Row>& rows) {
  ColumnBatch batch(schema);
  batch.Reserve(rows.size());
  for (const Row& row : rows) batch.AppendRow(row);
  return batch;
}

std::vector<Row> ColumnBatch::ToRows() const {
  std::vector<Row> rows(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) rows[r].reserve(columns_.size());
  for (const ColumnData& col : columns_) {
    for (size_t r = 0; r < num_rows_; ++r) rows[r].push_back(col.GetValue(r));
  }
  return rows;
}

std::vector<Row> ColumnBatch::TakeRows() {
  std::vector<Row> rows(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) rows[r].reserve(columns_.size());
  for (ColumnData& col : columns_) {
    const bool movable_strings =
        !col.is_generic() && col.type() == DataType::kVarchar;
    for (size_t r = 0; r < num_rows_; ++r) {
      if (movable_strings && !col.IsNull(r)) {
        rows[r].push_back(Value::Varchar(
            std::move(const_cast<std::string&>(col.string_data()[r]))));
      } else if (col.is_generic()) {
        rows[r].push_back(std::move(
            const_cast<std::vector<Value>&>(col.value_data())[r]));
      } else {
        rows[r].push_back(col.GetValue(r));
      }
    }
  }
  columns_.clear();
  for (const Column& c : schema_.columns()) columns_.emplace_back(c.type);
  num_rows_ = 0;
  return rows;
}

void ColumnBatch::Reserve(size_t rows) {
  for (ColumnData& col : columns_) col.Reserve(rows);
}

void ColumnBatch::AppendRow(const Row& row) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendValue(row[c]);
  }
  ++num_rows_;
}

void ColumnBatch::AppendBatch(ColumnBatch&& other) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].MoveAppend(std::move(other.columns_[c]));
  }
  num_rows_ += other.num_rows_;
  other.num_rows_ = 0;
}

void ColumnBatch::AppendBatchRange(const ColumnBatch& src, size_t begin,
                                   size_t end) {
  if (begin >= end) return;
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendRange(src.columns_[c], begin, end);
  }
  num_rows_ += end - begin;
}

void ColumnBatch::AppendSpliced(const Row& partial, ColumnBatch&& fn,
                                size_t offset) {
  const size_t m = fn.num_rows();
  const size_t fc = fn.num_columns();
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c >= offset && c < offset + fc) {
      columns_[c].MoveAppend(std::move(fn.mutable_column(c - offset)));
    } else {
      columns_[c].AppendValueRepeated(partial[c], m);
    }
  }
  num_rows_ += m;
}

void ColumnBatch::AppendSplicedRows(const Row& partial,
                                    const std::vector<Row>& rows, size_t begin,
                                    size_t end, size_t offset, size_t width) {
  if (begin >= end) return;
  const size_t m = end - begin;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c >= offset && c < offset + width) {
      ColumnData& col = columns_[c];
      for (size_t r = begin; r < end; ++r) {
        col.AppendValue(rows[r][c - offset]);
      }
    } else {
      columns_[c].AppendValueRepeated(partial[c], m);
    }
  }
  num_rows_ += m;
}

ColumnBatch ColumnBatch::Project(const Schema& schema, ColumnBatch&& src,
                                 const std::vector<size_t>& columns) {
  ColumnBatch out(schema);
  std::vector<int> first_dest(src.columns_.size(), -1);
  for (size_t i = 0; i < columns.size(); ++i) {
    const size_t c = columns[i];
    if (first_dest[c] < 0) {
      out.columns_[i] = std::move(src.columns_[c]);
      first_dest[c] = static_cast<int>(i);
    } else {
      // Duplicate projection of the same source column: copy from wherever
      // the first occurrence moved it.
      out.columns_[i] = out.columns_[static_cast<size_t>(first_dest[c])];
    }
  }
  out.num_rows_ = src.num_rows_;
  return out;
}

ColumnBatch ColumnBatch::Gather(const std::vector<uint32_t>& sel) const {
  ColumnBatch out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c].AppendGathered(columns_[c], sel);
  }
  out.num_rows_ = sel.size();
  return out;
}

void ColumnBatch::Truncate(size_t rows) {
  if (rows >= num_rows_) return;
  std::vector<uint32_t> sel(rows);
  for (size_t i = 0; i < rows; ++i) sel[i] = static_cast<uint32_t>(i);
  *this = Gather(sel);
}

}  // namespace fedflow
