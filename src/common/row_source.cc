#include "common/row_source.h"

namespace fedflow {

namespace {

/// Streams an owned table batch by batch; rows are moved out of the table.
class TableSource : public RowSource {
 public:
  TableSource(Table table, size_t batch_size)
      : table_(std::move(table)), batch_size_(std::max<size_t>(1, batch_size)) {}

  const Schema& schema() const override { return table_.schema(); }

  Result<RowBatch> Next() override {
    RowBatch batch;
    std::vector<Row>& rows = table_.mutable_rows();
    const size_t n = std::min(batch_size_, rows.size() - pos_);
    batch.rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.rows.push_back(std::move(rows[pos_ + i]));
    }
    pos_ += n;
    return batch;
  }

 private:
  Table table_;
  size_t pos_ = 0;
  size_t batch_size_;
};

/// Streams a borrowed table; rows are copied (the table keeps its data).
class BorrowedTableSource : public RowSource {
 public:
  BorrowedTableSource(const Table* table, size_t batch_size)
      : table_(table), batch_size_(std::max<size_t>(1, batch_size)) {}

  const Schema& schema() const override { return table_->schema(); }

  Result<RowBatch> Next() override {
    RowBatch batch;
    const std::vector<Row>& rows = table_->rows();
    const size_t n = std::min(batch_size_, rows.size() - pos_);
    batch.rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.rows.push_back(rows[pos_ + i]);
    }
    pos_ += n;
    return batch;
  }

 private:
  const Table* table_;
  size_t pos_ = 0;
  size_t batch_size_;
};

class GeneratorSource : public RowSource {
 public:
  GeneratorSource(Schema schema, std::function<Result<RowBatch>()> generate)
      : schema_(std::move(schema)), generate_(std::move(generate)) {}

  const Schema& schema() const override { return schema_; }

  Result<RowBatch> Next() override {
    if (done_) return RowBatch{};
    FEDFLOW_ASSIGN_OR_RETURN(RowBatch batch, generate_());
    if (batch.empty()) done_ = true;
    return batch;
  }

 private:
  Schema schema_;
  std::function<Result<RowBatch>()> generate_;
  bool done_ = false;
};

}  // namespace

RowSourcePtr MakeTableSource(Table table, size_t batch_size) {
  return std::make_unique<TableSource>(std::move(table), batch_size);
}

RowSourcePtr MakeBorrowedTableSource(const Table* table, size_t batch_size) {
  return std::make_unique<BorrowedTableSource>(table, batch_size);
}

RowSourcePtr MakeGeneratorSource(Schema schema,
                                 std::function<Result<RowBatch>()> generate) {
  return std::make_unique<GeneratorSource>(std::move(schema),
                                           std::move(generate));
}

Result<Table> DrainToTable(RowSource& source) {
  Table out(source.schema());
  while (true) {
    FEDFLOW_ASSIGN_OR_RETURN(RowBatch batch, source.Next());
    if (batch.empty()) return out;
    for (Row& row : batch.rows) {
      out.AppendRowUnchecked(std::move(row));
    }
  }
}

}  // namespace fedflow
