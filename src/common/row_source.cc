#include "common/row_source.h"

namespace fedflow {

namespace {

/// Streams an owned table batch by batch; rows are moved out of the table.
class TableSource : public RowSource {
 public:
  TableSource(Table table, size_t batch_size)
      : table_(std::move(table)), batch_size_(std::max<size_t>(1, batch_size)) {}

  const Schema& schema() const override { return table_.schema(); }

  Result<RowBatch> Next() override {
    RowBatch batch;
    std::vector<Row>& rows = table_.mutable_rows();
    const size_t n = std::min(batch_size_, rows.size() - pos_);
    batch.rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.rows.push_back(std::move(rows[pos_ + i]));
    }
    pos_ += n;
    return batch;
  }

  Result<ColumnBatch> NextColumns() override {
    std::vector<Row>& rows = table_.mutable_rows();
    const size_t n = std::min(batch_size_, rows.size() - pos_);
    std::vector<Row> moved;
    moved.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      moved.push_back(std::move(rows[pos_ + i]));
    }
    pos_ += n;
    return ColumnBatch::FromRows(table_.schema(), std::move(moved));
  }

  std::optional<size_t> SizeHint() const override {
    return table_.rows().size() - pos_;
  }

 private:
  Table table_;
  size_t pos_ = 0;
  size_t batch_size_;
};

/// Streams a borrowed table; rows are copied (the table keeps its data).
class BorrowedTableSource : public RowSource {
 public:
  BorrowedTableSource(const Table* table, size_t batch_size)
      : table_(table), batch_size_(std::max<size_t>(1, batch_size)) {}

  const Schema& schema() const override { return table_->schema(); }

  Result<RowBatch> Next() override {
    RowBatch batch;
    const std::vector<Row>& rows = table_->rows();
    const size_t n = std::min(batch_size_, rows.size() - pos_);
    batch.rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.rows.push_back(rows[pos_ + i]);
    }
    pos_ += n;
    return batch;
  }

  std::optional<size_t> SizeHint() const override {
    return table_->rows().size() - pos_;
  }

 private:
  const Table* table_;
  size_t pos_ = 0;
  size_t batch_size_;
};

class GeneratorSource : public RowSource {
 public:
  GeneratorSource(Schema schema, std::function<Result<RowBatch>()> generate)
      : schema_(std::move(schema)), generate_(std::move(generate)) {}

  const Schema& schema() const override { return schema_; }

  Result<RowBatch> Next() override {
    if (done_) return RowBatch{};
    FEDFLOW_ASSIGN_OR_RETURN(RowBatch batch, generate_());
    if (batch.empty()) done_ = true;
    return batch;
  }

 private:
  Schema schema_;
  std::function<Result<RowBatch>()> generate_;
  bool done_ = false;
};

/// Streams an owned ColumnBatch column-wise in fixed-size slices.
class ColumnSource : public RowSource {
 public:
  ColumnSource(ColumnBatch batch, size_t batch_size)
      : batch_(std::move(batch)), batch_size_(std::max<size_t>(1, batch_size)) {}

  const Schema& schema() const override { return batch_.schema(); }

  Result<RowBatch> Next() override {
    FEDFLOW_ASSIGN_OR_RETURN(ColumnBatch cols, NextColumns());
    RowBatch batch;
    batch.rows = cols.TakeRows();
    return batch;
  }

  Result<ColumnBatch> NextColumns() override {
    const size_t n = std::min(batch_size_, batch_.num_rows() - pos_);
    ColumnBatch out(batch_.schema());
    out.Reserve(n);
    out.AppendBatchRange(batch_, pos_, pos_ + n);
    pos_ += n;
    return out;
  }

  std::optional<size_t> SizeHint() const override {
    return batch_.num_rows() - pos_;
  }

 private:
  ColumnBatch batch_;
  size_t pos_ = 0;
  size_t batch_size_;
};

/// Columnar filter: gathers the surviving rows of each input batch. Keeps
/// pulling over fully-filtered batches so a non-empty return always carries
/// rows, matching the row filter's batch cadence and stats protocol.
class ColumnarFilterSource : public RowSource {
 public:
  ColumnarFilterSource(RowSourcePtr input, SelectionFn select,
                       PipelineStats* stats)
      : input_(std::move(input)),
        select_(std::move(select)),
        stats_(stats) {}

  const Schema& schema() const override { return input_->schema(); }

  Result<RowBatch> Next() override {
    FEDFLOW_ASSIGN_OR_RETURN(ColumnBatch cols, NextColumns());
    RowBatch batch;
    batch.rows = cols.TakeRows();
    return batch;
  }

  Result<ColumnBatch> NextColumns() override {
    while (true) {
      FEDFLOW_ASSIGN_OR_RETURN(ColumnBatch in, input_->NextColumns());
      if (in.empty()) return in;
      sel_.clear();
      FEDFLOW_RETURN_NOT_OK(select_(in, &sel_));
      if (stats_ != nullptr) stats_->Release(in.num_rows());
      if (sel_.empty()) continue;
      ColumnBatch out = sel_.size() == in.num_rows()
                            ? std::move(in)
                            : in.Gather(sel_);
      if (stats_ != nullptr) {
        stats_->Acquire(out.num_rows());
        stats_->EmittedColumnar(out.num_rows());
      }
      return out;
    }
  }

 private:
  RowSourcePtr input_;
  SelectionFn select_;
  PipelineStats* stats_;
  std::vector<uint32_t> sel_;
};

/// Columnar projection: passes through the selected columns of each batch.
class ProjectionSource : public RowSource {
 public:
  ProjectionSource(RowSourcePtr input, std::vector<size_t> columns)
      : input_(std::move(input)), columns_(std::move(columns)) {
    for (size_t c : columns_) {
      const Column& col = input_->schema().column(c);
      schema_.AddColumn(col.name, col.type);
    }
  }

  const Schema& schema() const override { return schema_; }

  Result<RowBatch> Next() override {
    FEDFLOW_ASSIGN_OR_RETURN(ColumnBatch cols, NextColumns());
    RowBatch batch;
    batch.rows = cols.TakeRows();
    return batch;
  }

  Result<ColumnBatch> NextColumns() override {
    FEDFLOW_ASSIGN_OR_RETURN(ColumnBatch in, input_->NextColumns());
    if (in.empty()) return ColumnBatch(schema_);
    return ColumnBatch::Project(schema_, std::move(in), columns_);
  }

  std::optional<size_t> SizeHint() const override {
    return input_->SizeHint();
  }

 private:
  RowSourcePtr input_;
  std::vector<size_t> columns_;
  Schema schema_;
};

}  // namespace

Result<ColumnBatch> RowSource::NextColumns() {
  FEDFLOW_ASSIGN_OR_RETURN(RowBatch batch, Next());
  return ColumnBatch::FromRows(schema(), std::move(batch.rows));
}

RowSourcePtr MakeTableSource(Table table, size_t batch_size) {
  return std::make_unique<TableSource>(std::move(table), batch_size);
}

RowSourcePtr MakeBorrowedTableSource(const Table* table, size_t batch_size) {
  return std::make_unique<BorrowedTableSource>(table, batch_size);
}

RowSourcePtr MakeGeneratorSource(Schema schema,
                                 std::function<Result<RowBatch>()> generate) {
  return std::make_unique<GeneratorSource>(std::move(schema),
                                           std::move(generate));
}

RowSourcePtr MakeColumnSource(ColumnBatch batch, size_t batch_size) {
  return std::make_unique<ColumnSource>(std::move(batch), batch_size);
}

RowSourcePtr MakeColumnarFilterSource(RowSourcePtr input, SelectionFn select,
                                      PipelineStats* stats) {
  return std::make_unique<ColumnarFilterSource>(std::move(input),
                                                std::move(select), stats);
}

RowSourcePtr MakeProjectionSource(RowSourcePtr input,
                                  std::vector<size_t> columns) {
  return std::make_unique<ProjectionSource>(std::move(input),
                                            std::move(columns));
}

Result<Table> DrainToTable(RowSource& source) {
  Table out(source.schema());
  if (std::optional<size_t> hint = source.SizeHint(); hint.has_value()) {
    out.mutable_rows().reserve(*hint);
  }
  while (true) {
    FEDFLOW_ASSIGN_OR_RETURN(RowBatch batch, source.Next());
    if (batch.empty()) return out;
    for (Row& row : batch.rows) {
      out.AppendRowUnchecked(std::move(row));
    }
  }
}

}  // namespace fedflow
