// Row and Table: the tabular result representation used throughout fedflow
// (FDBS results, UDTF results, workflow output containers).
#ifndef FEDFLOW_COMMON_TABLE_H_
#define FEDFLOW_COMMON_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/value.h"

namespace fedflow {

/// One tuple; values are positionally aligned with a Schema.
using Row = std::vector<Value>;

/// A materialized relation: schema plus rows. Tables are value types and are
/// used both as base-table storage and as (intermediate) query results.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row after checking arity and coercing each value to the
  /// column type (NULLs pass through).
  Status AppendRow(Row row);

  /// Appends without checking — used by operators that guarantee shape.
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Moves all rows of `other` onto this table (a batch append; `other` is
  /// left empty). When the schemas are equal the rows are spliced without
  /// per-row work; otherwise each row goes through AppendRow's arity check
  /// and per-value coercion.
  Status AppendTableRows(Table&& other);

  /// Value at (row, col); bounds-checked.
  Result<Value> At(size_t row, size_t col) const;

  /// Convenience for single-value results: returns the value at (0, 0).
  /// Deliberately relaxed — extra rows/columns beyond the first are ignored
  /// (callers that require exactly 1x1 must check num_rows() themselves).
  /// ExecutionError when the table has no rows or no columns.
  Result<Value> ScalarAt00() const;

  /// Renders an ASCII table (header + rows), used by examples and benches.
  std::string ToString() const;

  /// Structural equality including row order.
  friend bool operator==(const Table& a, const Table& b) {
    return a.schema_ == b.schema_ && a.rows_ == b.rows_;
  }

  /// True when both tables contain the same multiset of rows (order
  /// insensitive) over equal schemas.
  static bool SameRowsAnyOrder(const Table& a, const Table& b);

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_TABLE_H_
