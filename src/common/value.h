// Dynamically typed SQL value: the unit of data exchanged between the FDBS,
// the workflow containers, and the application-system functions.
#ifndef FEDFLOW_COMMON_VALUE_H_
#define FEDFLOW_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace fedflow {

/// SQL data types supported across the federation.
enum class DataType {
  kNull = 0,   ///< the type of a bare NULL literal
  kBool,       ///< BOOLEAN
  kInt,        ///< INT (32 bit)
  kBigInt,     ///< BIGINT (64 bit)
  kDouble,     ///< DOUBLE
  kVarchar,    ///< VARCHAR
};

/// Stable upper-case SQL name of a type ("INT", "VARCHAR", ...).
const char* DataTypeName(DataType type);

/// Parses an SQL type name (case-insensitive). kNotFound on unknown names.
Result<DataType> DataTypeFromName(const std::string& name);

/// A single SQL value. NULL is represented as a monostate regardless of the
/// declared column type.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Data(v)); }
  static Value Int(int32_t v) { return Value(Data(v)); }
  static Value BigInt(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value Varchar(std::string v) { return Value(Data(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  DataType type() const;

  /// Typed accessors; must only be called when type() matches.
  bool AsBool() const { return std::get<bool>(data_); }
  int32_t AsInt() const { return std::get<int32_t>(data_); }
  int64_t AsBigInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsVarchar() const { return std::get<std::string>(data_); }
  /// Moves the string payload out of a VARCHAR value (which becomes
  /// unspecified-but-valid afterwards). Must only be called on kVarchar.
  std::string TakeVarchar() && { return std::move(std::get<std::string>(data_)); }

  /// Widens any numeric value to int64; TypeError for non-numerics and NULL.
  Result<int64_t> ToInt64() const;
  /// Widens any numeric value to double; TypeError for non-numerics and NULL.
  Result<double> ToDouble() const;
  /// Renders the value as a string (SQL literal style, NULL as "NULL").
  std::string ToString() const;

  /// Casts the value to `target`; NULL casts to NULL of any type. Numeric
  /// narrowing that would overflow and unparsable strings are TypeErrors.
  Result<Value> CastTo(DataType target) const;

  /// SQL equality. NULL compares unequal to everything including NULL
  /// (three-valued logic collapsed to false, as in a WHERE clause).
  bool SqlEquals(const Value& other) const;

  /// Total ordering used by ORDER BY and as the key order in joins:
  /// NULL first, then by numeric/string value. TypeError on incomparable
  /// types (e.g. VARCHAR vs INT).
  Result<int> Compare(const Value& other) const;

  /// Structural equality (used by tests): NULL == NULL, exact type match.
  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

  /// Hash usable for hash joins; structural (NULL hashes to a fixed seed).
  size_t Hash() const;

 private:
  using Data =
      std::variant<std::monostate, bool, int32_t, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_VALUE_H_
