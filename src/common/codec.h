// Binary marshalling of values, rows and tables. Used by the simulated RMI
// channel between the FDBS-side UDTF processes, the controller, and the
// application systems — parameters really are serialized and deserialized on
// every remote call, as in the paper's prototype.
#ifndef FEDFLOW_COMMON_CODEC_H_
#define FEDFLOW_COMMON_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/table.h"

namespace fedflow {

/// Append-only byte sink for encoding.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  void PutString(const std::string& s);
  void PutValue(const Value& v);
  void PutRow(const Row& row);
  void PutSchema(const Schema& schema);
  void PutTable(const Table& table);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential byte source for decoding; every Get checks for truncation.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Value> GetValue();
  Result<Row> GetRow();
  Result<Schema> GetSchema();
  Result<Table> GetTable();

  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_CODEC_H_
