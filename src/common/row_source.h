// Pull-based streaming of rows in fixed-size batches. A RowSource is the
// unit of composition for the execution pipeline: the FDBS FROM chain, the
// couplings (A-UDTF results streaming into the I-UDTF chain), the chunked
// RMI channel and the WfMS containers all speak this protocol, so
// intermediate results no longer have to be materialized as a full Table at
// every tier boundary. Materialization happens only at statement boundaries
// (DrainToTable) and inside inherently blocking operators (sorts, joins,
// aggregation).
#ifndef FEDFLOW_COMMON_ROW_SOURCE_H_
#define FEDFLOW_COMMON_ROW_SOURCE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/column_batch.h"
#include "common/result.h"
#include "common/table.h"

namespace fedflow {

/// Default number of rows per pulled batch. Small enough to bound resident
/// intermediate state, large enough to amortize per-batch overhead.
inline constexpr size_t kDefaultRowBatchSize = 256;

/// One batch of rows pulled through a pipeline. All rows conform to the
/// producing source's schema(). An empty batch signals exhaustion.
struct RowBatch {
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
};

/// Tracks how many rows are buffered inside a pipeline's operators at any
/// moment. Operators Acquire() rows when they buffer them and Release() when
/// the rows move downstream (or into the final result table), so
/// peak_resident_rows measures the peak *intermediate* row residency — the
/// quantity the streaming refactor bounds by O(batch size · pipeline depth)
/// where the materializing path held entire cross products.
struct PipelineStats {
  size_t resident_rows = 0;       ///< rows currently buffered in operators
  size_t peak_resident_rows = 0;  ///< high-water mark of resident_rows
  size_t batches_emitted = 0;     ///< total batches handed between operators
  size_t rows_emitted = 0;        ///< total rows handed between operators
  size_t columnar_batches = 0;    ///< batches that moved column-wise

  /// Observed selectivity of one vectorized filter: rows seen vs rows kept.
  /// The feed for adaptive re-optimization (ROADMAP item 4).
  struct FilterStat {
    std::string label;    ///< filter expression (SQL text)
    size_t rows_in = 0;   ///< rows the filter evaluated
    size_t rows_kept = 0; ///< rows that passed
  };
  std::vector<FilterStat> filter_stats;  ///< one entry per distinct filter

  void Acquire(size_t n) {
    resident_rows += n;
    peak_resident_rows = std::max(peak_resident_rows, resident_rows);
  }
  void Release(size_t n) { resident_rows -= std::min(n, resident_rows); }
  void Emitted(const RowBatch& batch) {
    ++batches_emitted;
    rows_emitted += batch.size();
  }
  /// Columnar counterpart of Emitted(): same batch/row accounting so
  /// golden metrics do not depend on which representation a batch used,
  /// plus the columnar_batches count.
  void EmittedColumnar(size_t rows) {
    ++batches_emitted;
    ++columnar_batches;
    rows_emitted += rows;
  }
  /// Accumulates selectivity for the filter identified by `label`.
  void RecordFilter(const std::string& label, size_t rows_in,
                    size_t rows_kept) {
    for (FilterStat& f : filter_stats) {
      if (f.label == label) {
        f.rows_in += rows_in;
        f.rows_kept += rows_kept;
        return;
      }
    }
    filter_stats.push_back(FilterStat{label, rows_in, rows_kept});
  }
};

/// A pull-based producer of row batches.
class RowSource {
 public:
  virtual ~RowSource() = default;

  /// Schema every produced row conforms to.
  virtual const Schema& schema() const = 0;

  /// Pulls the next batch. An empty batch means the source is exhausted;
  /// subsequent calls keep returning empty batches.
  virtual Result<RowBatch> Next() = 0;

  /// Columnar fast path: pulls the next batch in column-wise form. The
  /// default implementation adapts Next(), so every source supports it;
  /// sources that produce columns natively override it to skip the row
  /// intermediate. A consumer must stick to one of Next()/NextColumns()
  /// for the lifetime of a source (they share the underlying cursor).
  virtual Result<ColumnBatch> NextColumns();

  /// Rows this source still expects to produce, when cheaply known.
  /// Purely a capacity-reservation hint — never used for control flow.
  virtual std::optional<size_t> SizeHint() const { return std::nullopt; }
};

using RowSourcePtr = std::unique_ptr<RowSource>;

/// Streams an owned table in batches of `batch_size` (a Table -> RowSource
/// adapter; the reverse adapter is DrainToTable).
RowSourcePtr MakeTableSource(Table table,
                             size_t batch_size = kDefaultRowBatchSize);

/// Streams a borrowed table; `table` must outlive the source.
RowSourcePtr MakeBorrowedTableSource(const Table* table,
                                     size_t batch_size = kDefaultRowBatchSize);

/// A source driven by a generator callback: each call yields the next batch
/// (empty = exhausted). The schema is copied into the source.
RowSourcePtr MakeGeneratorSource(Schema schema,
                                 std::function<Result<RowBatch>()> generate);

/// Streams an owned columnar batch in batches of `batch_size`. NextColumns()
/// slices column-wise; Next() falls back to row reconstruction.
RowSourcePtr MakeColumnSource(ColumnBatch batch,
                              size_t batch_size = kDefaultRowBatchSize);

/// Computes the surviving row indices of a columnar batch, in row order.
/// `sel` arrives empty; on success it holds the kept indices.
using SelectionFn =
    std::function<Status(const ColumnBatch&, std::vector<uint32_t>*)>;

/// Columnar filter operator: pulls column batches from `input`, applies
/// `select`, and emits the gathered survivors. Mirrors the row filter's
/// PipelineStats protocol (consume whole batch, emit only non-empty
/// outputs) so residency metrics are representation-independent.
RowSourcePtr MakeColumnarFilterSource(RowSourcePtr input, SelectionFn select,
                                      PipelineStats* stats = nullptr);

/// Columnar projection operator: emits `columns` of the input, in order.
RowSourcePtr MakeProjectionSource(RowSourcePtr input,
                                  std::vector<size_t> columns);

/// Drains `source` to a materialized table — a statement boundary. Rows are
/// moved, not copied.
Result<Table> DrainToTable(RowSource& source);
inline Result<Table> DrainToTable(const RowSourcePtr& source) {
  return DrainToTable(*source);
}

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_ROW_SOURCE_H_
