#include "common/table.h"

#include <algorithm>
#include <sstream>

namespace fedflow {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema (" +
        schema_.ToString() + ")");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != schema_.column(i).type) {
      FEDFLOW_ASSIGN_OR_RETURN(row[i], row[i].CastTo(schema_.column(i).type));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::AppendTableRows(Table&& other) {
  if (other.schema() == schema_) {
    if (rows_.empty()) {
      rows_ = std::move(other.rows_);
    } else {
      rows_.reserve(rows_.size() + other.rows_.size());
      for (Row& r : other.rows_) rows_.push_back(std::move(r));
    }
    other.rows_.clear();
    return Status::OK();
  }
  rows_.reserve(rows_.size() + other.rows_.size());
  for (Row& r : other.rows_) {
    FEDFLOW_RETURN_NOT_OK(AppendRow(std::move(r)));
  }
  other.rows_.clear();
  return Status::OK();
}

Result<Value> Table::At(size_t row, size_t col) const {
  if (row >= rows_.size() || col >= schema_.num_columns()) {
    return Status::InvalidArgument("table index out of range");
  }
  return rows_[row][col];
}

Result<Value> Table::ScalarAt00() const {
  if (rows_.empty() || schema_.num_columns() == 0) {
    return Status::ExecutionError("expected a scalar result, got empty table");
  }
  return rows_[0][0];
}

std::string Table::ToString() const {
  // Compute column widths.
  std::vector<size_t> width(schema_.num_columns());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    width[c] = schema_.column(c).name.size();
  }
  cells.reserve(rows_.size());
  for (const Row& r : rows_) {
    std::vector<std::string> line;
    line.reserve(r.size());
    for (size_t c = 0; c < r.size(); ++c) {
      line.push_back(r[c].ToString());
      width[c] = std::max(width[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  rule();
  os << '|';
  for (size_t c = 0; c < width.size(); ++c) {
    const std::string& n = schema_.column(c).name;
    os << ' ' << n << std::string(width[c] - n.size(), ' ') << " |";
  }
  os << '\n';
  rule();
  for (const auto& line : cells) {
    os << '|';
    for (size_t c = 0; c < line.size(); ++c) {
      os << ' ' << line[c] << std::string(width[c] - line[c].size(), ' ')
         << " |";
    }
    os << '\n';
  }
  rule();
  os << rows_.size() << " row(s)\n";
  return os.str();
}

bool Table::SameRowsAnyOrder(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) return false;
  if (a.num_rows() != b.num_rows()) return false;
  auto key = [](const Row& r) {
    std::string k;
    for (const Value& v : r) {
      k += v.ToString();
      k += '\x1f';
    }
    return k;
  };
  std::vector<std::string> ka, kb;
  ka.reserve(a.num_rows());
  kb.reserve(b.num_rows());
  for (const Row& r : a.rows()) ka.push_back(key(r));
  for (const Row& r : b.rows()) kb.push_back(key(r));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

}  // namespace fedflow
