// Columnar batch representation: the cache-friendly counterpart of the
// row-oriented RowBatch. One ColumnData per schema column holds a typed
// vector (one std::vector<T> per DataType) plus a null map, so vectorized
// operators (filters, casts, the lateral splice) run tight loops over
// contiguous typed data instead of touching a std::variant per cell.
//
// The representation is lossless with respect to rows: a column whose
// values do not all carry the declared type (kNull-typed columns, mixed
// intermediate results) degrades to a generic Value vector, and
// FromRows/ToRows round-trip every batch bit-identically. Columnar execution
// is therefore a pure wall-clock optimization — it never changes results,
// row order, or the virtual-time cost model.
#ifndef FEDFLOW_COMMON_COLUMN_BATCH_H_
#define FEDFLOW_COMMON_COLUMN_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/table.h"
#include "common/value.h"

namespace fedflow {

/// One column of a ColumnBatch. Physically either "typed" — the vector
/// matching the declared DataType plus a parallel null map (one byte per row;
/// placeholder defaults keep the typed vector aligned at NULL positions) —
/// or "generic", a plain Value vector used when the declared type is kNull or
/// a value of a different type is appended (the degradation that keeps
/// row↔column conversion lossless).
class ColumnData {
 public:
  ColumnData() : ColumnData(DataType::kNull) {}
  explicit ColumnData(DataType declared)
      : type_(declared), generic_(declared == DataType::kNull) {}

  /// Declared column type (the schema type, not necessarily every value's).
  DataType type() const { return type_; }
  /// True when values live in the generic Value vector.
  bool is_generic() const { return generic_; }

  size_t size() const { return nulls_.size(); }
  bool IsNull(size_t row) const { return nulls_[row] != 0; }

  /// Reconstructs the row-form value at `row`.
  Value GetValue(size_t row) const;

  void Reserve(size_t rows);
  void AppendValue(const Value& v);
  /// Moves string payloads instead of copying them.
  void AppendValueMove(Value&& v);
  void AppendNull();
  /// Appends `n` copies of `v` (the partial-row side of the lateral splice).
  void AppendValueRepeated(const Value& v, size_t n);
  /// Appends rows [begin, end) of `src`.
  void AppendRange(const ColumnData& src, size_t begin, size_t end);
  /// Appends all of `src`, moving storage when the representations match.
  void MoveAppend(ColumnData&& src);
  /// Appends src[sel[i]] for each selection index, in order.
  void AppendGathered(const ColumnData& src, const std::vector<uint32_t>& sel);

  /// Typed storage accessors; only the vector matching type() (or value_data
  /// when is_generic()) is populated.
  const std::vector<uint8_t>& null_map() const { return nulls_; }
  const std::vector<uint8_t>& bool_data() const { return bools_; }
  const std::vector<int32_t>& int_data() const { return ints_; }
  const std::vector<int64_t>& bigint_data() const { return bigints_; }
  const std::vector<double>& double_data() const { return doubles_; }
  const std::vector<std::string>& string_data() const { return strings_; }
  const std::vector<Value>& value_data() const { return generics_; }

  /// Kernel-output builders: adopt precomputed typed vectors. `nulls` must
  /// be the same length as `vals`; placeholder values at null positions are
  /// ignored.
  static ColumnData FromBools(std::vector<uint8_t> vals,
                              std::vector<uint8_t> nulls);
  static ColumnData FromInts(std::vector<int32_t> vals,
                             std::vector<uint8_t> nulls);
  static ColumnData FromBigInts(std::vector<int64_t> vals,
                                std::vector<uint8_t> nulls);
  static ColumnData FromDoubles(std::vector<double> vals,
                                std::vector<uint8_t> nulls);
  static ColumnData FromStrings(std::vector<std::string> vals,
                                std::vector<uint8_t> nulls);
  /// Generic column adopting `vals` verbatim (declared type kNull).
  static ColumnData FromValues(std::vector<Value> vals);

  /// Casts every value to `target` with Value::CastTo semantics (NULL casts
  /// to NULL; numeric widenings run as typed loops, everything else falls
  /// back to the scalar cast per value). Errors at the first failing row.
  Result<ColumnData> CastTo(DataType target) const;

 private:
  /// Converts typed storage to the generic representation.
  void Degrade();
  /// Pushes a placeholder into the active storage (null positions).
  void PushDefault();

  DataType type_;
  bool generic_;
  std::vector<uint8_t> nulls_;  ///< null map: 1 = NULL, one byte per row
  std::vector<uint8_t> bools_;
  std::vector<int32_t> ints_;
  std::vector<int64_t> bigints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<Value> generics_;
};

/// A batch of rows stored column-wise. All columns have length num_rows().
class ColumnBatch {
 public:
  ColumnBatch() = default;
  explicit ColumnBatch(const Schema& schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  bool empty() const { return num_rows_ == 0; }

  const ColumnData& column(size_t c) const { return columns_[c]; }
  ColumnData& mutable_column(size_t c) { return columns_[c]; }

  /// Builds a batch from row form, moving the values out of `rows`.
  static ColumnBatch FromRows(const Schema& schema, std::vector<Row>&& rows);
  /// Copying variant (the source rows stay intact).
  static ColumnBatch FromRowsCopy(const Schema& schema,
                                  const std::vector<Row>& rows);

  /// Converts back to row form, copying values.
  std::vector<Row> ToRows() const;
  /// Converts back to row form, moving string payloads out; the batch is
  /// empty afterwards.
  std::vector<Row> TakeRows();

  void Reserve(size_t rows);
  void AppendRow(const Row& row);
  /// Column-wise append of a whole batch; storage is moved when shapes match.
  void AppendBatch(ColumnBatch&& other);
  /// Column-wise copy of rows [begin, end) of `src` (same schema width).
  void AppendBatchRange(const ColumnBatch& src, size_t begin, size_t end);

  /// The lateral-join inner loop in columnar form: appends fn.num_rows()
  /// combined rows that repeat `partial` everywhere except columns
  /// [offset, offset + fn.num_columns()), which take fn's columns (moved).
  void AppendSpliced(const Row& partial, ColumnBatch&& fn, size_t offset);

  /// The cross-scan inner loop: appends rows [begin, end) of `rows`
  /// (each of width `width`) spliced into `partial` at `offset`.
  void AppendSplicedRows(const Row& partial, const std::vector<Row>& rows,
                         size_t begin, size_t end, size_t offset,
                         size_t width);

  /// New batch holding rows sel[0], sel[1], ... in selection order.
  ColumnBatch Gather(const std::vector<uint32_t>& sel) const;

  /// New batch with `schema` adopting (moving) src's columns[i] for each i in
  /// `columns`, in order. Row count carries over from `src`.
  static ColumnBatch Project(const Schema& schema, ColumnBatch&& src,
                             const std::vector<size_t>& columns);

  /// Truncates to the first `rows` rows (no-op when already shorter).
  void Truncate(size_t rows);

 private:
  Schema schema_;
  std::vector<ColumnData> columns_;
  size_t num_rows_ = 0;
};

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_COLUMN_BATCH_H_
