#include "common/value.h"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>

#include "common/strings.h"

namespace fedflow {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kInt:
      return "INT";
    case DataType::kBigInt:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kVarchar:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

Result<DataType> DataTypeFromName(const std::string& name) {
  std::string upper = ToUpper(name);
  if (upper == "BOOLEAN" || upper == "BOOL") return DataType::kBool;
  if (upper == "INT" || upper == "INTEGER") return DataType::kInt;
  if (upper == "BIGINT" || upper == "LONG") return DataType::kBigInt;
  if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL") {
    return DataType::kDouble;
  }
  if (upper == "VARCHAR" || upper == "STRING" || upper == "CHAR") {
    return DataType::kVarchar;
  }
  return Status::NotFound("unknown data type: " + name);
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt;
    case 3:
      return DataType::kBigInt;
    case 4:
      return DataType::kDouble;
    case 5:
      return DataType::kVarchar;
  }
  return DataType::kNull;
}

Result<int64_t> Value::ToInt64() const {
  switch (type()) {
    case DataType::kInt:
      return static_cast<int64_t>(AsInt());
    case DataType::kBigInt:
      return AsBigInt();
    case DataType::kBool:
      return static_cast<int64_t>(AsBool());
    case DataType::kDouble:
      return static_cast<int64_t>(AsDouble());
    case DataType::kNull:
    case DataType::kVarchar:
      break;
  }
  return Status::TypeError("cannot convert " +
                           std::string(DataTypeName(type())) + " to integer");
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case DataType::kInt:
      return static_cast<double>(AsInt());
    case DataType::kBigInt:
      return static_cast<double>(AsBigInt());
    case DataType::kDouble:
      return AsDouble();
    case DataType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case DataType::kNull:
    case DataType::kVarchar:
      break;
  }
  return Status::TypeError("cannot convert " +
                           std::string(DataTypeName(type())) + " to double");
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case DataType::kInt:
      return std::to_string(AsInt());
    case DataType::kBigInt:
      return std::to_string(AsBigInt());
    case DataType::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case DataType::kVarchar:
      return AsVarchar();
  }
  return "NULL";
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (type() == target) return *this;
  switch (target) {
    case DataType::kNull:
      return Status::TypeError("cannot cast to NULL type");
    case DataType::kBool: {
      FEDFLOW_ASSIGN_OR_RETURN(int64_t v, ToInt64());
      return Value::Bool(v != 0);
    }
    case DataType::kInt: {
      if (type() == DataType::kVarchar) {
        char* end = nullptr;
        const std::string& s = AsVarchar();
        long long v = std::strtoll(s.c_str(), &end, 10);
        if (end == s.c_str() || *end != '\0') {
          return Status::TypeError("cannot cast '" + s + "' to INT");
        }
        if (v < std::numeric_limits<int32_t>::min() ||
            v > std::numeric_limits<int32_t>::max()) {
          return Status::TypeError("INT overflow casting '" + s + "'");
        }
        return Value::Int(static_cast<int32_t>(v));
      }
      FEDFLOW_ASSIGN_OR_RETURN(int64_t v, ToInt64());
      if (v < std::numeric_limits<int32_t>::min() ||
          v > std::numeric_limits<int32_t>::max()) {
        return Status::TypeError("INT overflow casting " + ToString());
      }
      return Value::Int(static_cast<int32_t>(v));
    }
    case DataType::kBigInt: {
      if (type() == DataType::kVarchar) {
        char* end = nullptr;
        const std::string& s = AsVarchar();
        long long v = std::strtoll(s.c_str(), &end, 10);
        if (end == s.c_str() || *end != '\0') {
          return Status::TypeError("cannot cast '" + s + "' to BIGINT");
        }
        return Value::BigInt(v);
      }
      FEDFLOW_ASSIGN_OR_RETURN(int64_t v, ToInt64());
      return Value::BigInt(v);
    }
    case DataType::kDouble: {
      if (type() == DataType::kVarchar) {
        char* end = nullptr;
        const std::string& s = AsVarchar();
        double v = std::strtod(s.c_str(), &end);
        if (end == s.c_str() || *end != '\0') {
          return Status::TypeError("cannot cast '" + s + "' to DOUBLE");
        }
        return Value::Double(v);
      }
      FEDFLOW_ASSIGN_OR_RETURN(double v, ToDouble());
      return Value::Double(v);
    }
    case DataType::kVarchar:
      return Value::Varchar(ToString());
  }
  return Status::TypeError("bad cast target");
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  auto cmp = Compare(other);
  return cmp.ok() && *cmp == 0;
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  DataType a = type();
  DataType b = other.type();
  const bool a_num = a == DataType::kInt || a == DataType::kBigInt ||
                     a == DataType::kDouble || a == DataType::kBool;
  const bool b_num = b == DataType::kInt || b == DataType::kBigInt ||
                     b == DataType::kDouble || b == DataType::kBool;
  if (a_num && b_num) {
    if (a == DataType::kDouble || b == DataType::kDouble) {
      FEDFLOW_ASSIGN_OR_RETURN(double x, ToDouble());
      FEDFLOW_ASSIGN_OR_RETURN(double y, other.ToDouble());
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    FEDFLOW_ASSIGN_OR_RETURN(int64_t x, ToInt64());
    FEDFLOW_ASSIGN_OR_RETURN(int64_t y, other.ToInt64());
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a == DataType::kVarchar && b == DataType::kVarchar) {
    int c = AsVarchar().compare(other.AsVarchar());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return Status::TypeError(std::string("cannot compare ") + DataTypeName(a) +
                           " with " + DataTypeName(b));
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kBool:
      return std::hash<bool>()(AsBool());
    case DataType::kInt:
      return std::hash<int64_t>()(AsInt());
    case DataType::kBigInt:
      return std::hash<int64_t>()(AsBigInt());
    case DataType::kDouble: {
      double d = AsDouble();
      // Hash integral doubles like the equal integer so mixed-type equi-joins
      // land in the same bucket.
      if (d == std::floor(d) && std::abs(d) < 1e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case DataType::kVarchar:
      return std::hash<std::string>()(AsVarchar());
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace fedflow
