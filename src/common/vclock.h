// Virtual time. All performance experiments in fedflow run on a deterministic
// virtual clock: components charge modeled costs (microseconds) instead of
// measuring wall time, so the reproduced figures are machine-independent.
#ifndef FEDFLOW_COMMON_VCLOCK_H_
#define FEDFLOW_COMMON_VCLOCK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fedflow {

/// A span of virtual time in microseconds.
using VDuration = int64_t;

/// A point in virtual time (microseconds since call start).
using VTime = int64_t;

/// Accumulates virtual time per named step, preserving first-insertion order
/// so reports read in execution order (the shape of the paper's Fig. 6).
class TimeBreakdown {
 public:
  /// Adds `dur` to step `name` (creating the step on first use).
  void Add(const std::string& name, VDuration dur);

  /// Total of all steps (== elapsed time only for fully sequential calls).
  VDuration Total() const;

  /// Virtual time attributed to `name` (0 when absent).
  VDuration Of(const std::string& name) const;

  /// Step names in first-insertion order.
  std::vector<std::string> StepNames() const;

  /// (name, duration) pairs in first-insertion order.
  const std::vector<std::pair<std::string, VDuration>>& entries() const {
    return entries_;
  }

  /// Merges `other` into this breakdown.
  void Merge(const TimeBreakdown& other);

  void Clear() { entries_.clear(); }

  /// Percentage of Total() attributed to `name`, rounded to nearest integer.
  int PercentOf(const std::string& name) const;

  /// Renders "step .... 1234 us (56%)" lines.
  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, VDuration>> entries_;
};

/// Observes every charge recorded on a SimClock. The tracing subsystem
/// (src/obs) attaches one of these to mirror (step, duration) pairs into the
/// currently open span; with no observer installed charging stays a pair of
/// inlined adds.
class ClockObserver {
 public:
  virtual ~ClockObserver() = default;

  /// Called for each Charge()/ChargeWork() with the recorded step and
  /// duration (AdvanceTo records no step and is not observed).
  virtual void OnCharge(const std::string& step, VDuration duration_us) = 0;
};

/// Per-call virtual clock. Sequential work advances the clock and is recorded
/// in the breakdown; concurrent work (parallel workflow branches) is recorded
/// as work in the breakdown while the clock advances to the max branch end,
/// via AdvanceTo().
class SimClock {
 public:
  VTime now() const { return now_; }
  const TimeBreakdown& breakdown() const { return breakdown_; }
  TimeBreakdown& mutable_breakdown() { return breakdown_; }

  /// Installs (or with nullptr removes) the charge observer. Not owned; the
  /// observer must outlive the clock or be detached first.
  void set_observer(ClockObserver* observer) { observer_ = observer; }
  ClockObserver* observer() const { return observer_; }

  /// Sequential charge: advances the clock and records the step.
  void Charge(const std::string& step, VDuration dur) {
    now_ += dur;
    breakdown_.Add(step, dur);
    if (observer_ != nullptr) observer_->OnCharge(step, dur);
  }

  /// Records work without advancing the clock (parallel branches record
  /// their work here; the navigator advances the clock with AdvanceTo).
  void ChargeWork(const std::string& step, VDuration dur) {
    breakdown_.Add(step, dur);
    if (observer_ != nullptr) observer_->OnCharge(step, dur);
  }

  /// Moves the clock forward to `t` if t is later (join of parallel tokens).
  void AdvanceTo(VTime t) {
    if (t > now_) now_ = t;
  }

  void Reset() {
    now_ = 0;
    breakdown_.Clear();
  }

 private:
  VTime now_ = 0;
  TimeBreakdown breakdown_;
  ClockObserver* observer_ = nullptr;
};

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_VCLOCK_H_
