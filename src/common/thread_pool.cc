#include "common/thread_pool.h"

namespace fedflow {

ThreadPool::ThreadPool(size_t num_threads) {
  // num_threads == 0 is a valid degenerate pool: no workers are started and
  // Submit runs tasks inline (see header) — it must NOT be clamped to 1,
  // which would surprise callers expecting single-threaded execution.
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (!threads_.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      queue_.push_back(std::move(task));
      cv_.notify_one();
      return;
    }
  }
  // Zero-worker pool, or destruction has begun: an enqueued task could never
  // run (no worker will ever drain the queue). Run it inline instead.
  task();
}

bool ThreadPool::shutdown_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace fedflow
