#include "common/vclock.h"

#include <sstream>

namespace fedflow {

void TimeBreakdown::Add(const std::string& name, VDuration dur) {
  for (auto& e : entries_) {
    if (e.first == name) {
      e.second += dur;
      return;
    }
  }
  entries_.emplace_back(name, dur);
}

VDuration TimeBreakdown::Total() const {
  VDuration total = 0;
  for (const auto& e : entries_) total += e.second;
  return total;
}

VDuration TimeBreakdown::Of(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.first == name) return e.second;
  }
  return 0;
}

std::vector<std::string> TimeBreakdown::StepNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& e : entries_) names.push_back(e.first);
  return names;
}

void TimeBreakdown::Merge(const TimeBreakdown& other) {
  for (const auto& e : other.entries_) Add(e.first, e.second);
}

int TimeBreakdown::PercentOf(const std::string& name) const {
  VDuration total = Total();
  if (total == 0) return 0;
  return static_cast<int>((Of(name) * 100 + total / 2) / total);
}

std::string TimeBreakdown::ToString() const {
  std::ostringstream os;
  size_t width = 0;
  for (const auto& e : entries_) width = std::max(width, e.first.size());
  for (const auto& e : entries_) {
    os << e.first << std::string(width - e.first.size() + 2, ' ')
       << e.second << " us (" << PercentOf(e.first) << "%)\n";
  }
  os << "total" << std::string(width - 3, ' ') << Total() << " us\n";
  return os.str();
}

}  // namespace fedflow
