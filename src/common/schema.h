// Relational schema: ordered, typed, named columns.
#ifndef FEDFLOW_COMMON_SCHEMA_H_
#define FEDFLOW_COMMON_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace fedflow {

/// One column of a schema.
struct Column {
  std::string name;
  DataType type = DataType::kNull;

  friend bool operator==(const Column& a, const Column& b) {
    return a.type == b.type && a.name == b.name;
  }
};

/// An ordered list of columns. Column names compare case-insensitively, as in
/// SQL. Duplicate names are allowed in intermediate results (joins) but
/// unqualified lookup of a duplicate is rejected as ambiguous.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(std::string name, DataType type) {
    columns_.push_back(Column{std::move(name), type});
  }

  /// Index of the column with `name` (case-insensitive); nullopt if absent,
  /// error if ambiguous is distinguished by FindColumn.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Resolves `name`; NotFound when absent, InvalidArgument when ambiguous.
  Result<size_t> FindColumn(const std::string& name) const;

  /// Schema of `this` followed by all columns of `other` (join output).
  Schema Concat(const Schema& other) const;

  /// "name TYPE, name TYPE, ..." — used in error messages and tests.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.columns_ == b.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_SCHEMA_H_
