// Small string helpers shared across fedflow.
#ifndef FEDFLOW_COMMON_STRINGS_H_
#define FEDFLOW_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace fedflow {

/// ASCII upper-casing (SQL identifiers are case-insensitive).
std::string ToUpper(const std::string& s);

/// ASCII lower-casing.
std::string ToLower(const std::string& s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `s` on character `sep`; no empty-part suppression.
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// True when `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Case-insensitive ASCII equality (for SQL keywords and identifiers).
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// SQL LIKE matching: '%' matches any sequence, '_' any single character;
/// matching is case-sensitive, as in SQL.
bool SqlLike(const std::string& text, const std::string& pattern);

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_STRINGS_H_
