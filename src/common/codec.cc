#include "common/codec.h"

#include <cstring>

namespace fedflow {

namespace {
// Wire tags for Value variants.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagBigInt = 3;
constexpr uint8_t kTagDouble = 4;
constexpr uint8_t kTagVarchar = 5;
}  // namespace

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutI64(int64_t v) {
  uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(u >> (8 * i)));
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutI64(static_cast<int64_t>(bits));
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PutValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      PutU8(kTagNull);
      break;
    case DataType::kBool:
      PutU8(kTagBool);
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case DataType::kInt:
      PutU8(kTagInt);
      PutI64(v.AsInt());
      break;
    case DataType::kBigInt:
      PutU8(kTagBigInt);
      PutI64(v.AsBigInt());
      break;
    case DataType::kDouble:
      PutU8(kTagDouble);
      PutDouble(v.AsDouble());
      break;
    case DataType::kVarchar:
      PutU8(kTagVarchar);
      PutString(v.AsVarchar());
      break;
  }
}

void ByteWriter::PutRow(const Row& row) {
  PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(v);
}

void ByteWriter::PutSchema(const Schema& schema) {
  PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const Column& c : schema.columns()) {
    PutString(c.name);
    PutU8(static_cast<uint8_t>(c.type));
  }
}

void ByteWriter::PutTable(const Table& table) {
  PutSchema(table.schema());
  PutU32(static_cast<uint32_t>(table.num_rows()));
  for (const Row& r : table.rows()) PutRow(r);
}

Result<uint8_t> ByteReader::GetU8() {
  if (pos_ + 1 > buf_.size()) return Status::ExecutionError("codec: truncated");
  return buf_[pos_++];
}

Result<uint32_t> ByteReader::GetU32() {
  if (pos_ + 4 > buf_.size()) return Status::ExecutionError("codec: truncated");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

Result<int64_t> ByteReader::GetI64() {
  if (pos_ + 8 > buf_.size()) return Status::ExecutionError("codec: truncated");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf_[pos_++]) << (8 * i);
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::GetDouble() {
  FEDFLOW_ASSIGN_OR_RETURN(int64_t bits, GetI64());
  double d;
  uint64_t u = static_cast<uint64_t>(bits);
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

Result<std::string> ByteReader::GetString() {
  FEDFLOW_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (pos_ + len > buf_.size()) return Status::ExecutionError("codec: truncated");
  std::string s(buf_.begin() + pos_, buf_.begin() + pos_ + len);
  pos_ += len;
  return s;
}

Result<Value> ByteReader::GetValue() {
  FEDFLOW_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      FEDFLOW_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value::Bool(b != 0);
    }
    case kTagInt: {
      FEDFLOW_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Int(static_cast<int32_t>(v));
    }
    case kTagBigInt: {
      FEDFLOW_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::BigInt(v);
    }
    case kTagDouble: {
      FEDFLOW_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value::Double(v);
    }
    case kTagVarchar: {
      FEDFLOW_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::Varchar(std::move(s));
    }
    default:
      return Status::ExecutionError("codec: bad value tag " +
                                    std::to_string(tag));
  }
}

Result<Row> ByteReader::GetRow() {
  FEDFLOW_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    FEDFLOW_ASSIGN_OR_RETURN(Value v, GetValue());
    row.push_back(std::move(v));
  }
  return row;
}

Result<Schema> ByteReader::GetSchema() {
  FEDFLOW_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  Schema schema;
  for (uint32_t i = 0; i < n; ++i) {
    FEDFLOW_ASSIGN_OR_RETURN(std::string name, GetString());
    FEDFLOW_ASSIGN_OR_RETURN(uint8_t type, GetU8());
    if (type > static_cast<uint8_t>(DataType::kVarchar)) {
      return Status::ExecutionError("codec: bad type tag");
    }
    schema.AddColumn(std::move(name), static_cast<DataType>(type));
  }
  return schema;
}

Result<Table> ByteReader::GetTable() {
  FEDFLOW_ASSIGN_OR_RETURN(Schema schema, GetSchema());
  FEDFLOW_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  Table table(std::move(schema));
  for (uint32_t i = 0; i < n; ++i) {
    FEDFLOW_ASSIGN_OR_RETURN(Row row, GetRow());
    if (row.size() != table.schema().num_columns()) {
      return Status::ExecutionError("codec: row arity mismatch");
    }
    table.AppendRowUnchecked(std::move(row));
  }
  return table;
}

}  // namespace fedflow
