#ifndef FEDFLOW_COMMON_DAG_H_
#define FEDFLOW_COMMON_DAG_H_

#include <cstddef>
#include <vector>

namespace fedflow::dag {

/// Result of a stable topological sort over a dependency graph.
struct TopoSort {
  /// Node indices in execution order (valid only when ok()).
  std::vector<size_t> order;
  /// Nodes that could not be scheduled because they sit on (or behind) a
  /// cycle, in ascending index order. Empty for acyclic graphs.
  std::vector<size_t> cyclic;

  bool ok() const { return cyclic.empty(); }
};

/// Stable Kahn's algorithm over `deps`, where deps[i] lists the nodes i
/// depends on (duplicates and self-references are tolerated; a
/// self-reference makes the node cyclic). Among ready nodes the lowest
/// original index is always chosen, so declaration order is preserved
/// wherever the dependency structure allows — the tie-break every caller in
/// this codebase relies on (DB2's left-to-right lateral processing, spec
/// declaration order, workflow activity order).
TopoSort StableTopologicalSort(const std::vector<std::vector<size_t>>& deps);

/// Transitive reachability over a successor graph: result[i][j] is true when
/// j is reachable from i over one or more edges (result[i][i] is true only
/// when i sits on a cycle).
std::vector<std::vector<bool>> Reachability(
    const std::vector<std::vector<size_t>>& succ);

}  // namespace fedflow::dag

#endif  // FEDFLOW_COMMON_DAG_H_
