#include "common/status.h"

namespace fedflow {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kTypeError:
      return "type error";
    case StatusCode::kExecutionError:
      return "execution error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace fedflow
