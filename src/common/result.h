// Result<T>: value-or-Status, the return type of fallible fedflow operations.
#ifndef FEDFLOW_COMMON_RESULT_H_
#define FEDFLOW_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fedflow {

/// Holds either a T (when ok()) or a non-OK Status. Modeled on
/// arrow::Result. Constructing from an OK status is a programming error and
/// is converted to an internal error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The failure status; OK when the result holds a value.
  const Status& status() const { return status_; }

  /// The held value; must only be called when ok().
  const T& ValueUnsafe() const& {
    assert(ok());
    return *value_;
  }
  T& ValueUnsafe() & {
    assert(ok());
    return *value_;
  }
  T ValueUnsafe() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_RESULT_H_
