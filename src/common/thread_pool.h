// Fixed-size worker pool used by the workflow engine to really execute
// parallel activities concurrently (virtual time is tracked separately).
#ifndef FEDFLOW_COMMON_THREAD_POOL_H_
#define FEDFLOW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fedflow {

/// A minimal fixed-size thread pool. Tasks are plain callables; completion is
/// coordinated by the caller (the workflow navigator keeps its own counts).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_THREAD_POOL_H_
