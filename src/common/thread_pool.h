// Fixed-size worker pool used by the workflow engine to really execute
// parallel activities concurrently (virtual time is tracked separately).
#ifndef FEDFLOW_COMMON_THREAD_POOL_H_
#define FEDFLOW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fedflow {

/// A minimal fixed-size thread pool. Tasks are plain callables; completion is
/// coordinated by the caller (the workflow navigator keeps its own counts).
class ThreadPool {
 public:
  /// Starts `num_threads` workers. 0 starts no workers at all: the pool
  /// degrades to inline execution — Submit runs the task on the calling
  /// thread before returning. Useful for deterministic single-threaded
  /// harness runs where real concurrency would perturb virtual-time
  /// ordering.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. With zero workers, or once destruction has begun (the
  /// queue is no longer guaranteed to be drained by a worker), the task runs
  /// inline on the submitting thread instead of deadlocking or being
  /// silently dropped — every submitted task runs exactly once either way.
  void Submit(std::function<void()> task);

  /// True once the destructor has started tearing the pool down.
  bool shutdown_started() const;

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_THREAD_POOL_H_
