#include "common/schema.h"

#include "common/strings.h"

namespace fedflow {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::FindColumn(const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) {
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column name: " + name);
      }
      found = i;
    }
  }
  if (!found.has_value()) {
    return Status::NotFound("column not found: " + name + " in {" +
                            ToString() + "}");
  }
  return *found;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(c.name + " " + DataTypeName(c.type));
  }
  return Join(parts, ", ");
}

}  // namespace fedflow
