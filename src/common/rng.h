// Deterministic pseudo-random number generation for synthetic datasets and
// property tests (SplitMix64: tiny, fast, well-distributed).
#ifndef FEDFLOW_COMMON_RNG_H_
#define FEDFLOW_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace fedflow {

/// SplitMix64 generator. Same seed => same sequence on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Random lower-case identifier of `len` characters.
  std::string Word(size_t len) {
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + Next() % 26));
    }
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_RNG_H_
