// Status-based error handling, following the Arrow/RocksDB idiom: public APIs
// return Status (or Result<T>) instead of throwing across module boundaries.
#ifndef FEDFLOW_COMMON_STATUS_H_
#define FEDFLOW_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace fedflow {

/// Broad error class of a Status. Kept deliberately small; the human-readable
/// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< caller passed something malformed (bad SQL, bad spec)
  kNotFound,         ///< unknown table / function / process / field
  kAlreadyExists,    ///< duplicate registration
  kUnsupported,      ///< valid request the component cannot express
                     ///< (e.g. cyclic mapping in the UDTF coupling)
  kTypeError,        ///< value of the wrong data type
  kExecutionError,   ///< runtime failure while evaluating / navigating
  kInternal,         ///< invariant violation inside fedflow itself
  kUnavailable,      ///< transient remote failure; the call may be retried
  kDeadlineExceeded, ///< the per-call (virtual-time) deadline ran out
};

/// Returns a stable lower-case name for a status code ("ok", "not found", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation: a code plus a message. A default-constructed
/// Status is OK. Statuses are cheap to copy and compare.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;

  /// Prefixes the message with additional context; no-op on OK statuses.
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller.
#define FEDFLOW_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::fedflow::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// otherwise returns the error status. `lhs` may include a declaration.
#define FEDFLOW_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  FEDFLOW_ASSIGN_OR_RETURN_IMPL(                               \
      FEDFLOW_CONCAT_(_res_, __LINE__), lhs, rexpr)
#define FEDFLOW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueUnsafe();
#define FEDFLOW_CONCAT_(a, b) FEDFLOW_CONCAT_IMPL_(a, b)
#define FEDFLOW_CONCAT_IMPL_(a, b) a##b

}  // namespace fedflow

#endif  // FEDFLOW_COMMON_STATUS_H_
