#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace fedflow {

std::string ToUpper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool SqlLike(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace fedflow
