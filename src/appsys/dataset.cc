#include "appsys/dataset.h"

#include <algorithm>

#include "common/rng.h"

namespace fedflow::appsys {

namespace {

const char* kSupplierNames[] = {"Acme",    "Borg",     "Cyberdyne", "Duff",
                                "Ecorp",   "Initech",  "Umbrella",  "Wayne",
                                "Globex",  "Hooli",    "Massive",   "Pied",
                                "Soylent", "Tyrell",   "Vandelay",  "Wonka"};

}  // namespace

Scenario GenerateScenario(const ScenarioConfig& config) {
  Scenario s;
  s.config = config;
  Rng rng(config.seed);

  // Suppliers 1001..1000+n plus the fixed supplier 1234 ("Stark") that the
  // paper's GetNumberSupp1234 example hard-codes.
  for (int i = 0; i < config.num_suppliers; ++i) {
    SupplierRecord sup;
    sup.supplier_no = 1001 + i;
    sup.name = i < static_cast<int>(sizeof(kSupplierNames) /
                                    sizeof(kSupplierNames[0]))
                   ? kSupplierNames[i]
                   : "Supplier" + std::to_string(1001 + i);
    sup.quality = static_cast<int32_t>(rng.Uniform(1, 10));
    sup.reliability = static_cast<int32_t>(rng.Uniform(1, 10));
    s.suppliers.push_back(std::move(sup));
  }
  {
    SupplierRecord stark;
    stark.supplier_no = 1234;
    stark.name = "Stark";
    stark.quality = 9;
    stark.reliability = 8;
    s.suppliers.push_back(std::move(stark));
  }

  // Components 1..n; component 17 is the paper's "brakepad" (created even for
  // small n). Bill of material: component c may contain components with
  // larger numbers (guarantees acyclicity).
  const int n_comp = std::max(config.num_components, 17);
  for (int c = 1; c <= n_comp; ++c) {
    ComponentRecord comp;
    comp.comp_no = c;
    comp.name = c == 17 ? "brakepad" : "comp_" + std::to_string(c);
    int num_subs = static_cast<int>(rng.Uniform(0, 3));
    for (int k = 0; k < num_subs; ++k) {
      int sub = c + 1 + static_cast<int>(rng.Uniform(0, n_comp / 4));
      if (sub <= n_comp && sub != c) comp.sub_components.push_back(sub);
    }
    s.components.push_back(std::move(comp));
  }

  // Stock: each supplier stocks ~40% of components. The stock-keeping number
  // encodes (supplier, component) so results are recognizable in tests.
  for (const SupplierRecord& sup : s.suppliers) {
    for (const ComponentRecord& comp : s.components) {
      if (!rng.Chance(0.4)) continue;
      StockRecord item;
      item.supplier_no = sup.supplier_no;
      item.comp_no = comp.comp_no;
      item.number = 100000 + (sup.supplier_no % 1000) * 100 + comp.comp_no;
      s.stock.push_back(item);
    }
  }
  // Guarantee the GetNumberSupp1234 fixture: supplier 1234 stocks the
  // brakepad (component 17).
  bool has_1234_17 = false;
  for (const StockRecord& item : s.stock) {
    if (item.supplier_no == 1234 && item.comp_no == 17) has_1234_17 = true;
  }
  if (!has_1234_17) {
    s.stock.push_back(StockRecord{1234, 17, 100000 + 234 * 100 + 17});
  }

  // Discounts: every stock item has a purchasing condition with discount
  // in {0, 5, 10, 15}.
  for (const StockRecord& item : s.stock) {
    DiscountRecord d;
    d.comp_no = item.comp_no;
    d.supplier_no = item.supplier_no;
    d.discount = static_cast<int32_t>(rng.Uniform(0, 3)) * 5;
    s.discounts.push_back(d);
  }

  return s;
}

}  // namespace fedflow::appsys
