// Application systems: packaged software whose embedded database is reachable
// ONLY through predefined functions (the paper's SAP-R/3-like premise). The
// base class enforces the encapsulation: the one public data operation is
// Call(function, args).
#ifndef FEDFLOW_APPSYS_APPSYSTEM_H_
#define FEDFLOW_APPSYS_APPSYSTEM_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/table.h"
#include "common/vclock.h"

namespace fedflow::appsys {

/// Sentinel for LocalFunction::max_rows: the function can return any number
/// of rows (set-returning lookups whose fan-out depends on the store).
inline constexpr int64_t kUnboundedRows = -1;

/// A predefined function exposed by an application system.
struct LocalFunction {
  std::string name;
  std::vector<Column> params;
  Schema result_schema;
  /// Server-side implementation over the system's private store.
  std::function<Result<Table>(const std::vector<Value>&)> body;
  /// Modeled server-side work per call (virtual microseconds).
  VDuration base_cost_us = 300;
  /// Additional work per returned row.
  VDuration per_row_cost_us = 5;
  /// Declared row contract: every successful call returns between min_rows
  /// and max_rows rows (max_rows == kUnboundedRows when unbounded). The
  /// static cardinality analysis folds these through federated plans.
  int64_t min_rows = 1;
  int64_t max_rows = 1;
  /// Whether the function writes the system's private store. A successful
  /// call of a mutating function bumps the system's data version, making
  /// every result-cache key derived from the old version unreachable.
  bool mutates = false;
};

/// Base class for application systems. Thread-safe for concurrent Call()s
/// (stores are immutable after construction unless a subclass registers a
/// mutating function, in which case it must guard its own store; statistics
/// and the data version are atomic or mutex-guarded).
class AppSystem {
 public:
  explicit AppSystem(std::string name) : name_(std::move(name)) {}
  virtual ~AppSystem() = default;

  AppSystem(const AppSystem&) = delete;
  AppSystem& operator=(const AppSystem&) = delete;

  const std::string& name() const { return name_; }

  /// Declared functions, sorted by name.
  std::vector<std::string> FunctionNames() const;

  /// Signature lookup; NotFound when the function does not exist.
  Result<const LocalFunction*> GetFunction(const std::string& name) const;

  /// Result of a timed call.
  struct CallResult {
    Table table;
    VDuration cost_us = 0;
  };

  /// Invokes a predefined function: validates arity, coerces argument types,
  /// runs the body, computes the modeled cost. The ONLY data access path.
  Result<CallResult> Call(const std::string& function,
                          const std::vector<Value>& args) const;

  /// Total number of Call() invocations (fault-injected ones included).
  int64_t call_count() const { return call_count_.load(); }

  /// Monotonic version of the system's private store. Starts at 0 and bumps
  /// on every successful call of a mutating local function (and on explicit
  /// BumpDataVersion). Result-cache keys embed this stamp, so a write
  /// invalidates every memoized result derived from the old store state.
  int64_t data_version() const { return data_version_.load(); }

  /// Advances the data version — the invalidation hook for subclasses whose
  /// stores change outside the Call() path (e.g. test fixtures).
  void BumpDataVersion() { data_version_.fetch_add(1); }

  /// Per-function Call() counts, keyed by upper-cased function name
  /// (fault-injected and unknown-function calls included). Snapshot; the
  /// equivalence tests diff these across architectures to prove that two
  /// lowerings of the same plan issue the same multiset of local calls.
  std::map<std::string, int64_t> FunctionCallCounts() const;

  /// Forces subsequent calls of `function` to fail with `status` (error
  /// handling tests). An OK status clears the fault.
  void InjectFault(const std::string& function, Status status);

  /// Deterministic fingerprint of the system's observable store state.
  /// Read-only systems (whose stores are immutable after construction) keep
  /// the empty default; systems with mutating functions override it so the
  /// saga oracles can compare pre- and post-abort snapshots.
  virtual std::string StateFingerprint() const { return ""; }

 protected:
  /// Registration for subclasses during construction.
  Status Register(LocalFunction fn);

 private:
  std::string name_;
  std::map<std::string, LocalFunction> functions_;
  std::map<std::string, Status> faults_;
  mutable std::atomic<int64_t> call_count_{0};
  /// Mutable because Call() is const even for mutating functions (the store
  /// a subclass mutates is its own; the registry hands out const access).
  mutable std::atomic<int64_t> data_version_{0};
  /// Guards fn_call_counts_; Call() runs concurrently under the WfMS pool.
  mutable std::mutex stats_mutex_;
  mutable std::map<std::string, int64_t> fn_call_counts_;
};

}  // namespace fedflow::appsys

#endif  // FEDFLOW_APPSYS_APPSYSTEM_H_
