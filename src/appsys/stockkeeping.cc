#include "appsys/stockkeeping.h"

namespace fedflow::appsys {

StockKeepingSystem::StockKeepingSystem(const Scenario& scenario)
    : AppSystem("stock") {
  for (const SupplierRecord& s : scenario.suppliers) {
    quality_[s.supplier_no] = s.quality;
  }
  for (const StockRecord& item : scenario.stock) {
    stock_[{item.supplier_no, item.comp_no}] = item.number;
    supp_comps_[item.supplier_no].push_back(item.comp_no);
  }

  LocalFunction get_quality;
  get_quality.name = "GetQuality";
  get_quality.params = {Column{"SupplierNo", DataType::kInt}};
  get_quality.result_schema.AddColumn("Qual", DataType::kInt);
  get_quality.base_cost_us = 350;
  get_quality.min_rows = 0;  // point lookup: hit or miss
  get_quality.max_rows = 1;
  get_quality.body = [this,
                      schema = get_quality.result_schema](
                         const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    std::lock_guard<std::mutex> lock(quality_mutex_);
    auto it = quality_.find(args[0].AsInt());
    if (it != quality_.end()) {
      out.AppendRowUnchecked({Value::Int(it->second)});
    }
    return out;
  };
  (void)Register(std::move(get_quality));

  LocalFunction set_quality;
  set_quality.name = "SetQuality";
  set_quality.params = {Column{"SupplierNo", DataType::kInt},
                        Column{"Qual", DataType::kInt}};
  set_quality.result_schema.AddColumn("Qual", DataType::kInt);
  set_quality.base_cost_us = 450;
  set_quality.min_rows = 1;  // echoes the stored rating
  set_quality.max_rows = 1;
  set_quality.mutates = true;
  set_quality.body = [this, schema = set_quality.result_schema](
                         const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    std::lock_guard<std::mutex> lock(quality_mutex_);
    quality_[args[0].AsInt()] = args[1].AsInt();
    out.AppendRowUnchecked({Value::Int(args[1].AsInt())});
    return out;
  };
  (void)Register(std::move(set_quality));

  LocalFunction get_number;
  get_number.name = "GetNumber";
  get_number.params = {Column{"SupplierNo", DataType::kInt},
                       Column{"CompNo", DataType::kInt}};
  get_number.result_schema.AddColumn("Number", DataType::kInt);
  get_number.base_cost_us = 400;
  get_number.min_rows = 0;  // point lookup: hit or miss
  get_number.max_rows = 1;
  get_number.body = [this, schema = get_number.result_schema](
                        const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = stock_.find({args[0].AsInt(), args[1].AsInt()});
    if (it != stock_.end()) {
      out.AppendRowUnchecked({Value::Int(it->second)});
    }
    return out;
  };
  (void)Register(std::move(get_number));

  LocalFunction get_supp_comps;
  get_supp_comps.name = "GetSuppComps";
  get_supp_comps.params = {Column{"SupplierNo", DataType::kInt}};
  get_supp_comps.result_schema.AddColumn("CompNo", DataType::kInt);
  get_supp_comps.base_cost_us = 500;
  get_supp_comps.per_row_cost_us = 10;
  get_supp_comps.min_rows = 0;  // set-returning: one row per stocked component
  get_supp_comps.max_rows = kUnboundedRows;
  get_supp_comps.body = [this, schema = get_supp_comps.result_schema](
                            const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = supp_comps_.find(args[0].AsInt());
    if (it != supp_comps_.end()) {
      for (int32_t comp : it->second) {
        out.AppendRowUnchecked({Value::Int(comp)});
      }
    }
    return out;
  };
  (void)Register(std::move(get_supp_comps));

  // RestoreQuality is SetQuality under its saga-facing name: the write that
  // undoes a SetQuality given the previously captured rating.
  LocalFunction restore_quality;
  restore_quality.name = "RestoreQuality";
  restore_quality.params = {Column{"SupplierNo", DataType::kInt},
                            Column{"Qual", DataType::kInt}};
  restore_quality.result_schema.AddColumn("Qual", DataType::kInt);
  restore_quality.base_cost_us = 450;
  restore_quality.mutates = true;
  restore_quality.body = [this, schema = restore_quality.result_schema](
                             const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    std::lock_guard<std::mutex> lock(quality_mutex_);
    quality_[args[0].AsInt()] = args[1].AsInt();
    out.AppendRowUnchecked({Value::Int(args[1].AsInt())});
    return out;
  };
  (void)Register(std::move(restore_quality));

  LocalFunction reserve;
  reserve.name = "ReserveStock";
  reserve.params = {Column{"SupplierNo", DataType::kInt},
                    Column{"CompNo", DataType::kInt},
                    Column{"Amount", DataType::kInt}};
  reserve.result_schema.AddColumn("Reserved", DataType::kInt);
  reserve.base_cost_us = 550;
  reserve.mutates = true;
  reserve.body = [this, schema = reserve.result_schema](
                     const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    std::lock_guard<std::mutex> lock(quality_mutex_);
    int32_t& total = reservations_[{args[0].AsInt(), args[1].AsInt()}];
    total += args[2].AsInt();
    out.AppendRowUnchecked({Value::Int(total)});
    return out;
  };
  (void)Register(std::move(reserve));

  LocalFunction release;
  release.name = "ReleaseStock";
  release.params = {Column{"SupplierNo", DataType::kInt},
                    Column{"CompNo", DataType::kInt},
                    Column{"Amount", DataType::kInt}};
  release.result_schema.AddColumn("Reserved", DataType::kInt);
  release.base_cost_us = 550;
  release.mutates = true;
  release.body = [this, schema = release.result_schema](
                     const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    std::lock_guard<std::mutex> lock(quality_mutex_);
    std::pair<int32_t, int32_t> key{args[0].AsInt(), args[1].AsInt()};
    int32_t& total = reservations_[key];
    total -= args[2].AsInt();
    int32_t remaining = total;
    if (total == 0) reservations_.erase(key);
    out.AppendRowUnchecked({Value::Int(remaining)});
    return out;
  };
  (void)Register(std::move(release));

  LocalFunction get_reserved;
  get_reserved.name = "GetReserved";
  get_reserved.params = {Column{"SupplierNo", DataType::kInt},
                         Column{"CompNo", DataType::kInt}};
  get_reserved.result_schema.AddColumn("Reserved", DataType::kInt);
  get_reserved.base_cost_us = 350;
  get_reserved.body = [this, schema = get_reserved.result_schema](
                          const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    std::lock_guard<std::mutex> lock(quality_mutex_);
    auto it = reservations_.find({args[0].AsInt(), args[1].AsInt()});
    out.AppendRowUnchecked(
        {Value::Int(it == reservations_.end() ? 0 : it->second)});
    return out;
  };
  (void)Register(std::move(get_reserved));
}

int32_t StockKeepingSystem::reserved(int32_t supplier_no,
                                     int32_t comp_no) const {
  std::lock_guard<std::mutex> lock(quality_mutex_);
  auto it = reservations_.find({supplier_no, comp_no});
  return it == reservations_.end() ? 0 : it->second;
}

int32_t StockKeepingSystem::quality(int32_t supplier_no) const {
  std::lock_guard<std::mutex> lock(quality_mutex_);
  auto it = quality_.find(supplier_no);
  return it == quality_.end() ? -1 : it->second;
}

std::string StockKeepingSystem::StateFingerprint() const {
  std::lock_guard<std::mutex> lock(quality_mutex_);
  std::string out = "qual{";
  for (const auto& [supp, qual] : quality_) {
    out += std::to_string(supp) + "=" + std::to_string(qual) + ";";
  }
  out += "}rsv{";
  for (const auto& [key, amount] : reservations_) {
    out += std::to_string(key.first) + "," + std::to_string(key.second) + "=" +
           std::to_string(amount) + ";";
  }
  out += "}";
  return out;
}

}  // namespace fedflow::appsys
