#include "appsys/pdm.h"

#include "common/strings.h"

namespace fedflow::appsys {

PdmSystem::PdmSystem(const Scenario& scenario) : AppSystem("pdm") {
  for (const ComponentRecord& c : scenario.components) {
    comp_by_name_[ToUpper(c.name)] = c.comp_no;
    comp_name_[c.comp_no] = c.name;
    bom_[c.comp_no] = c.sub_components;
  }

  LocalFunction get_no;
  get_no.name = "GetCompNo";
  get_no.params = {Column{"CompName", DataType::kVarchar}};
  get_no.result_schema.AddColumn("No", DataType::kInt);
  get_no.base_cost_us = 300;
  get_no.min_rows = 0;  // point lookup: hit or miss
  get_no.max_rows = 1;
  get_no.body = [this, schema = get_no.result_schema](
                    const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = comp_by_name_.find(ToUpper(args[0].AsVarchar()));
    if (it != comp_by_name_.end()) {
      out.AppendRowUnchecked({Value::Int(it->second)});
    }
    return out;
  };
  (void)Register(std::move(get_no));

  LocalFunction get_name;
  get_name.name = "GetCompName";
  get_name.params = {Column{"CompNo", DataType::kInt}};
  get_name.result_schema.AddColumn("CompName", DataType::kVarchar);
  get_name.base_cost_us = 300;
  get_name.min_rows = 0;  // point lookup: hit or miss
  get_name.max_rows = 1;
  get_name.body = [this, schema = get_name.result_schema](
                      const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = comp_name_.find(args[0].AsInt());
    if (it != comp_name_.end()) {
      out.AppendRowUnchecked({Value::Varchar(it->second)});
    }
    return out;
  };
  (void)Register(std::move(get_name));

  LocalFunction get_sub;
  get_sub.name = "GetSubCompNo";
  get_sub.params = {Column{"CompNo", DataType::kInt}};
  get_sub.result_schema.AddColumn("SubCompNo", DataType::kInt);
  get_sub.base_cost_us = 500;
  get_sub.per_row_cost_us = 10;
  get_sub.min_rows = 0;  // set-returning: one row per subcomponent
  get_sub.max_rows = kUnboundedRows;
  get_sub.body = [this, schema = get_sub.result_schema](
                     const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = bom_.find(args[0].AsInt());
    if (it != bom_.end()) {
      for (int32_t sub : it->second) {
        out.AppendRowUnchecked({Value::Int(sub)});
      }
    }
    return out;
  };
  (void)Register(std::move(get_sub));
}

}  // namespace fedflow::appsys
