// The product data management system: component master data and the bill of
// material. Function-only access.
#ifndef FEDFLOW_APPSYS_PDM_H_
#define FEDFLOW_APPSYS_PDM_H_

#include <map>
#include <string>
#include <vector>

#include "appsys/appsystem.h"
#include "appsys/dataset.h"

namespace fedflow::appsys {

/// Functions:
///   GetCompNo(CompName VARCHAR) -> (No INT)
///   GetCompName(CompNo INT)     -> (CompName VARCHAR)
///   GetSubCompNo(CompNo INT)    -> (SubCompNo INT)*  (bill of material)
class PdmSystem : public AppSystem {
 public:
  explicit PdmSystem(const Scenario& scenario);

 private:
  std::map<std::string, int32_t> comp_by_name_;
  std::map<int32_t, std::string> comp_name_;
  std::map<int32_t, std::vector<int32_t>> bom_;
};

}  // namespace fedflow::appsys

#endif  // FEDFLOW_APPSYS_PDM_H_
