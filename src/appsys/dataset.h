// Deterministic synthetic enterprise dataset shared (conceptually) by the
// three application systems. The paper used real departmental systems; the
// generator reproduces the same referential structure: suppliers with quality
// and reliability ratings, components with a bill of material, stock items
// and purchasing discounts.
#ifndef FEDFLOW_APPSYS_DATASET_H_
#define FEDFLOW_APPSYS_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fedflow::appsys {

/// Dataset shape knobs. Defaults match the paper-scale purchasing scenario.
struct ScenarioConfig {
  int num_suppliers = 8;     ///< supplier numbers 1001..1000+n, plus 1234
  int num_components = 50;   ///< component numbers 1..n
  uint64_t seed = 42;        ///< drives ratings / discounts / stock levels
};

/// One supplier of the purchasing scenario.
struct SupplierRecord {
  int32_t supplier_no = 0;
  std::string name;
  int32_t quality = 0;      ///< 1..10, owned by the stock-keeping system
  int32_t reliability = 0;  ///< 1..10, owned by the purchasing system
};

/// One component of the product data management system.
struct ComponentRecord {
  int32_t comp_no = 0;
  std::string name;
  std::vector<int32_t> sub_components;  ///< bill of material
};

/// One stock item (stock-keeping system).
struct StockRecord {
  int32_t supplier_no = 0;
  int32_t comp_no = 0;
  int32_t number = 0;  ///< stock-keeping number
};

/// One purchasing condition (purchasing system).
struct DiscountRecord {
  int32_t comp_no = 0;
  int32_t supplier_no = 0;
  int32_t discount = 0;  ///< percent: 0, 5, 10, 15
};

/// The generated dataset. Each application system copies only its own slice
/// into its private store (the systems do not share state at runtime).
struct Scenario {
  ScenarioConfig config;
  std::vector<SupplierRecord> suppliers;
  std::vector<ComponentRecord> components;
  std::vector<StockRecord> stock;
  std::vector<DiscountRecord> discounts;
};

/// Generates the scenario deterministically from `config`. Guarantees the
/// fixtures the paper's examples rely on: supplier 1234 exists ("Stark"),
/// component "brakepad" exists, every supplier stocks several components,
/// and the bill of material is acyclic.
Scenario GenerateScenario(const ScenarioConfig& config = {});

}  // namespace fedflow::appsys

#endif  // FEDFLOW_APPSYS_DATASET_H_
