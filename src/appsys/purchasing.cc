#include "appsys/purchasing.h"

#include "common/strings.h"

namespace fedflow::appsys {

std::string PurchasingSystem::Decide(int32_t grade, int32_t comp_no) {
  (void)comp_no;
  return grade >= 5 ? "BUY" : "REJECT";
}

PurchasingSystem::PurchasingSystem(const Scenario& scenario)
    : AppSystem("purchasing") {
  for (const SupplierRecord& s : scenario.suppliers) {
    supplier_by_name_[ToUpper(s.name)] = s.supplier_no;
    supplier_name_[s.supplier_no] = s.name;
    reliability_[s.supplier_no] = s.reliability;
  }
  discounts_ = scenario.discounts;

  LocalFunction get_no;
  get_no.name = "GetSupplierNo";
  get_no.params = {Column{"SupplierName", DataType::kVarchar}};
  get_no.result_schema.AddColumn("SupplierNo", DataType::kInt);
  get_no.base_cost_us = 300;
  get_no.min_rows = 0;  // point lookup: hit or miss
  get_no.max_rows = 1;
  get_no.body = [this, schema = get_no.result_schema](
                    const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = supplier_by_name_.find(ToUpper(args[0].AsVarchar()));
    if (it != supplier_by_name_.end()) {
      out.AppendRowUnchecked({Value::Int(it->second)});
    }
    return out;
  };
  (void)Register(std::move(get_no));

  LocalFunction get_name;
  get_name.name = "GetSupplierName";
  get_name.params = {Column{"SupplierNo", DataType::kInt}};
  get_name.result_schema.AddColumn("SupplierName", DataType::kVarchar);
  get_name.base_cost_us = 300;
  get_name.min_rows = 0;  // point lookup: hit or miss
  get_name.max_rows = 1;
  get_name.body = [this, schema = get_name.result_schema](
                      const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = supplier_name_.find(args[0].AsInt());
    if (it != supplier_name_.end()) {
      out.AppendRowUnchecked({Value::Varchar(it->second)});
    }
    return out;
  };
  (void)Register(std::move(get_name));

  LocalFunction get_relia;
  get_relia.name = "GetReliability";
  get_relia.params = {Column{"SupplierNo", DataType::kInt}};
  get_relia.result_schema.AddColumn("Relia", DataType::kInt);
  get_relia.base_cost_us = 350;
  get_relia.min_rows = 0;  // point lookup: hit or miss
  get_relia.max_rows = 1;
  get_relia.body = [this, schema = get_relia.result_schema](
                       const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = reliability_.find(args[0].AsInt());
    if (it != reliability_.end()) {
      out.AppendRowUnchecked({Value::Int(it->second)});
    }
    return out;
  };
  (void)Register(std::move(get_relia));

  LocalFunction get_disc;
  get_disc.name = "GetCompSupp4Discount";
  get_disc.params = {Column{"Discount", DataType::kInt}};
  get_disc.result_schema.AddColumn("CompNo", DataType::kInt);
  get_disc.result_schema.AddColumn("SupplierNo", DataType::kInt);
  get_disc.base_cost_us = 600;
  get_disc.per_row_cost_us = 10;
  get_disc.min_rows = 0;  // set-returning: one row per discounted offer
  get_disc.max_rows = kUnboundedRows;
  get_disc.body = [this, schema = get_disc.result_schema](
                      const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    for (const DiscountRecord& d : discounts_) {
      if (d.discount >= args[0].AsInt()) {
        out.AppendRowUnchecked(
            {Value::Int(d.comp_no), Value::Int(d.supplier_no)});
      }
    }
    return out;
  };
  (void)Register(std::move(get_disc));

  LocalFunction get_grade;
  get_grade.name = "GetGrade";
  get_grade.params = {Column{"Qual", DataType::kInt},
                      Column{"Relia", DataType::kInt}};
  get_grade.result_schema.AddColumn("Grade", DataType::kInt);
  get_grade.base_cost_us = 450;
  get_grade.body = [schema = get_grade.result_schema](
                       const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    out.AppendRowUnchecked(
        {Value::Int((args[0].AsInt() + args[1].AsInt()) / 2)});
    return out;
  };
  (void)Register(std::move(get_grade));

  LocalFunction decide;
  decide.name = "DecidePurchase";
  decide.params = {Column{"Grade", DataType::kInt},
                   Column{"CompNo", DataType::kInt}};
  decide.result_schema.AddColumn("Answer", DataType::kVarchar);
  decide.base_cost_us = 800;  // the expensive decision-support call
  decide.body = [schema = decide.result_schema](
                    const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    out.AppendRowUnchecked(
        {Value::Varchar(Decide(args[0].AsInt(), args[1].AsInt()))});
    return out;
  };
  (void)Register(std::move(decide));

  LocalFunction place_order;
  place_order.name = "PlaceOrder";
  place_order.params = {Column{"SupplierNo", DataType::kInt},
                        Column{"CompNo", DataType::kInt},
                        Column{"Amount", DataType::kInt}};
  place_order.result_schema.AddColumn("OrderNo", DataType::kInt);
  place_order.base_cost_us = 700;
  place_order.mutates = true;
  place_order.body = [this, schema = place_order.result_schema](
                         const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    std::lock_guard<std::mutex> lock(orders_mutex_);
    int32_t order_no = next_order_no_++;
    orders_[order_no] =
        OrderRecord{args[0].AsInt(), args[1].AsInt(), args[2].AsInt()};
    out.AppendRowUnchecked({Value::Int(order_no)});
    return out;
  };
  (void)Register(std::move(place_order));

  LocalFunction cancel_order;
  cancel_order.name = "CancelOrder";
  cancel_order.params = {Column{"OrderNo", DataType::kInt}};
  cancel_order.result_schema.AddColumn("Cancelled", DataType::kInt);
  cancel_order.base_cost_us = 500;
  cancel_order.mutates = true;
  cancel_order.body = [this, schema = cancel_order.result_schema](
                          const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    std::lock_guard<std::mutex> lock(orders_mutex_);
    int32_t cancelled =
        static_cast<int32_t>(orders_.erase(args[0].AsInt()));
    out.AppendRowUnchecked({Value::Int(cancelled)});
    return out;
  };
  (void)Register(std::move(cancel_order));

  LocalFunction open_orders;
  open_orders.name = "GetOpenOrders";
  open_orders.params = {Column{"SupplierNo", DataType::kInt}};
  open_orders.result_schema.AddColumn("OrderNo", DataType::kInt);
  open_orders.result_schema.AddColumn("CompNo", DataType::kInt);
  open_orders.result_schema.AddColumn("Amount", DataType::kInt);
  open_orders.base_cost_us = 400;
  open_orders.per_row_cost_us = 10;
  open_orders.min_rows = 0;  // set-returning: one row per open order
  open_orders.max_rows = kUnboundedRows;
  open_orders.body = [this, schema = open_orders.result_schema](
                         const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    std::lock_guard<std::mutex> lock(orders_mutex_);
    for (const auto& [order_no, rec] : orders_) {
      if (rec.supplier_no != args[0].AsInt()) continue;
      out.AppendRowUnchecked({Value::Int(order_no), Value::Int(rec.comp_no),
                              Value::Int(rec.amount)});
    }
    return out;
  };
  (void)Register(std::move(open_orders));
}

int64_t PurchasingSystem::open_order_count() const {
  std::lock_guard<std::mutex> lock(orders_mutex_);
  return static_cast<int64_t>(orders_.size());
}

std::string PurchasingSystem::StateFingerprint() const {
  std::lock_guard<std::mutex> lock(orders_mutex_);
  std::string out = "orders{";
  for (const auto& [order_no, rec] : orders_) {
    out += std::to_string(order_no) + "=" + std::to_string(rec.supplier_no) +
           "," + std::to_string(rec.comp_no) + "," +
           std::to_string(rec.amount) + ";";
  }
  out += "}";
  return out;
}

}  // namespace fedflow::appsys
