#include "appsys/purchasing.h"

#include "common/strings.h"

namespace fedflow::appsys {

std::string PurchasingSystem::Decide(int32_t grade, int32_t comp_no) {
  (void)comp_no;
  return grade >= 5 ? "BUY" : "REJECT";
}

PurchasingSystem::PurchasingSystem(const Scenario& scenario)
    : AppSystem("purchasing") {
  for (const SupplierRecord& s : scenario.suppliers) {
    supplier_by_name_[ToUpper(s.name)] = s.supplier_no;
    supplier_name_[s.supplier_no] = s.name;
    reliability_[s.supplier_no] = s.reliability;
  }
  discounts_ = scenario.discounts;

  LocalFunction get_no;
  get_no.name = "GetSupplierNo";
  get_no.params = {Column{"SupplierName", DataType::kVarchar}};
  get_no.result_schema.AddColumn("SupplierNo", DataType::kInt);
  get_no.base_cost_us = 300;
  get_no.min_rows = 0;  // point lookup: hit or miss
  get_no.max_rows = 1;
  get_no.body = [this, schema = get_no.result_schema](
                    const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = supplier_by_name_.find(ToUpper(args[0].AsVarchar()));
    if (it != supplier_by_name_.end()) {
      out.AppendRowUnchecked({Value::Int(it->second)});
    }
    return out;
  };
  (void)Register(std::move(get_no));

  LocalFunction get_name;
  get_name.name = "GetSupplierName";
  get_name.params = {Column{"SupplierNo", DataType::kInt}};
  get_name.result_schema.AddColumn("SupplierName", DataType::kVarchar);
  get_name.base_cost_us = 300;
  get_name.min_rows = 0;  // point lookup: hit or miss
  get_name.max_rows = 1;
  get_name.body = [this, schema = get_name.result_schema](
                      const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = supplier_name_.find(args[0].AsInt());
    if (it != supplier_name_.end()) {
      out.AppendRowUnchecked({Value::Varchar(it->second)});
    }
    return out;
  };
  (void)Register(std::move(get_name));

  LocalFunction get_relia;
  get_relia.name = "GetReliability";
  get_relia.params = {Column{"SupplierNo", DataType::kInt}};
  get_relia.result_schema.AddColumn("Relia", DataType::kInt);
  get_relia.base_cost_us = 350;
  get_relia.min_rows = 0;  // point lookup: hit or miss
  get_relia.max_rows = 1;
  get_relia.body = [this, schema = get_relia.result_schema](
                       const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    auto it = reliability_.find(args[0].AsInt());
    if (it != reliability_.end()) {
      out.AppendRowUnchecked({Value::Int(it->second)});
    }
    return out;
  };
  (void)Register(std::move(get_relia));

  LocalFunction get_disc;
  get_disc.name = "GetCompSupp4Discount";
  get_disc.params = {Column{"Discount", DataType::kInt}};
  get_disc.result_schema.AddColumn("CompNo", DataType::kInt);
  get_disc.result_schema.AddColumn("SupplierNo", DataType::kInt);
  get_disc.base_cost_us = 600;
  get_disc.per_row_cost_us = 10;
  get_disc.min_rows = 0;  // set-returning: one row per discounted offer
  get_disc.max_rows = kUnboundedRows;
  get_disc.body = [this, schema = get_disc.result_schema](
                      const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    for (const DiscountRecord& d : discounts_) {
      if (d.discount >= args[0].AsInt()) {
        out.AppendRowUnchecked(
            {Value::Int(d.comp_no), Value::Int(d.supplier_no)});
      }
    }
    return out;
  };
  (void)Register(std::move(get_disc));

  LocalFunction get_grade;
  get_grade.name = "GetGrade";
  get_grade.params = {Column{"Qual", DataType::kInt},
                      Column{"Relia", DataType::kInt}};
  get_grade.result_schema.AddColumn("Grade", DataType::kInt);
  get_grade.base_cost_us = 450;
  get_grade.body = [schema = get_grade.result_schema](
                       const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    out.AppendRowUnchecked(
        {Value::Int((args[0].AsInt() + args[1].AsInt()) / 2)});
    return out;
  };
  (void)Register(std::move(get_grade));

  LocalFunction decide;
  decide.name = "DecidePurchase";
  decide.params = {Column{"Grade", DataType::kInt},
                   Column{"CompNo", DataType::kInt}};
  decide.result_schema.AddColumn("Answer", DataType::kVarchar);
  decide.base_cost_us = 800;  // the expensive decision-support call
  decide.body = [schema = decide.result_schema](
                    const std::vector<Value>& args) -> Result<Table> {
    Table out(schema);
    out.AppendRowUnchecked(
        {Value::Varchar(Decide(args[0].AsInt(), args[1].AsInt()))});
    return out;
  };
  (void)Register(std::move(decide));
}

}  // namespace fedflow::appsys
