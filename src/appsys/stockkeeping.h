// The stock-keeping system: components in stock, the corresponding supplier,
// and supplier quality ratings (paper §3). Function-only access.
#ifndef FEDFLOW_APPSYS_STOCKKEEPING_H_
#define FEDFLOW_APPSYS_STOCKKEEPING_H_

#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "appsys/appsystem.h"
#include "appsys/dataset.h"

namespace fedflow::appsys {

/// Functions:
///   GetQuality(SupplierNo INT)            -> (Qual INT)
///   GetNumber(SupplierNo INT, CompNo INT) -> (Number INT)
///   GetSuppComps(SupplierNo INT)          -> (CompNo INT)*  (table-valued)
///   SetQuality(SupplierNo INT, Qual INT)  -> (Qual INT)    (mutating)
///   RestoreQuality(SupplierNo INT, Qual INT) -> (Qual INT) (mutating;
///       compensation of SetQuality — same write, saga-facing name)
///   ReserveStock(SupplierNo INT, CompNo INT, Amount INT) -> (Reserved INT)
///       (mutating; adds a reservation, returns the new reserved total)
///   ReleaseStock(SupplierNo INT, CompNo INT, Amount INT) -> (Reserved INT)
///       (mutating; compensation of ReserveStock)
///   GetReserved(SupplierNo INT, CompNo INT) -> (Reserved INT)
class StockKeepingSystem : public AppSystem {
 public:
  explicit StockKeepingSystem(const Scenario& scenario);

  /// Reserved amount of (supplier, component); 0 when none (test hook).
  int32_t reserved(int32_t supplier_no, int32_t comp_no) const;
  /// Stored quality rating of `supplier_no`; -1 when unknown (test hook).
  int32_t quality(int32_t supplier_no) const;

  /// quality_ and reservations_ rendered as a canonical string.
  std::string StateFingerprint() const override;

 private:
  // Private embedded store — invisible to the FDBS by design. SetQuality /
  // RestoreQuality write quality_ and ReserveStock / ReleaseStock write
  // reservations_, so all access to either goes through quality_mutex_.
  mutable std::mutex quality_mutex_;
  std::map<int32_t, int32_t> quality_;                     // supplier -> qual
  std::map<std::pair<int32_t, int32_t>, int32_t> reservations_;
  std::map<std::pair<int32_t, int32_t>, int32_t> stock_;   // (supp,comp) -> no
  std::map<int32_t, std::vector<int32_t>> supp_comps_;     // supp -> comps
};

}  // namespace fedflow::appsys

#endif  // FEDFLOW_APPSYS_STOCKKEEPING_H_
