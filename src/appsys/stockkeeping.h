// The stock-keeping system: components in stock, the corresponding supplier,
// and supplier quality ratings (paper §3). Function-only access.
#ifndef FEDFLOW_APPSYS_STOCKKEEPING_H_
#define FEDFLOW_APPSYS_STOCKKEEPING_H_

#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "appsys/appsystem.h"
#include "appsys/dataset.h"

namespace fedflow::appsys {

/// Functions:
///   GetQuality(SupplierNo INT)            -> (Qual INT)
///   GetNumber(SupplierNo INT, CompNo INT) -> (Number INT)
///   GetSuppComps(SupplierNo INT)          -> (CompNo INT)*  (table-valued)
///   SetQuality(SupplierNo INT, Qual INT)  -> (Qual INT)    (mutating)
class StockKeepingSystem : public AppSystem {
 public:
  explicit StockKeepingSystem(const Scenario& scenario);

 private:
  // Private embedded store — invisible to the FDBS by design. SetQuality
  // writes quality_, so reads and writes of it go through quality_mutex_.
  mutable std::mutex quality_mutex_;
  std::map<int32_t, int32_t> quality_;                     // supplier -> qual
  std::map<std::pair<int32_t, int32_t>, int32_t> stock_;   // (supp,comp) -> no
  std::map<int32_t, std::vector<int32_t>> supp_comps_;     // supp -> comps
};

}  // namespace fedflow::appsys

#endif  // FEDFLOW_APPSYS_STOCKKEEPING_H_
