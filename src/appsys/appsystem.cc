#include "appsys/appsystem.h"

#include "common/strings.h"

namespace fedflow::appsys {

std::vector<std::string> AppSystem::FunctionNames() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [key, fn] : functions_) names.push_back(fn.name);
  return names;
}

Result<const LocalFunction*> AppSystem::GetFunction(
    const std::string& name) const {
  auto it = functions_.find(ToUpper(name));
  if (it == functions_.end()) {
    return Status::NotFound("application system " + name_ +
                            " has no function " + name);
  }
  return &it->second;
}

std::map<std::string, int64_t> AppSystem::FunctionCallCounts() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return fn_call_counts_;
}

Result<AppSystem::CallResult> AppSystem::Call(
    const std::string& function, const std::vector<Value>& args) const {
  call_count_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++fn_call_counts_[ToUpper(function)];
  }
  FEDFLOW_ASSIGN_OR_RETURN(const LocalFunction* fn, GetFunction(function));
  auto fault = faults_.find(ToUpper(function));
  if (fault != faults_.end() && !fault->second.ok()) {
    return fault->second;
  }
  if (args.size() != fn->params.size()) {
    return Status::InvalidArgument(
        name_ + "." + function + " expects " +
        std::to_string(fn->params.size()) + " argument(s), got " +
        std::to_string(args.size()));
  }
  std::vector<Value> coerced;
  coerced.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    Result<Value> v = args[i].CastTo(fn->params[i].type);
    if (!v.ok()) {
      return v.status().WithContext("argument " + fn->params[i].name + " of " +
                                    name_ + "." + function);
    }
    coerced.push_back(std::move(*v));
  }
  Result<Table> out = fn->body(coerced);
  if (!out.ok()) {
    return out.status().WithContext(name_ + "." + function);
  }
  if (fn->mutates) data_version_.fetch_add(1);
  CallResult result;
  result.cost_us = fn->base_cost_us +
                   fn->per_row_cost_us * static_cast<VDuration>(out->num_rows());
  result.table = std::move(*out);
  return result;
}

void AppSystem::InjectFault(const std::string& function, Status status) {
  faults_[ToUpper(function)] = std::move(status);
}

Status AppSystem::Register(LocalFunction fn) {
  std::string key = ToUpper(fn.name);
  if (functions_.count(key) > 0) {
    return Status::AlreadyExists("function already registered: " + fn.name);
  }
  functions_.emplace(std::move(key), std::move(fn));
  return Status::OK();
}

}  // namespace fedflow::appsys
