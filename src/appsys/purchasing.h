// The purchasing system: suppliers, reliability ratings, purchasing
// conditions (discounts), and the decision support functions of the paper's
// motivating scenario. Function-only access.
#ifndef FEDFLOW_APPSYS_PURCHASING_H_
#define FEDFLOW_APPSYS_PURCHASING_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "appsys/appsystem.h"
#include "appsys/dataset.h"

namespace fedflow::appsys {

/// Functions:
///   GetSupplierNo(SupplierName VARCHAR)  -> (SupplierNo INT)
///   GetSupplierName(SupplierNo INT)      -> (SupplierName VARCHAR)
///   GetReliability(SupplierNo INT)       -> (Relia INT)
///   GetCompSupp4Discount(Discount INT)   -> (CompNo INT, SupplierNo INT)*
///   GetGrade(Qual INT, Relia INT)        -> (Grade INT)
///   DecidePurchase(Grade INT, CompNo INT)-> (Answer VARCHAR)
///   PlaceOrder(SupplierNo INT, CompNo INT, Amount INT) -> (OrderNo INT)
///       (mutating; books an order, returns its deterministic number)
///   CancelOrder(OrderNo INT)             -> (Cancelled INT)
///       (mutating; compensation of PlaceOrder)
///   GetOpenOrders(SupplierNo INT)        -> (OrderNo INT, CompNo INT,
///       Amount INT)*  (table-valued view of the order book)
class PurchasingSystem : public AppSystem {
 public:
  explicit PurchasingSystem(const Scenario& scenario);

  /// The decision rule (exposed so tests can assert against the oracle):
  /// BUY when grade >= 5, REJECT otherwise.
  static std::string Decide(int32_t grade, int32_t comp_no);

  /// Open (placed, not cancelled) orders (test hook).
  int64_t open_order_count() const;

  /// The order book rendered as a canonical string.
  std::string StateFingerprint() const override;

 private:
  struct OrderRecord {
    int32_t supplier_no = 0;
    int32_t comp_no = 0;
    int32_t amount = 0;
  };

  std::map<std::string, int32_t> supplier_by_name_;
  std::map<int32_t, std::string> supplier_name_;
  std::map<int32_t, int32_t> reliability_;
  std::vector<DiscountRecord> discounts_;
  // PlaceOrder / CancelOrder write the order book; all access to orders_ and
  // next_order_no_ goes through orders_mutex_. Order numbers are a
  // deterministic counter so repeated runs book identical numbers.
  mutable std::mutex orders_mutex_;
  std::map<int32_t, OrderRecord> orders_;
  int32_t next_order_no_ = 9000;
};

}  // namespace fedflow::appsys

#endif  // FEDFLOW_APPSYS_PURCHASING_H_
