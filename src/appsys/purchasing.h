// The purchasing system: suppliers, reliability ratings, purchasing
// conditions (discounts), and the decision support functions of the paper's
// motivating scenario. Function-only access.
#ifndef FEDFLOW_APPSYS_PURCHASING_H_
#define FEDFLOW_APPSYS_PURCHASING_H_

#include <map>
#include <string>
#include <vector>

#include "appsys/appsystem.h"
#include "appsys/dataset.h"

namespace fedflow::appsys {

/// Functions:
///   GetSupplierNo(SupplierName VARCHAR)  -> (SupplierNo INT)
///   GetSupplierName(SupplierNo INT)      -> (SupplierName VARCHAR)
///   GetReliability(SupplierNo INT)       -> (Relia INT)
///   GetCompSupp4Discount(Discount INT)   -> (CompNo INT, SupplierNo INT)*
///   GetGrade(Qual INT, Relia INT)        -> (Grade INT)
///   DecidePurchase(Grade INT, CompNo INT)-> (Answer VARCHAR)
class PurchasingSystem : public AppSystem {
 public:
  explicit PurchasingSystem(const Scenario& scenario);

  /// The decision rule (exposed so tests can assert against the oracle):
  /// BUY when grade >= 5, REJECT otherwise.
  static std::string Decide(int32_t grade, int32_t comp_no);

 private:
  std::map<std::string, int32_t> supplier_by_name_;
  std::map<int32_t, std::string> supplier_name_;
  std::map<int32_t, int32_t> reliability_;
  std::vector<DiscountRecord> discounts_;
};

}  // namespace fedflow::appsys

#endif  // FEDFLOW_APPSYS_PURCHASING_H_
