// Registry of application systems reachable from the integration server.
#ifndef FEDFLOW_APPSYS_REGISTRY_H_
#define FEDFLOW_APPSYS_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "appsys/appsystem.h"
#include "common/strings.h"

namespace fedflow::appsys {

/// Owns the application systems of one deployment, keyed by system name.
class AppSystemRegistry {
 public:
  Status Add(std::shared_ptr<AppSystem> system) {
    std::string key = ToUpper(system->name());
    if (systems_.count(key) > 0) {
      return Status::AlreadyExists("application system already registered: " +
                                   system->name());
    }
    systems_.emplace(std::move(key), std::move(system));
    return Status::OK();
  }

  Result<AppSystem*> Get(const std::string& name) const {
    auto it = systems_.find(ToUpper(name));
    if (it == systems_.end()) {
      return Status::NotFound("application system not found: " + name);
    }
    return it->second.get();
  }

  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(systems_.size());
    for (const auto& [key, sys] : systems_) names.push_back(sys->name());
    return names;
  }

 private:
  std::map<std::string, std::shared_ptr<AppSystem>> systems_;
};

}  // namespace fedflow::appsys

#endif  // FEDFLOW_APPSYS_REGISTRY_H_
