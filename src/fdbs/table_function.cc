#include "fdbs/table_function.h"

namespace fedflow::fdbs {

Result<RowSourcePtr> TableFunction::InvokeStream(const std::vector<Value>& args,
                                                 ExecContext& ctx,
                                                 size_t batch_size) {
  FEDFLOW_ASSIGN_OR_RETURN(Table result, Invoke(args, ctx));
  return MakeTableSource(std::move(result), batch_size);
}

}  // namespace fedflow::fdbs
