#include "fdbs/table_function.h"

namespace fedflow::fdbs {

Result<RowSourcePtr> TableFunction::InvokeStream(const std::vector<Value>& args,
                                                 ExecContext& ctx,
                                                 size_t batch_size) {
  FEDFLOW_ASSIGN_OR_RETURN(Table result, Invoke(args, ctx));
  return MakeTableSource(std::move(result), batch_size);
}

Result<std::vector<Value>> TableFunction::CoerceArgs(
    std::vector<Value> args) const {
  const std::vector<Column>& decls = params();
  for (size_t i = 0; i < args.size() && i < decls.size(); ++i) {
    if (args[i].is_null()) continue;
    if (args[i].type() != decls[i].type) {
      FEDFLOW_ASSIGN_OR_RETURN(args[i], args[i].CastTo(decls[i].type));
    }
  }
  return args;
}

}  // namespace fedflow::fdbs
