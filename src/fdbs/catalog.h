// FDBS catalog: base tables, scalar functions, table functions.
#ifndef FEDFLOW_FDBS_CATALOG_H_
#define FEDFLOW_FDBS_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <functional>

#include "common/result.h"
#include "common/table.h"
#include "fdbs/exec_context.h"
#include "fdbs/procedure.h"
#include "fdbs/scalar_function.h"
#include "fdbs/table_function.h"

namespace fedflow::fdbs {

/// Materializes an external table's current rows (a remote SQL subquery).
/// Providers charge their modeled cost to ctx.clock when set.
using ExternalTableProvider =
    std::function<Result<Table>(ExecContext& ctx)>;

/// Streaming variant: yields the same rows batch by batch, charging the
/// transfer cost incrementally as batches are pulled.
using ExternalTableStreamProvider =
    std::function<Result<RowSourcePtr>(ExecContext& ctx, size_t batch_size)>;

/// Catalog entry for a table served by a remote SQL source.
struct ExternalTable {
  std::string name;
  Schema schema;
  ExternalTableProvider provider;
  /// Optional; when set the executor prefers the streaming scan.
  ExternalTableStreamProvider stream_provider;
};

/// Name-keyed (case-insensitive) registry of all objects the FDBS knows.
/// Not thread-safe; the FDBS serializes DDL, and queries only read.
class Catalog {
 public:
  // --- base tables ---------------------------------------------------------
  Status CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);
  /// Mutable handle for INSERT; NotFound when absent.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTableConst(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  // --- external tables (remote SQL sources) ---------------------------------
  /// Registers a table served by a remote SQL source. Name collisions with
  /// local tables are rejected.
  Status RegisterExternalTable(ExternalTable table);
  Status DropExternalTable(const std::string& name);
  /// NotFound when absent.
  Result<const ExternalTable*> GetExternalTable(const std::string& name) const;
  bool HasExternalTable(const std::string& name) const;

  // --- scalar functions ----------------------------------------------------
  Status RegisterScalarFunction(ScalarFunctionDef def);
  /// NotFound when absent.
  Result<const ScalarFunctionDef*> GetScalarFunction(
      const std::string& name) const;
  bool HasScalarFunction(const std::string& name) const;

  // --- table functions (UDTFs) --------------------------------------------
  Status RegisterTableFunction(std::shared_ptr<TableFunction> fn);
  Status DropTableFunction(const std::string& name);
  /// NotFound when absent.
  Result<TableFunction*> GetTableFunction(const std::string& name) const;
  bool HasTableFunction(const std::string& name) const;

  // --- stored procedures (PSM) ----------------------------------------------
  Status RegisterProcedure(StoredProcedure procedure);
  Status DropProcedure(const std::string& name);
  /// NotFound when absent.
  Result<const StoredProcedure*> GetProcedure(const std::string& name) const;
  bool HasProcedure(const std::string& name) const;

  /// Names of all registered table functions (sorted; for introspection).
  std::vector<std::string> TableFunctionNames() const;
  /// Names of all base tables (sorted).
  std::vector<std::string> TableNames() const;

 private:
  static std::string Key(const std::string& name);

  std::map<std::string, Table> tables_;
  std::map<std::string, ExternalTable> external_tables_;
  std::map<std::string, ScalarFunctionDef> scalar_functions_;
  std::map<std::string, std::shared_ptr<TableFunction>> table_functions_;
  std::map<std::string, StoredProcedure> procedures_;
};

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_CATALOG_H_
