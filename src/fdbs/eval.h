// Expression evaluation with SQL three-valued logic, plus static type
// inference for query output schemas.
#ifndef FEDFLOW_FDBS_EVAL_H_
#define FEDFLOW_FDBS_EVAL_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/column_batch.h"
#include "common/result.h"
#include "common/schema.h"
#include "common/table.h"
#include "sql/ast.h"

namespace fedflow::fdbs {

class Catalog;

/// Named parameter values visible inside an SQL function body. DB2 style:
/// the body references them as `FunctionName.ParamName`; we additionally
/// allow unqualified references when unambiguous.
struct ParamScope {
  std::string function_name;
  std::vector<std::pair<std::string, Value>> params;

  /// Value of `name` if present (qualifier empty or == function_name).
  std::optional<Value> Lookup(const std::string& qualifier,
                              const std::string& name) const;
};

/// Resolves column references against the FROM-clause bindings of the current
/// (partially assembled) combined row, plus an optional parameter scope.
class RowScope {
 public:
  /// One FROM item's contribution to the combined row.
  struct Binding {
    std::string alias;     ///< correlation name (or table name)
    const Schema* schema;  ///< columns this binding contributes
    size_t offset;         ///< start position within the combined row
  };

  void AddBinding(std::string alias, const Schema* schema, size_t offset) {
    bindings_.push_back(Binding{std::move(alias), schema, offset});
  }
  const std::vector<Binding>& bindings() const { return bindings_; }

  /// Restricts resolution to bindings whose mask entry is true (used while
  /// assembling the lateral chain: an executing FROM item may only see items
  /// that already produced their columns). Null mask = all visible. The mask
  /// is borrowed and must outlive resolution.
  void set_visibility_mask(const std::vector<bool>* mask) { mask_ = mask; }

  void set_row(const Row* row) { row_ = row; }
  const Row* row() const { return row_; }

  void set_params(const ParamScope* params) { params_ = params; }
  const ParamScope* params() const { return params_; }

  /// Resolves qualifier.name (or bare name) to the current row's value.
  /// Falls back to the parameter scope. NotFound / InvalidArgument (ambiguous).
  Result<Value> ResolveColumn(const std::string& qualifier,
                              const std::string& name) const;

  /// Static type of qualifier.name, mirroring ResolveColumn's resolution.
  Result<DataType> ResolveColumnType(const std::string& qualifier,
                                     const std::string& name) const;

  /// A reference resolved once, ahead of per-row evaluation: either a fixed
  /// combined-row position or (for parameter references) a constant value.
  struct ResolvedRef {
    int pos = -1;  ///< combined-row position; -1 = parameter
    Value param;   ///< the parameter's value when pos < 0
  };

  /// Resolves qualifier.name to a position/constant under the current
  /// visibility mask, using the same rules as ResolveColumn. This is what
  /// lets the vectorized evaluator pay name resolution once per statement
  /// instead of once per row.
  Result<ResolvedRef> Resolve(const std::string& qualifier,
                              const std::string& name) const;

 private:
  /// Finds (binding index, column index) for a reference; second when
  /// resolved to a parameter instead.
  Result<std::pair<int, int>> Find(const std::string& qualifier,
                                   const std::string& name) const;

  std::vector<Binding> bindings_;
  const std::vector<bool>* mask_ = nullptr;
  const Row* row_ = nullptr;
  const ParamScope* params_ = nullptr;
};

/// Expression evaluator. NULL handling follows SQL: comparisons with NULL
/// yield NULL (unknown), AND/OR use three-valued truth tables, WHERE keeps
/// only rows evaluating to TRUE.
class Evaluator {
 public:
  explicit Evaluator(const Catalog* catalog) : catalog_(catalog) {}

  /// Resolver installed by the aggregation operator; receives aggregate
  /// calls (COUNT/SUM/AVG/MIN/MAX) and returns the per-group value.
  using AggResolver =
      std::function<Result<Value>(const sql::FunctionCallExpr&)>;
  void set_agg_resolver(AggResolver resolver) {
    agg_resolver_ = std::move(resolver);
  }

  /// True for the five built-in aggregate function names.
  static bool IsAggregateName(const std::string& name);

  /// True when `expr` contains an aggregate call anywhere.
  static bool ContainsAggregate(const sql::Expr& expr);

  /// Evaluates `expr` in `scope`.
  Result<Value> Eval(const sql::Expr& expr, const RowScope& scope) const;

  /// Static result type of `expr` (kNull when undeterminable).
  Result<DataType> InferType(const sql::Expr& expr,
                             const RowScope& scope) const;

 private:
  Result<Value> EvalBinary(const sql::BinaryExpr& expr,
                           const RowScope& scope) const;
  Result<Value> EvalCall(const sql::FunctionCallExpr& expr,
                         const RowScope& scope) const;

  const Catalog* catalog_;
  AggResolver agg_resolver_;
};

/// Promotes two numeric types for arithmetic (INT < BIGINT < DOUBLE).
DataType PromoteNumeric(DataType a, DataType b);

/// Applies a non-AND/OR binary operator to two already-evaluated operands.
/// This is the single scalar core shared by the row evaluator and the
/// vectorized evaluator's generic fallback, so both paths agree exactly on
/// SQL semantics (NULL propagation, numeric promotion, INT narrowing,
/// error messages).
Result<Value> ApplyBinaryOp(sql::BinaryOp op, const Value& lv,
                            const Value& rv);

/// Applies a unary operator to an already-evaluated operand (same sharing
/// rationale as ApplyBinaryOp).
Result<Value> ApplyUnaryOp(sql::UnaryOp op, const Value& v);

/// A WHERE conjunct compiled for vectorized evaluation over column batches.
///
/// Compile() resolves every column reference once (folding parameter
/// references to constants) and flattens the expression into a node tree;
/// FilterSelection() then evaluates the tree batch-at-a-time with tight
/// typed loops, narrowing a selection vector instead of walking a
/// std::variant tree per row. Expressions the vectorized engine does not
/// cover (CASE, scalar function calls, unresolvable references) return
/// nullopt and the caller falls back to the row-at-a-time filter.
///
/// Semantics match the row path bit for bit on results: three-valued
/// AND/OR with the same lazy right-side evaluation set, the root keeps only
/// non-NULL BOOLEAN TRUE values, and all per-row kernels mirror
/// Value/Evaluator semantics (per-row INT narrowing included). On failing
/// statements both paths fail, though they may surface the error of a
/// different row (the row path scans row-major, this one conjunct-major).
class VectorPredicate {
 public:
  /// Compiles `expr` against `scope` (current visibility mask applies).
  /// nullopt when the expression needs the row-at-a-time fallback.
  static std::optional<VectorPredicate> Compile(const sql::Expr& expr,
                                                const RowScope& scope);

  /// Narrows `sel` (row indices into `batch`, ascending) to the rows the
  /// predicate keeps. Errors mirror the row path's evaluation errors.
  Status FilterSelection(const ColumnBatch& batch,
                         std::vector<uint32_t>* sel) const;

  /// The conjunct's SQL text, used to label selectivity statistics.
  const std::string& label() const { return label_; }

  /// One flattened expression node. Public only for the evaluation kernels
  /// in eval.cc; not part of the stable API.
  enum class NodeKind {
    kConst,      // literal or folded parameter
    kCol,        // combined-row column at position `col`
    kAnd, kOr,   // three-valued logic with lazy right side
    kNot, kNeg, kIsNull, kIsNotNull,
    kCmp,        // =, <>, <, <=, >, >=
    kArith,      // +, -, *, /, %
    kGenericBin, // ||, LIKE
  };
  struct Node {
    NodeKind kind = NodeKind::kConst;
    sql::BinaryOp bop = sql::BinaryOp::kEq;   // kCmp/kArith/kGenericBin
    sql::UnaryOp uop = sql::UnaryOp::kNot;    // unary kinds
    Value cval;                               // kConst
    size_t col = 0;                           // kCol
    int left = -1;                            // first child
    int right = -1;                           // second child
  };

 private:
  VectorPredicate() = default;

  std::vector<Node> nodes_;
  int root_ = -1;
  std::string label_;
};

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_EVAL_H_
