// Procedural table functions: the FDBS-side mechanism behind the paper's
// "enhanced Java UDTF architecture". The function body is host-language code
// (C++ here, Java in the paper) that may issue arbitrarily many SQL
// statements through a JDBC-like client — lifting the "one SQL statement"
// restriction of SQL-bodied I-UDTFs and adding control structures (loops).
#ifndef FEDFLOW_FDBS_PROCEDURAL_FUNCTION_H_
#define FEDFLOW_FDBS_PROCEDURAL_FUNCTION_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "fdbs/table_function.h"

namespace fedflow::fdbs {

class Database;

/// JDBC-analog handle a procedural body uses to run SQL against the owning
/// database. Each statement is parsed and executed by the FDBS; an optional
/// per-statement overhead (the "JDBC call") is charged to the context clock.
class SqlClient {
 public:
  /// `statement_overhead_us` models the driver round trip per statement.
  SqlClient(Database* db, ExecContext* ctx, VDuration statement_overhead_us)
      : db_(db), ctx_(ctx), overhead_us_(statement_overhead_us) {}

  /// Executes one SQL statement and returns its result table.
  Result<Table> Query(const std::string& sql);

  /// Number of statements issued through this client.
  int statements_issued() const { return statements_; }

 private:
  Database* db_;
  ExecContext* ctx_;
  VDuration overhead_us_;
  int statements_ = 0;
};

/// Body of a procedural table function.
using ProceduralBody = std::function<Result<Table>(
    const std::vector<Value>& args, SqlClient* client)>;

/// A table function implemented in the host language.
class ProceduralTableFunction : public TableFunction {
 public:
  ProceduralTableFunction(std::string name, std::vector<Column> params,
                          Schema result_schema, ProceduralBody body,
                          VDuration statement_overhead_us = 0)
      : name_(std::move(name)),
        params_(std::move(params)),
        schema_(std::move(result_schema)),
        body_(std::move(body)),
        overhead_us_(statement_overhead_us) {}

  const std::string& name() const override { return name_; }
  const std::vector<Column>& params() const override { return params_; }
  const Schema& result_schema() const override { return schema_; }

  /// Runs the body with a fresh SqlClient; the produced table is coerced to
  /// the declared result schema.
  Result<Table> Invoke(const std::vector<Value>& args,
                       ExecContext& ctx) override;

 private:
  std::string name_;
  std::vector<Column> params_;
  Schema schema_;
  ProceduralBody body_;
  VDuration overhead_us_;
};

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_PROCEDURAL_FUNCTION_H_
