#include "fdbs/catalog.h"

#include "common/strings.h"

namespace fedflow::fdbs {

std::string Catalog::Key(const std::string& name) { return ToUpper(name); }

Status Catalog::CreateTable(const std::string& name, Schema schema) {
  std::string key = Key(name);
  if (tables_.count(key) > 0 || external_tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_.emplace(key, Table(std::move(schema)));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(Key(name)) == 0) {
    return Status::NotFound("table not found: " + name);
  }
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return &it->second;
}

Result<const Table*> Catalog::GetTableConst(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(Key(name)) > 0;
}

Status Catalog::RegisterExternalTable(ExternalTable table) {
  std::string key = Key(table.name);
  if (tables_.count(key) > 0 || external_tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + table.name);
  }
  external_tables_.emplace(std::move(key), std::move(table));
  return Status::OK();
}

Status Catalog::DropExternalTable(const std::string& name) {
  if (external_tables_.erase(Key(name)) == 0) {
    return Status::NotFound("external table not found: " + name);
  }
  return Status::OK();
}

Result<const ExternalTable*> Catalog::GetExternalTable(
    const std::string& name) const {
  auto it = external_tables_.find(Key(name));
  if (it == external_tables_.end()) {
    return Status::NotFound("external table not found: " + name);
  }
  return &it->second;
}

bool Catalog::HasExternalTable(const std::string& name) const {
  return external_tables_.count(Key(name)) > 0;
}

Status Catalog::RegisterScalarFunction(ScalarFunctionDef def) {
  std::string key = Key(def.name);
  if (scalar_functions_.count(key) > 0) {
    return Status::AlreadyExists("scalar function already exists: " + def.name);
  }
  scalar_functions_.emplace(key, std::move(def));
  return Status::OK();
}

Result<const ScalarFunctionDef*> Catalog::GetScalarFunction(
    const std::string& name) const {
  auto it = scalar_functions_.find(Key(name));
  if (it == scalar_functions_.end()) {
    return Status::NotFound("scalar function not found: " + name);
  }
  return &it->second;
}

bool Catalog::HasScalarFunction(const std::string& name) const {
  return scalar_functions_.count(Key(name)) > 0;
}

Status Catalog::RegisterTableFunction(std::shared_ptr<TableFunction> fn) {
  std::string key = Key(fn->name());
  if (table_functions_.count(key) > 0) {
    return Status::AlreadyExists("table function already exists: " +
                                 fn->name());
  }
  table_functions_.emplace(key, std::move(fn));
  return Status::OK();
}

Status Catalog::DropTableFunction(const std::string& name) {
  if (table_functions_.erase(Key(name)) == 0) {
    return Status::NotFound("table function not found: " + name);
  }
  return Status::OK();
}

Result<TableFunction*> Catalog::GetTableFunction(
    const std::string& name) const {
  auto it = table_functions_.find(Key(name));
  if (it == table_functions_.end()) {
    return Status::NotFound("table function not found: " + name);
  }
  return it->second.get();
}

bool Catalog::HasTableFunction(const std::string& name) const {
  return table_functions_.count(Key(name)) > 0;
}

Status Catalog::RegisterProcedure(StoredProcedure procedure) {
  std::string key = Key(procedure.name);
  if (procedures_.count(key) > 0) {
    return Status::AlreadyExists("procedure already exists: " +
                                 procedure.name);
  }
  procedures_.emplace(std::move(key), std::move(procedure));
  return Status::OK();
}

Status Catalog::DropProcedure(const std::string& name) {
  if (procedures_.erase(Key(name)) == 0) {
    return Status::NotFound("procedure not found: " + name);
  }
  return Status::OK();
}

Result<const StoredProcedure*> Catalog::GetProcedure(
    const std::string& name) const {
  auto it = procedures_.find(Key(name));
  if (it == procedures_.end()) {
    return Status::NotFound("procedure not found: " + name);
  }
  return &it->second;
}

bool Catalog::HasProcedure(const std::string& name) const {
  return procedures_.count(Key(name)) > 0;
}

std::vector<std::string> Catalog::TableFunctionNames() const {
  std::vector<std::string> names;
  names.reserve(table_functions_.size());
  for (const auto& [key, fn] : table_functions_) names.push_back(fn->name());
  return names;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, t] : tables_) names.push_back(key);
  return names;
}

}  // namespace fedflow::fdbs
