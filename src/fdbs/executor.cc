#include "fdbs/executor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <set>

#include "common/dag.h"
#include "common/strings.h"
#include "fdbs/catalog.h"
#include "fdbs/database.h"
#include "obs/trace.h"

namespace fedflow::fdbs {

using sql::BinaryExpr;
using sql::CaseExpr;
using sql::ColumnRefExpr;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::FunctionCallExpr;
using sql::SelectItem;
using sql::SelectStmt;
using sql::TableRef;
using sql::TableRefKind;
using sql::UnaryExpr;

namespace {

/// Collects all column references in an expression tree.
void CollectColumnRefs(const Expr& expr,
                       std::vector<const ColumnRefExpr*>* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef:
      out->push_back(static_cast<const ColumnRefExpr*>(&expr));
      return;
    case ExprKind::kFunctionCall:
      for (const auto& arg :
           static_cast<const FunctionCallExpr&>(expr).args()) {
        CollectColumnRefs(*arg, out);
      }
      return;
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      CollectColumnRefs(*bin.left(), out);
      CollectColumnRefs(*bin.right(), out);
      return;
    }
    case ExprKind::kUnary:
      CollectColumnRefs(*static_cast<const UnaryExpr&>(expr).operand(), out);
      return;
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        CollectColumnRefs(*b.condition, out);
        CollectColumnRefs(*b.value, out);
      }
      if (case_expr.else_value() != nullptr) {
        CollectColumnRefs(*case_expr.else_value(), out);
      }
      return;
    }
  }
}

/// Collects aggregate calls (COUNT/SUM/...) in an expression tree.
void CollectAggregates(const Expr& expr,
                       std::vector<const FunctionCallExpr*>* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return;
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (Evaluator::IsAggregateName(call.name())) {
        out->push_back(&call);
        return;  // aggregates cannot nest
      }
      for (const auto& arg : call.args()) CollectAggregates(*arg, out);
      return;
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      CollectAggregates(*bin.left(), out);
      CollectAggregates(*bin.right(), out);
      return;
    }
    case ExprKind::kUnary:
      CollectAggregates(*static_cast<const UnaryExpr&>(expr).operand(), out);
      return;
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        CollectAggregates(*b.condition, out);
        CollectAggregates(*b.value, out);
      }
      if (case_expr.else_value() != nullptr) {
        CollectAggregates(*case_expr.else_value(), out);
      }
      return;
    }
  }
}

/// Output column name for a select expression without an explicit alias.
std::string DeriveName(const Expr& expr, size_t index) {
  if (expr.kind() == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(expr).name();
  }
  if (expr.kind() == ExprKind::kFunctionCall) {
    return static_cast<const FunctionCallExpr&>(expr).name();
  }
  return "col" + std::to_string(index + 1);
}

/// Comparator state for sorting with error capture.
struct SortError {
  Status status = Status::OK();
};

/// Splits a predicate into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(*expr);
    if (bin.op() == sql::BinaryOp::kAnd) {
      SplitConjuncts(bin.left(), out);
      SplitConjuncts(bin.right(), out);
      return;
    }
  }
  out->push_back(expr);
}

// ---------------------------------------------------------------------------
// The FROM chain as a pull-based pipeline. Each operator produces full-width
// combined rows (columns of not-yet-executed items are NULL) in batches of at
// most chain->batch_size rows, so only O(batch size · chain depth) rows are
// resident between the scans/function calls and the statement boundary —
// the old path materialized the entire intermediate cross product after
// every FROM item.
// ---------------------------------------------------------------------------

/// State shared by all operators of one chain (borrowed; outlives the drain).
struct ChainState {
  RowScope* scope = nullptr;
  Evaluator* eval = nullptr;
  fedflow::fdbs::ExecContext* ctx = nullptr;
  const Schema* combined_schema = nullptr;
  size_t batch_size = kDefaultRowBatchSize;
  PipelineStats* stats = nullptr;  // may be null

  void Emit(const RowBatch& batch) const {
    if (stats != nullptr && !batch.empty()) {
      stats->Acquire(batch.size());
      stats->Emitted(batch);
    }
  }
  /// Columnar counterpart of Emit: same residency accounting and batch
  /// cadence, plus the columnar-batch counter.
  void EmitColumnar(const ColumnBatch& batch) const {
    if (stats != nullptr && !batch.empty()) {
      stats->Acquire(batch.num_rows());
      stats->EmittedColumnar(batch.num_rows());
    }
  }
  void Consumed(size_t n) const {
    if (stats != nullptr) stats->Release(n);
  }
};

/// Emits the single all-NULL seed row the lateral chain starts from.
class SeedSource : public RowSource {
 public:
  SeedSource(const ChainState* chain, size_t width)
      : chain_(chain), width_(width) {}

  const Schema& schema() const override { return *chain_->combined_schema; }

  Result<RowBatch> Next() override {
    RowBatch batch;
    if (!emitted_) {
      emitted_ = true;
      batch.rows.emplace_back(width_, Value::Null());
      chain_->Emit(batch);
    }
    return batch;
  }

 private:
  const ChainState* chain_;
  size_t width_;
  bool emitted_ = false;
};

/// Crosses every input row with the rows of a (borrowed or owned) table —
/// base-table scans and pre-materialized external scans.
class CrossScanSource : public RowSource {
 public:
  CrossScanSource(const ChainState* chain, RowSourcePtr input,
                  const Table* base, size_t offset)
      : chain_(chain), input_(std::move(input)), base_(base), offset_(offset) {}

  /// Variant owning the scanned data (external tables fetched per scan).
  CrossScanSource(const ChainState* chain, RowSourcePtr input, Table owned,
                  size_t offset)
      : chain_(chain),
        input_(std::move(input)),
        owned_(std::move(owned)),
        base_(&owned_),
        offset_(offset) {}

  const Schema& schema() const override { return *chain_->combined_schema; }

  Result<RowBatch> Next() override {
    RowBatch out;
    const std::vector<Row>& base_rows = base_->rows();
    while (out.size() < chain_->batch_size) {
      if (in_pos_ == in_batch_.size()) {
        chain_->Consumed(in_batch_.size());
        if (input_done_) break;
        FEDFLOW_ASSIGN_OR_RETURN(in_batch_, input_->Next());
        in_pos_ = 0;
        base_pos_ = 0;
        if (in_batch_.empty()) {
          input_done_ = true;
          break;
        }
      }
      const Row& partial = in_batch_.rows[in_pos_];
      while (base_pos_ < base_rows.size() && out.size() < chain_->batch_size) {
        Row combined = partial;
        std::copy(base_rows[base_pos_].begin(), base_rows[base_pos_].end(),
                  combined.begin() + offset_);
        out.rows.push_back(std::move(combined));
        ++base_pos_;
      }
      if (base_pos_ == base_rows.size()) {
        base_pos_ = 0;
        ++in_pos_;
      }
    }
    chain_->Emit(out);
    return out;
  }

  /// Columnar twin of Next(): identical input cadence, resume state, and
  /// stats protocol; the inner loop splices column-wise instead of copying
  /// a Row per output row. An instance serves one of the two methods,
  /// depending on what its (unique) consumer pulls.
  Result<ColumnBatch> NextColumns() override {
    ColumnBatch out(*chain_->combined_schema);
    const std::vector<Row>& base_rows = base_->rows();
    const size_t base_width = base_->schema().num_columns();
    while (out.num_rows() < chain_->batch_size) {
      if (in_pos_ == in_batch_.size()) {
        chain_->Consumed(in_batch_.size());
        if (input_done_) break;
        FEDFLOW_ASSIGN_OR_RETURN(in_batch_, input_->Next());
        in_pos_ = 0;
        base_pos_ = 0;
        if (in_batch_.empty()) {
          input_done_ = true;
          break;
        }
      }
      const Row& partial = in_batch_.rows[in_pos_];
      const size_t take = std::min(base_rows.size() - base_pos_,
                                   chain_->batch_size - out.num_rows());
      out.AppendSplicedRows(partial, base_rows, base_pos_, base_pos_ + take,
                            offset_, base_width);
      base_pos_ += take;
      if (base_pos_ == base_rows.size()) {
        base_pos_ = 0;
        ++in_pos_;
      }
    }
    chain_->EmitColumnar(out);
    return out;
  }

 private:
  const ChainState* chain_;
  RowSourcePtr input_;
  Table owned_;
  const Table* base_;
  size_t offset_;
  RowBatch in_batch_;
  size_t in_pos_ = 0;
  size_t base_pos_ = 0;
  bool input_done_ = false;
};

/// Crosses the single seed row with a streamed external table: the only scan
/// shape where the remote data itself never needs to be materialized
/// federation-side (re-iteration is impossible with one input row).
class StreamScanSource : public RowSource {
 public:
  StreamScanSource(const ChainState* chain, RowSourcePtr input,
                   RowSourcePtr data, size_t offset)
      : chain_(chain),
        input_(std::move(input)),
        data_(std::move(data)),
        offset_(offset) {}

  const Schema& schema() const override { return *chain_->combined_schema; }

  Result<RowBatch> Next() override {
    if (!seeded_) {
      FEDFLOW_ASSIGN_OR_RETURN(RowBatch seed, input_->Next());
      if (seed.empty()) return RowBatch{};
      seed_ = std::move(seed.rows.front());
      chain_->Consumed(seed.size());
      seeded_ = true;
    }
    FEDFLOW_ASSIGN_OR_RETURN(RowBatch data, data_->Next());
    RowBatch out;
    out.rows.reserve(data.size());
    for (Row& r : data.rows) {
      Row combined = seed_;
      for (size_t c = 0; c < r.size(); ++c) {
        combined[offset_ + c] = std::move(r[c]);
      }
      out.rows.push_back(std::move(combined));
    }
    chain_->Emit(out);
    return out;
  }

  /// Columnar twin of Next(): the splice of the streamed columns into the
  /// seed row runs column-wise. The data source's default NextColumns
  /// adapter keeps cost accounting of non-columnar providers intact.
  Result<ColumnBatch> NextColumns() override {
    if (!seeded_) {
      FEDFLOW_ASSIGN_OR_RETURN(RowBatch seed, input_->Next());
      if (seed.empty()) return ColumnBatch(*chain_->combined_schema);
      seed_ = std::move(seed.rows.front());
      chain_->Consumed(seed.size());
      seeded_ = true;
    }
    FEDFLOW_ASSIGN_OR_RETURN(ColumnBatch data, data_->NextColumns());
    ColumnBatch out(*chain_->combined_schema);
    if (!data.empty()) {
      out.Reserve(data.num_rows());
      out.AppendSpliced(seed_, std::move(data), offset_);
    }
    chain_->EmitColumnar(out);
    return out;
  }

 private:
  const ChainState* chain_;
  RowSourcePtr input_;
  RowSourcePtr data_;
  size_t offset_;
  Row seed_;
  bool seeded_ = false;
};

/// The lateral apply: for each input row, evaluates the function arguments
/// against it and streams the invocation's result rows into combined rows.
class LateralApplySource : public RowSource {
 public:
  LateralApplySource(const ChainState* chain, RowSourcePtr input,
                     TableFunction* fn, const TableRef* ref, size_t offset,
                     std::vector<bool> visible)
      : chain_(chain),
        input_(std::move(input)),
        fn_(fn),
        ref_(ref),
        offset_(offset),
        visible_(std::move(visible)) {}

  const Schema& schema() const override { return *chain_->combined_schema; }

  Result<RowBatch> Next() override {
    RowBatch out;
    while (out.size() < chain_->batch_size) {
      if (fn_stream_ == nullptr) {
        if (in_pos_ == in_batch_.size()) {
          chain_->Consumed(in_batch_.size());
          if (input_done_) break;
          FEDFLOW_ASSIGN_OR_RETURN(in_batch_, input_->Next());
          in_pos_ = 0;
          if (in_batch_.empty()) {
            input_done_ = true;
            break;
          }
        }
        partial_ = std::move(in_batch_.rows[in_pos_++]);
        FEDFLOW_RETURN_NOT_OK(OpenStream());
      }
      Result<RowBatch> fn_batch = fn_stream_->Next();
      if (!fn_batch.ok()) {
        return fn_batch.status().WithContext("in table function " + ref_->name);
      }
      if (fn_batch->empty()) {
        fn_stream_.reset();
        continue;
      }
      for (Row& r : fn_batch->rows) {
        Row combined = partial_;
        for (size_t c = 0; c < r.size(); ++c) {
          combined[offset_ + c] = std::move(r[c]);
        }
        out.rows.push_back(std::move(combined));
      }
    }
    chain_->Emit(out);
    return out;
  }

  /// Columnar twin of Next(): the inner loop — repeat the partial row,
  /// adopt the function's result columns — becomes one column-wise splice
  /// per pulled function batch. Argument evaluation, the invocation span,
  /// and the virtual-time charges all run through the same OpenStream.
  Result<ColumnBatch> NextColumns() override {
    ColumnBatch out(*chain_->combined_schema);
    while (out.num_rows() < chain_->batch_size) {
      if (fn_stream_ == nullptr) {
        if (in_pos_ == in_batch_.size()) {
          chain_->Consumed(in_batch_.size());
          if (input_done_) break;
          FEDFLOW_ASSIGN_OR_RETURN(in_batch_, input_->Next());
          in_pos_ = 0;
          if (in_batch_.empty()) {
            input_done_ = true;
            break;
          }
        }
        partial_ = std::move(in_batch_.rows[in_pos_++]);
        FEDFLOW_RETURN_NOT_OK(OpenStream());
      }
      Result<ColumnBatch> fn_batch = fn_stream_->NextColumns();
      if (!fn_batch.ok()) {
        return fn_batch.status().WithContext("in table function " + ref_->name);
      }
      if (fn_batch->empty()) {
        fn_stream_.reset();
        continue;
      }
      out.AppendSpliced(partial_, std::move(*fn_batch), offset_);
    }
    chain_->EmitColumnar(out);
    return out;
  }

 private:
  /// Evaluates the arguments against partial_ and opens the function's
  /// result stream. Resolution runs under this item's visibility snapshot,
  /// exactly as when the chain was assembled item by item.
  Status OpenStream() {
    RowScope* scope = chain_->scope;
    scope->set_visibility_mask(&visible_);
    scope->set_row(&partial_);
    std::vector<Value> args;
    args.reserve(ref_->args.size());
    Status status = Status::OK();
    for (size_t a = 0; a < ref_->args.size(); ++a) {
      Result<Value> v = chain_->eval->Eval(*ref_->args[a], *scope);
      if (v.ok()) v = v->CastTo(fn_->params()[a].type);
      if (!v.ok()) {
        status = v.status();
        break;
      }
      args.push_back(std::move(*v));
    }
    scope->set_row(nullptr);
    scope->set_visibility_mask(nullptr);
    FEDFLOW_RETURN_NOT_OK(status);
    // One span per lateral A-UDTF step: covers the eager part of the
    // invocation (where the coupling charges its per-step costs).
    obs::SpanScope step(chain_->ctx->trace, "lateral:" + ref_->name,
                        obs::Layer::kFdbs);
    Result<RowSourcePtr> stream =
        fn_->InvokeStream(args, *chain_->ctx, chain_->batch_size);
    if (!stream.ok()) {
      step.SetStatus(stream.status());
      return stream.status().WithContext("in table function " + ref_->name);
    }
    if ((*stream)->schema().num_columns() != fn_->result_schema().num_columns()) {
      return Status::Internal("table function " + ref_->name +
                              " returned wrong arity");
    }
    fn_stream_ = std::move(*stream);
    return Status::OK();
  }

  const ChainState* chain_;
  RowSourcePtr input_;
  TableFunction* fn_;
  const TableRef* ref_;
  size_t offset_;
  std::vector<bool> visible_;
  RowBatch in_batch_;
  size_t in_pos_ = 0;
  bool input_done_ = false;
  Row partial_;
  RowSourcePtr fn_stream_;
};

/// Applies pushed-down WHERE conjuncts to each row as it streams past.
class FilterSource : public RowSource {
 public:
  FilterSource(const ChainState* chain, RowSourcePtr input,
               std::vector<ExprPtr> conjuncts, std::vector<bool> visible)
      : chain_(chain),
        input_(std::move(input)),
        conjuncts_(std::move(conjuncts)),
        visible_(std::move(visible)) {}

  const Schema& schema() const override { return *chain_->combined_schema; }

  Result<RowBatch> Next() override {
    RowScope* scope = chain_->scope;
    while (true) {
      FEDFLOW_ASSIGN_OR_RETURN(RowBatch in, input_->Next());
      if (in.empty()) return in;
      RowBatch out;
      scope->set_visibility_mask(&visible_);
      Status status = Status::OK();
      for (Row& r : in.rows) {
        scope->set_row(&r);
        bool keep = true;
        for (const ExprPtr& conjunct : conjuncts_) {
          Result<Value> v = chain_->eval->Eval(*conjunct, *scope);
          if (!v.ok()) {
            status = v.status();
            break;
          }
          if (v->is_null() || v->type() != DataType::kBool || !v->AsBool()) {
            keep = false;
            break;
          }
        }
        if (!status.ok()) break;
        if (keep) out.rows.push_back(std::move(r));
      }
      scope->set_row(nullptr);
      scope->set_visibility_mask(nullptr);
      FEDFLOW_RETURN_NOT_OK(status);
      chain_->Consumed(in.size());
      // Keep pulling on a fully filtered batch: an empty batch would
      // prematurely signal exhaustion downstream.
      if (!out.empty()) {
        chain_->Emit(out);
        return out;
      }
    }
  }

 private:
  const ChainState* chain_;
  RowSourcePtr input_;
  std::vector<ExprPtr> conjuncts_;
  std::vector<bool> visible_;
};

}  // namespace

Result<std::vector<size_t>> SelectExecutor::LateralOrder(
    const SelectStmt& stmt, const std::vector<const Schema*>& item_schemas) {
  const size_t n = stmt.from.size();
  // deps[k] = set of item indices item k's arguments reference.
  std::vector<std::vector<size_t>> deps(n);
  for (size_t k = 0; k < n; ++k) {
    const TableRef& ref = stmt.from[k];
    if (ref.kind != TableRefKind::kTableFunction) continue;
    std::vector<const ColumnRefExpr*> refs;
    for (const ExprPtr& arg : ref.args) CollectColumnRefs(*arg, &refs);
    for (const ColumnRefExpr* cr : refs) {
      if (!cr->qualifier().empty()) {
        for (size_t j = 0; j < n; ++j) {
          if (j == k) continue;
          const std::string& alias =
              stmt.from[j].alias.empty() ? stmt.from[j].name
                                         : stmt.from[j].alias;
          if (EqualsIgnoreCase(alias, cr->qualifier())) {
            deps[k].push_back(j);
            break;
          }
        }
        // Qualifiers matching no FROM alias are parameter references of an
        // enclosing SQL function; they impose no ordering.
      } else {
        // Unqualified: a dependency only when exactly one other item
        // provides the column.
        size_t hit = SIZE_MAX;
        int count = 0;
        for (size_t j = 0; j < n; ++j) {
          if (j == k || item_schemas[j] == nullptr) continue;
          if (item_schemas[j]->IndexOf(cr->name()).has_value()) {
            hit = j;
            ++count;
          }
        }
        if (count == 1) deps[k].push_back(hit);
      }
    }
  }
  // Stable topological sort: among ready items pick the lowest original
  // index, preserving DB2's documented left-to-right processing where the
  // dependency structure allows it.
  dag::TopoSort sorted = dag::StableTopologicalSort(deps);
  if (!sorted.ok()) {
    return Status::InvalidArgument(
        "cyclic dependency between FROM-clause table functions; "
        "the UDTF approach cannot express cyclic mappings");
  }
  return std::move(sorted.order);
}

bool SelectExecutor::ConjunctApplicable(
    const sql::Expr& expr, RowScope* scope,
    const std::vector<bool>& visible) const {
  // A conjunct is applicable when all its column references resolve under
  // the current visibility mask (parameters always resolve).
  if (!ctx_->predicate_pushdown) return false;
  std::vector<const ColumnRefExpr*> refs;
  CollectColumnRefs(expr, &refs);
  for (const ColumnRefExpr* ref : refs) {
    // The reference must resolve unambiguously against the FULL schema —
    // otherwise an unqualified name could silently bind to the only
    // visible column although the statement is ambiguous overall —
    // and its binding must already have produced its columns.
    scope->set_visibility_mask(nullptr);
    const bool full_ok =
        scope->ResolveColumnType(ref->qualifier(), ref->name()).ok();
    scope->set_visibility_mask(&visible);
    if (!full_ok) return false;
    if (!scope->ResolveColumnType(ref->qualifier(), ref->name()).ok()) {
      return false;
    }
  }
  return true;
}

Result<Table> SelectExecutor::ExecuteFromChain(
    const SelectStmt& stmt, RowScope* scope, Schema* combined_schema,
    std::vector<sql::ExprPtr>* remaining_predicates,
    ColumnBatch* columnar_result, bool* result_is_columnar) {
  Catalog& catalog = db_->catalog();
  const size_t n = stmt.from.size();

  struct Item {
    const Schema* schema = nullptr;
    std::string alias;
    size_t offset = 0;
    const Table* base = nullptr;          // base table items
    TableFunction* fn = nullptr;          // table-function items
    const ExternalTable* ext = nullptr;   // external (remote SQL) items
  };
  std::vector<Item> items(n);
  std::vector<const Schema*> schemas(n, nullptr);
  size_t width = 0;
  for (size_t k = 0; k < n; ++k) {
    const TableRef& ref = stmt.from[k];
    Item& item = items[k];
    item.alias = ref.alias.empty() ? ref.name : ref.alias;
    if (ref.kind == TableRefKind::kBaseTable) {
      if (!catalog.HasTable(ref.name) && catalog.HasExternalTable(ref.name)) {
        // The scan itself (the "SQL subquery" shipped to the remote source)
        // runs when the pipeline is assembled below: streamed when the
        // source supports it, materialized otherwise.
        FEDFLOW_ASSIGN_OR_RETURN(item.ext,
                                 catalog.GetExternalTable(ref.name));
        item.schema = &item.ext->schema;
        schemas[k] = item.schema;
        item.offset = width;
        width += item.schema->num_columns();
        continue;
      }
      FEDFLOW_ASSIGN_OR_RETURN(const Table* t,
                               catalog.GetTableConst(ref.name));
      item.base = t;
      item.schema = &t->schema();
    } else {
      FEDFLOW_ASSIGN_OR_RETURN(TableFunction * fn,
                               catalog.GetTableFunction(ref.name));
      if (fn->params().size() != ref.args.size()) {
        return Status::InvalidArgument(
            ref.name + " expects " + std::to_string(fn->params().size()) +
            " argument(s), got " + std::to_string(ref.args.size()));
      }
      item.fn = fn;
      item.schema = &fn->result_schema();
    }
    schemas[k] = item.schema;
    item.offset = width;
    width += item.schema->num_columns();
  }
  // Reject duplicate correlation names.
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (EqualsIgnoreCase(items[a].alias, items[b].alias)) {
        return Status::InvalidArgument("duplicate correlation name: " +
                                       items[a].alias);
      }
    }
  }

  FEDFLOW_ASSIGN_OR_RETURN(std::vector<size_t> order,
                           LateralOrder(stmt, schemas));

  for (size_t k = 0; k < n; ++k) {
    scope->AddBinding(items[k].alias, items[k].schema, items[k].offset);
  }
  for (size_t k = 0; k < n; ++k) {
    for (const Column& c : items[k].schema->columns()) {
      combined_schema->AddColumn(c.name, c.type);
    }
  }

  std::vector<bool> visible(n, false);
  scope->set_visibility_mask(&visible);
  Evaluator eval(&catalog);

  // Predicate pushdown: WHERE conjuncts are applied as soon as every FROM
  // item they reference has produced its columns, pruning intermediate
  // results (and, for lateral functions, whole invocations).
  std::vector<sql::ExprPtr> pending_conjuncts;
  if (stmt.where != nullptr) {
    if (ctx_->predicate_pushdown) {
      SplitConjuncts(stmt.where, &pending_conjuncts);
    } else {
      pending_conjuncts.push_back(stmt.where);
    }
  }
  // Assemble the pull-based pipeline: seed -> (scan | lateral apply)
  // per FROM item in lateral order, with a filter operator after every item
  // that makes further WHERE conjuncts applicable. Rows flow through in
  // batches of ctx_->batch_size; nothing is materialized until the drain at
  // the bottom (the statement boundary).
  ChainState chain;
  chain.scope = scope;
  chain.eval = &eval;
  chain.ctx = ctx_;
  chain.combined_schema = combined_schema;
  chain.batch_size = ctx_->EffectiveBatchSize();
  chain.stats = ctx_->pipeline_stats;

  RowSourcePtr pipe = std::make_unique<SeedSource>(&chain, width);
  // True while the operator at the top of the pipe emits columnar batches
  // natively (chain operators and vectorized filters do; the seed and
  // row-at-a-time filters do not). Decides the drain mode below.
  bool pipe_columnar = false;
  for (size_t oi = 0; oi < order.size(); ++oi) {
    const size_t idx = order[oi];
    Item& item = items[idx];
    const TableRef& ref = stmt.from[idx];
    if (item.ext != nullptr) {
      if (oi == 0 && item.ext->stream_provider) {
        // First in the lateral order: crossed only with the single seed row,
        // so the remote rows can stream straight through without ever being
        // materialized on the federation side.
        Result<RowSourcePtr> data =
            item.ext->stream_provider(*ctx_, chain.batch_size);
        if (!data.ok()) {
          return data.status().WithContext("fetching external table " +
                                           ref.name);
        }
        if (!((*data)->schema() == item.ext->schema)) {
          return Status::Internal("external table " + ref.name +
                                  " returned a mismatching schema");
        }
        pipe = std::make_unique<StreamScanSource>(&chain, std::move(pipe),
                                                  std::move(*data),
                                                  item.offset);
      } else {
        // Re-scanned per input row: materialize once, scan many times.
        Result<Table> fetched = item.ext->provider(*ctx_);
        if (!fetched.ok()) {
          return fetched.status().WithContext("fetching external table " +
                                              ref.name);
        }
        if (!(fetched->schema() == item.ext->schema)) {
          return Status::Internal("external table " + ref.name +
                                  " returned a mismatching schema");
        }
        pipe = std::make_unique<CrossScanSource>(&chain, std::move(pipe),
                                                 std::move(*fetched),
                                                 item.offset);
      }
    } else if (item.base != nullptr) {
      pipe = std::make_unique<CrossScanSource>(&chain, std::move(pipe),
                                               item.base, item.offset);
    } else {
      // Arguments resolve under the visibility at this point in the chain
      // (item idx itself not yet visible) — snapshot the mask per operator.
      pipe = std::make_unique<LateralApplySource>(&chain, std::move(pipe),
                                                  item.fn, &ref, item.offset,
                                                  visible);
    }
    pipe_columnar = true;
    visible[idx] = true;
    std::vector<sql::ExprPtr> ready;
    for (auto it = pending_conjuncts.begin(); it != pending_conjuncts.end();) {
      if (ConjunctApplicable(**it, scope, visible)) {
        ready.push_back(*it);
        it = pending_conjuncts.erase(it);
      } else {
        ++it;
      }
    }
    if (!ready.empty()) {
      // Vectorize this filter point when EVERY ready conjunct compiles
      // (all-or-nothing: splitting one point into a vectorized and a row
      // filter would change the pipeline's batch cadence). Compilation
      // resolves names under the current visibility mask, so the compiled
      // predicates are position-based from here on.
      bool vectorized = false;
      if (ctx_->columnar) {
        auto preds = std::make_shared<std::vector<VectorPredicate>>();
        preds->reserve(ready.size());
        bool all_compiled = true;
        for (const sql::ExprPtr& conjunct : ready) {
          std::optional<VectorPredicate> p =
              VectorPredicate::Compile(*conjunct, *scope);
          if (!p.has_value()) {
            all_compiled = false;
            break;
          }
          preds->push_back(std::move(*p));
        }
        if (all_compiled) {
          PipelineStats* stats = ctx_->pipeline_stats;
          SelectionFn select = [preds, stats](
                                   const ColumnBatch& in,
                                   std::vector<uint32_t>* sel) -> Status {
            sel->resize(in.num_rows());
            std::iota(sel->begin(), sel->end(), 0);
            for (const VectorPredicate& p : *preds) {
              const size_t rows_in = sel->size();
              FEDFLOW_RETURN_NOT_OK(p.FilterSelection(in, sel));
              if (stats != nullptr) {
                stats->RecordFilter(p.label(), rows_in, sel->size());
              }
              if (sel->empty()) break;
            }
            return Status::OK();
          };
          pipe = MakeColumnarFilterSource(std::move(pipe), std::move(select),
                                          ctx_->pipeline_stats);
          vectorized = true;
        }
      }
      if (!vectorized) {
        pipe = std::make_unique<FilterSource>(&chain, std::move(pipe),
                                              std::move(ready), visible);
      }
      pipe_columnar = vectorized;
    }
  }
  scope->set_visibility_mask(nullptr);

  if (ctx_->columnar && pipe_columnar && columnar_result != nullptr) {
    // Columnar drain: the result stays column-wise all the way to the
    // projection in Execute(). Same pull cadence and stats as the row
    // drain below.
    ColumnBatch acc(*combined_schema);
    while (true) {
      FEDFLOW_ASSIGN_OR_RETURN(ColumnBatch batch, pipe->NextColumns());
      if (batch.empty()) break;
      const size_t pulled = batch.num_rows();
      acc.AppendBatch(std::move(batch));
      chain.Consumed(pulled);
    }
    *remaining_predicates = std::move(pending_conjuncts);
    *columnar_result = std::move(acc);
    *result_is_columnar = true;
    return Table(*combined_schema);
  }

  Table result(*combined_schema);
  while (true) {
    FEDFLOW_ASSIGN_OR_RETURN(RowBatch batch, pipe->Next());
    if (batch.empty()) break;
    const size_t pulled = batch.size();
    for (Row& r : batch.rows) result.AppendRowUnchecked(std::move(r));
    chain.Consumed(pulled);
  }
  *remaining_predicates = std::move(pending_conjuncts);
  return result;
}

Result<Table> SelectExecutor::Execute(const SelectStmt& stmt) {
  Catalog& catalog = db_->catalog();
  Evaluator eval(&catalog);

  RowScope scope;
  scope.set_params(params_);
  Schema combined_schema;
  std::vector<sql::ExprPtr> remaining_predicates;
  ColumnBatch columnar_input;
  bool input_is_columnar = false;
  FEDFLOW_ASSIGN_OR_RETURN(
      Table input,
      ExecuteFromChain(stmt, &scope, &combined_schema, &remaining_predicates,
                       &columnar_input, &input_is_columnar));
  const size_t width = combined_schema.num_columns();

  // WHERE conjuncts not already applied during the chain (e.g. when
  // pushdown is disabled, or for references the chain could not resolve —
  // the latter surface their resolution errors here).
  std::vector<Row> rows;
  if (!remaining_predicates.empty()) {
    if (input_is_columnar) {
      input.mutable_rows() = columnar_input.TakeRows();
      input_is_columnar = false;
    }
    for (Row& r : input.mutable_rows()) {
      scope.set_row(&r);
      bool keep_row = true;
      for (const sql::ExprPtr& pred : remaining_predicates) {
        FEDFLOW_ASSIGN_OR_RETURN(Value keep, eval.Eval(*pred, scope));
        if (keep.is_null() || keep.type() != DataType::kBool ||
            !keep.AsBool()) {
          keep_row = false;
          break;
        }
      }
      if (keep_row) rows.push_back(std::move(r));
    }
  } else if (!input_is_columnar) {
    rows = std::move(input.mutable_rows());
  }
  // (When input_is_columnar the rows stay column-wise until the fast-path
  // decision after the select list is expanded.)
  scope.set_row(nullptr);

  // Decide between plain projection and aggregation.
  std::vector<const FunctionCallExpr*> aggs;
  for (const SelectItem& item : stmt.items) {
    if (!item.is_star && item.expr) CollectAggregates(*item.expr, &aggs);
  }
  if (stmt.having) CollectAggregates(*stmt.having, &aggs);
  for (const auto& ob : stmt.order_by) CollectAggregates(*ob.expr, &aggs);
  const bool aggregate_mode = !aggs.empty() || !stmt.group_by.empty();

  // Expand the select list into output expressions.
  struct OutCol {
    std::string name;
    const Expr* expr = nullptr;       // null for direct column copies
    size_t direct_index = 0;          // combined-row position when expr null
    DataType type = DataType::kNull;
  };
  std::vector<OutCol> out_cols;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.is_star) {
      if (aggregate_mode) {
        return Status::InvalidArgument("SELECT * cannot be combined with "
                                       "aggregation");
      }
      bool matched = false;
      for (const RowScope::Binding& b : scope.bindings()) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(b.alias, item.star_qualifier)) {
          continue;
        }
        matched = true;
        for (size_t c = 0; c < b.schema->num_columns(); ++c) {
          OutCol col;
          col.name = b.schema->column(c).name;
          col.direct_index = b.offset + c;
          col.type = b.schema->column(c).type;
          out_cols.push_back(std::move(col));
        }
      }
      if (!matched) {
        return Status::NotFound("unknown correlation name: " +
                                item.star_qualifier);
      }
    } else {
      OutCol col;
      col.name = !item.alias.empty() ? item.alias
                                     : DeriveName(*item.expr, out_cols.size());
      col.expr = item.expr.get();
      FEDFLOW_ASSIGN_OR_RETURN(col.type, eval.InferType(*item.expr, scope));
      out_cols.push_back(std::move(col));
    }
  }

  Schema out_schema;
  for (const OutCol& c : out_cols) out_schema.AddColumn(c.name, c.type);

  if (input_is_columnar) {
    // Columnar fast path: a plain projection of chain columns — no WHERE
    // residue (checked above), no aggregation, DISTINCT, ORDER BY, or
    // computed select items — never needs row form: project, truncate to
    // the limit, coerce column-wise, materialize. Identical results to the
    // row path below (AppendRow's per-cell coercion, run per column).
    bool direct = !aggregate_mode && !stmt.distinct && stmt.order_by.empty();
    if (direct) {
      for (const OutCol& c : out_cols) {
        if (c.expr != nullptr) {
          direct = false;
          break;
        }
      }
    }
    if (direct) {
      std::vector<size_t> positions;
      positions.reserve(out_cols.size());
      for (const OutCol& c : out_cols) positions.push_back(c.direct_index);
      ColumnBatch proj = ColumnBatch::Project(
          out_schema, std::move(columnar_input), positions);
      size_t limit = proj.num_rows();
      if (stmt.limit.has_value()) {
        limit = std::min<size_t>(
            limit, static_cast<size_t>(std::max<int64_t>(0, *stmt.limit)));
      }
      proj.Truncate(limit);
      // Patch unknown output types from the data (same rule as the row
      // path: first non-null value within the limit, VARCHAR fallback).
      Schema final_schema;
      for (size_t c = 0; c < proj.num_columns(); ++c) {
        DataType t = out_schema.column(c).type;
        if (t == DataType::kNull) {
          const ColumnData& col = proj.column(c);
          DataType patched = DataType::kNull;
          for (size_t r = 0; r < proj.num_rows(); ++r) {
            if (!col.IsNull(r)) {
              patched = col.GetValue(r).type();
              break;
            }
          }
          t = patched == DataType::kNull ? DataType::kVarchar : patched;
        }
        final_schema.AddColumn(out_schema.column(c).name, t);
      }
      for (size_t c = 0; c < proj.num_columns(); ++c) {
        const ColumnData& col = proj.column(c);
        const DataType target = final_schema.column(c).type;
        if (col.is_generic() || col.type() != target) {
          FEDFLOW_ASSIGN_OR_RETURN(ColumnData casted, col.CastTo(target));
          proj.mutable_column(c) = std::move(casted);
        }
      }
      Table out(final_schema);
      out.mutable_rows() = proj.TakeRows();
      return out;
    }
    // General path: fall back to row form for expression evaluation,
    // aggregation, DISTINCT, or sorting.
    rows = columnar_input.TakeRows();
    input_is_columnar = false;
  }

  // Rows paired with their ORDER BY keys.
  struct Keyed {
    Row row;
    std::vector<Value> keys;
  };
  std::vector<Keyed> produced;

  // Resolves an ORDER BY expression: a bare (unqualified) column reference
  // matching an output column sorts by that output column; everything else
  // is evaluated in the current scope.
  auto order_key = [&](const sql::OrderItem& ob, const Row& out_row,
                       const RowScope& s) -> Result<Value> {
    if (ob.expr->kind() == ExprKind::kColumnRef) {
      const auto& cr = static_cast<const ColumnRefExpr&>(*ob.expr);
      if (cr.qualifier().empty()) {
        for (size_t c = 0; c < out_cols.size(); ++c) {
          if (EqualsIgnoreCase(out_cols[c].name, cr.name())) {
            return out_row[c];
          }
        }
      }
    }
    return eval.Eval(*ob.expr, s);
  };

  if (!aggregate_mode) {
    for (Row& r : rows) {
      scope.set_row(&r);
      Keyed k;
      k.row.reserve(out_cols.size());
      for (const OutCol& c : out_cols) {
        if (c.expr == nullptr) {
          k.row.push_back(r[c.direct_index]);
        } else {
          FEDFLOW_ASSIGN_OR_RETURN(Value v, eval.Eval(*c.expr, scope));
          k.row.push_back(std::move(v));
        }
      }
      for (const auto& ob : stmt.order_by) {
        FEDFLOW_ASSIGN_OR_RETURN(Value v, order_key(ob, k.row, scope));
        k.keys.push_back(std::move(v));
      }
      produced.push_back(std::move(k));
    }
    scope.set_row(nullptr);
  } else {
    // ---- aggregation ----
    // Group rows by the GROUP BY key values.
    std::map<std::string, size_t> group_index;
    std::vector<std::vector<size_t>> groups;  // row indices per group
    std::vector<Row> group_keys;              // evaluated GROUP BY values
    if (stmt.group_by.empty()) {
      groups.emplace_back();
      group_keys.emplace_back();
      for (size_t r = 0; r < rows.size(); ++r) groups[0].push_back(r);
    } else {
      for (size_t r = 0; r < rows.size(); ++r) {
        scope.set_row(&rows[r]);
        Row keyvals;
        std::string key;
        for (const ExprPtr& g : stmt.group_by) {
          FEDFLOW_ASSIGN_OR_RETURN(Value v, eval.Eval(*g, scope));
          key += v.ToString();
          key += '\x1f';
          keyvals.push_back(std::move(v));
        }
        auto [it, inserted] = group_index.emplace(key, groups.size());
        if (inserted) {
          groups.emplace_back();
          group_keys.push_back(std::move(keyvals));
        }
        groups[it->second].push_back(r);
      }
      scope.set_row(nullptr);
    }

    const Row null_row(width, Value::Null());
    for (size_t g = 0; g < groups.size(); ++g) {
      const std::vector<size_t>& members = groups[g];
      // Compute each aggregate over the group.
      std::map<const FunctionCallExpr*, Value> agg_values;
      for (const FunctionCallExpr* agg : aggs) {
        if (agg_values.count(agg) > 0) continue;
        const std::string name = ToUpper(agg->name());
        if (name == "COUNT" && agg->star_arg()) {
          agg_values[agg] = Value::BigInt(static_cast<int64_t>(members.size()));
          continue;
        }
        if (agg->args().size() != 1) {
          return Status::InvalidArgument(name + " expects one argument");
        }
        int64_t count = 0;
        double dsum = 0;
        int64_t isum = 0;
        bool all_int = true;
        Value best;  // MIN/MAX accumulator
        for (size_t r : members) {
          scope.set_row(&rows[r]);
          FEDFLOW_ASSIGN_OR_RETURN(Value v, eval.Eval(*agg->args()[0], scope));
          if (v.is_null()) continue;
          ++count;
          if (name == "COUNT") continue;  // only counts non-null values
          if (name == "MIN" || name == "MAX") {
            if (best.is_null()) {
              best = v;
            } else {
              FEDFLOW_ASSIGN_OR_RETURN(int cmp, v.Compare(best));
              if ((name == "MIN" && cmp < 0) || (name == "MAX" && cmp > 0)) {
                best = v;
              }
            }
          } else {
            FEDFLOW_ASSIGN_OR_RETURN(double d, v.ToDouble());
            dsum += d;
            if (v.type() == DataType::kDouble) {
              all_int = false;
            } else {
              FEDFLOW_ASSIGN_OR_RETURN(int64_t i, v.ToInt64());
              isum += i;
            }
          }
        }
        scope.set_row(nullptr);
        if (name == "COUNT") {
          agg_values[agg] = Value::BigInt(count);
        } else if (count == 0) {
          agg_values[agg] = Value::Null();
        } else if (name == "SUM") {
          agg_values[agg] =
              all_int ? Value::BigInt(isum) : Value::Double(dsum);
        } else if (name == "AVG") {
          agg_values[agg] = Value::Double(dsum / static_cast<double>(count));
        } else {
          agg_values[agg] = best;
        }
      }

      Evaluator group_eval(&catalog);
      group_eval.set_agg_resolver(
          [&agg_values](const FunctionCallExpr& call) -> Result<Value> {
            auto it = agg_values.find(&call);
            if (it == agg_values.end()) {
              return Status::Internal("unresolved aggregate call");
            }
            return it->second;
          });

      const Row& rep = members.empty() ? null_row : rows[members.front()];
      scope.set_row(&rep);

      if (stmt.having != nullptr) {
        FEDFLOW_ASSIGN_OR_RETURN(Value keep,
                                 group_eval.Eval(*stmt.having, scope));
        if (keep.is_null() || keep.type() != DataType::kBool ||
            !keep.AsBool()) {
          scope.set_row(nullptr);
          continue;
        }
      }

      Keyed k;
      k.row.reserve(out_cols.size());
      for (const OutCol& c : out_cols) {
        FEDFLOW_ASSIGN_OR_RETURN(Value v, group_eval.Eval(*c.expr, scope));
        k.row.push_back(std::move(v));
      }
      for (const auto& ob : stmt.order_by) {
        Result<Value> v = [&]() -> Result<Value> {
          if (ob.expr->kind() == ExprKind::kColumnRef) {
            const auto& cr = static_cast<const ColumnRefExpr&>(*ob.expr);
            if (cr.qualifier().empty()) {
              for (size_t c = 0; c < out_cols.size(); ++c) {
                if (EqualsIgnoreCase(out_cols[c].name, cr.name())) {
                  return k.row[c];
                }
              }
            }
          }
          return group_eval.Eval(*ob.expr, scope);
        }();
        FEDFLOW_RETURN_NOT_OK(v.status());
        k.keys.push_back(std::move(*v));
      }
      scope.set_row(nullptr);
      produced.push_back(std::move(k));
    }
  }

  // DISTINCT: keep the first occurrence of each row value combination.
  if (stmt.distinct) {
    std::set<std::string> seen;
    std::vector<Keyed> unique;
    unique.reserve(produced.size());
    for (Keyed& k : produced) {
      std::string key;
      for (const Value& v : k.row) {
        key += v.ToString();
        key += '\x1f';
      }
      if (seen.insert(std::move(key)).second) {
        unique.push_back(std::move(k));
      }
    }
    produced = std::move(unique);
  }

  // ORDER BY.
  if (!stmt.order_by.empty()) {
    SortError err;
    std::stable_sort(
        produced.begin(), produced.end(),
        [&](const Keyed& a, const Keyed& b) {
          if (!err.status.ok()) return false;
          for (size_t i = 0; i < stmt.order_by.size(); ++i) {
            // NULLs first in ascending order (Compare puts NULL lowest).
            Result<int> cmp = a.keys[i].Compare(b.keys[i]);
            if (!cmp.ok()) {
              // NULL vs NULL compares equal; real errors abort the sort.
              err.status = cmp.status();
              return false;
            }
            if (*cmp != 0) {
              return stmt.order_by[i].ascending ? *cmp < 0 : *cmp > 0;
            }
          }
          return false;
        });
    FEDFLOW_RETURN_NOT_OK(err.status);
  }

  // LIMIT.
  size_t limit = produced.size();
  if (stmt.limit.has_value()) {
    limit = std::min<size_t>(limit, static_cast<size_t>(
                                        std::max<int64_t>(0, *stmt.limit)));
  }

  // Materialize, patching unknown column types from the data.
  Table out(out_schema);
  std::vector<DataType> patched(out_cols.size(), DataType::kNull);
  for (size_t r = 0; r < limit; ++r) {
    for (size_t c = 0; c < out_cols.size(); ++c) {
      const Value& v = produced[r].row[c];
      if (patched[c] == DataType::kNull && !v.is_null()) {
        patched[c] = v.type();
      }
    }
  }
  Schema final_schema;
  for (size_t c = 0; c < out_cols.size(); ++c) {
    DataType t = out_schema.column(c).type;
    if (t == DataType::kNull) {
      t = patched[c] == DataType::kNull ? DataType::kVarchar : patched[c];
    }
    final_schema.AddColumn(out_schema.column(c).name, t);
  }
  out = Table(final_schema);
  for (size_t r = 0; r < limit; ++r) {
    FEDFLOW_RETURN_NOT_OK(out.AppendRow(std::move(produced[r].row)));
  }
  return out;
}

}  // namespace fedflow::fdbs
