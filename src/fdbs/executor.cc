#include "fdbs/executor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/strings.h"
#include "fdbs/catalog.h"
#include "fdbs/database.h"

namespace fedflow::fdbs {

using sql::BinaryExpr;
using sql::CaseExpr;
using sql::ColumnRefExpr;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::FunctionCallExpr;
using sql::SelectItem;
using sql::SelectStmt;
using sql::TableRef;
using sql::TableRefKind;
using sql::UnaryExpr;

namespace {

/// Collects all column references in an expression tree.
void CollectColumnRefs(const Expr& expr,
                       std::vector<const ColumnRefExpr*>* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef:
      out->push_back(static_cast<const ColumnRefExpr*>(&expr));
      return;
    case ExprKind::kFunctionCall:
      for (const auto& arg :
           static_cast<const FunctionCallExpr&>(expr).args()) {
        CollectColumnRefs(*arg, out);
      }
      return;
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      CollectColumnRefs(*bin.left(), out);
      CollectColumnRefs(*bin.right(), out);
      return;
    }
    case ExprKind::kUnary:
      CollectColumnRefs(*static_cast<const UnaryExpr&>(expr).operand(), out);
      return;
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        CollectColumnRefs(*b.condition, out);
        CollectColumnRefs(*b.value, out);
      }
      if (case_expr.else_value() != nullptr) {
        CollectColumnRefs(*case_expr.else_value(), out);
      }
      return;
    }
  }
}

/// Collects aggregate calls (COUNT/SUM/...) in an expression tree.
void CollectAggregates(const Expr& expr,
                       std::vector<const FunctionCallExpr*>* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return;
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (Evaluator::IsAggregateName(call.name())) {
        out->push_back(&call);
        return;  // aggregates cannot nest
      }
      for (const auto& arg : call.args()) CollectAggregates(*arg, out);
      return;
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      CollectAggregates(*bin.left(), out);
      CollectAggregates(*bin.right(), out);
      return;
    }
    case ExprKind::kUnary:
      CollectAggregates(*static_cast<const UnaryExpr&>(expr).operand(), out);
      return;
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        CollectAggregates(*b.condition, out);
        CollectAggregates(*b.value, out);
      }
      if (case_expr.else_value() != nullptr) {
        CollectAggregates(*case_expr.else_value(), out);
      }
      return;
    }
  }
}

/// Output column name for a select expression without an explicit alias.
std::string DeriveName(const Expr& expr, size_t index) {
  if (expr.kind() == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(expr).name();
  }
  if (expr.kind() == ExprKind::kFunctionCall) {
    return static_cast<const FunctionCallExpr&>(expr).name();
  }
  return "col" + std::to_string(index + 1);
}

/// Comparator state for sorting with error capture.
struct SortError {
  Status status = Status::OK();
};

/// Splits a predicate into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(*expr);
    if (bin.op() == sql::BinaryOp::kAnd) {
      SplitConjuncts(bin.left(), out);
      SplitConjuncts(bin.right(), out);
      return;
    }
  }
  out->push_back(expr);
}

}  // namespace

Result<std::vector<size_t>> SelectExecutor::LateralOrder(
    const SelectStmt& stmt, const std::vector<const Schema*>& item_schemas) {
  const size_t n = stmt.from.size();
  // deps[k] = set of item indices item k's arguments reference.
  std::vector<std::vector<size_t>> deps(n);
  for (size_t k = 0; k < n; ++k) {
    const TableRef& ref = stmt.from[k];
    if (ref.kind != TableRefKind::kTableFunction) continue;
    std::vector<const ColumnRefExpr*> refs;
    for (const ExprPtr& arg : ref.args) CollectColumnRefs(*arg, &refs);
    for (const ColumnRefExpr* cr : refs) {
      if (!cr->qualifier().empty()) {
        for (size_t j = 0; j < n; ++j) {
          if (j == k) continue;
          const std::string& alias =
              stmt.from[j].alias.empty() ? stmt.from[j].name
                                         : stmt.from[j].alias;
          if (EqualsIgnoreCase(alias, cr->qualifier())) {
            deps[k].push_back(j);
            break;
          }
        }
        // Qualifiers matching no FROM alias are parameter references of an
        // enclosing SQL function; they impose no ordering.
      } else {
        // Unqualified: a dependency only when exactly one other item
        // provides the column.
        size_t hit = SIZE_MAX;
        int count = 0;
        for (size_t j = 0; j < n; ++j) {
          if (j == k || item_schemas[j] == nullptr) continue;
          if (item_schemas[j]->IndexOf(cr->name()).has_value()) {
            hit = j;
            ++count;
          }
        }
        if (count == 1) deps[k].push_back(hit);
      }
    }
  }
  // Stable Kahn's algorithm: among ready items pick the lowest original
  // index, preserving DB2's documented left-to-right processing where the
  // dependency structure allows it.
  std::vector<int> pending(n, 0);
  for (size_t k = 0; k < n; ++k) {
    std::sort(deps[k].begin(), deps[k].end());
    deps[k].erase(std::unique(deps[k].begin(), deps[k].end()), deps[k].end());
    pending[k] = static_cast<int>(deps[k].size());
  }
  std::vector<size_t> order;
  std::vector<bool> done(n, false);
  order.reserve(n);
  for (size_t round = 0; round < n; ++round) {
    size_t chosen = SIZE_MAX;
    for (size_t k = 0; k < n; ++k) {
      if (!done[k] && pending[k] == 0) {
        chosen = k;
        break;
      }
    }
    if (chosen == SIZE_MAX) {
      return Status::InvalidArgument(
          "cyclic dependency between FROM-clause table functions; "
          "the UDTF approach cannot express cyclic mappings");
    }
    done[chosen] = true;
    order.push_back(chosen);
    for (size_t k = 0; k < n; ++k) {
      if (done[k]) continue;
      for (size_t d : deps[k]) {
        if (d == chosen) --pending[k];
      }
    }
  }
  return order;
}

Result<Table> SelectExecutor::ExecuteFromChain(
    const SelectStmt& stmt, RowScope* scope, Schema* combined_schema,
    std::vector<sql::ExprPtr>* remaining_predicates) {
  Catalog& catalog = db_->catalog();
  const size_t n = stmt.from.size();

  struct Item {
    const Schema* schema = nullptr;
    std::string alias;
    size_t offset = 0;
    const Table* base = nullptr;     // base table items
    TableFunction* fn = nullptr;     // table-function items
  };
  std::vector<Item> items(n);
  std::vector<const Schema*> schemas(n, nullptr);
  // Materialized results of external-table scans ("SQL subqueries" shipped
  // to remote sources); kept alive for the duration of the chain.
  std::vector<std::unique_ptr<Table>> external_data;
  size_t width = 0;
  for (size_t k = 0; k < n; ++k) {
    const TableRef& ref = stmt.from[k];
    Item& item = items[k];
    item.alias = ref.alias.empty() ? ref.name : ref.alias;
    if (ref.kind == TableRefKind::kBaseTable) {
      if (!catalog.HasTable(ref.name) && catalog.HasExternalTable(ref.name)) {
        FEDFLOW_ASSIGN_OR_RETURN(const ExternalTable* ext,
                                 catalog.GetExternalTable(ref.name));
        Result<Table> fetched = ext->provider(*ctx_);
        if (!fetched.ok()) {
          return fetched.status().WithContext("fetching external table " +
                                              ref.name);
        }
        if (!(fetched->schema() == ext->schema)) {
          return Status::Internal("external table " + ref.name +
                                  " returned a mismatching schema");
        }
        external_data.push_back(std::make_unique<Table>(std::move(*fetched)));
        item.base = external_data.back().get();
        item.schema = &ext->schema;
        schemas[k] = item.schema;
        item.offset = width;
        width += item.schema->num_columns();
        continue;
      }
      FEDFLOW_ASSIGN_OR_RETURN(const Table* t,
                               catalog.GetTableConst(ref.name));
      item.base = t;
      item.schema = &t->schema();
    } else {
      FEDFLOW_ASSIGN_OR_RETURN(TableFunction * fn,
                               catalog.GetTableFunction(ref.name));
      if (fn->params().size() != ref.args.size()) {
        return Status::InvalidArgument(
            ref.name + " expects " + std::to_string(fn->params().size()) +
            " argument(s), got " + std::to_string(ref.args.size()));
      }
      item.fn = fn;
      item.schema = &fn->result_schema();
    }
    schemas[k] = item.schema;
    item.offset = width;
    width += item.schema->num_columns();
  }
  // Reject duplicate correlation names.
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (EqualsIgnoreCase(items[a].alias, items[b].alias)) {
        return Status::InvalidArgument("duplicate correlation name: " +
                                       items[a].alias);
      }
    }
  }

  FEDFLOW_ASSIGN_OR_RETURN(std::vector<size_t> order,
                           LateralOrder(stmt, schemas));

  for (size_t k = 0; k < n; ++k) {
    scope->AddBinding(items[k].alias, items[k].schema, items[k].offset);
  }
  for (size_t k = 0; k < n; ++k) {
    for (const Column& c : items[k].schema->columns()) {
      combined_schema->AddColumn(c.name, c.type);
    }
  }

  std::vector<bool> visible(n, false);
  scope->set_visibility_mask(&visible);
  Evaluator eval(&catalog);

  // Predicate pushdown: WHERE conjuncts are applied as soon as every FROM
  // item they reference has produced its columns, pruning intermediate
  // results (and, for lateral functions, whole invocations).
  std::vector<sql::ExprPtr> pending_conjuncts;
  if (stmt.where != nullptr) {
    if (ctx_->predicate_pushdown) {
      SplitConjuncts(stmt.where, &pending_conjuncts);
    } else {
      pending_conjuncts.push_back(stmt.where);
    }
  }
  // A conjunct is applicable when all its column references resolve under
  // the current visibility mask (parameters always resolve).
  auto applicable = [&](const sql::Expr& expr) {
    if (!ctx_->predicate_pushdown) return false;
    std::vector<const ColumnRefExpr*> refs;
    CollectColumnRefs(expr, &refs);
    for (const ColumnRefExpr* ref : refs) {
      // The reference must resolve unambiguously against the FULL schema —
      // otherwise an unqualified name could silently bind to the only
      // visible column although the statement is ambiguous overall —
      // and its binding must already have produced its columns.
      scope->set_visibility_mask(nullptr);
      const bool full_ok =
          scope->ResolveColumnType(ref->qualifier(), ref->name()).ok();
      scope->set_visibility_mask(&visible);
      if (!full_ok) return false;
      if (!scope->ResolveColumnType(ref->qualifier(), ref->name()).ok()) {
        return false;
      }
    }
    return true;
  };
  std::vector<Row> rows;
  rows.emplace_back(width, Value::Null());
  auto apply_ready_conjuncts = [&]() -> Status {
    for (auto it = pending_conjuncts.begin();
         it != pending_conjuncts.end();) {
      if (!applicable(**it)) {
        ++it;
        continue;
      }
      std::vector<Row> kept;
      kept.reserve(rows.size());
      for (Row& r : rows) {
        scope->set_row(&r);
        FEDFLOW_ASSIGN_OR_RETURN(Value keep, eval.Eval(**it, *scope));
        if (!keep.is_null() && keep.type() == DataType::kBool &&
            keep.AsBool()) {
          kept.push_back(std::move(r));
        }
      }
      scope->set_row(nullptr);
      rows = std::move(kept);
      it = pending_conjuncts.erase(it);
    }
    return Status::OK();
  };

  for (size_t idx : order) {
    Item& item = items[idx];
    std::vector<Row> next;
    if (item.base != nullptr) {
      next.reserve(rows.size() * std::max<size_t>(1, item.base->num_rows()));
      for (const Row& partial : rows) {
        for (const Row& r : item.base->rows()) {
          Row combined = partial;
          std::copy(r.begin(), r.end(), combined.begin() + item.offset);
          next.push_back(std::move(combined));
        }
      }
    } else {
      const TableRef& ref = stmt.from[idx];
      for (Row& partial : rows) {
        scope->set_row(&partial);
        std::vector<Value> args;
        args.reserve(ref.args.size());
        for (size_t a = 0; a < ref.args.size(); ++a) {
          FEDFLOW_ASSIGN_OR_RETURN(Value v, eval.Eval(*ref.args[a], *scope));
          FEDFLOW_ASSIGN_OR_RETURN(
              v, v.CastTo(item.fn->params()[a].type));
          args.push_back(std::move(v));
        }
        Result<Table> result = item.fn->Invoke(args, *ctx_);
        if (!result.ok()) {
          return result.status().WithContext("in table function " + ref.name);
        }
        if (result->schema().num_columns() != item.schema->num_columns()) {
          return Status::Internal("table function " + ref.name +
                                  " returned wrong arity");
        }
        for (const Row& r : result->rows()) {
          Row combined = partial;
          std::copy(r.begin(), r.end(), combined.begin() + item.offset);
          next.push_back(std::move(combined));
        }
      }
      scope->set_row(nullptr);
    }
    rows = std::move(next);
    visible[idx] = true;
    FEDFLOW_RETURN_NOT_OK(apply_ready_conjuncts());
  }

  scope->set_visibility_mask(nullptr);
  *remaining_predicates = std::move(pending_conjuncts);
  return Table(*combined_schema, std::move(rows));
}

Result<Table> SelectExecutor::Execute(const SelectStmt& stmt) {
  Catalog& catalog = db_->catalog();
  Evaluator eval(&catalog);

  RowScope scope;
  scope.set_params(params_);
  Schema combined_schema;
  std::vector<sql::ExprPtr> remaining_predicates;
  FEDFLOW_ASSIGN_OR_RETURN(
      Table input,
      ExecuteFromChain(stmt, &scope, &combined_schema,
                       &remaining_predicates));
  const size_t width = combined_schema.num_columns();

  // WHERE conjuncts not already applied during the chain (e.g. when
  // pushdown is disabled, or for references the chain could not resolve —
  // the latter surface their resolution errors here).
  std::vector<Row> rows;
  if (!remaining_predicates.empty()) {
    for (Row& r : input.mutable_rows()) {
      scope.set_row(&r);
      bool keep_row = true;
      for (const sql::ExprPtr& pred : remaining_predicates) {
        FEDFLOW_ASSIGN_OR_RETURN(Value keep, eval.Eval(*pred, scope));
        if (keep.is_null() || keep.type() != DataType::kBool ||
            !keep.AsBool()) {
          keep_row = false;
          break;
        }
      }
      if (keep_row) rows.push_back(std::move(r));
    }
  } else {
    rows = std::move(input.mutable_rows());
  }
  scope.set_row(nullptr);

  // Decide between plain projection and aggregation.
  std::vector<const FunctionCallExpr*> aggs;
  for (const SelectItem& item : stmt.items) {
    if (!item.is_star && item.expr) CollectAggregates(*item.expr, &aggs);
  }
  if (stmt.having) CollectAggregates(*stmt.having, &aggs);
  for (const auto& ob : stmt.order_by) CollectAggregates(*ob.expr, &aggs);
  const bool aggregate_mode = !aggs.empty() || !stmt.group_by.empty();

  // Expand the select list into output expressions.
  struct OutCol {
    std::string name;
    const Expr* expr = nullptr;       // null for direct column copies
    size_t direct_index = 0;          // combined-row position when expr null
    DataType type = DataType::kNull;
  };
  std::vector<OutCol> out_cols;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.is_star) {
      if (aggregate_mode) {
        return Status::InvalidArgument("SELECT * cannot be combined with "
                                       "aggregation");
      }
      bool matched = false;
      for (const RowScope::Binding& b : scope.bindings()) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(b.alias, item.star_qualifier)) {
          continue;
        }
        matched = true;
        for (size_t c = 0; c < b.schema->num_columns(); ++c) {
          OutCol col;
          col.name = b.schema->column(c).name;
          col.direct_index = b.offset + c;
          col.type = b.schema->column(c).type;
          out_cols.push_back(std::move(col));
        }
      }
      if (!matched) {
        return Status::NotFound("unknown correlation name: " +
                                item.star_qualifier);
      }
    } else {
      OutCol col;
      col.name = !item.alias.empty() ? item.alias
                                     : DeriveName(*item.expr, out_cols.size());
      col.expr = item.expr.get();
      FEDFLOW_ASSIGN_OR_RETURN(col.type, eval.InferType(*item.expr, scope));
      out_cols.push_back(std::move(col));
    }
  }

  Schema out_schema;
  for (const OutCol& c : out_cols) out_schema.AddColumn(c.name, c.type);

  // Rows paired with their ORDER BY keys.
  struct Keyed {
    Row row;
    std::vector<Value> keys;
  };
  std::vector<Keyed> produced;

  // Resolves an ORDER BY expression: a bare (unqualified) column reference
  // matching an output column sorts by that output column; everything else
  // is evaluated in the current scope.
  auto order_key = [&](const sql::OrderItem& ob, const Row& out_row,
                       const RowScope& s) -> Result<Value> {
    if (ob.expr->kind() == ExprKind::kColumnRef) {
      const auto& cr = static_cast<const ColumnRefExpr&>(*ob.expr);
      if (cr.qualifier().empty()) {
        for (size_t c = 0; c < out_cols.size(); ++c) {
          if (EqualsIgnoreCase(out_cols[c].name, cr.name())) {
            return out_row[c];
          }
        }
      }
    }
    return eval.Eval(*ob.expr, s);
  };

  if (!aggregate_mode) {
    for (Row& r : rows) {
      scope.set_row(&r);
      Keyed k;
      k.row.reserve(out_cols.size());
      for (const OutCol& c : out_cols) {
        if (c.expr == nullptr) {
          k.row.push_back(r[c.direct_index]);
        } else {
          FEDFLOW_ASSIGN_OR_RETURN(Value v, eval.Eval(*c.expr, scope));
          k.row.push_back(std::move(v));
        }
      }
      for (const auto& ob : stmt.order_by) {
        FEDFLOW_ASSIGN_OR_RETURN(Value v, order_key(ob, k.row, scope));
        k.keys.push_back(std::move(v));
      }
      produced.push_back(std::move(k));
    }
    scope.set_row(nullptr);
  } else {
    // ---- aggregation ----
    // Group rows by the GROUP BY key values.
    std::map<std::string, size_t> group_index;
    std::vector<std::vector<size_t>> groups;  // row indices per group
    std::vector<Row> group_keys;              // evaluated GROUP BY values
    if (stmt.group_by.empty()) {
      groups.emplace_back();
      group_keys.emplace_back();
      for (size_t r = 0; r < rows.size(); ++r) groups[0].push_back(r);
    } else {
      for (size_t r = 0; r < rows.size(); ++r) {
        scope.set_row(&rows[r]);
        Row keyvals;
        std::string key;
        for (const ExprPtr& g : stmt.group_by) {
          FEDFLOW_ASSIGN_OR_RETURN(Value v, eval.Eval(*g, scope));
          key += v.ToString();
          key += '\x1f';
          keyvals.push_back(std::move(v));
        }
        auto [it, inserted] = group_index.emplace(key, groups.size());
        if (inserted) {
          groups.emplace_back();
          group_keys.push_back(std::move(keyvals));
        }
        groups[it->second].push_back(r);
      }
      scope.set_row(nullptr);
    }

    const Row null_row(width, Value::Null());
    for (size_t g = 0; g < groups.size(); ++g) {
      const std::vector<size_t>& members = groups[g];
      // Compute each aggregate over the group.
      std::map<const FunctionCallExpr*, Value> agg_values;
      for (const FunctionCallExpr* agg : aggs) {
        if (agg_values.count(agg) > 0) continue;
        const std::string name = ToUpper(agg->name());
        if (name == "COUNT" && agg->star_arg()) {
          agg_values[agg] = Value::BigInt(static_cast<int64_t>(members.size()));
          continue;
        }
        if (agg->args().size() != 1) {
          return Status::InvalidArgument(name + " expects one argument");
        }
        int64_t count = 0;
        double dsum = 0;
        int64_t isum = 0;
        bool all_int = true;
        Value best;  // MIN/MAX accumulator
        for (size_t r : members) {
          scope.set_row(&rows[r]);
          FEDFLOW_ASSIGN_OR_RETURN(Value v, eval.Eval(*agg->args()[0], scope));
          if (v.is_null()) continue;
          ++count;
          if (name == "COUNT") continue;  // only counts non-null values
          if (name == "MIN" || name == "MAX") {
            if (best.is_null()) {
              best = v;
            } else {
              FEDFLOW_ASSIGN_OR_RETURN(int cmp, v.Compare(best));
              if ((name == "MIN" && cmp < 0) || (name == "MAX" && cmp > 0)) {
                best = v;
              }
            }
          } else {
            FEDFLOW_ASSIGN_OR_RETURN(double d, v.ToDouble());
            dsum += d;
            if (v.type() == DataType::kDouble) {
              all_int = false;
            } else {
              FEDFLOW_ASSIGN_OR_RETURN(int64_t i, v.ToInt64());
              isum += i;
            }
          }
        }
        scope.set_row(nullptr);
        if (name == "COUNT") {
          agg_values[agg] = Value::BigInt(count);
        } else if (count == 0) {
          agg_values[agg] = Value::Null();
        } else if (name == "SUM") {
          agg_values[agg] =
              all_int ? Value::BigInt(isum) : Value::Double(dsum);
        } else if (name == "AVG") {
          agg_values[agg] = Value::Double(dsum / static_cast<double>(count));
        } else {
          agg_values[agg] = best;
        }
      }

      Evaluator group_eval(&catalog);
      group_eval.set_agg_resolver(
          [&agg_values](const FunctionCallExpr& call) -> Result<Value> {
            auto it = agg_values.find(&call);
            if (it == agg_values.end()) {
              return Status::Internal("unresolved aggregate call");
            }
            return it->second;
          });

      const Row& rep = members.empty() ? null_row : rows[members.front()];
      scope.set_row(&rep);

      if (stmt.having != nullptr) {
        FEDFLOW_ASSIGN_OR_RETURN(Value keep,
                                 group_eval.Eval(*stmt.having, scope));
        if (keep.is_null() || keep.type() != DataType::kBool ||
            !keep.AsBool()) {
          scope.set_row(nullptr);
          continue;
        }
      }

      Keyed k;
      k.row.reserve(out_cols.size());
      for (const OutCol& c : out_cols) {
        FEDFLOW_ASSIGN_OR_RETURN(Value v, group_eval.Eval(*c.expr, scope));
        k.row.push_back(std::move(v));
      }
      for (const auto& ob : stmt.order_by) {
        Result<Value> v = [&]() -> Result<Value> {
          if (ob.expr->kind() == ExprKind::kColumnRef) {
            const auto& cr = static_cast<const ColumnRefExpr&>(*ob.expr);
            if (cr.qualifier().empty()) {
              for (size_t c = 0; c < out_cols.size(); ++c) {
                if (EqualsIgnoreCase(out_cols[c].name, cr.name())) {
                  return k.row[c];
                }
              }
            }
          }
          return group_eval.Eval(*ob.expr, scope);
        }();
        FEDFLOW_RETURN_NOT_OK(v.status());
        k.keys.push_back(std::move(*v));
      }
      scope.set_row(nullptr);
      produced.push_back(std::move(k));
    }
  }

  // DISTINCT: keep the first occurrence of each row value combination.
  if (stmt.distinct) {
    std::set<std::string> seen;
    std::vector<Keyed> unique;
    unique.reserve(produced.size());
    for (Keyed& k : produced) {
      std::string key;
      for (const Value& v : k.row) {
        key += v.ToString();
        key += '\x1f';
      }
      if (seen.insert(std::move(key)).second) {
        unique.push_back(std::move(k));
      }
    }
    produced = std::move(unique);
  }

  // ORDER BY.
  if (!stmt.order_by.empty()) {
    SortError err;
    std::stable_sort(
        produced.begin(), produced.end(),
        [&](const Keyed& a, const Keyed& b) {
          if (!err.status.ok()) return false;
          for (size_t i = 0; i < stmt.order_by.size(); ++i) {
            // NULLs first in ascending order (Compare puts NULL lowest).
            Result<int> cmp = a.keys[i].Compare(b.keys[i]);
            if (!cmp.ok()) {
              // NULL vs NULL compares equal; real errors abort the sort.
              err.status = cmp.status();
              return false;
            }
            if (*cmp != 0) {
              return stmt.order_by[i].ascending ? *cmp < 0 : *cmp > 0;
            }
          }
          return false;
        });
    FEDFLOW_RETURN_NOT_OK(err.status);
  }

  // LIMIT.
  size_t limit = produced.size();
  if (stmt.limit.has_value()) {
    limit = std::min<size_t>(limit, static_cast<size_t>(
                                        std::max<int64_t>(0, *stmt.limit)));
  }

  // Materialize, patching unknown column types from the data.
  Table out(out_schema);
  std::vector<DataType> patched(out_cols.size(), DataType::kNull);
  for (size_t r = 0; r < limit; ++r) {
    for (size_t c = 0; c < out_cols.size(); ++c) {
      const Value& v = produced[r].row[c];
      if (patched[c] == DataType::kNull && !v.is_null()) {
        patched[c] = v.type();
      }
    }
  }
  Schema final_schema;
  for (size_t c = 0; c < out_cols.size(); ++c) {
    DataType t = out_schema.column(c).type;
    if (t == DataType::kNull) {
      t = patched[c] == DataType::kNull ? DataType::kVarchar : patched[c];
    }
    final_schema.AddColumn(out_schema.column(c).name, t);
  }
  out = Table(final_schema);
  for (size_t r = 0; r < limit; ++r) {
    FEDFLOW_RETURN_NOT_OK(out.AppendRow(std::move(produced[r].row)));
  }
  return out;
}

}  // namespace fedflow::fdbs
