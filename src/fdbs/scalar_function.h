// Scalar function registry types (casts like BIGINT(x), string helpers, ...).
#ifndef FEDFLOW_FDBS_SCALAR_FUNCTION_H_
#define FEDFLOW_FDBS_SCALAR_FUNCTION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace fedflow::fdbs {

/// Evaluates a scalar function over already-evaluated argument values.
using ScalarFn =
    std::function<Result<Value>(const std::vector<Value>& args)>;

/// Computes the static result type given static argument types (used to type
/// query output columns even for empty inputs).
using ReturnTypeFn =
    std::function<DataType(const std::vector<DataType>& arg_types)>;

/// A registered scalar function.
struct ScalarFunctionDef {
  std::string name;
  /// Expected argument count; -1 means variadic.
  int arity = -1;
  ScalarFn fn;
  ReturnTypeFn return_type;
};

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_SCALAR_FUNCTION_H_
