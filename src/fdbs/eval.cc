#include "fdbs/eval.h"

#include "common/strings.h"
#include "fdbs/catalog.h"

namespace fedflow::fdbs {

using sql::BinaryExpr;
using sql::BinaryOp;
using sql::CaseExpr;
using sql::ColumnRefExpr;
using sql::Expr;
using sql::ExprKind;
using sql::FunctionCallExpr;
using sql::LiteralExpr;
using sql::UnaryExpr;
using sql::UnaryOp;

std::optional<Value> ParamScope::Lookup(const std::string& qualifier,
                                        const std::string& name) const {
  if (!qualifier.empty() && !EqualsIgnoreCase(qualifier, function_name)) {
    return std::nullopt;
  }
  for (const auto& [pname, value] : params) {
    if (EqualsIgnoreCase(pname, name)) return value;
  }
  return std::nullopt;
}

Result<std::pair<int, int>> RowScope::Find(const std::string& qualifier,
                                           const std::string& name) const {
  auto visible = [this](size_t b) {
    return mask_ == nullptr || (b < mask_->size() && (*mask_)[b]);
  };
  if (!qualifier.empty()) {
    // Qualified: the qualifier may be a FROM alias or the enclosing SQL
    // function's name (parameter reference).
    for (size_t b = 0; b < bindings_.size(); ++b) {
      if (!visible(b)) continue;
      if (EqualsIgnoreCase(bindings_[b].alias, qualifier)) {
        auto idx = bindings_[b].schema->IndexOf(name);
        if (!idx.has_value()) {
          return Status::NotFound("column " + name + " not found in " +
                                  qualifier);
        }
        return std::make_pair(static_cast<int>(b), static_cast<int>(*idx));
      }
    }
    if (params_ != nullptr && params_->Lookup(qualifier, name).has_value()) {
      return std::make_pair(-1, 0);  // parameter
    }
    return Status::NotFound("unknown correlation name: " + qualifier);
  }
  // Unqualified: must be unique across visible bindings.
  std::optional<std::pair<int, int>> found;
  for (size_t b = 0; b < bindings_.size(); ++b) {
    if (!visible(b)) continue;
    auto idx = bindings_[b].schema->IndexOf(name);
    if (idx.has_value()) {
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column reference: " + name);
      }
      found = std::make_pair(static_cast<int>(b), static_cast<int>(*idx));
    }
  }
  if (found.has_value()) return *found;
  if (params_ != nullptr && params_->Lookup("", name).has_value()) {
    return std::make_pair(-1, 0);
  }
  return Status::NotFound("column not found: " + name);
}

Result<Value> RowScope::ResolveColumn(const std::string& qualifier,
                                      const std::string& name) const {
  FEDFLOW_ASSIGN_OR_RETURN(auto loc, Find(qualifier, name));
  if (loc.first < 0) {
    return *params_->Lookup(qualifier, name);
  }
  const Binding& b = bindings_[loc.first];
  if (row_ == nullptr) {
    return Status::Internal("RowScope has no current row");
  }
  size_t pos = b.offset + static_cast<size_t>(loc.second);
  if (pos >= row_->size()) {
    return Status::Internal("combined row too short for binding " + b.alias);
  }
  return (*row_)[pos];
}

Result<DataType> RowScope::ResolveColumnType(const std::string& qualifier,
                                             const std::string& name) const {
  FEDFLOW_ASSIGN_OR_RETURN(auto loc, Find(qualifier, name));
  if (loc.first < 0) {
    return params_->Lookup(qualifier, name)->type();
  }
  return bindings_[loc.first].schema->column(loc.second).type;
}

bool Evaluator::IsAggregateName(const std::string& name) {
  return EqualsIgnoreCase(name, "COUNT") || EqualsIgnoreCase(name, "SUM") ||
         EqualsIgnoreCase(name, "AVG") || EqualsIgnoreCase(name, "MIN") ||
         EqualsIgnoreCase(name, "MAX");
}

bool Evaluator::ContainsAggregate(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return false;
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (IsAggregateName(call.name())) return true;
      for (const auto& arg : call.args()) {
        if (ContainsAggregate(*arg)) return true;
      }
      return false;
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      return ContainsAggregate(*bin.left()) || ContainsAggregate(*bin.right());
    }
    case ExprKind::kUnary:
      return ContainsAggregate(
          *static_cast<const UnaryExpr&>(expr).operand());
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        if (ContainsAggregate(*b.condition) || ContainsAggregate(*b.value)) {
          return true;
        }
      }
      return case_expr.else_value() != nullptr &&
             ContainsAggregate(*case_expr.else_value());
    }
  }
  return false;
}

namespace {

// Three-valued AND/OR. Values are TRUE / FALSE / NULL(unknown).
Result<Value> ToTruth(const Value& v) {
  if (v.is_null()) return Value::Null();
  if (v.type() == DataType::kBool) return v;
  // Numerics coerce: nonzero is true (lenient, like many engines).
  FEDFLOW_ASSIGN_OR_RETURN(int64_t n, v.ToInt64());
  return Value::Bool(n != 0);
}

}  // namespace

Result<Value> Evaluator::Eval(const Expr& expr, const RowScope& scope) const {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      return scope.ResolveColumn(ref.qualifier(), ref.name());
    }
    case ExprKind::kFunctionCall:
      return EvalCall(static_cast<const FunctionCallExpr&>(expr), scope);
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(expr), scope);
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        FEDFLOW_ASSIGN_OR_RETURN(Value cond, Eval(*b.condition, scope));
        FEDFLOW_ASSIGN_OR_RETURN(Value truth, ToTruth(cond));
        if (!truth.is_null() && truth.AsBool()) {
          return Eval(*b.value, scope);
        }
      }
      if (case_expr.else_value() != nullptr) {
        return Eval(*case_expr.else_value(), scope);
      }
      return Value::Null();
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      FEDFLOW_ASSIGN_OR_RETURN(Value v, Eval(*un.operand(), scope));
      switch (un.op()) {
        case UnaryOp::kNeg: {
          if (v.is_null()) return Value::Null();
          switch (v.type()) {
            case DataType::kInt:
              return Value::Int(-v.AsInt());
            case DataType::kBigInt:
              return Value::BigInt(-v.AsBigInt());
            case DataType::kDouble:
              return Value::Double(-v.AsDouble());
            case DataType::kNull:
            case DataType::kBool:
            case DataType::kVarchar:
              return Status::TypeError("cannot negate " +
                                       std::string(DataTypeName(v.type())));
          }
          return Status::Internal("bad value type");
        }
        case UnaryOp::kNot: {
          FEDFLOW_ASSIGN_OR_RETURN(Value t, ToTruth(v));
          if (t.is_null()) return Value::Null();
          return Value::Bool(!t.AsBool());
        }
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      return Status::Internal("bad unary op");
    }
  }
  return Status::Internal("bad expression kind");
}

Result<Value> Evaluator::EvalBinary(const BinaryExpr& expr,
                                    const RowScope& scope) const {
  const BinaryOp op = expr.op();
  // AND/OR need three-valued logic and benefit from short-circuiting.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    FEDFLOW_ASSIGN_OR_RETURN(Value lv, Eval(*expr.left(), scope));
    FEDFLOW_ASSIGN_OR_RETURN(Value lt, ToTruth(lv));
    if (op == BinaryOp::kAnd && !lt.is_null() && !lt.AsBool()) {
      return Value::Bool(false);
    }
    if (op == BinaryOp::kOr && !lt.is_null() && lt.AsBool()) {
      return Value::Bool(true);
    }
    FEDFLOW_ASSIGN_OR_RETURN(Value rv, Eval(*expr.right(), scope));
    FEDFLOW_ASSIGN_OR_RETURN(Value rt, ToTruth(rv));
    if (op == BinaryOp::kAnd) {
      if (!rt.is_null() && !rt.AsBool()) return Value::Bool(false);
      if (lt.is_null() || rt.is_null()) return Value::Null();
      return Value::Bool(true);
    }
    if (!rt.is_null() && rt.AsBool()) return Value::Bool(true);
    if (lt.is_null() || rt.is_null()) return Value::Null();
    return Value::Bool(false);
  }

  FEDFLOW_ASSIGN_OR_RETURN(Value lv, Eval(*expr.left(), scope));
  FEDFLOW_ASSIGN_OR_RETURN(Value rv, Eval(*expr.right(), scope));

  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      FEDFLOW_ASSIGN_OR_RETURN(int cmp, lv.Compare(rv));
      if (op == BinaryOp::kEq) return Value::Bool(cmp == 0);
      if (op == BinaryOp::kNe) return Value::Bool(cmp != 0);
      if (op == BinaryOp::kLt) return Value::Bool(cmp < 0);
      if (op == BinaryOp::kLe) return Value::Bool(cmp <= 0);
      if (op == BinaryOp::kGt) return Value::Bool(cmp > 0);
      return Value::Bool(cmp >= 0);
    }
    case BinaryOp::kConcat: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      return Value::Varchar(lv.ToString() + rv.ToString());
    }
    case BinaryOp::kLike: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      if (lv.type() != DataType::kVarchar ||
          rv.type() != DataType::kVarchar) {
        return Status::TypeError("LIKE requires VARCHAR operands");
      }
      return Value::Bool(SqlLike(lv.AsVarchar(), rv.AsVarchar()));
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      DataType target = PromoteNumeric(lv.type(), rv.type());
      if (target == DataType::kDouble) {
        FEDFLOW_ASSIGN_OR_RETURN(double a, lv.ToDouble());
        FEDFLOW_ASSIGN_OR_RETURN(double b, rv.ToDouble());
        if (op == BinaryOp::kAdd) return Value::Double(a + b);
        if (op == BinaryOp::kSub) return Value::Double(a - b);
        if (op == BinaryOp::kMul) return Value::Double(a * b);
        if (op == BinaryOp::kDiv) {
          if (b == 0) return Status::ExecutionError("division by zero");
          return Value::Double(a / b);
        }
        return Status::TypeError("MOD requires integer operands");
      }
      FEDFLOW_ASSIGN_OR_RETURN(int64_t a, lv.ToInt64());
      FEDFLOW_ASSIGN_OR_RETURN(int64_t b, rv.ToInt64());
      int64_t out;
      if (op == BinaryOp::kAdd) {
        out = a + b;
      } else if (op == BinaryOp::kSub) {
        out = a - b;
      } else if (op == BinaryOp::kMul) {
        out = a * b;
      } else if (op == BinaryOp::kDiv) {
        if (b == 0) return Status::ExecutionError("division by zero");
        out = a / b;
      } else {
        if (b == 0) return Status::ExecutionError("modulo by zero");
        out = a % b;
      }
      if (target == DataType::kInt && out >= INT32_MIN && out <= INT32_MAX) {
        return Value::Int(static_cast<int32_t>(out));
      }
      return Value::BigInt(out);
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      // Handled above with short-circuit three-valued logic.
      return Status::Internal("unhandled binary op");
  }
  return Status::Internal("unhandled binary op");
}

Result<Value> Evaluator::EvalCall(const FunctionCallExpr& expr,
                                  const RowScope& scope) const {
  if (IsAggregateName(expr.name())) {
    if (!agg_resolver_) {
      return Status::InvalidArgument(
          "aggregate function " + expr.name() +
          " is not allowed in this context");
    }
    return agg_resolver_(expr);
  }
  if (catalog_ == nullptr) {
    return Status::NotFound("no catalog to resolve function " + expr.name());
  }
  FEDFLOW_ASSIGN_OR_RETURN(const ScalarFunctionDef* def,
                           catalog_->GetScalarFunction(expr.name()));
  if (def->arity >= 0 &&
      static_cast<size_t>(def->arity) != expr.args().size()) {
    return Status::InvalidArgument(
        expr.name() + " expects " + std::to_string(def->arity) +
        " argument(s), got " + std::to_string(expr.args().size()));
  }
  std::vector<Value> args;
  args.reserve(expr.args().size());
  for (const auto& arg : expr.args()) {
    FEDFLOW_ASSIGN_OR_RETURN(Value v, Eval(*arg, scope));
    args.push_back(std::move(v));
  }
  return def->fn(args);
}

Result<DataType> Evaluator::InferType(const Expr& expr,
                                      const RowScope& scope) const {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value().type();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      return scope.ResolveColumnType(ref.qualifier(), ref.name());
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      std::vector<DataType> arg_types;
      for (const auto& arg : call.args()) {
        FEDFLOW_ASSIGN_OR_RETURN(DataType t, InferType(*arg, scope));
        arg_types.push_back(t);
      }
      if (IsAggregateName(call.name())) {
        if (EqualsIgnoreCase(call.name(), "COUNT")) return DataType::kBigInt;
        if (EqualsIgnoreCase(call.name(), "AVG")) return DataType::kDouble;
        if (EqualsIgnoreCase(call.name(), "SUM")) {
          if (!arg_types.empty() && arg_types[0] == DataType::kDouble) {
            return DataType::kDouble;
          }
          return DataType::kBigInt;
        }
        return arg_types.empty() ? DataType::kNull : arg_types[0];
      }
      if (catalog_ == nullptr) return DataType::kNull;
      auto def = catalog_->GetScalarFunction(call.name());
      if (!def.ok()) return def.status();
      if ((*def)->return_type) return (*def)->return_type(arg_types);
      return DataType::kNull;
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      switch (bin.op()) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kLike:
          return DataType::kBool;
        case BinaryOp::kConcat:
          return DataType::kVarchar;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          FEDFLOW_ASSIGN_OR_RETURN(DataType lt, InferType(*bin.left(), scope));
          FEDFLOW_ASSIGN_OR_RETURN(DataType rt,
                                   InferType(*bin.right(), scope));
          return PromoteNumeric(lt, rt);
        }
      }
      return DataType::kNull;
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      switch (un.op()) {
        case UnaryOp::kNeg:
          return InferType(*un.operand(), scope);
        case UnaryOp::kNot:
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          return DataType::kBool;
      }
      return DataType::kNull;
    }
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        FEDFLOW_ASSIGN_OR_RETURN(DataType t, InferType(*b.value, scope));
        if (t != DataType::kNull) return t;
      }
      if (case_expr.else_value() != nullptr) {
        return InferType(*case_expr.else_value(), scope);
      }
      return DataType::kNull;
    }
  }
  return DataType::kNull;
}

DataType PromoteNumeric(DataType a, DataType b) {
  if (a == DataType::kDouble || b == DataType::kDouble) {
    return DataType::kDouble;
  }
  if (a == DataType::kBigInt || b == DataType::kBigInt) {
    return DataType::kBigInt;
  }
  return DataType::kInt;
}

}  // namespace fedflow::fdbs
