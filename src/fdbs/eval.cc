#include "fdbs/eval.h"

#include <algorithm>
#include <cstdint>
#include <memory>

#include "common/strings.h"
#include "fdbs/catalog.h"

namespace fedflow::fdbs {

using sql::BinaryExpr;
using sql::BinaryOp;
using sql::CaseExpr;
using sql::ColumnRefExpr;
using sql::Expr;
using sql::ExprKind;
using sql::FunctionCallExpr;
using sql::LiteralExpr;
using sql::UnaryExpr;
using sql::UnaryOp;

std::optional<Value> ParamScope::Lookup(const std::string& qualifier,
                                        const std::string& name) const {
  if (!qualifier.empty() && !EqualsIgnoreCase(qualifier, function_name)) {
    return std::nullopt;
  }
  for (const auto& [pname, value] : params) {
    if (EqualsIgnoreCase(pname, name)) return value;
  }
  return std::nullopt;
}

Result<std::pair<int, int>> RowScope::Find(const std::string& qualifier,
                                           const std::string& name) const {
  auto visible = [this](size_t b) {
    return mask_ == nullptr || (b < mask_->size() && (*mask_)[b]);
  };
  if (!qualifier.empty()) {
    // Qualified: the qualifier may be a FROM alias or the enclosing SQL
    // function's name (parameter reference).
    for (size_t b = 0; b < bindings_.size(); ++b) {
      if (!visible(b)) continue;
      if (EqualsIgnoreCase(bindings_[b].alias, qualifier)) {
        auto idx = bindings_[b].schema->IndexOf(name);
        if (!idx.has_value()) {
          return Status::NotFound("column " + name + " not found in " +
                                  qualifier);
        }
        return std::make_pair(static_cast<int>(b), static_cast<int>(*idx));
      }
    }
    if (params_ != nullptr && params_->Lookup(qualifier, name).has_value()) {
      return std::make_pair(-1, 0);  // parameter
    }
    return Status::NotFound("unknown correlation name: " + qualifier);
  }
  // Unqualified: must be unique across visible bindings.
  std::optional<std::pair<int, int>> found;
  for (size_t b = 0; b < bindings_.size(); ++b) {
    if (!visible(b)) continue;
    auto idx = bindings_[b].schema->IndexOf(name);
    if (idx.has_value()) {
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column reference: " + name);
      }
      found = std::make_pair(static_cast<int>(b), static_cast<int>(*idx));
    }
  }
  if (found.has_value()) return *found;
  if (params_ != nullptr && params_->Lookup("", name).has_value()) {
    return std::make_pair(-1, 0);
  }
  return Status::NotFound("column not found: " + name);
}

Result<Value> RowScope::ResolveColumn(const std::string& qualifier,
                                      const std::string& name) const {
  FEDFLOW_ASSIGN_OR_RETURN(auto loc, Find(qualifier, name));
  if (loc.first < 0) {
    return *params_->Lookup(qualifier, name);
  }
  const Binding& b = bindings_[loc.first];
  if (row_ == nullptr) {
    return Status::Internal("RowScope has no current row");
  }
  size_t pos = b.offset + static_cast<size_t>(loc.second);
  if (pos >= row_->size()) {
    return Status::Internal("combined row too short for binding " + b.alias);
  }
  return (*row_)[pos];
}

Result<DataType> RowScope::ResolveColumnType(const std::string& qualifier,
                                             const std::string& name) const {
  FEDFLOW_ASSIGN_OR_RETURN(auto loc, Find(qualifier, name));
  if (loc.first < 0) {
    return params_->Lookup(qualifier, name)->type();
  }
  return bindings_[loc.first].schema->column(loc.second).type;
}

Result<RowScope::ResolvedRef> RowScope::Resolve(const std::string& qualifier,
                                                const std::string& name) const {
  FEDFLOW_ASSIGN_OR_RETURN(auto loc, Find(qualifier, name));
  ResolvedRef ref;
  if (loc.first < 0) {
    ref.param = *params_->Lookup(qualifier, name);
    return ref;
  }
  const Binding& b = bindings_[loc.first];
  ref.pos = static_cast<int>(b.offset) + loc.second;
  return ref;
}

bool Evaluator::IsAggregateName(const std::string& name) {
  return EqualsIgnoreCase(name, "COUNT") || EqualsIgnoreCase(name, "SUM") ||
         EqualsIgnoreCase(name, "AVG") || EqualsIgnoreCase(name, "MIN") ||
         EqualsIgnoreCase(name, "MAX");
}

bool Evaluator::ContainsAggregate(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return false;
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      if (IsAggregateName(call.name())) return true;
      for (const auto& arg : call.args()) {
        if (ContainsAggregate(*arg)) return true;
      }
      return false;
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      return ContainsAggregate(*bin.left()) || ContainsAggregate(*bin.right());
    }
    case ExprKind::kUnary:
      return ContainsAggregate(
          *static_cast<const UnaryExpr&>(expr).operand());
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        if (ContainsAggregate(*b.condition) || ContainsAggregate(*b.value)) {
          return true;
        }
      }
      return case_expr.else_value() != nullptr &&
             ContainsAggregate(*case_expr.else_value());
    }
  }
  return false;
}

namespace {

// Three-valued AND/OR. Values are TRUE / FALSE / NULL(unknown).
Result<Value> ToTruth(const Value& v) {
  if (v.is_null()) return Value::Null();
  if (v.type() == DataType::kBool) return v;
  // Numerics coerce: nonzero is true (lenient, like many engines).
  FEDFLOW_ASSIGN_OR_RETURN(int64_t n, v.ToInt64());
  return Value::Bool(n != 0);
}

}  // namespace

Result<Value> ApplyBinaryOp(BinaryOp op, const Value& lv, const Value& rv) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      FEDFLOW_ASSIGN_OR_RETURN(int cmp, lv.Compare(rv));
      if (op == BinaryOp::kEq) return Value::Bool(cmp == 0);
      if (op == BinaryOp::kNe) return Value::Bool(cmp != 0);
      if (op == BinaryOp::kLt) return Value::Bool(cmp < 0);
      if (op == BinaryOp::kLe) return Value::Bool(cmp <= 0);
      if (op == BinaryOp::kGt) return Value::Bool(cmp > 0);
      return Value::Bool(cmp >= 0);
    }
    case BinaryOp::kConcat: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      return Value::Varchar(lv.ToString() + rv.ToString());
    }
    case BinaryOp::kLike: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      if (lv.type() != DataType::kVarchar ||
          rv.type() != DataType::kVarchar) {
        return Status::TypeError("LIKE requires VARCHAR operands");
      }
      return Value::Bool(SqlLike(lv.AsVarchar(), rv.AsVarchar()));
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      DataType target = PromoteNumeric(lv.type(), rv.type());
      if (target == DataType::kDouble) {
        FEDFLOW_ASSIGN_OR_RETURN(double a, lv.ToDouble());
        FEDFLOW_ASSIGN_OR_RETURN(double b, rv.ToDouble());
        if (op == BinaryOp::kAdd) return Value::Double(a + b);
        if (op == BinaryOp::kSub) return Value::Double(a - b);
        if (op == BinaryOp::kMul) return Value::Double(a * b);
        if (op == BinaryOp::kDiv) {
          if (b == 0) return Status::ExecutionError("division by zero");
          return Value::Double(a / b);
        }
        return Status::TypeError("MOD requires integer operands");
      }
      FEDFLOW_ASSIGN_OR_RETURN(int64_t a, lv.ToInt64());
      FEDFLOW_ASSIGN_OR_RETURN(int64_t b, rv.ToInt64());
      int64_t out;
      if (op == BinaryOp::kAdd) {
        out = a + b;
      } else if (op == BinaryOp::kSub) {
        out = a - b;
      } else if (op == BinaryOp::kMul) {
        out = a * b;
      } else if (op == BinaryOp::kDiv) {
        if (b == 0) return Status::ExecutionError("division by zero");
        out = a / b;
      } else {
        if (b == 0) return Status::ExecutionError("modulo by zero");
        out = a % b;
      }
      if (target == DataType::kInt && out >= INT32_MIN && out <= INT32_MAX) {
        return Value::Int(static_cast<int32_t>(out));
      }
      return Value::BigInt(out);
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      // Need unevaluated operands for three-valued short-circuiting; handled
      // by the callers.
      return Status::Internal("unhandled binary op");
  }
  return Status::Internal("unhandled binary op");
}

Result<Value> ApplyUnaryOp(UnaryOp op, const Value& v) {
  switch (op) {
    case UnaryOp::kNeg: {
      if (v.is_null()) return Value::Null();
      switch (v.type()) {
        case DataType::kInt:
          return Value::Int(-v.AsInt());
        case DataType::kBigInt:
          return Value::BigInt(-v.AsBigInt());
        case DataType::kDouble:
          return Value::Double(-v.AsDouble());
        case DataType::kNull:
        case DataType::kBool:
        case DataType::kVarchar:
          return Status::TypeError("cannot negate " +
                                   std::string(DataTypeName(v.type())));
      }
      return Status::Internal("bad value type");
    }
    case UnaryOp::kNot: {
      FEDFLOW_ASSIGN_OR_RETURN(Value t, ToTruth(v));
      if (t.is_null()) return Value::Null();
      return Value::Bool(!t.AsBool());
    }
    case UnaryOp::kIsNull:
      return Value::Bool(v.is_null());
    case UnaryOp::kIsNotNull:
      return Value::Bool(!v.is_null());
  }
  return Status::Internal("bad unary op");
}

Result<Value> Evaluator::Eval(const Expr& expr, const RowScope& scope) const {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      return scope.ResolveColumn(ref.qualifier(), ref.name());
    }
    case ExprKind::kFunctionCall:
      return EvalCall(static_cast<const FunctionCallExpr&>(expr), scope);
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(expr), scope);
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        FEDFLOW_ASSIGN_OR_RETURN(Value cond, Eval(*b.condition, scope));
        FEDFLOW_ASSIGN_OR_RETURN(Value truth, ToTruth(cond));
        if (!truth.is_null() && truth.AsBool()) {
          return Eval(*b.value, scope);
        }
      }
      if (case_expr.else_value() != nullptr) {
        return Eval(*case_expr.else_value(), scope);
      }
      return Value::Null();
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      FEDFLOW_ASSIGN_OR_RETURN(Value v, Eval(*un.operand(), scope));
      return ApplyUnaryOp(un.op(), v);
    }
  }
  return Status::Internal("bad expression kind");
}

Result<Value> Evaluator::EvalBinary(const BinaryExpr& expr,
                                    const RowScope& scope) const {
  const BinaryOp op = expr.op();
  // AND/OR need three-valued logic and benefit from short-circuiting.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    FEDFLOW_ASSIGN_OR_RETURN(Value lv, Eval(*expr.left(), scope));
    FEDFLOW_ASSIGN_OR_RETURN(Value lt, ToTruth(lv));
    if (op == BinaryOp::kAnd && !lt.is_null() && !lt.AsBool()) {
      return Value::Bool(false);
    }
    if (op == BinaryOp::kOr && !lt.is_null() && lt.AsBool()) {
      return Value::Bool(true);
    }
    FEDFLOW_ASSIGN_OR_RETURN(Value rv, Eval(*expr.right(), scope));
    FEDFLOW_ASSIGN_OR_RETURN(Value rt, ToTruth(rv));
    if (op == BinaryOp::kAnd) {
      if (!rt.is_null() && !rt.AsBool()) return Value::Bool(false);
      if (lt.is_null() || rt.is_null()) return Value::Null();
      return Value::Bool(true);
    }
    if (!rt.is_null() && rt.AsBool()) return Value::Bool(true);
    if (lt.is_null() || rt.is_null()) return Value::Null();
    return Value::Bool(false);
  }

  FEDFLOW_ASSIGN_OR_RETURN(Value lv, Eval(*expr.left(), scope));
  FEDFLOW_ASSIGN_OR_RETURN(Value rv, Eval(*expr.right(), scope));
  return ApplyBinaryOp(op, lv, rv);
}

Result<Value> Evaluator::EvalCall(const FunctionCallExpr& expr,
                                  const RowScope& scope) const {
  if (IsAggregateName(expr.name())) {
    if (!agg_resolver_) {
      return Status::InvalidArgument(
          "aggregate function " + expr.name() +
          " is not allowed in this context");
    }
    return agg_resolver_(expr);
  }
  if (catalog_ == nullptr) {
    return Status::NotFound("no catalog to resolve function " + expr.name());
  }
  FEDFLOW_ASSIGN_OR_RETURN(const ScalarFunctionDef* def,
                           catalog_->GetScalarFunction(expr.name()));
  if (def->arity >= 0 &&
      static_cast<size_t>(def->arity) != expr.args().size()) {
    return Status::InvalidArgument(
        expr.name() + " expects " + std::to_string(def->arity) +
        " argument(s), got " + std::to_string(expr.args().size()));
  }
  std::vector<Value> args;
  args.reserve(expr.args().size());
  for (const auto& arg : expr.args()) {
    FEDFLOW_ASSIGN_OR_RETURN(Value v, Eval(*arg, scope));
    args.push_back(std::move(v));
  }
  return def->fn(args);
}

Result<DataType> Evaluator::InferType(const Expr& expr,
                                      const RowScope& scope) const {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value().type();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      return scope.ResolveColumnType(ref.qualifier(), ref.name());
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      std::vector<DataType> arg_types;
      for (const auto& arg : call.args()) {
        FEDFLOW_ASSIGN_OR_RETURN(DataType t, InferType(*arg, scope));
        arg_types.push_back(t);
      }
      if (IsAggregateName(call.name())) {
        if (EqualsIgnoreCase(call.name(), "COUNT")) return DataType::kBigInt;
        if (EqualsIgnoreCase(call.name(), "AVG")) return DataType::kDouble;
        if (EqualsIgnoreCase(call.name(), "SUM")) {
          if (!arg_types.empty() && arg_types[0] == DataType::kDouble) {
            return DataType::kDouble;
          }
          return DataType::kBigInt;
        }
        return arg_types.empty() ? DataType::kNull : arg_types[0];
      }
      if (catalog_ == nullptr) return DataType::kNull;
      auto def = catalog_->GetScalarFunction(call.name());
      if (!def.ok()) return def.status();
      if ((*def)->return_type) return (*def)->return_type(arg_types);
      return DataType::kNull;
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      switch (bin.op()) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kLike:
          return DataType::kBool;
        case BinaryOp::kConcat:
          return DataType::kVarchar;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          FEDFLOW_ASSIGN_OR_RETURN(DataType lt, InferType(*bin.left(), scope));
          FEDFLOW_ASSIGN_OR_RETURN(DataType rt,
                                   InferType(*bin.right(), scope));
          return PromoteNumeric(lt, rt);
        }
      }
      return DataType::kNull;
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      switch (un.op()) {
        case UnaryOp::kNeg:
          return InferType(*un.operand(), scope);
        case UnaryOp::kNot:
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          return DataType::kBool;
      }
      return DataType::kNull;
    }
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        FEDFLOW_ASSIGN_OR_RETURN(DataType t, InferType(*b.value, scope));
        if (t != DataType::kNull) return t;
      }
      if (case_expr.else_value() != nullptr) {
        return InferType(*case_expr.else_value(), scope);
      }
      return DataType::kNull;
    }
  }
  return DataType::kNull;
}

DataType PromoteNumeric(DataType a, DataType b) {
  if (a == DataType::kDouble || b == DataType::kDouble) {
    return DataType::kDouble;
  }
  if (a == DataType::kBigInt || b == DataType::kBigInt) {
    return DataType::kBigInt;
  }
  return DataType::kInt;
}

// ---------------------------------------------------------------------------
// Vectorized predicate evaluation. Same semantics as the row path (the
// generic fallbacks literally call ApplyBinaryOp/ApplyUnaryOp), minus the
// per-row name resolution and variant tree walk.
// ---------------------------------------------------------------------------

namespace {

using VNode = VectorPredicate::Node;
using VKind = VectorPredicate::NodeKind;

/// One vectorized intermediate, aligned with the current selection: a
/// broadcast constant, a typed vector + null map, or (mixed/degenerate
/// cases) a generic Value vector. Strings are referenced, not copied:
/// `strs` points into the batch's column storage.
struct Vec {
  bool is_const = false;
  Value cval;                       // when is_const (Null by default)
  DataType type = DataType::kNull;  // kNull + !is_const = generic `vals`
  std::vector<uint8_t> nulls;       // typed vectors: 1 = NULL
  std::vector<uint8_t> bools;
  std::vector<int64_t> i64s;        // kInt (int32-ranged) and kBigInt
  std::vector<double> f64s;
  std::vector<const std::string*> strs;
  std::vector<Value> vals;          // generic

  bool generic() const { return !is_const && type == DataType::kNull; }

  bool NullAt(size_t k) const {
    if (is_const) return cval.is_null();
    if (generic()) return vals[k].is_null();
    return nulls[k] != 0;
  }

  /// Reconstructs the row-form value at selection position `k`.
  Value At(size_t k) const {
    if (is_const) return cval;
    if (generic()) return vals[k];
    if (nulls[k] != 0) return Value::Null();
    switch (type) {
      case DataType::kNull:
        break;
      case DataType::kBool:
        return Value::Bool(bools[k] != 0);
      case DataType::kInt:
        return Value::Int(static_cast<int32_t>(i64s[k]));
      case DataType::kBigInt:
        return Value::BigInt(i64s[k]);
      case DataType::kDouble:
        return Value::Double(f64s[k]);
      case DataType::kVarchar:
        return Value::Varchar(*strs[k]);
    }
    return Value::Null();
  }
};

Vec ConstVec(Value v) {
  Vec out;
  out.is_const = true;
  out.cval = std::move(v);
  return out;
}

Vec BoolVec(std::vector<uint8_t> bools, std::vector<uint8_t> nulls) {
  Vec out;
  out.type = DataType::kBool;
  out.bools = std::move(bools);
  out.nulls = std::move(nulls);
  return out;
}

bool IsNumeric(DataType t) {
  return t == DataType::kBool || t == DataType::kInt ||
         t == DataType::kBigInt || t == DataType::kDouble;
}

/// Static value type of a non-generic Vec (const's value type, else the
/// vector type — every non-null element carries exactly that type).
DataType StaticType(const Vec& v) {
  return v.is_const ? v.cval.type() : v.type;
}

/// Numeric reader over a non-generic Vec, mirroring Value::ToInt64 /
/// Value::ToDouble for the numeric types.
struct NumIn {
  bool is_const = false;
  bool cnull = false;
  int64_t ci = 0;
  double cf = 0;
  DataType t = DataType::kNull;
  const uint8_t* nulls = nullptr;
  const uint8_t* bools = nullptr;
  const int64_t* i64s = nullptr;
  const double* f64s = nullptr;

  static NumIn Of(const Vec& v) {
    NumIn a;
    a.t = StaticType(v);
    a.is_const = v.is_const;
    if (v.is_const) {
      a.cnull = v.cval.is_null();
      if (!a.cnull) {
        switch (a.t) {
          case DataType::kBool:
            a.ci = v.cval.AsBool() ? 1 : 0;
            a.cf = static_cast<double>(a.ci);
            break;
          case DataType::kInt:
            a.ci = v.cval.AsInt();
            a.cf = static_cast<double>(a.ci);
            break;
          case DataType::kBigInt:
            a.ci = v.cval.AsBigInt();
            a.cf = static_cast<double>(a.ci);
            break;
          case DataType::kDouble:
            a.cf = v.cval.AsDouble();
            a.ci = static_cast<int64_t>(a.cf);
            break;
          case DataType::kNull:
          case DataType::kVarchar:
            break;
        }
      }
    } else {
      a.nulls = v.nulls.data();
      a.bools = v.bools.data();
      a.i64s = v.i64s.data();
      a.f64s = v.f64s.data();
    }
    return a;
  }

  bool NullAt(size_t k) const { return is_const ? cnull : nulls[k] != 0; }
  int64_t I64(size_t k) const {
    if (is_const) return ci;
    if (t == DataType::kBool) return bools[k];
    if (t == DataType::kDouble) return static_cast<int64_t>(f64s[k]);
    return i64s[k];
  }
  double F64(size_t k) const {
    if (is_const) return cf;
    if (t == DataType::kBool) return bools[k] != 0 ? 1.0 : 0.0;
    if (t == DataType::kDouble) return f64s[k];
    return static_cast<double>(i64s[k]);
  }
};

const std::string& StrAt(const Vec& v, size_t k) {
  return v.is_const ? v.cval.AsVarchar() : *v.strs[k];
}

bool CmpHolds(BinaryOp op, int cmp) {
  if (op == BinaryOp::kEq) return cmp == 0;
  if (op == BinaryOp::kNe) return cmp != 0;
  if (op == BinaryOp::kLt) return cmp < 0;
  if (op == BinaryOp::kLe) return cmp <= 0;
  if (op == BinaryOp::kGt) return cmp > 0;
  return cmp >= 0;
}

/// Per-row fallback through the shared scalar core: exact semantics and
/// error messages for every combination the typed kernels do not cover.
Result<Vec> GenericBinFallback(BinaryOp op, const Vec& l, const Vec& r,
                               size_t n) {
  if (l.is_const && r.is_const) {
    FEDFLOW_ASSIGN_OR_RETURN(Value v, ApplyBinaryOp(op, l.cval, r.cval));
    return ConstVec(std::move(v));
  }
  Vec out;
  out.vals.resize(n);
  for (size_t k = 0; k < n; ++k) {
    FEDFLOW_ASSIGN_OR_RETURN(out.vals[k], ApplyBinaryOp(op, l.At(k), r.At(k)));
  }
  return out;
}

Result<Vec> CmpVec(BinaryOp op, const Vec& l, const Vec& r, size_t n) {
  if ((l.is_const && l.cval.is_null()) || (r.is_const && r.cval.is_null())) {
    return ConstVec(Value::Null());
  }
  if (l.generic() || r.generic()) return GenericBinFallback(op, l, r, n);
  const DataType lt = StaticType(l);
  const DataType rt = StaticType(r);
  if (IsNumeric(lt) && IsNumeric(rt)) {
    const NumIn a = NumIn::Of(l);
    const NumIn b = NumIn::Of(r);
    std::vector<uint8_t> bools(n, 0);
    std::vector<uint8_t> nulls(n, 0);
    if (lt == DataType::kDouble || rt == DataType::kDouble) {
      for (size_t k = 0; k < n; ++k) {
        if (a.NullAt(k) || b.NullAt(k)) {
          nulls[k] = 1;
          continue;
        }
        const double x = a.F64(k);
        const double y = b.F64(k);
        bools[k] = CmpHolds(op, x < y ? -1 : (x > y ? 1 : 0)) ? 1 : 0;
      }
    } else {
      for (size_t k = 0; k < n; ++k) {
        if (a.NullAt(k) || b.NullAt(k)) {
          nulls[k] = 1;
          continue;
        }
        const int64_t x = a.I64(k);
        const int64_t y = b.I64(k);
        bools[k] = CmpHolds(op, x < y ? -1 : (x > y ? 1 : 0)) ? 1 : 0;
      }
    }
    return BoolVec(std::move(bools), std::move(nulls));
  }
  if (lt == DataType::kVarchar && rt == DataType::kVarchar) {
    std::vector<uint8_t> bools(n, 0);
    std::vector<uint8_t> nulls(n, 0);
    for (size_t k = 0; k < n; ++k) {
      if (l.NullAt(k) || r.NullAt(k)) {
        nulls[k] = 1;
        continue;
      }
      const int c = StrAt(l, k).compare(StrAt(r, k));
      bools[k] = CmpHolds(op, c < 0 ? -1 : (c > 0 ? 1 : 0)) ? 1 : 0;
    }
    return BoolVec(std::move(bools), std::move(nulls));
  }
  // Mismatched types: NULL pairs yield NULL, the first non-NULL pair yields
  // the row path's Compare error.
  return GenericBinFallback(op, l, r, n);
}

Result<Vec> ArithVec(BinaryOp op, const Vec& l, const Vec& r, size_t n) {
  if ((l.is_const && l.cval.is_null()) || (r.is_const && r.cval.is_null())) {
    return ConstVec(Value::Null());
  }
  if (l.generic() || r.generic()) return GenericBinFallback(op, l, r, n);
  const DataType lt = StaticType(l);
  const DataType rt = StaticType(r);
  if (!IsNumeric(lt) || !IsNumeric(rt)) {
    // VARCHAR in arithmetic: ToInt64's conversion error, per row.
    return GenericBinFallback(op, l, r, n);
  }
  const DataType target = PromoteNumeric(lt, rt);
  const NumIn a = NumIn::Of(l);
  const NumIn b = NumIn::Of(r);
  std::vector<uint8_t> nulls(n, 0);
  if (target == DataType::kDouble) {
    std::vector<double> f64s(n, 0);
    for (size_t k = 0; k < n; ++k) {
      if (a.NullAt(k) || b.NullAt(k)) {
        nulls[k] = 1;
        continue;
      }
      const double x = a.F64(k);
      const double y = b.F64(k);
      if (op == BinaryOp::kAdd) {
        f64s[k] = x + y;
      } else if (op == BinaryOp::kSub) {
        f64s[k] = x - y;
      } else if (op == BinaryOp::kMul) {
        f64s[k] = x * y;
      } else if (op == BinaryOp::kDiv) {
        if (y == 0) return Status::ExecutionError("division by zero");
        f64s[k] = x / y;
      } else {
        return Status::TypeError("MOD requires integer operands");
      }
    }
    Vec out;
    out.type = DataType::kDouble;
    out.f64s = std::move(f64s);
    out.nulls = std::move(nulls);
    return out;
  }
  const bool narrow = target == DataType::kInt;
  std::vector<int64_t> i64s(n, 0);
  std::vector<uint8_t> big(narrow ? n : 0, 0);
  size_t n_int = 0;
  size_t n_big = 0;
  for (size_t k = 0; k < n; ++k) {
    if (a.NullAt(k) || b.NullAt(k)) {
      nulls[k] = 1;
      continue;
    }
    const int64_t x = a.I64(k);
    const int64_t y = b.I64(k);
    int64_t out;
    if (op == BinaryOp::kAdd) {
      out = x + y;
    } else if (op == BinaryOp::kSub) {
      out = x - y;
    } else if (op == BinaryOp::kMul) {
      out = x * y;
    } else if (op == BinaryOp::kDiv) {
      if (y == 0) return Status::ExecutionError("division by zero");
      out = x / y;
    } else {
      if (y == 0) return Status::ExecutionError("modulo by zero");
      out = x % y;
    }
    i64s[k] = out;
    if (narrow) {
      if (out >= INT32_MIN && out <= INT32_MAX) {
        ++n_int;
      } else {
        big[k] = 1;
        ++n_big;
      }
    }
  }
  Vec out;
  if (!narrow || n_int == 0) {
    out.type = DataType::kBigInt;
    out.i64s = std::move(i64s);
    out.nulls = std::move(nulls);
    return out;
  }
  if (n_big == 0) {
    out.type = DataType::kInt;
    out.i64s = std::move(i64s);
    out.nulls = std::move(nulls);
    return out;
  }
  // Per-row INT narrowing produced a mix of INT and BIGINT (overflow rows
  // promote), exactly like the row path — degrade to generic values.
  out.vals.resize(n);
  for (size_t k = 0; k < n; ++k) {
    if (nulls[k] != 0) continue;  // default-constructed Value is NULL
    out.vals[k] = big[k] != 0 ? Value::BigInt(i64s[k])
                              : Value::Int(static_cast<int32_t>(i64s[k]));
  }
  return out;
}

Result<Vec> GenBinVec(BinaryOp op, const Vec& l, const Vec& r, size_t n) {
  if ((l.is_const && l.cval.is_null()) || (r.is_const && r.cval.is_null())) {
    return ConstVec(Value::Null());
  }
  if (op == BinaryOp::kLike && !l.generic() && !r.generic() &&
      StaticType(l) == DataType::kVarchar &&
      StaticType(r) == DataType::kVarchar) {
    std::vector<uint8_t> bools(n, 0);
    std::vector<uint8_t> nulls(n, 0);
    for (size_t k = 0; k < n; ++k) {
      if (l.NullAt(k) || r.NullAt(k)) {
        nulls[k] = 1;
        continue;
      }
      bools[k] = SqlLike(StrAt(l, k), StrAt(r, k)) ? 1 : 0;
    }
    return BoolVec(std::move(bools), std::move(nulls));
  }
  return GenericBinFallback(op, l, r, n);
}

/// ToTruth per selection position: 0 = FALSE, 1 = TRUE, 2 = NULL. Errors
/// at the first erroring row, like the row path's per-row ToTruth.
Result<std::vector<uint8_t>> TruthOf(const Vec& v, size_t n) {
  std::vector<uint8_t> t(n, 0);
  if (v.is_const) {
    FEDFLOW_ASSIGN_OR_RETURN(Value tv, ToTruth(v.cval));
    const uint8_t u = tv.is_null() ? 2 : (tv.AsBool() ? 1 : 0);
    std::fill(t.begin(), t.end(), u);
    return t;
  }
  if (v.generic()) {
    for (size_t k = 0; k < n; ++k) {
      FEDFLOW_ASSIGN_OR_RETURN(Value tv, ToTruth(v.vals[k]));
      t[k] = tv.is_null() ? 2 : (tv.AsBool() ? 1 : 0);
    }
    return t;
  }
  switch (v.type) {
    case DataType::kNull:
      break;  // unreachable: generic() covered above
    case DataType::kBool:
      for (size_t k = 0; k < n; ++k) {
        t[k] = v.nulls[k] != 0 ? 2 : (v.bools[k] != 0 ? 1 : 0);
      }
      break;
    case DataType::kInt:
    case DataType::kBigInt:
      for (size_t k = 0; k < n; ++k) {
        t[k] = v.nulls[k] != 0 ? 2 : (v.i64s[k] != 0 ? 1 : 0);
      }
      break;
    case DataType::kDouble:
      for (size_t k = 0; k < n; ++k) {
        t[k] = v.nulls[k] != 0
                   ? 2
                   : (static_cast<int64_t>(v.f64s[k]) != 0 ? 1 : 0);
      }
      break;
    case DataType::kVarchar:
      for (size_t k = 0; k < n; ++k) {
        if (v.nulls[k] != 0) {
          t[k] = 2;
          continue;
        }
        Result<Value> tv = ToTruth(v.At(k));  // always the conversion error
        return tv.status();
      }
      break;
  }
  return t;
}

Vec FromColumn(const ColumnData& col, const std::vector<uint32_t>& sel) {
  Vec v;
  const size_t n = sel.size();
  if (col.is_generic()) {
    v.vals.reserve(n);
    for (size_t k = 0; k < n; ++k) v.vals.push_back(col.value_data()[sel[k]]);
    return v;
  }
  v.type = col.type();
  v.nulls.resize(n);
  const std::vector<uint8_t>& cn = col.null_map();
  for (size_t k = 0; k < n; ++k) v.nulls[k] = cn[sel[k]];
  switch (col.type()) {
    case DataType::kNull:
      break;  // unreachable: kNull columns are generic
    case DataType::kBool:
      v.bools.resize(n);
      for (size_t k = 0; k < n; ++k) v.bools[k] = col.bool_data()[sel[k]];
      break;
    case DataType::kInt:
      v.i64s.resize(n);
      for (size_t k = 0; k < n; ++k) v.i64s[k] = col.int_data()[sel[k]];
      break;
    case DataType::kBigInt:
      v.i64s.resize(n);
      for (size_t k = 0; k < n; ++k) v.i64s[k] = col.bigint_data()[sel[k]];
      break;
    case DataType::kDouble:
      v.f64s.resize(n);
      for (size_t k = 0; k < n; ++k) v.f64s[k] = col.double_data()[sel[k]];
      break;
    case DataType::kVarchar:
      v.strs.resize(n);
      for (size_t k = 0; k < n; ++k) v.strs[k] = &col.string_data()[sel[k]];
      break;
  }
  return v;
}

Result<Vec> EvalVNode(const std::vector<VNode>& nodes, int idx,
                      const ColumnBatch& batch,
                      const std::vector<uint32_t>& sel) {
  const VNode& node = nodes[static_cast<size_t>(idx)];
  const size_t n = sel.size();
  switch (node.kind) {
    case VKind::kConst:
      return ConstVec(node.cval);
    case VKind::kCol:
      return FromColumn(batch.column(node.col), sel);
    case VKind::kAnd:
    case VKind::kOr: {
      const bool is_and = node.kind == VKind::kAnd;
      FEDFLOW_ASSIGN_OR_RETURN(Vec l,
                               EvalVNode(nodes, node.left, batch, sel));
      FEDFLOW_ASSIGN_OR_RETURN(std::vector<uint8_t> lt, TruthOf(l, n));
      // The row path evaluates the right side exactly when the left is not
      // the short-circuiting value (FALSE for AND, TRUE for OR) — mirror
      // that with a sub-selection.
      std::vector<uint32_t> subrows;
      subrows.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        const bool need_right = is_and ? lt[k] != 0 : lt[k] != 1;
        if (need_right) subrows.push_back(sel[k]);
      }
      std::vector<uint8_t> rt;
      if (!subrows.empty()) {
        FEDFLOW_ASSIGN_OR_RETURN(Vec r,
                                 EvalVNode(nodes, node.right, batch, subrows));
        FEDFLOW_ASSIGN_OR_RETURN(rt, TruthOf(r, subrows.size()));
      }
      std::vector<uint8_t> bools(n, 0);
      std::vector<uint8_t> nulls(n, 0);
      size_t j = 0;
      for (size_t k = 0; k < n; ++k) {
        if (is_and) {
          if (lt[k] == 0) continue;  // FALSE without evaluating the right
          const uint8_t rv = rt[j++];
          if (rv == 0) continue;  // FALSE
          if (lt[k] == 2 || rv == 2) {
            nulls[k] = 1;
          } else {
            bools[k] = 1;
          }
        } else {
          if (lt[k] == 1) {
            bools[k] = 1;  // TRUE without evaluating the right
            continue;
          }
          const uint8_t rv = rt[j++];
          if (rv == 1) {
            bools[k] = 1;
          } else if (lt[k] == 2 || rv == 2) {
            nulls[k] = 1;
          }
        }
      }
      return BoolVec(std::move(bools), std::move(nulls));
    }
    case VKind::kNot: {
      FEDFLOW_ASSIGN_OR_RETURN(Vec v, EvalVNode(nodes, node.left, batch, sel));
      FEDFLOW_ASSIGN_OR_RETURN(std::vector<uint8_t> t, TruthOf(v, n));
      std::vector<uint8_t> bools(n, 0);
      std::vector<uint8_t> nulls(n, 0);
      for (size_t k = 0; k < n; ++k) {
        if (t[k] == 2) {
          nulls[k] = 1;
        } else {
          bools[k] = t[k] == 0 ? 1 : 0;
        }
      }
      return BoolVec(std::move(bools), std::move(nulls));
    }
    case VKind::kIsNull:
    case VKind::kIsNotNull: {
      FEDFLOW_ASSIGN_OR_RETURN(Vec v, EvalVNode(nodes, node.left, batch, sel));
      const bool want_null = node.kind == VKind::kIsNull;
      if (v.is_const) {
        return ConstVec(Value::Bool(v.cval.is_null() == want_null));
      }
      std::vector<uint8_t> bools(n, 0);
      for (size_t k = 0; k < n; ++k) {
        bools[k] = v.NullAt(k) == want_null ? 1 : 0;
      }
      return BoolVec(std::move(bools), std::vector<uint8_t>(n, 0));
    }
    case VKind::kNeg: {
      FEDFLOW_ASSIGN_OR_RETURN(Vec v, EvalVNode(nodes, node.left, batch, sel));
      if (v.is_const) {
        FEDFLOW_ASSIGN_OR_RETURN(Value nv,
                                 ApplyUnaryOp(sql::UnaryOp::kNeg, v.cval));
        return ConstVec(std::move(nv));
      }
      if (!v.generic() &&
          (v.type == DataType::kInt || v.type == DataType::kBigInt ||
           v.type == DataType::kDouble)) {
        Vec out;
        out.type = v.type;
        out.nulls = v.nulls;
        if (v.type == DataType::kDouble) {
          out.f64s.resize(n);
          for (size_t k = 0; k < n; ++k) out.f64s[k] = -v.f64s[k];
        } else {
          out.i64s.resize(n);
          for (size_t k = 0; k < n; ++k) {
            if (v.type == DataType::kInt) {
              out.i64s[k] = -static_cast<int32_t>(v.i64s[k]);
            } else {
              out.i64s[k] = -v.i64s[k];
            }
          }
        }
        return out;
      }
      Vec out;
      out.vals.resize(n);
      for (size_t k = 0; k < n; ++k) {
        FEDFLOW_ASSIGN_OR_RETURN(out.vals[k],
                                 ApplyUnaryOp(sql::UnaryOp::kNeg, v.At(k)));
      }
      return out;
    }
    case VKind::kCmp: {
      FEDFLOW_ASSIGN_OR_RETURN(Vec l, EvalVNode(nodes, node.left, batch, sel));
      FEDFLOW_ASSIGN_OR_RETURN(Vec r,
                               EvalVNode(nodes, node.right, batch, sel));
      return CmpVec(node.bop, l, r, n);
    }
    case VKind::kArith: {
      FEDFLOW_ASSIGN_OR_RETURN(Vec l, EvalVNode(nodes, node.left, batch, sel));
      FEDFLOW_ASSIGN_OR_RETURN(Vec r,
                               EvalVNode(nodes, node.right, batch, sel));
      return ArithVec(node.bop, l, r, n);
    }
    case VKind::kGenericBin: {
      FEDFLOW_ASSIGN_OR_RETURN(Vec l, EvalVNode(nodes, node.left, batch, sel));
      FEDFLOW_ASSIGN_OR_RETURN(Vec r,
                               EvalVNode(nodes, node.right, batch, sel));
      return GenBinVec(node.bop, l, r, n);
    }
  }
  return Status::Internal("bad vector predicate node");
}

/// Flattens `expr` into `nodes`; -1 when the expression is not vectorizable
/// (CASE, function calls, unresolvable references).
int CompileVNode(const Expr& expr, const RowScope& scope,
                 std::vector<VNode>* nodes) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      VNode node;
      node.kind = VKind::kConst;
      node.cval = static_cast<const LiteralExpr&>(expr).value();
      nodes->push_back(std::move(node));
      return static_cast<int>(nodes->size()) - 1;
    }
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      Result<RowScope::ResolvedRef> loc =
          scope.Resolve(ref.qualifier(), ref.name());
      if (!loc.ok()) return -1;
      VNode node;
      if (loc->pos < 0) {
        node.kind = VKind::kConst;
        node.cval = std::move(loc->param);
      } else {
        node.kind = VKind::kCol;
        node.col = static_cast<size_t>(loc->pos);
      }
      nodes->push_back(std::move(node));
      return static_cast<int>(nodes->size()) - 1;
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      const int left = CompileVNode(*bin.left(), scope, nodes);
      if (left < 0) return -1;
      const int right = CompileVNode(*bin.right(), scope, nodes);
      if (right < 0) return -1;
      VNode node;
      node.bop = bin.op();
      node.left = left;
      node.right = right;
      switch (bin.op()) {
        case BinaryOp::kAnd:
          node.kind = VKind::kAnd;
          break;
        case BinaryOp::kOr:
          node.kind = VKind::kOr;
          break;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          node.kind = VKind::kCmp;
          break;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          node.kind = VKind::kArith;
          break;
        case BinaryOp::kConcat:
        case BinaryOp::kLike:
          node.kind = VKind::kGenericBin;
          break;
      }
      nodes->push_back(std::move(node));
      return static_cast<int>(nodes->size()) - 1;
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      const int child = CompileVNode(*un.operand(), scope, nodes);
      if (child < 0) return -1;
      VNode node;
      node.uop = un.op();
      node.left = child;
      switch (un.op()) {
        case UnaryOp::kNeg:
          node.kind = VKind::kNeg;
          break;
        case UnaryOp::kNot:
          node.kind = VKind::kNot;
          break;
        case UnaryOp::kIsNull:
          node.kind = VKind::kIsNull;
          break;
        case UnaryOp::kIsNotNull:
          node.kind = VKind::kIsNotNull;
          break;
      }
      nodes->push_back(std::move(node));
      return static_cast<int>(nodes->size()) - 1;
    }
    case ExprKind::kFunctionCall:
    case ExprKind::kCase:
      return -1;
  }
  return -1;
}

}  // namespace

std::optional<VectorPredicate> VectorPredicate::Compile(
    const sql::Expr& expr, const RowScope& scope) {
  VectorPredicate pred;
  pred.root_ = CompileVNode(expr, scope, &pred.nodes_);
  if (pred.root_ < 0) return std::nullopt;
  pred.label_ = expr.ToSql();
  return pred;
}

Status VectorPredicate::FilterSelection(const ColumnBatch& batch,
                                        std::vector<uint32_t>* sel) const {
  if (sel->empty()) return Status::OK();
  Result<Vec> v = EvalVNode(nodes_, root_, batch, *sel);
  FEDFLOW_RETURN_NOT_OK(v.status());
  // The filter keeps exactly the rows whose value is non-NULL BOOLEAN TRUE
  // (no numeric coercion at the root — same rule as the row filter).
  if (v->is_const) {
    if (v->cval.is_null() || v->cval.type() != DataType::kBool ||
        !v->cval.AsBool()) {
      sel->clear();
    }
    return Status::OK();
  }
  size_t w = 0;
  if (v->generic()) {
    for (size_t k = 0; k < sel->size(); ++k) {
      const Value& val = v->vals[k];
      if (!val.is_null() && val.type() == DataType::kBool && val.AsBool()) {
        (*sel)[w++] = (*sel)[k];
      }
    }
  } else if (v->type == DataType::kBool) {
    for (size_t k = 0; k < sel->size(); ++k) {
      if (v->nulls[k] == 0 && v->bools[k] != 0) {
        (*sel)[w++] = (*sel)[k];
      }
    }
  }
  // Any other typed result can never be BOOLEAN TRUE: keep nothing (w = 0).
  sel->resize(w);
  return Status::OK();
}

}  // namespace fedflow::fdbs
