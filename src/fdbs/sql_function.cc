#include "fdbs/sql_function.h"

#include "fdbs/database.h"

namespace fedflow::fdbs {

Result<Table> SqlTableFunction::Invoke(const std::vector<Value>& args,
                                       ExecContext& ctx) {
  if (ctx.db == nullptr) {
    return Status::Internal("SQL function invoked without a database");
  }
  if (ctx.depth >= ExecContext::kMaxDepth) {
    return Status::ExecutionError("maximum UDTF nesting depth exceeded in " +
                                  def_->name);
  }
  if (args.size() != def_->params.size()) {
    return Status::InvalidArgument(def_->name + " expects " +
                                   std::to_string(def_->params.size()) +
                                   " argument(s)");
  }
  ParamScope params;
  params.function_name = def_->name;
  for (size_t i = 0; i < args.size(); ++i) {
    FEDFLOW_ASSIGN_OR_RETURN(Value coerced,
                             args[i].CastTo(def_->params[i].type));
    params.params.emplace_back(def_->params[i].name, std::move(coerced));
  }
  ExecContext inner = ctx;
  inner.depth = ctx.depth + 1;
  FEDFLOW_ASSIGN_OR_RETURN(Table body_result,
                           ctx.db->ExecuteSelect(*def_->body, inner, &params));
  if (body_result.schema().num_columns() != def_->returns.num_columns()) {
    return Status::TypeError(
        def_->name + ": body produces " +
        std::to_string(body_result.schema().num_columns()) +
        " column(s) but RETURNS TABLE declares " +
        std::to_string(def_->returns.num_columns()));
  }
  // Rename and coerce to the declared schema.
  Table out(def_->returns);
  for (Row& r : body_result.mutable_rows()) {
    FEDFLOW_RETURN_NOT_OK(out.AppendRow(std::move(r)));
  }
  return out;
}

}  // namespace fedflow::fdbs
