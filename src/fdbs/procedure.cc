#include "fdbs/procedure.h"

#include "common/strings.h"
#include "fdbs/database.h"
#include "fdbs/eval.h"

namespace fedflow::fdbs {

namespace {

/// Per-CALL interpreter state.
class ProcedureRunner {
 public:
  ProcedureRunner(Database* db, const StoredProcedure& proc,
                  ExecContext& ctx)
      : db_(db), proc_(proc), ctx_(ctx), eval_(&db->catalog()) {}

  Result<Table> Run(const std::vector<Value>& args) {
    if (args.size() != proc_.params.size()) {
      return Status::InvalidArgument(
          proc_.name + " expects " + std::to_string(proc_.params.size()) +
          " argument(s), got " + std::to_string(args.size()));
    }
    scope_.function_name = proc_.name;
    for (size_t i = 0; i < args.size(); ++i) {
      FEDFLOW_ASSIGN_OR_RETURN(Value v,
                               args[i].CastTo(proc_.params[i].type));
      scope_.params.emplace_back(proc_.params[i].name, std::move(v));
    }
    FEDFLOW_ASSIGN_OR_RETURN(bool returned, Execute(*proc_.body));
    (void)returned;
    if (result_.has_value()) return std::move(*result_);
    if (emitted_.has_value()) return std::move(*emitted_);
    return Table();
  }

 private:
  /// Executes a statement list; true when RETURN was hit.
  Result<bool> Execute(const std::vector<sql::PsmStatement>& stmts) {
    for (const sql::PsmStatement& stmt : stmts) {
      if (++steps_ > kMaxPsmSteps) {
        return Status::ExecutionError("procedure " + proc_.name +
                                      " exceeded the PSM step budget "
                                      "(non-terminating WHILE?)");
      }
      switch (stmt.kind) {
        case sql::PsmStatement::Kind::kDeclare: {
          for (const auto& [name, value] : scope_.params) {
            if (EqualsIgnoreCase(name, stmt.var)) {
              return Status::InvalidArgument("variable already declared: " +
                                             stmt.var);
            }
          }
          FEDFLOW_ASSIGN_OR_RETURN(Value init,
                                   Value::Null().CastTo(stmt.var_type));
          scope_.params.emplace_back(stmt.var, std::move(init));
          declared_types_.emplace_back(ToUpper(stmt.var), stmt.var_type);
          break;
        }
        case sql::PsmStatement::Kind::kSet: {
          FEDFLOW_ASSIGN_OR_RETURN(Value v, EvalExpr(*stmt.expr));
          for (const auto& [name, type] : declared_types_) {
            if (name == ToUpper(stmt.var)) {
              FEDFLOW_ASSIGN_OR_RETURN(v, v.CastTo(type));
            }
          }
          bool found = false;
          for (auto& [name, value] : scope_.params) {
            if (EqualsIgnoreCase(name, stmt.var)) {
              value = std::move(v);
              found = true;
              break;
            }
          }
          if (!found) {
            return Status::NotFound("SET of undeclared variable " + stmt.var +
                                    " in procedure " + proc_.name);
          }
          break;
        }
        case sql::PsmStatement::Kind::kIf: {
          FEDFLOW_ASSIGN_OR_RETURN(bool cond, EvalCondition(*stmt.expr));
          const auto& branch = cond ? stmt.then_branch : stmt.else_branch;
          FEDFLOW_ASSIGN_OR_RETURN(bool returned, Execute(branch));
          if (returned) return true;
          break;
        }
        case sql::PsmStatement::Kind::kWhile: {
          while (true) {
            FEDFLOW_ASSIGN_OR_RETURN(bool cond, EvalCondition(*stmt.expr));
            if (!cond) break;
            if (++steps_ > kMaxPsmSteps) {
              return Status::ExecutionError(
                  "procedure " + proc_.name +
                  " exceeded the PSM step budget (non-terminating WHILE?)");
            }
            FEDFLOW_ASSIGN_OR_RETURN(bool returned,
                                     Execute(stmt.then_branch));
            if (returned) return true;
          }
          break;
        }
        case sql::PsmStatement::Kind::kReturn: {
          FEDFLOW_ASSIGN_OR_RETURN(Table t, RunSelect(*stmt.select));
          result_ = std::move(t);
          return true;
        }
        case sql::PsmStatement::Kind::kEmit: {
          FEDFLOW_ASSIGN_OR_RETURN(Table t, RunSelect(*stmt.select));
          if (!emitted_.has_value()) {
            emitted_ = std::move(t);
          } else {
            if (t.schema().num_columns() !=
                emitted_->schema().num_columns()) {
              return Status::TypeError(
                  "EMIT arity mismatch in procedure " + proc_.name);
            }
            for (Row& r : t.mutable_rows()) {
              FEDFLOW_RETURN_NOT_OK(emitted_->AppendRow(std::move(r)));
            }
          }
          break;
        }
      }
    }
    return false;
  }

  Result<Value> EvalExpr(const sql::Expr& expr) {
    RowScope scope;
    scope.set_params(&scope_);
    return eval_.Eval(expr, scope);
  }

  Result<bool> EvalCondition(const sql::Expr& expr) {
    FEDFLOW_ASSIGN_OR_RETURN(Value v, EvalExpr(expr));
    if (v.is_null()) return false;
    if (v.type() == DataType::kBool) return v.AsBool();
    FEDFLOW_ASSIGN_OR_RETURN(int64_t n, v.ToInt64());
    return n != 0;
  }

  Result<Table> RunSelect(const sql::SelectStmt& select) {
    ExecContext inner = ctx_;
    inner.depth = ctx_.depth + 1;
    if (inner.depth >= ExecContext::kMaxDepth) {
      return Status::ExecutionError("maximum nesting depth exceeded in " +
                                    proc_.name);
    }
    return db_->ExecuteSelect(select, inner, &scope_);
  }

  Database* db_;
  const StoredProcedure& proc_;
  ExecContext& ctx_;
  Evaluator eval_;
  ParamScope scope_;  // parameters + declared variables (current values)
  std::vector<std::pair<std::string, DataType>> declared_types_;
  std::optional<Table> result_;
  std::optional<Table> emitted_;
  int64_t steps_ = 0;
};

}  // namespace

Result<Table> ExecuteProcedure(Database* db, const StoredProcedure& procedure,
                               const std::vector<Value>& args,
                               ExecContext& ctx) {
  ProcedureRunner runner(db, procedure, ctx);
  return runner.Run(args);
}

}  // namespace fedflow::fdbs
