// SQL-bodied table functions: CREATE FUNCTION ... LANGUAGE SQL RETURN SELECT.
// These are the paper's I-UDTFs — federated functions whose integration logic
// is one SQL statement over A-UDTFs (the "one SQL statement" restriction of
// the product the paper used is faithfully enforced by the grammar).
#ifndef FEDFLOW_FDBS_SQL_FUNCTION_H_
#define FEDFLOW_FDBS_SQL_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "fdbs/table_function.h"
#include "sql/ast.h"

namespace fedflow::fdbs {

/// Table function backed by a single SELECT statement.
class SqlTableFunction : public TableFunction {
 public:
  explicit SqlTableFunction(std::shared_ptr<sql::CreateFunctionStmt> def)
      : def_(std::move(def)) {}

  const std::string& name() const override { return def_->name; }
  const std::vector<Column>& params() const override { return def_->params; }
  const Schema& result_schema() const override { return def_->returns; }

  /// Binds arguments to parameters and runs the body. The body result is
  /// coerced column-by-column to the declared RETURNS TABLE schema.
  Result<Table> Invoke(const std::vector<Value>& args,
                       ExecContext& ctx) override;

  /// The parsed function body (for inspection and tests).
  const sql::SelectStmt& body() const { return *def_->body; }

 private:
  std::shared_ptr<sql::CreateFunctionStmt> def_;
};

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_SQL_FUNCTION_H_
