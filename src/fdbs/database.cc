#include "fdbs/database.h"

#include <memory>

#include "fdbs/builtins.h"
#include "fdbs/executor.h"
#include "fdbs/procedure.h"
#include "fdbs/sql_function.h"
#include "sql/parser.h"

namespace fedflow::fdbs {

Database::Database() {
  Status st = RegisterBuiltins(&catalog_);
  (void)st;  // builtin registration cannot fail on a fresh catalog
}

Result<Table> Database::Execute(const std::string& statement) {
  ExecContext ctx;
  ctx.db = this;
  return Execute(statement, ctx);
}

Result<Table> Database::Execute(const std::string& statement,
                                ExecContext& ctx) {
  if (ctx.db == nullptr) ctx.db = this;
  FEDFLOW_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(statement));
  return Dispatch(stmt, ctx);
}

Result<Table> Database::ExecuteSelect(const sql::SelectStmt& stmt,
                                      ExecContext& ctx,
                                      const ParamScope* params) {
  if (ctx.db == nullptr) ctx.db = this;
  SelectExecutor executor(this, &ctx, params);
  return executor.Execute(stmt);
}

Result<Table> Database::Dispatch(const sql::Statement& stmt, ExecContext& ctx) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(*stmt.select, ctx);
    case sql::StatementKind::kCreateTable: {
      FEDFLOW_RETURN_NOT_OK(catalog_.CreateTable(stmt.create_table->name,
                                                 stmt.create_table->schema));
      return Table();
    }
    case sql::StatementKind::kInsert: {
      // INSERT ... SELECT runs the query BEFORE taking the table handle, so
      // a self-referencing insert reads a consistent snapshot.
      std::vector<Row> new_rows;
      if (stmt.insert->select != nullptr) {
        FEDFLOW_ASSIGN_OR_RETURN(Table selected,
                                 ExecuteSelect(*stmt.insert->select, ctx));
        new_rows = std::move(selected.mutable_rows());
      } else {
        Evaluator eval(&catalog_);
        RowScope empty_scope;
        for (const auto& row_exprs : stmt.insert->rows) {
          Row row;
          row.reserve(row_exprs.size());
          for (const sql::ExprPtr& e : row_exprs) {
            FEDFLOW_ASSIGN_OR_RETURN(Value v, eval.Eval(*e, empty_scope));
            row.push_back(std::move(v));
          }
          new_rows.push_back(std::move(row));
        }
      }
      FEDFLOW_ASSIGN_OR_RETURN(Table * table,
                               catalog_.GetTable(stmt.insert->table));
      for (Row& row : new_rows) {
        FEDFLOW_RETURN_NOT_OK(table->AppendRow(std::move(row)));
      }
      return Table();
    }
    case sql::StatementKind::kUpdate: {
      FEDFLOW_ASSIGN_OR_RETURN(Table * table,
                               catalog_.GetTable(stmt.update->table));
      Evaluator eval(&catalog_);
      RowScope scope;
      scope.AddBinding(stmt.update->table, &table->schema(), 0);
      // Resolve assignment targets up front.
      std::vector<std::pair<size_t, const sql::Expr*>> sets;
      for (const auto& [col, expr] : stmt.update->assignments) {
        FEDFLOW_ASSIGN_OR_RETURN(size_t idx, table->schema().FindColumn(col));
        sets.emplace_back(idx, expr.get());
      }
      int64_t affected = 0;
      for (Row& r : table->mutable_rows()) {
        scope.set_row(&r);
        if (stmt.update->where != nullptr) {
          FEDFLOW_ASSIGN_OR_RETURN(Value keep,
                                   eval.Eval(*stmt.update->where, scope));
          if (keep.is_null() || keep.type() != DataType::kBool ||
              !keep.AsBool()) {
            continue;
          }
        }
        // All right-hand sides see the OLD row (standard SQL).
        std::vector<Value> new_values;
        new_values.reserve(sets.size());
        for (const auto& [idx, expr] : sets) {
          FEDFLOW_ASSIGN_OR_RETURN(Value v, eval.Eval(*expr, scope));
          if (!v.is_null()) {
            FEDFLOW_ASSIGN_OR_RETURN(
                v, v.CastTo(table->schema().column(idx).type));
          }
          new_values.push_back(std::move(v));
        }
        for (size_t i = 0; i < sets.size(); ++i) {
          r[sets[i].first] = std::move(new_values[i]);
        }
        ++affected;
      }
      Schema result_schema;
      result_schema.AddColumn("affected", DataType::kBigInt);
      Table result(result_schema);
      result.AppendRowUnchecked({Value::BigInt(affected)});
      return result;
    }
    case sql::StatementKind::kDelete: {
      FEDFLOW_ASSIGN_OR_RETURN(Table * table,
                               catalog_.GetTable(stmt.del->table));
      Evaluator eval(&catalog_);
      RowScope scope;
      scope.AddBinding(stmt.del->table, &table->schema(), 0);
      std::vector<Row> kept;
      int64_t affected = 0;
      for (Row& r : table->mutable_rows()) {
        bool remove = true;
        if (stmt.del->where != nullptr) {
          scope.set_row(&r);
          FEDFLOW_ASSIGN_OR_RETURN(Value v,
                                   eval.Eval(*stmt.del->where, scope));
          remove = !v.is_null() && v.type() == DataType::kBool && v.AsBool();
        }
        if (remove) {
          ++affected;
        } else {
          kept.push_back(std::move(r));
        }
      }
      table->mutable_rows() = std::move(kept);
      Schema result_schema;
      result_schema.AddColumn("affected", DataType::kBigInt);
      Table result(result_schema);
      result.AppendRowUnchecked({Value::BigInt(affected)});
      return result;
    }
    case sql::StatementKind::kCreateFunction: {
      // Transfer ownership of the parsed definition into the function object.
      auto def = std::make_shared<sql::CreateFunctionStmt>();
      def->name = stmt.create_function->name;
      def->params = stmt.create_function->params;
      def->returns = stmt.create_function->returns;
      def->body = std::make_unique<sql::SelectStmt>(
          std::move(*stmt.create_function->body));
      if (catalog_.HasScalarFunction(def->name)) {
        return Status::AlreadyExists(
            "a scalar function with this name exists: " + def->name);
      }
      FEDFLOW_RETURN_NOT_OK(catalog_.RegisterTableFunction(
          std::make_shared<SqlTableFunction>(std::move(def))));
      return Table();
    }
    case sql::StatementKind::kCreateProcedure: {
      StoredProcedure proc;
      proc.name = stmt.create_procedure->name;
      proc.params = stmt.create_procedure->params;
      proc.body = std::make_shared<std::vector<sql::PsmStatement>>(
          std::move(stmt.create_procedure->body));
      FEDFLOW_RETURN_NOT_OK(catalog_.RegisterProcedure(std::move(proc)));
      return Table();
    }
    case sql::StatementKind::kCall: {
      FEDFLOW_ASSIGN_OR_RETURN(const StoredProcedure* proc,
                               catalog_.GetProcedure(stmt.call->name));
      Evaluator eval(&catalog_);
      RowScope empty_scope;
      std::vector<Value> args;
      args.reserve(stmt.call->args.size());
      for (const sql::ExprPtr& e : stmt.call->args) {
        FEDFLOW_ASSIGN_OR_RETURN(Value v, eval.Eval(*e, empty_scope));
        args.push_back(std::move(v));
      }
      return ExecuteProcedure(this, *proc, args, ctx);
    }
    case sql::StatementKind::kDrop: {
      if (stmt.drop->is_procedure) {
        FEDFLOW_RETURN_NOT_OK(catalog_.DropProcedure(stmt.drop->name));
        return Table();
      }
      if (stmt.drop->is_function) {
        FEDFLOW_RETURN_NOT_OK(catalog_.DropTableFunction(stmt.drop->name));
      } else {
        FEDFLOW_RETURN_NOT_OK(catalog_.DropTable(stmt.drop->name));
      }
      return Table();
    }
  }
  return Status::Internal("bad statement kind");
}

}  // namespace fedflow::fdbs
