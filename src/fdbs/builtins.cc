#include "fdbs/builtins.h"

#include <cmath>

#include "common/strings.h"
#include "fdbs/catalog.h"

namespace fedflow::fdbs {

namespace {

Status RegisterCast(Catalog* catalog, const std::string& name,
                    DataType target) {
  ScalarFunctionDef def;
  def.name = name;
  def.arity = 1;
  def.fn = [target](const std::vector<Value>& args) -> Result<Value> {
    return args[0].CastTo(target);
  };
  def.return_type = [target](const std::vector<DataType>&) { return target; };
  return catalog->RegisterScalarFunction(std::move(def));
}

}  // namespace

Status RegisterBuiltins(Catalog* catalog) {
  // SQL cast functions, DB2 style: BIGINT(x), INT(x), DOUBLE(x), VARCHAR(x).
  FEDFLOW_RETURN_NOT_OK(RegisterCast(catalog, "INT", DataType::kInt));
  FEDFLOW_RETURN_NOT_OK(RegisterCast(catalog, "INTEGER", DataType::kInt));
  FEDFLOW_RETURN_NOT_OK(RegisterCast(catalog, "BIGINT", DataType::kBigInt));
  FEDFLOW_RETURN_NOT_OK(RegisterCast(catalog, "DOUBLE", DataType::kDouble));
  FEDFLOW_RETURN_NOT_OK(RegisterCast(catalog, "VARCHAR", DataType::kVarchar));

  ScalarFunctionDef upper;
  upper.name = "UPPER";
  upper.arity = 1;
  upper.fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].is_null()) return Value::Null();
    FEDFLOW_ASSIGN_OR_RETURN(Value s, args[0].CastTo(DataType::kVarchar));
    return Value::Varchar(ToUpper(s.AsVarchar()));
  };
  upper.return_type = [](const std::vector<DataType>&) {
    return DataType::kVarchar;
  };
  FEDFLOW_RETURN_NOT_OK(catalog->RegisterScalarFunction(std::move(upper)));

  ScalarFunctionDef lower;
  lower.name = "LOWER";
  lower.arity = 1;
  lower.fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].is_null()) return Value::Null();
    FEDFLOW_ASSIGN_OR_RETURN(Value s, args[0].CastTo(DataType::kVarchar));
    return Value::Varchar(ToLower(s.AsVarchar()));
  };
  lower.return_type = [](const std::vector<DataType>&) {
    return DataType::kVarchar;
  };
  FEDFLOW_RETURN_NOT_OK(catalog->RegisterScalarFunction(std::move(lower)));

  ScalarFunctionDef length;
  length.name = "LENGTH";
  length.arity = 1;
  length.fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].is_null()) return Value::Null();
    FEDFLOW_ASSIGN_OR_RETURN(Value s, args[0].CastTo(DataType::kVarchar));
    return Value::Int(static_cast<int32_t>(s.AsVarchar().size()));
  };
  length.return_type = [](const std::vector<DataType>&) {
    return DataType::kInt;
  };
  FEDFLOW_RETURN_NOT_OK(catalog->RegisterScalarFunction(std::move(length)));

  ScalarFunctionDef substr;
  substr.name = "SUBSTR";
  substr.arity = 3;
  substr.fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].is_null() || args[1].is_null() || args[2].is_null()) {
      return Value::Null();
    }
    FEDFLOW_ASSIGN_OR_RETURN(Value s, args[0].CastTo(DataType::kVarchar));
    FEDFLOW_ASSIGN_OR_RETURN(int64_t start, args[1].ToInt64());
    FEDFLOW_ASSIGN_OR_RETURN(int64_t len, args[2].ToInt64());
    const std::string& str = s.AsVarchar();
    if (start < 1) start = 1;  // SQL is 1-based
    if (static_cast<size_t>(start) > str.size() || len <= 0) {
      return Value::Varchar("");
    }
    return Value::Varchar(str.substr(static_cast<size_t>(start - 1),
                                     static_cast<size_t>(len)));
  };
  substr.return_type = [](const std::vector<DataType>&) {
    return DataType::kVarchar;
  };
  FEDFLOW_RETURN_NOT_OK(catalog->RegisterScalarFunction(std::move(substr)));

  ScalarFunctionDef abs_fn;
  abs_fn.name = "ABS";
  abs_fn.arity = 1;
  abs_fn.fn = [](const std::vector<Value>& args) -> Result<Value> {
    const Value& v = args[0];
    if (v.is_null()) return Value::Null();
    switch (v.type()) {
      case DataType::kInt:
        return Value::Int(v.AsInt() < 0 ? -v.AsInt() : v.AsInt());
      case DataType::kBigInt:
        return Value::BigInt(v.AsBigInt() < 0 ? -v.AsBigInt() : v.AsBigInt());
      case DataType::kDouble:
        return Value::Double(std::fabs(v.AsDouble()));
      case DataType::kNull:
      case DataType::kBool:
      case DataType::kVarchar:
        return Status::TypeError("ABS requires a numeric argument");
    }
    return Status::Internal("bad value type");
  };
  abs_fn.return_type = [](const std::vector<DataType>& args) {
    return args.empty() ? DataType::kNull : args[0];
  };
  FEDFLOW_RETURN_NOT_OK(catalog->RegisterScalarFunction(std::move(abs_fn)));

  ScalarFunctionDef round_fn;
  round_fn.name = "ROUND";
  round_fn.arity = 1;
  round_fn.fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].is_null()) return Value::Null();
    FEDFLOW_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
    return Value::BigInt(static_cast<int64_t>(std::llround(d)));
  };
  round_fn.return_type = [](const std::vector<DataType>&) {
    return DataType::kBigInt;
  };
  FEDFLOW_RETURN_NOT_OK(catalog->RegisterScalarFunction(std::move(round_fn)));

  ScalarFunctionDef mod_fn;
  mod_fn.name = "MOD";
  mod_fn.arity = 2;
  mod_fn.fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    FEDFLOW_ASSIGN_OR_RETURN(int64_t a, args[0].ToInt64());
    FEDFLOW_ASSIGN_OR_RETURN(int64_t b, args[1].ToInt64());
    if (b == 0) return Status::ExecutionError("MOD by zero");
    return Value::BigInt(a % b);
  };
  mod_fn.return_type = [](const std::vector<DataType>&) {
    return DataType::kBigInt;
  };
  FEDFLOW_RETURN_NOT_OK(catalog->RegisterScalarFunction(std::move(mod_fn)));

  ScalarFunctionDef coalesce;
  coalesce.name = "COALESCE";
  coalesce.arity = -1;
  coalesce.fn = [](const std::vector<Value>& args) -> Result<Value> {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  };
  coalesce.return_type = [](const std::vector<DataType>& args) {
    for (DataType t : args) {
      if (t != DataType::kNull) return t;
    }
    return DataType::kNull;
  };
  FEDFLOW_RETURN_NOT_OK(catalog->RegisterScalarFunction(std::move(coalesce)));

  ScalarFunctionDef concat;
  concat.name = "CONCAT";
  concat.arity = -1;
  concat.fn = [](const std::vector<Value>& args) -> Result<Value> {
    std::string out;
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null();
      out += v.ToString();
    }
    return Value::Varchar(std::move(out));
  };
  concat.return_type = [](const std::vector<DataType>&) {
    return DataType::kVarchar;
  };
  FEDFLOW_RETURN_NOT_OK(catalog->RegisterScalarFunction(std::move(concat)));

  return Status::OK();
}

}  // namespace fedflow::fdbs
