// Built-in scalar functions: SQL casts (INT, BIGINT, DOUBLE, VARCHAR) — the
// paper's "simple case" type conversions — plus common helpers.
#ifndef FEDFLOW_FDBS_BUILTINS_H_
#define FEDFLOW_FDBS_BUILTINS_H_

#include "common/status.h"

namespace fedflow::fdbs {

class Catalog;

/// Registers all built-in scalar functions into `catalog`.
Status RegisterBuiltins(Catalog* catalog);

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_BUILTINS_H_
