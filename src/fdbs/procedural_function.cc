#include "fdbs/procedural_function.h"

#include "fdbs/database.h"

namespace fedflow::fdbs {

Result<Table> SqlClient::Query(const std::string& sql) {
  ++statements_;
  if (ctx_->clock != nullptr && overhead_us_ > 0) {
    ctx_->clock->Charge("JDBC calls", overhead_us_);
  }
  ExecContext inner = *ctx_;
  inner.depth = ctx_->depth + 1;
  if (inner.depth >= ExecContext::kMaxDepth) {
    return Status::ExecutionError("maximum UDTF nesting depth exceeded");
  }
  return db_->Execute(sql, inner);
}

Result<Table> ProceduralTableFunction::Invoke(const std::vector<Value>& args,
                                              ExecContext& ctx) {
  if (ctx.db == nullptr) {
    return Status::Internal("procedural function invoked without a database");
  }
  if (args.size() != params_.size()) {
    return Status::InvalidArgument(name_ + " expects " +
                                   std::to_string(params_.size()) +
                                   " argument(s)");
  }
  FEDFLOW_ASSIGN_OR_RETURN(std::vector<Value> coerced, CoerceArgs(args));
  SqlClient client(ctx.db, &ctx, overhead_us_);
  FEDFLOW_ASSIGN_OR_RETURN(Table raw, body_(coerced, &client));
  Table out(schema_);
  for (Row& r : raw.mutable_rows()) {
    FEDFLOW_RETURN_NOT_OK(out.AppendRow(std::move(r)));
  }
  return out;
}

}  // namespace fedflow::fdbs
