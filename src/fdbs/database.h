// The FDBS facade: parse + execute SQL statements against a catalog.
#ifndef FEDFLOW_FDBS_DATABASE_H_
#define FEDFLOW_FDBS_DATABASE_H_

#include <string>

#include "common/result.h"
#include "common/table.h"
#include "fdbs/catalog.h"
#include "fdbs/eval.h"
#include "fdbs/exec_context.h"
#include "sql/ast.h"

namespace fedflow::fdbs {

/// An in-memory federated database system. Base tables hold local data; table
/// functions (UDTFs) are its only window onto non-SQL sources — exactly the
/// integration-server role the paper assigns to the FDBS.
class Database {
 public:
  /// Creates a database with the built-in scalar functions registered
  /// (casts, string and numeric helpers).
  Database();

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Parses and executes one statement. DDL/DML return an empty table.
  Result<Table> Execute(const std::string& statement);

  /// Same, but under an explicit execution context (virtual clock etc.).
  Result<Table> Execute(const std::string& statement, ExecContext& ctx);

  /// Executes an already-parsed SELECT. `params` supplies the enclosing SQL
  /// function's parameters (for I-UDTF bodies); may be null.
  Result<Table> ExecuteSelect(const sql::SelectStmt& stmt, ExecContext& ctx,
                              const ParamScope* params = nullptr);

 private:
  Result<Table> Dispatch(const sql::Statement& stmt, ExecContext& ctx);

  Catalog catalog_;
};

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_DATABASE_H_
