// Per-statement execution context threaded through the FDBS and into UDTFs.
#ifndef FEDFLOW_FDBS_EXEC_CONTEXT_H_
#define FEDFLOW_FDBS_EXEC_CONTEXT_H_

#include "common/row_source.h"
#include "common/vclock.h"

namespace fedflow::obs {
class TraceSession;
class MetricsRegistry;
}  // namespace fedflow::obs

namespace fedflow::sim {
struct FlowState;
}  // namespace fedflow::sim

namespace fedflow::cache {
class PlanCache;
class ResultCache;
}  // namespace fedflow::cache

namespace fedflow::fdbs {

class Database;

/// Carried through planning and execution. The clock is optional: functional
/// tests run without one; the performance experiments install a SimClock so
/// every boundary crossing charges its modeled cost.
struct ExecContext {
  /// Virtual clock for cost accounting; may be null.
  SimClock* clock = nullptr;

  /// The database executing the statement (lets SQL-bodied functions run
  /// their body and procedural UDTFs issue sub-queries).
  Database* db = nullptr;

  /// UDTF nesting depth; guards against runaway recursion through
  /// function bodies referencing themselves.
  int depth = 0;

  /// Apply WHERE conjuncts as early as their referenced FROM items have
  /// produced their columns (prunes intermediate results and lateral
  /// function invocations). Safe for deterministic functions; disable to
  /// compare plans.
  bool predicate_pushdown = true;

  /// Rows per batch pulled through the execution pipeline (the FROM chain,
  /// streaming UDTF invocations, chunked RMI returns). 0 disables batching:
  /// every operator processes its whole input in one batch, reproducing the
  /// fully materializing execution of the pre-streaming engine (used by the
  /// residency bench as the comparison baseline).
  size_t batch_size = kDefaultRowBatchSize;

  /// Optional residency instrumentation for the execution pipeline; may be
  /// null (the default — tracking costs a few counter updates per batch).
  PipelineStats* pipeline_stats = nullptr;

  /// Optional tracing session (src/obs). When set and its tracer is enabled,
  /// the executor and the couplings open spans and the clock's charges are
  /// mirrored into the current span. Null (or a disabled tracer) keeps every
  /// instrumentation site a no-op.
  obs::TraceSession* trace = nullptr;

  /// Optional metrics sink for call counts, retries, and warmth transitions;
  /// may be null.
  obs::MetricsRegistry* metrics = nullptr;

  /// Per-invocation flow state under pooled execution (sim/flow_state.h):
  /// identifies the tenant and carries the leased controller plus its warmth
  /// ledger. Null (or null members) = single-flow mode; couplings fall back
  /// to their construction-time controller/state, which keeps legacy callers
  /// bit-identical.
  sim::FlowState* flow = nullptr;

  /// Compiled-plan cache of the owning server (may be null). Read-only on
  /// the invocation path: couplings and the procedural interpreter fetch the
  /// registration-time plan instead of recompiling.
  cache::PlanCache* plan_cache = nullptr;

  /// Result cache of the owning server (may be null). Only consulted when
  /// use_result_cache is also set — caching is opt-in per statement, like
  /// predicate_pushdown, so the default path stays bit-identical.
  cache::ResultCache* result_cache = nullptr;

  /// Per-statement opt-in for result-cache lookups/inserts.
  bool use_result_cache = false;

  /// Run the execution pipeline over column batches where the operators
  /// support it (vectorized WHERE conjuncts, the columnar lateral splice,
  /// columnar drain). Purely a wall-clock optimization: results, row order,
  /// batch boundaries, pipeline statistics, and virtual-time charges are
  /// identical to the row-at-a-time path. Off = always row-at-a-time (the
  /// differential harnesses compare the two).
  bool columnar = true;

  /// The effective batch size (batch_size == 0 means "unbounded").
  size_t EffectiveBatchSize() const {
    return batch_size == 0 ? static_cast<size_t>(-1) : batch_size;
  }

  /// Maximum allowed UDTF nesting depth.
  static constexpr int kMaxDepth = 32;
};

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_EXEC_CONTEXT_H_
