// Per-statement execution context threaded through the FDBS and into UDTFs.
#ifndef FEDFLOW_FDBS_EXEC_CONTEXT_H_
#define FEDFLOW_FDBS_EXEC_CONTEXT_H_

#include "common/vclock.h"

namespace fedflow::fdbs {

class Database;

/// Carried through planning and execution. The clock is optional: functional
/// tests run without one; the performance experiments install a SimClock so
/// every boundary crossing charges its modeled cost.
struct ExecContext {
  /// Virtual clock for cost accounting; may be null.
  SimClock* clock = nullptr;

  /// The database executing the statement (lets SQL-bodied functions run
  /// their body and procedural UDTFs issue sub-queries).
  Database* db = nullptr;

  /// UDTF nesting depth; guards against runaway recursion through
  /// function bodies referencing themselves.
  int depth = 0;

  /// Apply WHERE conjuncts as early as their referenced FROM items have
  /// produced their columns (prunes intermediate results and lateral
  /// function invocations). Safe for deterministic functions; disable to
  /// compare plans.
  bool predicate_pushdown = true;

  /// Maximum allowed UDTF nesting depth.
  static constexpr int kMaxDepth = 32;
};

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_EXEC_CONTEXT_H_
