// SELECT execution. The FROM clause is executed as a lateral chain in
// dependency order (DB2 semantics the paper relies on): a table-function
// argument may reference columns of other FROM items, which induces a
// precedence structure; cycles are rejected — the structural reason the UDTF
// approach cannot express the paper's cyclic mapping case.
#ifndef FEDFLOW_FDBS_EXECUTOR_H_
#define FEDFLOW_FDBS_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "common/table.h"
#include "fdbs/eval.h"
#include "fdbs/exec_context.h"
#include "sql/ast.h"

namespace fedflow::fdbs {

class Database;

/// Executes one SELECT statement against a database.
class SelectExecutor {
 public:
  /// `params` (nullable) supplies the enclosing SQL function's parameters.
  SelectExecutor(Database* db, ExecContext* ctx, const ParamScope* params)
      : db_(db), ctx_(ctx), params_(params) {}

  /// Runs the statement to a materialized result table.
  Result<Table> Execute(const sql::SelectStmt& stmt);

  /// Computes the execution order of the FROM items: a stable topological
  /// sort of the lateral dependency graph. InvalidArgument on cyclic
  /// dependencies. Exposed for planner tests.
  static Result<std::vector<size_t>> LateralOrder(
      const sql::SelectStmt& stmt,
      const std::vector<const Schema*>& item_schemas);

 private:
  /// Executes the FROM items in lateral order. WHERE conjuncts applicable
  /// during the chain are applied eagerly (predicate pushdown); the ones
  /// that were not are returned through `remaining_predicates`.
  ///
  /// When columnar execution is on and the whole chain supports it, the
  /// result is delivered column-wise through `columnar_result` (with
  /// `*result_is_columnar` set) and the returned Table is empty; otherwise
  /// the Table carries the rows as before.
  Result<Table> ExecuteFromChain(
      const sql::SelectStmt& stmt, RowScope* scope, Schema* combined_schema,
      std::vector<sql::ExprPtr>* remaining_predicates,
      ColumnBatch* columnar_result, bool* result_is_columnar);

  /// True when `expr` can be evaluated at the current point in the lateral
  /// chain: pushdown is on, every column reference resolves unambiguously
  /// against the FULL schema, and its binding is already visible. This is
  /// the dynamic counterpart of the plan optimizer's predicate sinking
  /// (plan/optimizer.h): a conjunct the optimizer sinks onto call node C
  /// becomes applicable here exactly when C's FROM item has produced its
  /// columns.
  bool ConjunctApplicable(const sql::Expr& expr, RowScope* scope,
                          const std::vector<bool>& visible) const;

  Database* db_;
  ExecContext* ctx_;
  const ParamScope* params_;
};

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_EXECUTOR_H_
