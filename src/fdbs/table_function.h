// The user-defined table function (UDTF) interface: the FDBS's only window
// onto non-SQL sources, exactly as in the paper (read access, result returned
// as a table, referencable in the FROM clause).
#ifndef FEDFLOW_FDBS_TABLE_FUNCTION_H_
#define FEDFLOW_FDBS_TABLE_FUNCTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/row_source.h"
#include "common/table.h"
#include "fdbs/exec_context.h"

namespace fedflow::fdbs {

/// A table function: typed parameters in, a table out. Implementations
/// include SQL-bodied I-UDTFs, A-UDTFs bridging to application systems, and
/// the SQL/MED wrapper UDTF that starts workflow processes.
class TableFunction {
 public:
  virtual ~TableFunction() = default;

  /// Function name as referenced in SQL (case-insensitive).
  virtual const std::string& name() const = 0;

  /// Declared parameters (names are informational; binding is positional).
  virtual const std::vector<Column>& params() const = 0;

  /// Schema of the returned table.
  virtual const Schema& result_schema() const = 0;

  /// Invokes the function. `args` are already evaluated and coerced to the
  /// declared parameter types. Implementations must return a table whose
  /// schema equals result_schema().
  virtual Result<Table> Invoke(const std::vector<Value>& args,
                               ExecContext& ctx) = 0;

  /// Streaming invocation: returns a source the caller pulls in batches of
  /// `batch_size` rows, so results flow into the consuming pipeline without
  /// a full materialization at the call boundary. The base implementation
  /// adapts Invoke(); functions whose transport can genuinely stream
  /// (chunked RMI of the A-UDTFs, the SQL/MED wrapper) override it.
  virtual Result<RowSourcePtr> InvokeStream(const std::vector<Value>& args,
                                            ExecContext& ctx,
                                            size_t batch_size);

  /// Coerces already-evaluated argument values to the declared parameter
  /// types (Value::CastTo; NULLs pass through). Arity must already match.
  Result<std::vector<Value>> CoerceArgs(std::vector<Value> args) const;
};

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_TABLE_FUNCTION_H_
