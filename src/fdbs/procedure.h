// PSM stored procedures: procedural SQL with variables, IF and WHILE — the
// mechanism the paper names for loops inside the DBMS, with the crucial
// restriction that procedures are invoked with CALL only and can NOT be
// referenced in a FROM clause (so they do not compose with other federated
// functions or tables).
#ifndef FEDFLOW_FDBS_PROCEDURE_H_
#define FEDFLOW_FDBS_PROCEDURE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/table.h"
#include "fdbs/exec_context.h"
#include "sql/ast.h"

namespace fedflow::fdbs {

class Database;

/// A registered stored procedure (parsed body shared with the catalog).
struct StoredProcedure {
  std::string name;
  std::vector<Column> params;
  std::shared_ptr<std::vector<sql::PsmStatement>> body;
};

/// Executes `procedure` with `args`. The result set is whatever RETURN
/// produced, or the union of all EMITted selects, or an empty table.
/// A step budget guards against non-terminating WHILE loops.
Result<Table> ExecuteProcedure(Database* db, const StoredProcedure& procedure,
                               const std::vector<Value>& args,
                               ExecContext& ctx);

/// Maximum number of PSM statements one CALL may execute.
inline constexpr int64_t kMaxPsmSteps = 1000000;

}  // namespace fedflow::fdbs

#endif  // FEDFLOW_FDBS_PROCEDURE_H_
