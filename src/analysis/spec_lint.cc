#include "analysis/spec_lint.h"

#include <optional>
#include <set>
#include <string>

#include "common/dag.h"
#include "common/strings.h"
#include "federation/classify.h"

namespace fedflow::analysis {

namespace {

using federation::FederatedFunctionSpec;
using federation::SpecArg;
using federation::SpecCall;
using federation::SpecJoin;
using federation::SpecOutput;

bool IsNumeric(DataType t) {
  return t == DataType::kInt || t == DataType::kBigInt || t == DataType::kDouble;
}

/// Widening rank among numeric types; higher holds more.
int NumericRank(DataType t) {
  switch (t) {
    case DataType::kInt:
      return 1;
    case DataType::kBigInt:
      return 2;
    case DataType::kDouble:
      return 3;
    case DataType::kNull:
    case DataType::kBool:
    case DataType::kVarchar:
      return 0;
  }
  return 0;
}

/// Collects diagnostics for one spec. Keeps the resolved local functions per
/// call node around so later checks (types, dead nodes) can reuse them.
class SpecLinter {
 public:
  SpecLinter(const FederatedFunctionSpec& spec,
             const appsys::AppSystemRegistry& systems)
      : spec_(spec), systems_(systems) {}

  std::vector<Diagnostic> Run() {
    if (spec_.name.empty()) {
      Error(kSpecNoName, SpecLoc(), "federated function has no name",
            "set FederatedFunctionSpec::name");
    }
    if (spec_.calls.empty()) {
      Error(kSpecNoCalls, SpecLoc(),
            "spec maps to no local-function calls",
            "a mapping needs at least one call node");
      return std::move(diags_);  // nothing else is checkable
    }
    ResolveCalls();
    CheckCallIds();
    CheckArgs();
    CheckJoins();
    CheckOutputs();
    CheckLoop();
    CheckUnusedParams();
    CheckDeadNodes();
    CheckCycles();
    CheckClassification();
    return std::move(diags_);
  }

 private:
  void Error(const char* code, std::string location, std::string message,
             std::string note = "") {
    diags_.push_back(Diagnostic{Severity::kError, code, std::move(location),
                                std::move(message), std::move(note)});
  }
  void Warn(const char* code, std::string location, std::string message,
            std::string note = "") {
    diags_.push_back(Diagnostic{Severity::kWarning, code, std::move(location),
                                std::move(message), std::move(note)});
  }

  std::string SpecLoc() const {
    return "spec:" + (spec_.name.empty() ? std::string("<unnamed>")
                                         : spec_.name);
  }
  std::string NodeLoc(const SpecCall& call) const {
    return SpecLoc() + "/node:" + (call.id.empty() ? "<unnamed>" : call.id);
  }
  std::string ArgLoc(const SpecCall& call, size_t arg_index) const {
    return NodeLoc(call) + "/arg:" + std::to_string(arg_index + 1);
  }

  /// Index of the call node with `id`, or nullopt (case-insensitive).
  std::optional<size_t> CallIndex(const std::string& id) const {
    for (size_t i = 0; i < spec_.calls.size(); ++i) {
      if (EqualsIgnoreCase(spec_.calls[i].id, id)) return i;
    }
    return std::nullopt;
  }

  bool IsDeclaredParam(const std::string& name) const {
    for (const Column& p : spec_.params) {
      if (EqualsIgnoreCase(p.name, name)) return true;
    }
    return false;
  }

  std::optional<DataType> DeclaredParamType(const std::string& name) const {
    for (const Column& p : spec_.params) {
      if (EqualsIgnoreCase(p.name, name)) return p.type;
    }
    return std::nullopt;
  }

  /// Resolves every call node's local function up front; unresolved nodes get
  /// FF005/FF006 here and a nullptr entry that later checks skip over.
  void ResolveCalls() {
    functions_.resize(spec_.calls.size(), nullptr);
    for (size_t i = 0; i < spec_.calls.size(); ++i) {
      const SpecCall& call = spec_.calls[i];
      if (call.id.empty() || call.system.empty() || call.function.empty()) {
        Error(kSpecCallIncomplete, NodeLoc(call),
              "call node needs id, system and function",
              "fill in SpecCall::{id,system,function}");
        continue;
      }
      Result<appsys::AppSystem*> sys = systems_.Get(call.system);
      if (!sys.ok()) {
        Error(kSpecUnknownSystem, NodeLoc(call),
              "unknown application system '" + call.system + "'",
              "registered systems: " + JoinNames(systems_.Names()));
        continue;
      }
      Result<const appsys::LocalFunction*> fn =
          (*sys)->GetFunction(call.function);
      if (!fn.ok()) {
        Error(kSpecUnknownFunction, NodeLoc(call),
              "application system '" + call.system + "' has no function '" +
                  call.function + "'");
        continue;
      }
      functions_[i] = *fn;
    }
  }

  static std::string JoinNames(const std::vector<std::string>& names) {
    std::string out;
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += ", ";
      out += names[i];
    }
    return out;
  }

  void CheckCallIds() {
    for (size_t i = 0; i < spec_.calls.size(); ++i) {
      for (size_t j = i + 1; j < spec_.calls.size(); ++j) {
        if (!spec_.calls[i].id.empty() &&
            EqualsIgnoreCase(spec_.calls[i].id, spec_.calls[j].id)) {
          Error(kSpecDuplicateCallId, NodeLoc(spec_.calls[j]),
                "duplicate call id '" + spec_.calls[j].id + "'",
                "call ids double as SQL correlation names and activity names "
                "and must be unique");
        }
      }
    }
  }

  /// Static type of `node`.`column`, when the node and its function resolve.
  std::optional<DataType> NodeColumnType(const std::string& node,
                                         const std::string& column) const {
    std::optional<size_t> idx = CallIndex(node);
    if (!idx.has_value() || functions_[*idx] == nullptr) return std::nullopt;
    const Schema& schema = functions_[*idx]->result_schema;
    std::optional<size_t> col = schema.IndexOf(column);
    if (!col.has_value()) return std::nullopt;
    return schema.column(*col).type;
  }

  /// Static type of an argument expression, when resolvable.
  std::optional<DataType> ArgType(const SpecArg& arg) const {
    switch (arg.kind) {
      case SpecArg::Kind::kConstant:
        return arg.constant.is_null() ? std::nullopt
                                      : std::optional(arg.constant.type());
      case SpecArg::Kind::kParam:
        if (EqualsIgnoreCase(arg.param, "ITERATION")) return DataType::kInt;
        return DeclaredParamType(arg.param);
      case SpecArg::Kind::kNodeColumn:
        return NodeColumnType(arg.node, arg.column);
    }
    return std::nullopt;
  }

  static std::string DescribeArg(const SpecArg& arg) {
    switch (arg.kind) {
      case SpecArg::Kind::kConstant:
        return "constant " + arg.constant.ToString();
      case SpecArg::Kind::kParam:
        return "parameter " + arg.param;
      case SpecArg::Kind::kNodeColumn:
        return arg.node + "." + arg.column;
    }
    return "?";
  }

  /// Arity, reference resolution, and type compatibility of every argument.
  void CheckArgs() {
    for (size_t i = 0; i < spec_.calls.size(); ++i) {
      const SpecCall& call = spec_.calls[i];
      const appsys::LocalFunction* fn = functions_[i];
      if (fn != nullptr && fn->params.size() != call.args.size()) {
        Error(kSpecArityMismatch, NodeLoc(call),
              call.system + "." + call.function + " expects " +
                  std::to_string(fn->params.size()) +
                  " argument(s), spec supplies " +
                  std::to_string(call.args.size()));
      }
      for (size_t a = 0; a < call.args.size(); ++a) {
        const SpecArg& arg = call.args[a];
        switch (arg.kind) {
          case SpecArg::Kind::kConstant:
            break;
          case SpecArg::Kind::kParam:
            if (EqualsIgnoreCase(arg.param, "ITERATION")) {
              if (!spec_.loop.enabled) {
                Error(kSpecIterationOutsideLoop, ArgLoc(call, a),
                      "ITERATION is only defined inside a do-until loop",
                      "enable SpecLoop or pass an explicit parameter");
              }
            } else if (!IsDeclaredParam(arg.param)) {
              Error(kSpecUnknownParam, ArgLoc(call, a),
                    "references undeclared parameter '" + arg.param + "'");
            }
            break;
          case SpecArg::Kind::kNodeColumn: {
            std::optional<size_t> src = CallIndex(arg.node);
            if (!src.has_value()) {
              Error(kSpecDanglingNode, ArgLoc(call, a),
                    "references unknown call node '" + arg.node + "'");
              break;
            }
            if (*src == i) {
              Error(kSpecSelfReference, ArgLoc(call, a),
                    "call reads its own output column '" + arg.column + "'");
              break;
            }
            if (functions_[*src] != nullptr &&
                !functions_[*src]->result_schema.IndexOf(arg.column)
                     .has_value()) {
              Error(kSpecUnknownNodeColumn, ArgLoc(call, a),
                    "node '" + arg.node + "' has no output column '" +
                        arg.column + "'",
                    "columns: " +
                        functions_[*src]->result_schema.ToString());
            }
            break;
          }
        }
        // Type compatibility against the local function's signature.
        if (fn == nullptr || a >= fn->params.size()) continue;
        std::optional<DataType> got = ArgType(arg);
        if (!got.has_value()) continue;
        DataType want = fn->params[a].type;
        if (*got == want) continue;
        if (IsNumeric(*got) && IsNumeric(want)) {
          if (NumericRank(*got) > NumericRank(want)) {
            Warn(kSpecLossyCoercion, ArgLoc(call, a),
                 std::string(DataTypeName(*got)) + " " + DescribeArg(arg) +
                     " narrows to " + DataTypeName(want) + " parameter " +
                     fn->params[a].name,
                 "large values overflow at runtime");
          }
          continue;  // widening coercion is fine
        }
        Error(kSpecArgTypeMismatch, ArgLoc(call, a),
              DescribeArg(arg) + " has type " + DataTypeName(*got) +
                  " but parameter " + fn->params[a].name + " of " +
                  call.system + "." + call.function + " is " +
                  DataTypeName(want));
      }
    }
  }

  void CheckJoins() {
    for (size_t j = 0; j < spec_.joins.size(); ++j) {
      const SpecJoin& join = spec_.joins[j];
      std::string loc = SpecLoc() + "/join:" + std::to_string(j + 1);
      bool sides_ok = true;
      for (const auto& [node, column] :
           {std::pair{join.left_node, join.left_column},
            std::pair{join.right_node, join.right_column}}) {
        std::optional<size_t> idx = CallIndex(node);
        if (!idx.has_value()) {
          Error(kSpecJoinUnknownNode, loc,
                "join references unknown call node '" + node + "'");
          sides_ok = false;
          continue;
        }
        if (functions_[*idx] != nullptr &&
            !functions_[*idx]->result_schema.IndexOf(column).has_value()) {
          Error(kSpecJoinUnknownColumn, loc,
                "node '" + node + "' has no output column '" + column + "'");
          sides_ok = false;
        }
      }
      if (!sides_ok) continue;
      std::optional<DataType> lt =
          NodeColumnType(join.left_node, join.left_column);
      std::optional<DataType> rt =
          NodeColumnType(join.right_node, join.right_column);
      if (lt.has_value() && rt.has_value() && *lt != *rt &&
          !(IsNumeric(*lt) && IsNumeric(*rt))) {
        Error(kSpecJoinTypeMismatch, loc,
              "join compares " + std::string(DataTypeName(*lt)) + " " +
                  join.left_node + "." + join.left_column + " with " +
                  DataTypeName(*rt) + " " + join.right_node + "." +
                  join.right_column,
              "incomparable types never match at runtime");
      }
    }
  }

  void CheckOutputs() {
    if (spec_.outputs.empty()) {
      Error(kSpecNoOutputs, SpecLoc(), "spec declares no output columns");
      return;
    }
    for (size_t o = 0; o < spec_.outputs.size(); ++o) {
      const SpecOutput& out = spec_.outputs[o];
      std::string loc =
          SpecLoc() + "/output:" +
          (out.name.empty() ? std::to_string(o + 1) : out.name);
      if (out.name.empty()) {
        Error(kSpecOutputUnnamed, loc, "output column has no name");
      }
      for (size_t p = o + 1; p < spec_.outputs.size(); ++p) {
        if (!out.name.empty() &&
            EqualsIgnoreCase(out.name, spec_.outputs[p].name)) {
          Error(kSpecDuplicateOutput, loc,
                "duplicate output column name '" + out.name + "'");
        }
      }
      std::optional<size_t> idx = CallIndex(out.node);
      if (!idx.has_value()) {
        Error(kSpecOutputUnknownNode, loc,
              "output references unknown call node '" + out.node + "'");
        continue;
      }
      if (functions_[*idx] != nullptr &&
          !functions_[*idx]->result_schema.IndexOf(out.column).has_value()) {
        Error(kSpecOutputUnknownColumn, loc,
              "node '" + out.node + "' has no output column '" + out.column +
                  "'",
              "columns: " + functions_[*idx]->result_schema.ToString());
      }
    }
  }

  void CheckLoop() {
    if (!spec_.loop.enabled) return;
    std::string loc = SpecLoc() + "/loop";
    if (spec_.loop.count_param.empty() ||
        !IsDeclaredParam(spec_.loop.count_param)) {
      Error(kSpecBadLoopParam, loc,
            "do-until loop needs a declared count parameter, got '" +
                spec_.loop.count_param + "'");
      return;
    }
    std::optional<DataType> t = DeclaredParamType(spec_.loop.count_param);
    if (t.has_value() && *t != DataType::kInt && *t != DataType::kBigInt) {
      Warn(kSpecLoopParamNotInteger, loc,
           "loop count parameter " + spec_.loop.count_param + " has type " +
               DataTypeName(*t),
           "the ITERATION counter compares against an integer count");
    }
  }

  void CheckUnusedParams() {
    for (const Column& p : spec_.params) {
      bool used = spec_.loop.enabled &&
                  EqualsIgnoreCase(p.name, spec_.loop.count_param);
      for (const SpecCall& call : spec_.calls) {
        for (const SpecArg& arg : call.args) {
          if (arg.kind == SpecArg::Kind::kParam &&
              EqualsIgnoreCase(arg.param, p.name)) {
            used = true;
          }
        }
      }
      if (!used) {
        Warn(kSpecUnusedParam, SpecLoc() + "/param:" + p.name,
             "federated parameter " + p.name + " is never used",
             "drop the parameter or wire it into a call");
      }
    }
  }

  /// A node is dead when neither an output, a join, nor another call consumes
  /// it — it still executes (and costs a remote call) but cannot influence
  /// the federated result.
  void CheckDeadNodes() {
    for (size_t i = 0; i < spec_.calls.size(); ++i) {
      const SpecCall& call = spec_.calls[i];
      if (call.id.empty()) continue;
      bool consumed = false;
      for (const SpecOutput& out : spec_.outputs) {
        if (EqualsIgnoreCase(out.node, call.id)) consumed = true;
      }
      for (const SpecJoin& join : spec_.joins) {
        if (EqualsIgnoreCase(join.left_node, call.id) ||
            EqualsIgnoreCase(join.right_node, call.id)) {
          consumed = true;
        }
      }
      for (size_t j = 0; j < spec_.calls.size() && !consumed; ++j) {
        if (j == i) continue;
        for (const SpecArg& arg : spec_.calls[j].args) {
          if (arg.kind == SpecArg::Kind::kNodeColumn &&
              EqualsIgnoreCase(arg.node, call.id)) {
            consumed = true;
          }
        }
      }
      if (!consumed) {
        Warn(kSpecDeadNode, NodeLoc(call),
             "call node '" + call.id +
                 "' is consumed by no output, join or dependency",
             "the remote call still runs and is paid for");
      }
    }
  }

  /// Kahn's algorithm over resolvable node dependencies; leftovers are on a
  /// cycle. A cycle in the dependency graph has no do-until exit condition by
  /// construction — iteration must use SpecLoop instead.
  void CheckCycles() {
    const size_t n = spec_.calls.size();
    std::vector<std::vector<size_t>> deps(n);
    for (size_t i = 0; i < n; ++i) {
      for (const SpecArg& arg : spec_.calls[i].args) {
        if (arg.kind != SpecArg::Kind::kNodeColumn) continue;
        std::optional<size_t> d = CallIndex(arg.node);
        // Self-references get their own FF diagnostic; excluding them here
        // keeps this check focused on multi-node cycles.
        if (d.has_value() && *d != i) deps[i].push_back(*d);
      }
    }
    dag::TopoSort sorted = dag::StableTopologicalSort(deps);
    if (sorted.ok()) return;
    std::string nodes;
    for (size_t i : sorted.cyclic) {
      if (!nodes.empty()) nodes += ", ";
      nodes += spec_.calls[i].id;
    }
    Error(kSpecCycleWithoutExit, SpecLoc(),
          "dependency cycle between call nodes {" + nodes +
              "} has no do-until exit condition",
          "node dependencies must be acyclic; express iteration via SpecLoop");
  }

  /// Cross-checks the classifier: a spec the single-statement SQL compiler
  /// can express (no do-until loop) must never classify as cyclic/general,
  /// and a looping spec must never classify as UDTF-supported. Catching
  /// drift here keeps the paper's complexity matrix computed, not asserted.
  void CheckClassification() {
    if (HasErrors(diags_)) return;  // classifier needs a valid spec
    Result<federation::MappingCase> c = federation::ClassifySpec(spec_);
    if (!c.ok()) {
      Error(kSpecClassificationInconsistent, SpecLoc(),
            "spec lints clean but ClassifySpec rejects it: " +
                c.status().ToString(),
            "fedlint and the classifier disagree; file a bug");
      return;
    }
    bool sql_expressible = !spec_.loop.enabled;
    if (federation::UdtfSupports(*c) != sql_expressible) {
      Error(kSpecClassificationInconsistent, SpecLoc(),
            std::string("classification '") + federation::MappingCaseName(*c) +
                "' contradicts the mapping structure (" +
                (sql_expressible ? "expressible" : "not expressible") +
                " as one SQL statement)",
            "the UDTF compiler and ClassifySpec must agree");
    }
  }

  const FederatedFunctionSpec& spec_;
  const appsys::AppSystemRegistry& systems_;
  /// Resolved local function per call node; nullptr when unresolvable.
  std::vector<const appsys::LocalFunction*> functions_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> LintSpec(const federation::FederatedFunctionSpec& spec,
                                 const appsys::AppSystemRegistry& systems) {
  return SpecLinter(spec, systems).Run();
}

}  // namespace fedflow::analysis
