// Structured diagnostics for fedlint, the static verification pass over
// federated-function specs, workflow models and generated I-UDTF SQL. A
// Diagnostic pinpoints one defect with a stable code (FF###), a location path
// ("spec:BuySuppComp/node:CheckStock/arg:2") and a human-readable message, so
// defects are testable artifacts instead of free-text runtime errors.
#ifndef FEDFLOW_ANALYSIS_DIAGNOSTIC_H_
#define FEDFLOW_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace fedflow::analysis {

/// How bad a finding is. Errors make registration fail; warnings are
/// collected and queryable but do not block.
enum class Severity {
  kWarning,
  kError,
};

/// Stable display name ("warning" / "error").
const char* SeverityName(Severity severity);

/// One finding of an analyzer pass.
///
/// Code ranges (stable, append-only):
///   FF001..FF049  spec errors          FF050..FF069  spec warnings
///   FF070..FF099  classification consistency
///   FF100..FF149  workflow errors      FF150..FF199  workflow warnings
///   FF200..FF249  I-UDTF SQL errors    FF250..FF299  I-UDTF SQL warnings
///   FF300..FF349  plan consistency (lowering agreement with the plan IR)
///   FF400..FF449  dataflow abstract interpretation (schema FF400..FF409,
///                 cardinality FF410..FF419, budget FF420..FF429,
///                 tenant-flow taint FF430..FF449)
///   FF450..FF459  saga coordination (write-path federated functions)
///
/// The authoritative per-code table (rule name, severity, summary) lives in
/// analysis/code_registry.h and is mirrored in DESIGN.md §13.1.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;      ///< stable code, e.g. "FF008"
  std::string location;  ///< path, e.g. "spec:BuySuppComp/node:GQ/arg:2"
  std::string message;   ///< what is wrong
  std::string note;      ///< optional hint on how to fix it (may be empty)

  /// "error[FF008] spec:X/node:GQ/arg:2: message" (plus "; note: ..." when a
  /// note is present).
  std::string ToString() const;
};

/// True when at least one diagnostic has error severity.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Diagnostics of one severity, in input order.
std::vector<Diagnostic> Filter(const std::vector<Diagnostic>& diagnostics,
                               Severity severity);

/// The codes of `diagnostics`, in input order (golden-test helper).
std::vector<std::string> Codes(const std::vector<Diagnostic>& diagnostics);

/// One line per diagnostic, `ToString()` format, '\n'-joined.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics);

}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_DIAGNOSTIC_H_
