// fedlint pass 3: static analysis of generated I-UDTF SQL. Parses a
// CREATE FUNCTION ... LANGUAGE SQL RETURN SELECT text and resolves every
// reference WITHOUT executing it: lateral TABLE(...) arguments strictly
// left-to-right against the A-UDTF output schemas (DB2's correlation rule),
// SELECT-list and WHERE references against the full FROM scope, and
// FunctionName.Param references against the declared parameters.
#ifndef FEDFLOW_ANALYSIS_SQL_LINT_H_
#define FEDFLOW_ANALYSIS_SQL_LINT_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/schema.h"

namespace fedflow::analysis {

// SQL error codes (FF200..FF249).
inline constexpr char kSqlParseError[] = "FF200";
inline constexpr char kSqlNotCreateFunction[] = "FF201";
inline constexpr char kSqlUnknownTableFunction[] = "FF202";
inline constexpr char kSqlLateralForwardRef[] = "FF203";
inline constexpr char kSqlLateralUnknownColumn[] = "FF204";
inline constexpr char kSqlUnknownRef[] = "FF205";
inline constexpr char kSqlDuplicateAlias[] = "FF206";
inline constexpr char kSqlReturnsArityMismatch[] = "FF207";
inline constexpr char kSqlUnknownParam[] = "FF208";
inline constexpr char kSqlArgArityMismatch[] = "FF209";

// SQL warning codes (FF250..FF299).
inline constexpr char kSqlReturnTypeMismatch[] = "FF250";
inline constexpr char kSqlArgTypeMismatch[] = "FF251";

/// Signature of an A-UDTF as registered in the FDBS catalog.
struct UdtfSignature {
  std::vector<Column> params;
  Schema result_schema;
};

/// Resolves a table-function name (case-insensitive) to its signature;
/// nullopt when no such function is registered.
using UdtfLookup =
    std::function<std::optional<UdtfSignature>(const std::string& name)>;

/// Analyzes one CREATE FUNCTION text. `lookup` supplies the A-UDTF schemas
/// the body's FROM clause references. Parse failures yield a single FF200.
std::vector<Diagnostic> LintIUdtfSql(const std::string& sql,
                                     const UdtfLookup& lookup);

}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_SQL_LINT_H_
