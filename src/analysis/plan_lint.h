// fedlint pass 4: plan-consistency checks. Compiles a spec into the plan IR
// (plan/fed_plan.h), runs the requested optimizer passes, and verifies that
// the per-architecture lowerings agree with the plan — same multiset of
// local-function calls, every ordering constraint honored (lateral position
// in the SQL lowering, connector reachability in the process lowering), the
// spec-level and IR-level classifiers in agreement, and every sunk predicate
// placed at a point where both of its sides are bound.
#ifndef FEDFLOW_ANALYSIS_PLAN_LINT_H_
#define FEDFLOW_ANALYSIS_PLAN_LINT_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "appsys/registry.h"
#include "federation/spec.h"
#include "plan/optimizer.h"
#include "sim/latency.h"

namespace fedflow::analysis {

// Plan-consistency error codes (FF300..FF349).
inline constexpr char kPlanCallSetMismatch[] = "FF300";
inline constexpr char kPlanOrderingViolation[] = "FF301";
inline constexpr char kPlanClassificationDrift[] = "FF302";
inline constexpr char kPlanPredicateMisplaced[] = "FF303";
inline constexpr char kPlanCompileFailed[] = "FF304";
inline constexpr char kPlanPoolSerialized[] = "FF310";

/// Compiles and optimizes the plan of `spec` under `options`, lowers it to
/// every architecture that supports its mapping case, and cross-checks the
/// lowerings against the plan. The spec should already have passed LintSpec;
/// compile/lowering failures yield FF304 instead of crashing the pass.
/// `prebuilt` (optional) supplies the already-compiled plan for `spec` under
/// `options` — the server's plan cache passes it so the lint does not
/// recompile; it must match (spec, options) or the verdicts are meaningless.
std::vector<Diagnostic> LintPlan(const federation::FederatedFunctionSpec& spec,
                                 const appsys::AppSystemRegistry& systems,
                                 const sim::LatencyModel& model,
                                 const plan::PlanOptions& options = {},
                                 const plan::FedPlan* prebuilt = nullptr);

/// Deployment-consistency check: warns (FF310) when `options` requests the
/// parallelize pass but the deployment's controller pool holds a single
/// controller — parallel plan stages all dispatch through the one controller
/// and serialize, so the optimization cannot deliver its speedup.
std::vector<Diagnostic> LintPoolConfig(
    const federation::FederatedFunctionSpec& spec,
    const plan::PlanOptions& options, size_t controller_pool_size);

}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_PLAN_LINT_H_
