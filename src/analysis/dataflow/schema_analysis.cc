#include "analysis/dataflow/schema_analysis.h"

#include "analysis/dataflow/dataflow_lint.h"

#include <string>
#include <utility>

#include "common/strings.h"

namespace fedflow::analysis::dataflow {

namespace {

using federation::SpecOutput;

/// The schema lattice: bottom = no columns known yet, one ascending step to
/// the node's resolved signature. Transfer is constant per node (a call's
/// result schema is fixed by its local function), so the solver converges in
/// one sweep; the value of running it through the framework is the shared
/// fixpoint/widening discipline with the interval analysis on looping plans.
class SchemaLattice {
 public:
  using State = Schema;

  explicit SchemaLattice(const PlanGraph& graph) : graph_(graph) {}

  State Initial(size_t) { return Schema(); }

  State Transfer(size_t node, const std::vector<const State*>&) {
    return graph_.plan->calls[node].result_schema;
  }

  bool Join(State* into, const State& from) {
    if (*into == from) return false;
    *into = from;
    return true;
  }

  void Widen(State*, const State&) {}  // finite lattice: join suffices

 private:
  const PlanGraph& graph_;
};

std::string OutputLoc(const std::string& spec_name, const SpecOutput& out) {
  return "spec:" + spec_name + "/output:" + out.name;
}

}  // namespace

CastFeasibility ClassifyCast(DataType from, DataType to) {
  if (from == to || from == DataType::kNull) return CastFeasibility::kAlways;
  switch (to) {
    case DataType::kNull:
      return CastFeasibility::kNever;  // CastTo rejects a NULL target
    case DataType::kBool:
      // Via ToInt64: every numeric converts; VARCHAR never does.
      return from == DataType::kVarchar ? CastFeasibility::kNever
                                        : CastFeasibility::kAlways;
    case DataType::kInt:
      if (from == DataType::kVarchar) return CastFeasibility::kValueDependent;
      if (from == DataType::kBool) return CastFeasibility::kAlways;
      return CastFeasibility::kNarrowing;  // BIGINT/DOUBLE range-checked down
    case DataType::kBigInt:
      if (from == DataType::kVarchar) return CastFeasibility::kValueDependent;
      if (from == DataType::kDouble) return CastFeasibility::kNarrowing;
      return CastFeasibility::kAlways;
    case DataType::kDouble:
      return from == DataType::kVarchar ? CastFeasibility::kValueDependent
                                        : CastFeasibility::kAlways;
    case DataType::kVarchar:
      return CastFeasibility::kAlways;  // ToString is total
  }
  return CastFeasibility::kNever;
}

SchemaAnalysisResult AnalyzeSchema(
    const PlanGraph& graph, const federation::FederatedFunctionSpec& spec) {
  SchemaAnalysisResult result;
  const plan::FedPlan& plan = *graph.plan;

  SchemaLattice lattice(graph);
  WorklistSolver<SchemaLattice> solver;
  result.node_schemas = solver.Solve(&lattice, graph);

  for (const SpecOutput& out : spec.outputs) {
    Result<size_t> node = plan.CallIndex(out.node);
    if (!node.ok()) continue;  // FF017 territory; unreachable past spec lint
    const Schema& schema = result.node_schemas[*node];
    std::optional<size_t> col = schema.IndexOf(out.column);
    if (!col.has_value()) continue;  // FF018 territory
    DataType source = schema.column(*col).type;
    DataType declared = source;

    if (out.cast_to != DataType::kNull) {
      declared = out.cast_to;
      std::string cast_desc = std::string(DataTypeName(source)) + " -> " +
                              DataTypeName(out.cast_to);
      switch (ClassifyCast(source, out.cast_to)) {
        case CastFeasibility::kAlways:
          break;
        case CastFeasibility::kValueDependent:
          result.diagnostics.push_back(Diagnostic{
              Severity::kWarning, kDfCastValueDependent,
              OutputLoc(spec.name, out),
              "output cast " + cast_desc + " depends on the runtime value",
              "a non-numeric string aborts the federated call at runtime"});
          break;
        case CastFeasibility::kNarrowing:
          result.diagnostics.push_back(Diagnostic{
              Severity::kWarning, kDfCastNarrowing, OutputLoc(spec.name, out),
              "output cast " + cast_desc + " narrows the inferred type",
              "values outside the target range overflow or truncate"});
          break;
        case CastFeasibility::kNever:
          result.diagnostics.push_back(Diagnostic{
              Severity::kError, kDfCastNeverSucceeds,
              OutputLoc(spec.name, out),
              "output cast " + cast_desc + " can never succeed",
              "Value::CastTo rejects every non-null " +
                  std::string(DataTypeName(source)) + " here"});
          break;
      }
    }
    result.inferred_result_schema.AddColumn(out.name, declared);
  }

  // The honesty check: what we inferred must be what the compiler resolved.
  // Column names compare case-sensitively via Schema::operator==, exactly
  // like the lowerings compare result schemas.
  if (!(result.inferred_result_schema == plan.result_schema)) {
    result.diagnostics.push_back(Diagnostic{
        Severity::kError, kDfResultSchemaDrift, "spec:" + spec.name,
        "inferred result schema (" + result.inferred_result_schema.ToString() +
            ") disagrees with the compiled plan's (" +
            plan.result_schema.ToString() + ")",
        "schema inference and plan compilation diverged; one of them is "
        "wrong"});
  }
  return result;
}

}  // namespace fedflow::analysis::dataflow
