// Schema/type inference over the plan graph (FF400..FF409): propagates
// column types from the local-function signatures through the call graph,
// then judges every declared output cast by feasibility — impossible casts
// are errors, value-dependent (parse) and narrowing casts are warnings —
// and cross-checks the inferred federated result schema against the schema
// the compiler resolved (the honesty check FF403).
#ifndef FEDFLOW_ANALYSIS_DATAFLOW_SCHEMA_ANALYSIS_H_
#define FEDFLOW_ANALYSIS_DATAFLOW_SCHEMA_ANALYSIS_H_

#include <vector>

#include "analysis/dataflow/framework.h"
#include "analysis/diagnostic.h"
#include "common/schema.h"
#include "federation/spec.h"

namespace fedflow::analysis::dataflow {

/// Static feasibility of casting a value of `from` to `to`, mirroring
/// Value::CastTo's runtime behavior.
enum class CastFeasibility {
  kAlways,          ///< succeeds for every value (widening, ToString, ...)
  kValueDependent,  ///< may fail at runtime (VARCHAR parsed as a number)
  kNarrowing,       ///< succeeds or overflows/truncates (BIGINT/DOUBLE down)
  kNever,           ///< no value converts (VARCHAR -> BOOLEAN)
};

CastFeasibility ClassifyCast(DataType from, DataType to);

struct SchemaAnalysisResult {
  std::vector<Diagnostic> diagnostics;
  /// Column types of each node's result, by call index (the solver's
  /// fixpoint states).
  std::vector<Schema> node_schemas;
  /// The federated result schema implied by the outputs over the inferred
  /// node schemas, casts applied.
  Schema inferred_result_schema;
};

/// Runs the schema analysis over `graph` (built from the spec's compiled
/// plan).
SchemaAnalysisResult AnalyzeSchema(const PlanGraph& graph,
                                   const federation::FederatedFunctionSpec& spec);

}  // namespace fedflow::analysis::dataflow

#endif  // FEDFLOW_ANALYSIS_DATAFLOW_SCHEMA_ANALYSIS_H_
