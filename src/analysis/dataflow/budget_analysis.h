// Virtual-time budget analysis (FF420..FF429): folds the static cost model
// (plan::EstimatePlan, the same LatencyModel the runtime charges) through
// the plan and judges the result against a modeled per-call deadline — the
// hot critical path of the cheapest supported lowering must fit (FF420), the
// cold-start worst case should (FF422), and a configured retry policy's
// backoff schedule must fit inside its own deadline (FF421).
#ifndef FEDFLOW_ANALYSIS_DATAFLOW_BUDGET_ANALYSIS_H_
#define FEDFLOW_ANALYSIS_DATAFLOW_BUDGET_ANALYSIS_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "common/vclock.h"
#include "federation/spec.h"
#include "plan/fed_plan.h"
#include "sim/fault.h"
#include "sim/latency.h"

namespace fedflow::analysis::dataflow {

struct BudgetAnalysisResult {
  std::vector<Diagnostic> diagnostics;
  /// Modeled hot-path elapsed time per lowering (one loop iteration; base
  /// costs only, like plan::EstimatePlan).
  VDuration hot_wfms_us = 0;
  VDuration hot_udtf_us = 0;
  /// Warm-up surcharge of the cold-start worst case.
  VDuration cold_surcharge_us = 0;
  /// Total backoff the retry policy can charge (attempts 2..max_attempts).
  VDuration backoff_total_us = 0;
};

/// Runs the budget analysis. `deadline_us` 0 disables the FF420/FF422
/// deadline checks; a disabled retry policy (max_attempts <= 1 or no
/// deadline) disables FF421.
BudgetAnalysisResult AnalyzeBudget(const plan::FedPlan& plan,
                                   const federation::FederatedFunctionSpec& spec,
                                   const sim::LatencyModel& model,
                                   VDuration deadline_us,
                                   const sim::RetryPolicy& retry);

}  // namespace fedflow::analysis::dataflow

#endif  // FEDFLOW_ANALYSIS_DATAFLOW_BUDGET_ANALYSIS_H_
