#include "analysis/dataflow/framework.h"

#include <algorithm>

#include "common/strings.h"

namespace fedflow::analysis::dataflow {

const char* LoweringName(Lowering lowering) {
  switch (lowering) {
    case Lowering::kWfms:
      return "WfMS";
    case Lowering::kUdtf:
      return "UDTF";
  }
  return "?";
}

bool PlanGraph::IsBackEdge(size_t from, size_t to) const {
  for (const auto& [f, t] : back_edges) {
    if (f == from && t == to) return true;
  }
  return false;
}

PlanGraph PlanGraph::Build(const plan::FedPlan& plan) {
  PlanGraph graph;
  graph.plan = &plan;
  const size_t n = plan.calls.size();
  graph.preds.resize(n);
  graph.succs.resize(n);

  auto add_edge = [&graph](size_t from, size_t to) {
    auto& preds = graph.preds[to];
    if (std::find(preds.begin(), preds.end(), from) == preds.end()) {
      preds.push_back(from);
      graph.succs[from].push_back(to);
    }
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t dep : plan.calls[i].data_deps) add_edge(dep, i);
  }
  // A join relates two nodes' columns: facts about either side constrain the
  // joined result, so the later lateral position becomes a successor of the
  // earlier one (matching the executor, which joins at the later position).
  for (const federation::SpecJoin& join : plan.joins) {
    Result<size_t> left = plan.CallIndex(join.left_node);
    Result<size_t> right = plan.CallIndex(join.right_node);
    if (!left.ok() || !right.ok() || *left == *right) continue;
    size_t a = *left;
    size_t b = *right;
    // Orient by plan order so the edge stays forward (acyclic).
    for (size_t node : plan.order) {
      if (node == a) {
        add_edge(a, b);
        break;
      }
      if (node == b) {
        add_edge(b, a);
        break;
      }
    }
  }

  graph.order = plan.order;
  if (graph.order.size() != n) {
    // Defensive: a plan straight out of CompilePlan always carries a total
    // order; fall back to declaration order for hand-built plans.
    graph.order.clear();
    for (size_t i = 0; i < n; ++i) graph.order.push_back(i);
  }

  // The do-until loop wraps the WHOLE call graph: every sink (no forward
  // successors) feeds the next iteration of every source (no forward
  // predecessors).
  if (plan.loop.enabled && n > 0) {
    for (size_t from = 0; from < n; ++from) {
      if (!graph.succs[from].empty()) continue;
      for (size_t to = 0; to < n; ++to) {
        if (graph.preds[to].empty()) graph.back_edges.emplace_back(from, to);
      }
    }
  }
  return graph;
}

}  // namespace fedflow::analysis::dataflow
