// Tenant-flow taint analysis (FF430..FF439): under a multi-tenant
// deployment, every A-UDTF invocation of a flow runs on whichever pooled
// controller the flow leased. With a shared pool (more than one controller,
// no per-tenant quota) a controller — and its warmth ledger and connection
// state — serves different tenants back to back, so results that flow from
// call nodes into federated outputs cross tenant-scoped lease boundaries
// (FF430). With a quota configured, a plan whose parallel stage is wider
// than the quota cannot be admitted concurrently for one tenant (FF431).
#ifndef FEDFLOW_ANALYSIS_DATAFLOW_TAINT_ANALYSIS_H_
#define FEDFLOW_ANALYSIS_DATAFLOW_TAINT_ANALYSIS_H_

#include <cstddef>
#include <vector>

#include "analysis/dataflow/framework.h"
#include "analysis/diagnostic.h"
#include "federation/spec.h"

namespace fedflow::analysis::dataflow {

struct TaintAnalysisResult {
  std::vector<Diagnostic> diagnostics;
  /// Per call node: reaches a federated output (directly or transitively),
  /// i.e. its lease-scoped result escapes the flow.
  std::vector<bool> escapes;
  /// Widest parallel stage of the analyzed plan.
  std::size_t max_stage_width = 0;
};

/// Runs the taint analysis over the plan in `graph`. `pool_max_size` /
/// `per_tenant_quota` describe the deployment's controller pool;
/// `parallelize` marks registrations that request the parallelize pass.
TaintAnalysisResult AnalyzeTaint(const PlanGraph& graph,
                                 const federation::FederatedFunctionSpec& spec,
                                 std::size_t pool_max_size,
                                 std::size_t per_tenant_quota,
                                 bool parallelize);

}  // namespace fedflow::analysis::dataflow

#endif  // FEDFLOW_ANALYSIS_DATAFLOW_TAINT_ANALYSIS_H_
