// The interval lattice for the cardinality analysis: closed integer
// intervals [min, max] with an "unbounded above" top element, ordered by
// inclusion. Arithmetic saturates instead of overflowing, Join is the convex
// hull, and Widen jumps straight to a bound's extreme when an iteration grew
// it — the classical termination device for the do-until back edge.
#ifndef FEDFLOW_ANALYSIS_DATAFLOW_INTERVAL_H_
#define FEDFLOW_ANALYSIS_DATAFLOW_INTERVAL_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace fedflow::analysis::dataflow {

/// A row-count interval [min, max]; max == kUnbounded means "no upper
/// bound". min is always finite and >= 0.
struct Interval {
  /// Sentinel for "no upper bound" (only valid in `max`).
  static constexpr int64_t kUnbounded = -1;

  int64_t min = 0;
  int64_t max = 0;

  static Interval Exact(int64_t n) { return Interval{n, n}; }
  static Interval Of(int64_t lo, int64_t hi) { return Interval{lo, hi}; }
  static Interval AtLeast(int64_t lo) { return Interval{lo, kUnbounded}; }

  bool unbounded() const { return max == kUnbounded; }

  bool Contains(int64_t n) const {
    return n >= min && (unbounded() || n <= max);
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.min == b.min && a.max == b.max;
  }

  /// [a,b] + [c,d] = [a+c, b+d], unbounded-absorbing.
  Interval Add(const Interval& other) const {
    Interval out;
    out.min = SatAdd(min, other.min);
    out.max = (unbounded() || other.unbounded())
                  ? kUnbounded
                  : SatAdd(max, other.max);
    return out;
  }

  /// [a,b] * [c,d] = [a*c, b*d]; an unbounded factor keeps the product
  /// unbounded unless the other bound is exactly zero.
  Interval Mul(const Interval& other) const {
    Interval out;
    out.min = SatMul(min, other.min);
    if ((unbounded() && other.max != 0) || (other.unbounded() && max != 0)) {
      out.max = kUnbounded;
    } else if (unbounded() || other.unbounded()) {
      out.max = 0;  // [_, inf) * [_, 0] — the zero annihilates
    } else {
      out.max = SatMul(max, other.max);
    }
    return out;
  }

  /// Convex hull (lattice join).
  Interval Join(const Interval& other) const {
    Interval out;
    out.min = std::min(min, other.min);
    out.max = (unbounded() || other.unbounded()) ? kUnbounded
                                                 : std::max(max, other.max);
    return out;
  }

  /// Standard interval widening: a bound that moved between `this` (the
  /// previous state) and `newer` jumps to its extreme, so ascending chains
  /// along the loop back edge stabilize in one step.
  Interval Widen(const Interval& newer) const {
    Interval out;
    out.min = newer.min < min ? 0 : min;
    out.max = (unbounded() || (!newer.unbounded() && newer.max <= max))
                  ? max
                  : kUnbounded;
    return out;
  }

  /// "[2, 5]" or "[0, inf)".
  std::string ToString() const {
    std::string out = "[" + std::to_string(min) + ", ";
    out += unbounded() ? "inf)" : std::to_string(max) + "]";
    return out;
  }

 private:
  /// Saturating helpers: row counts never get near INT64_MAX legitimately,
  /// so saturation at kSaturation doubles as an overflow guard.
  static constexpr int64_t kSaturation = int64_t{1} << 60;

  static int64_t SatAdd(int64_t a, int64_t b) {
    return (a > kSaturation - b) ? kSaturation : a + b;
  }
  static int64_t SatMul(int64_t a, int64_t b) {
    if (a == 0 || b == 0) return 0;
    if (a > kSaturation / b) return kSaturation;
    return a * b;
  }
};

}  // namespace fedflow::analysis::dataflow

#endif  // FEDFLOW_ANALYSIS_DATAFLOW_INTERVAL_H_
