#include "analysis/dataflow/budget_analysis.h"

#include "analysis/dataflow/dataflow_lint.h"

#include <algorithm>
#include <string>

#include "federation/classify.h"
#include "plan/cost.h"

namespace fedflow::analysis::dataflow {

BudgetAnalysisResult AnalyzeBudget(
    const plan::FedPlan& plan, const federation::FederatedFunctionSpec& spec,
    const sim::LatencyModel& model, VDuration deadline_us,
    const sim::RetryPolicy& retry) {
  BudgetAnalysisResult result;
  plan::PlanCostEstimate estimate = plan::EstimatePlan(plan, model);
  result.hot_wfms_us = estimate.wfms_elapsed_us;
  result.hot_udtf_us = estimate.udtf_elapsed_us;
  result.cold_surcharge_us =
      model.cold_infrastructure_us + model.first_run_function_us;

  if (deadline_us > 0) {
    // The deployment picks ONE lowering; the plan is deadline-feasible when
    // its cheapest supported lowering fits.
    VDuration best = result.hot_wfms_us;
    const char* best_name = "WfMS";
    if (federation::UdtfSupports(plan.mapping_case) &&
        result.hot_udtf_us < best) {
      best = result.hot_udtf_us;
      best_name = "UDTF";
    }
    std::string per_iteration =
        plan.loop.enabled ? std::string(" per loop iteration") : std::string();
    if (best > deadline_us) {
      result.diagnostics.push_back(Diagnostic{
          Severity::kError, kDfDeadlineInfeasible,
          "spec:" + spec.name + "/deadline",
          "modeled hot critical path" + per_iteration + " (" +
              std::to_string(best) + "us on the " + best_name +
              " lowering, the cheapest supported one) exceeds the " +
              std::to_string(deadline_us) + "us deadline",
          "no lowering of this plan can meet the deadline even fully warm"});
    } else if (best + result.cold_surcharge_us > deadline_us) {
      result.diagnostics.push_back(Diagnostic{
          Severity::kWarning, kDfColdStartOverDeadline,
          "spec:" + spec.name + "/deadline",
          "hot path fits but the cold-start worst case (" +
              std::to_string(best + result.cold_surcharge_us) +
              "us) exceeds the " + std::to_string(deadline_us) +
              "us deadline",
          "the first call after a reboot will miss the deadline"});
    }
  }

  if (retry.enabled()) {
    for (int attempt = 2; attempt <= retry.max_attempts; ++attempt) {
      result.backoff_total_us += retry.BackoffBefore(attempt);
    }
    if (retry.deadline_us > 0 && result.backoff_total_us > retry.deadline_us) {
      result.diagnostics.push_back(Diagnostic{
          Severity::kError, kDfRetryScheduleInfeasible,
          "spec:" + spec.name + "/retry",
          "the retry policy's backoff schedule alone (" +
              std::to_string(result.backoff_total_us) + "us across " +
              std::to_string(retry.max_attempts) +
              " attempts) exceeds its " +
              std::to_string(retry.deadline_us) + "us deadline",
          "the last attempts can never run; lower max_attempts or the "
          "backoff, or raise the deadline"});
    }
  }
  return result;
}

}  // namespace fedflow::analysis::dataflow
