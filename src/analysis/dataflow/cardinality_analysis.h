// Interval cardinality analysis over the plan graph (FF410..FF419): bounds
// the rows each call produces per invocation (from the local functions'
// declared row contracts) and folds them into per-node invocation-count
// intervals per lowering. The WfMS process runs every activity exactly once
// per loop iteration; the nest-loop lateral lowerings (SQL and Java I-UDTF)
// invoke a lateral position once per row of the preceding product — which is
// where invocation counts can explode (FF410/FF411). Also flags scalar
// consumption of multi-row results (FF412, where the lowerings' semantics
// diverge) and unbounded do-until accumulation (FF413).
#ifndef FEDFLOW_ANALYSIS_DATAFLOW_CARDINALITY_ANALYSIS_H_
#define FEDFLOW_ANALYSIS_DATAFLOW_CARDINALITY_ANALYSIS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/dataflow/dataflow_lint.h"
#include "analysis/dataflow/framework.h"
#include "analysis/dataflow/interval.h"
#include "analysis/diagnostic.h"
#include "appsys/registry.h"
#include "federation/spec.h"

namespace fedflow::analysis::dataflow {

struct CardinalityAnalysisResult {
  std::vector<Diagnostic> diagnostics;
  /// Per call node, indexed like FedPlan::calls.
  std::vector<NodeCardinality> nodes;
  /// Loop iterations ([1, 1] without a loop; [1, inf) for a parameter-driven
  /// loop unless a concrete count is supplied).
  Interval iterations;
  /// Federated result-row interval per lowering (joins/predicates make the
  /// lower bound 0 — filters can drop every row).
  Interval result_rows_wfms;
  Interval result_rows_udtf;
};

/// Runs the cardinality analysis. `concrete_loop_count` binds the loop's
/// count parameter when the caller knows the argument value (fuzzer oracle
/// mode).
CardinalityAnalysisResult AnalyzeCardinality(
    const PlanGraph& graph, const federation::FederatedFunctionSpec& spec,
    const appsys::AppSystemRegistry& systems,
    std::optional<std::int64_t> concrete_loop_count = std::nullopt);

}  // namespace fedflow::analysis::dataflow

#endif  // FEDFLOW_ANALYSIS_DATAFLOW_CARDINALITY_ANALYSIS_H_
