// Saga coordination checks (FF450..FF459): registration-time proof that a
// write-path federated function can actually run under the saga coordinator.
// Every mutating call node needs a well-formed compensation (existing,
// mutating, arity/type-compatible undo function on the same system), writes
// must not hide inside unbounded loops (per-iteration idempotency keys would
// collide), coupling-level retries of mutating plans are only sound when the
// deployment routes them through the saga coordinator's idempotency ledger,
// step resolution by (system, function) must be unambiguous, and every node
// feeding a compensation argument must be ordered before the write it undoes.
#ifndef FEDFLOW_ANALYSIS_DATAFLOW_SAGA_ANALYSIS_H_
#define FEDFLOW_ANALYSIS_DATAFLOW_SAGA_ANALYSIS_H_

#include <cstddef>
#include <vector>

#include "analysis/diagnostic.h"
#include "appsys/registry.h"
#include "federation/spec.h"
#include "plan/fed_plan.h"
#include "sim/fault.h"

namespace fedflow::analysis {

// Saga coordination codes (FF450..FF459).
inline constexpr char kSagaMissingCompensation[] = "FF450";   // error
inline constexpr char kSagaCompensationMismatch[] = "FF451";  // error
inline constexpr char kSagaWriteInLoop[] = "FF452";           // error
inline constexpr char kSagaRetryWithoutLedger[] = "FF453";    // error
inline constexpr char kSagaAmbiguousStep[] = "FF454";         // error
inline constexpr char kSagaCaptureUnordered[] = "FF455";      // error

namespace dataflow {

struct SagaAnalysisResult {
  std::vector<Diagnostic> diagnostics;
  /// Mutating call nodes of the plan (0 = read-only, no check applies).
  std::size_t write_nodes = 0;
};

/// Runs the saga checks over the passthrough `plan` of `spec`. `retry` is
/// the deployment's coupling-level retry policy; `saga_coordination` is true
/// when the deployment routes mutating calls through the saga runtime's
/// idempotency ledger (the integration server does; bare couplings do not).
SagaAnalysisResult AnalyzeSaga(const plan::FedPlan& plan,
                               const federation::FederatedFunctionSpec& spec,
                               const appsys::AppSystemRegistry& systems,
                               const sim::RetryPolicy& retry,
                               bool saga_coordination);

}  // namespace dataflow
}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_DATAFLOW_SAGA_ANALYSIS_H_
