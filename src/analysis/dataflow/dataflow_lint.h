// fedlint pass 5: semantic dataflow analyses over the FedPlan IR (FF400s).
// Where passes 1-4 check shape, these prove facts: inferred column types and
// cast feasibility (schema analysis), interval bounds on rows and per-node
// invocation counts under each lowering (cardinality analysis), modeled
// critical-path cost against a deadline and retry-schedule feasibility
// (budget analysis), and tenant-flow taint across shared controller leases
// (taint analysis). The verdicts are falsifiable: tools/fedfuzz executes
// generated specs on every coupling and checks each observation against the
// bounds reported here.
#ifndef FEDFLOW_ANALYSIS_DATAFLOW_DATAFLOW_LINT_H_
#define FEDFLOW_ANALYSIS_DATAFLOW_DATAFLOW_LINT_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "analysis/dataflow/interval.h"
#include "analysis/diagnostic.h"
#include "appsys/registry.h"
#include "common/result.h"
#include "common/schema.h"
#include "common/vclock.h"
#include "federation/spec.h"
#include "sim/fault.h"
#include "sim/latency.h"

namespace fedflow::plan {
struct FedPlan;
}  // namespace fedflow::plan

namespace fedflow::analysis {

// Schema/type dataflow codes (FF400..FF409).
inline constexpr char kDfCastNeverSucceeds[] = "FF400";     // error
inline constexpr char kDfCastValueDependent[] = "FF401";    // warning
inline constexpr char kDfCastNarrowing[] = "FF402";         // warning
inline constexpr char kDfResultSchemaDrift[] = "FF403";     // error

// Cardinality dataflow codes (FF410..FF419).
inline constexpr char kDfUnboundedInvocations[] = "FF410";  // warning
inline constexpr char kDfInvocationExplosion[] = "FF411";   // error
inline constexpr char kDfScalarOfMultiRow[] = "FF412";      // error
inline constexpr char kDfUnboundedLoopUnion[] = "FF413";    // error

// Virtual-time budget codes (FF420..FF429).
inline constexpr char kDfDeadlineInfeasible[] = "FF420";    // error
inline constexpr char kDfRetryScheduleInfeasible[] = "FF421";  // error
inline constexpr char kDfColdStartOverDeadline[] = "FF422";    // warning

// Tenant-flow taint codes (FF430..FF439).
inline constexpr char kDfSharedLeaseFlow[] = "FF430";       // warning
inline constexpr char kDfStageOverTenantQuota[] = "FF431";  // error

/// Deployment facts the analyses judge the spec against. Defaults reproduce
/// the paper's single-controller, deadline-free deployment, under which
/// every budget and taint check is vacuously satisfied.
struct DataflowOptions {
  /// Modeled per-call deadline for the FF42x budget checks; 0 disables them.
  VDuration deadline_us = 0;
  /// The deployment's coupling-level retry policy (FF421).
  sim::RetryPolicy retry;
  /// Controller-pool sizing (FF430/FF431).
  std::size_t pool_max_size = 1;
  std::size_t per_tenant_quota = 0;
  /// Whether registration requests the parallelize pass (FF431 compares the
  /// parallel stage width against the tenant quota).
  bool parallelize = false;
  /// Concrete loop-iteration count, when the caller knows the argument the
  /// loop's count parameter will be bound to (the fuzzer's oracle mode).
  /// Absent = the static [1, inf) iteration interval.
  std::optional<std::int64_t> concrete_loop_count;
  /// Whether the deployment routes mutating calls through the saga
  /// coordinator's idempotency ledger. The integration server sets it; with
  /// retries enabled but no coordination, FF453 rejects write-path specs
  /// (a retried mutating call would apply twice).
  bool saga_coordination = false;
};

/// Interval facts about one plan call node.
struct NodeCardinality {
  /// Rows one invocation of the local function may produce (its declared
  /// row contract).
  dataflow::Interval rows;
  /// Invocations of the node per federated call, per lowering. The WfMS
  /// process runs every activity once per loop iteration; the nest-loop
  /// lateral lowerings (SQL and Java I-UDTF) invoke a position once per row
  /// of the preceding lateral product.
  dataflow::Interval invocations_wfms;
  dataflow::Interval invocations_udtf;
  /// Unbounded row sources among the node's preceding lateral positions
  /// (the FF410/FF411 explosion degree).
  int unbounded_factors = 0;
};

/// Everything the dataflow pass proved about one spec. The fuzzer checks
/// every runtime observation against these bounds.
struct DataflowResult {
  std::vector<Diagnostic> diagnostics;

  /// Inferred federated result schema (output casts applied to inferred
  /// source types). FF403 fires when this disagrees with the compiled
  /// plan's result schema.
  Schema inferred_result_schema;

  /// Per call node, indexed like FedPlan::calls.
  std::vector<NodeCardinality> cards;
  /// Call ids matching `cards` (so reports need no plan access).
  std::vector<std::string> call_ids;

  /// Loop iterations folded into the invocation intervals ([1, 1] for
  /// loop-free specs).
  dataflow::Interval iterations;

  /// Federated result-row interval per lowering.
  dataflow::Interval result_rows_wfms;
  dataflow::Interval result_rows_udtf;

  /// Modeled hot-path elapsed time per lowering (one loop iteration).
  VDuration hot_wfms_us = 0;
  VDuration hot_udtf_us = 0;
};

/// Runs all four dataflow analyses over `spec` compiled against `systems`.
/// The spec must already be plannable (LintSpec clean of errors); a compile
/// failure surfaces as an error status, which registration treats like the
/// FF304 compile-failure path. `optimized` (optional) supplies the
/// already-optimized plan the deployment will run — the server's plan cache
/// passes it so the parallelize-mode taint pass does not recompile.
Result<DataflowResult> RunDataflow(const federation::FederatedFunctionSpec& spec,
                                   const appsys::AppSystemRegistry& systems,
                                   const sim::LatencyModel& model,
                                   const DataflowOptions& options = {},
                                   const plan::FedPlan* optimized = nullptr);

}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_DATAFLOW_DATAFLOW_LINT_H_
