#include "analysis/dataflow/saga_analysis.h"

#include <map>
#include <string>

#include "common/strings.h"

namespace fedflow::analysis::dataflow {

namespace {

using federation::SpecArg;

std::string StepKey(const std::string& system, const std::string& function) {
  return ToUpper(system) + "." + ToUpper(function);
}

/// The statically inferred type of one undo argument (kNull when unknown).
DataType UndoArgType(const SpecArg& arg, const plan::FedPlan& plan) {
  switch (arg.kind) {
    case SpecArg::Kind::kConstant:
      return arg.constant.type();
    case SpecArg::Kind::kParam:
      for (const Column& p : plan.params) {
        if (EqualsIgnoreCase(p.name, arg.param)) return p.type;
      }
      return DataType::kNull;
    case SpecArg::Kind::kNodeColumn: {
      Result<size_t> node = plan.CallIndex(arg.node);
      if (!node.ok()) return DataType::kNull;
      const Schema& schema = plan.calls[*node].result_schema;
      Result<size_t> col = schema.FindColumn(arg.column);
      if (!col.ok()) return DataType::kNull;
      return schema.columns()[*col].type;
    }
  }
  return DataType::kNull;
}

}  // namespace

SagaAnalysisResult AnalyzeSaga(const plan::FedPlan& plan,
                               const federation::FederatedFunctionSpec& spec,
                               const appsys::AppSystemRegistry& systems,
                               const sim::RetryPolicy& retry,
                               bool saga_coordination) {
  SagaAnalysisResult result;
  const size_t n = plan.calls.size();
  for (const plan::PlanCall& call : plan.calls) {
    if (call.mutates) ++result.write_nodes;
  }
  if (result.write_nodes == 0) return result;  // read-only: nothing to prove

  std::vector<size_t> position(n, 0);
  for (size_t k = 0; k < plan.order.size(); ++k) position[plan.order[k]] = k;

  // FF452: a write inside a do-until loop applies once per iteration, but
  // the idempotency key identifies the saga step, not the iteration — a
  // resumed retry could not tell a duplicate from the next iteration.
  if (plan.loop.enabled) {
    for (const plan::PlanCall& call : plan.calls) {
      if (!call.mutates) continue;
      result.diagnostics.push_back(Diagnostic{
          Severity::kError, kSagaWriteInLoop,
          "spec:" + spec.name + "/node:" + call.id,
          "mutating call " + call.system + "." + call.function +
              " sits inside a do-until loop; its idempotency key cannot "
              "distinguish a retried apply from the next iteration",
          "hoist the write out of the loop or make the loop bound part of "
          "the write's arguments"});
    }
  }

  // FF453: coupling-level retries re-issue the whole attempt; without the
  // saga runtime's idempotency ledger a retried mutating call applies twice.
  if (retry.enabled() && !saga_coordination) {
    result.diagnostics.push_back(Diagnostic{
        Severity::kError, kSagaRetryWithoutLedger,
        "spec:" + spec.name,
        "deployment retries federated calls (max_attempts=" +
            std::to_string(retry.max_attempts) +
            ") but does not route mutating calls through the saga "
            "coordinator's idempotency ledger",
        "register through the integration server (saga coordination on) or "
        "disable the retry policy for write-path functions"});
  }

  // FF450/FF451 per mutating node; FF454 ambiguity over all step keys.
  std::map<std::string, std::string> write_keys;    // key -> node id
  std::map<std::string, std::string> capture_keys;  // key -> node id
  for (const plan::PlanCall& call : plan.calls) {
    if (!call.mutates) continue;
    const std::string loc = "spec:" + spec.name + "/node:" + call.id;
    const std::string key = StepKey(call.system, call.function);
    auto [it, inserted] = write_keys.emplace(key, call.id);
    if (!inserted) {
      result.diagnostics.push_back(Diagnostic{
          Severity::kError, kSagaAmbiguousStep, loc,
          "mutating nodes " + it->second + " and " + call.id +
              " both call " + call.system + "." + call.function +
              "; the saga runtime resolves steps by (system, function) and "
              "cannot tell their idempotency scopes apart",
          "split the writes across distinct local functions"});
    }
    if (call.compensation.empty()) {
      result.diagnostics.push_back(Diagnostic{
          Severity::kError, kSagaMissingCompensation, loc,
          "mutating call " + call.system + "." + call.function +
              " declares no compensation; an abort after this step could "
              "not undo it",
          "pair the node with a compensation function via "
          "FederatedFunctionSpec::compensations"});
      continue;
    }
    // FF451: the compensation must exist on the same system, must itself be
    // mutating (an undo changes the store), and its signature must accept
    // the declared undo arguments.
    Result<appsys::AppSystem*> sys = systems.Get(call.system);
    if (!sys.ok()) continue;  // unreachable after binding; nothing to check
    Result<const appsys::LocalFunction*> comp =
        (*sys)->GetFunction(call.compensation);
    if (!comp.ok()) {
      result.diagnostics.push_back(Diagnostic{
          Severity::kError, kSagaCompensationMismatch, loc,
          "compensation " + call.compensation + " does not exist on system " +
              call.system,
          "register the undo function with the application system"});
      continue;
    }
    if (!(*comp)->mutates) {
      result.diagnostics.push_back(Diagnostic{
          Severity::kError, kSagaCompensationMismatch, loc,
          "compensation " + call.system + "." + call.compensation +
              " is not a mutating function; it cannot undo the write of " +
              call.function,
          "compensations must write the store (and bump its data version)"});
    }
    if ((*comp)->params.size() != call.compensation_args.size()) {
      result.diagnostics.push_back(Diagnostic{
          Severity::kError, kSagaCompensationMismatch, loc,
          "compensation " + call.system + "." + call.compensation +
              " takes " + std::to_string((*comp)->params.size()) +
              " parameter(s) but " +
              std::to_string(call.compensation_args.size()) +
              " undo argument(s) are declared",
          "match the compensation's signature"});
    } else {
      for (size_t a = 0; a < call.compensation_args.size(); ++a) {
        DataType inferred = UndoArgType(call.compensation_args[a], plan);
        DataType expected = (*comp)->params[a].type;
        if (inferred == DataType::kNull || inferred == expected) continue;
        result.diagnostics.push_back(Diagnostic{
            Severity::kError, kSagaCompensationMismatch,
            loc + "/arg:" + std::to_string(a + 1),
            "undo argument " + std::to_string(a + 1) + " of compensation " +
                call.compensation + " is " +
                std::string(DataTypeName(inferred)) + " but parameter " +
                (*comp)->params[a].name + " expects " +
                std::string(DataTypeName(expected)),
            "undo arguments are snapshotted at apply time; their types must "
            "match the compensation's signature"});
      }
    }
  }

  // FF455: every node a compensation argument reads must have run before the
  // write applies — compensation arguments are snapshotted at apply time.
  // Also collect capture keys for the FF454 resolution-ambiguity check.
  for (size_t i = 0; i < n; ++i) {
    const plan::PlanCall& call = plan.calls[i];
    if (!call.mutates) continue;
    for (size_t a = 0; a < call.compensation_args.size(); ++a) {
      const SpecArg& arg = call.compensation_args[a];
      if (arg.kind != SpecArg::Kind::kNodeColumn) continue;
      if (EqualsIgnoreCase(arg.node, call.id)) continue;  // own output: fine
      Result<size_t> src = plan.CallIndex(arg.node);
      if (!src.ok()) continue;  // structural validation already rejected it
      const std::string loc =
          "spec:" + spec.name + "/node:" + call.id + "/arg:" +
          std::to_string(a + 1);
      if (position[*src] >= position[i]) {
        result.diagnostics.push_back(Diagnostic{
            Severity::kError, kSagaCaptureUnordered, loc,
            "undo argument reads node " + plan.calls[*src].id +
                ", which is not ordered before the write " + call.id +
                "; its output would not be captured when the write applies",
            "add a data dependency that orders the capture source before "
            "the write"});
        continue;
      }
      const plan::PlanCall& src_call = plan.calls[*src];
      const std::string key = StepKey(src_call.system, src_call.function);
      if (write_keys.count(key) > 0) continue;  // writes record their output
      auto [it, inserted] = capture_keys.emplace(key, src_call.id);
      if (!inserted && !EqualsIgnoreCase(it->second, src_call.id)) {
        result.diagnostics.push_back(Diagnostic{
            Severity::kError, kSagaAmbiguousStep, loc,
            "capture sources " + it->second + " and " + src_call.id +
                " both call " + src_call.system + "." + src_call.function +
                "; the saga runtime cannot attribute the captured output",
            "read the undo argument from a node with a unique local "
            "function"});
      }
    }
  }
  return result;
}

}  // namespace fedflow::analysis::dataflow
