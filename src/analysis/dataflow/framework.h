// The abstract-interpretation framework over the FedPlan IR: a dependency
// graph extracted from the plan (parameter-flow edges, join edges, and the
// do-until back edges) plus a generic worklist solver parameterized over the
// analysis' lattice. Analyses plug in a state type, a transfer function and
// a join; the solver iterates to a fixpoint, applying the analysis' widening
// operator at back-edge targets after a bounded number of visits so looping
// plans terminate even on infinite-height lattices (intervals).
#ifndef FEDFLOW_ANALYSIS_DATAFLOW_FRAMEWORK_H_
#define FEDFLOW_ANALYSIS_DATAFLOW_FRAMEWORK_H_

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "plan/fed_plan.h"

namespace fedflow::analysis::dataflow {

/// Which lowering an architecture-sensitive fact is about. The SQL and the
/// procedural (Java) I-UDTF share nest-loop lateral semantics, so one
/// abstract lowering covers both; the WfMS lowering invokes every activity
/// once per iteration regardless of preceding row counts.
enum class Lowering {
  kWfms,
  kUdtf,
};

/// Stable display name ("WfMS" / "UDTF").
const char* LoweringName(Lowering lowering);

/// The analysis' view of one plan: nodes are the plan's call indices, edges
/// are the facts-flow relations.
struct PlanGraph {
  const plan::FedPlan* plan = nullptr;

  /// preds[i]/succs[i]: parameter-flow neighbors of call i (data_deps plus
  /// join edges — a join makes both sides' facts meet downstream, so facts
  /// flow across it in both directions' successor sets).
  std::vector<std::vector<size_t>> preds;
  std::vector<std::vector<size_t>> succs;

  /// Back edges of the do-until loop: (from, to) with `from` a graph sink
  /// and `to` a graph source. Empty for loop-free plans.
  std::vector<std::pair<size_t, size_t>> back_edges;

  /// Iteration order: the plan's total order (a topological order of the
  /// forward edges), so loop-free plans converge in a single sweep.
  std::vector<size_t> order;

  size_t num_nodes() const { return plan == nullptr ? 0 : plan->calls.size(); }

  /// True when (from, to) is a loop back edge.
  bool IsBackEdge(size_t from, size_t to) const;

  /// Extracts the graph of `plan`.
  static PlanGraph Build(const plan::FedPlan& plan);
};

/// A synthetic graph for framework tests (no FedPlan needed): same edge
/// structure, arbitrary shape.
struct Graph {
  std::vector<std::vector<size_t>> preds;
  std::vector<std::vector<size_t>> succs;
  std::vector<std::pair<size_t, size_t>> back_edges;
  std::vector<size_t> order;
};

/// An Analysis for the solver provides:
///   using State = ...;                        // the lattice element
///   State Initial(size_t node);               // state before any pred fact
///   State Transfer(size_t node, const std::vector<const State*>& pred_outs);
///   bool Join(State* into, const State& from);  // true when `into` changed
///   void Widen(State* into, const State& previous);  // back-edge targets
///
/// The solver keeps one OUT state per node, seeds the worklist in graph
/// order, and re-queues successors of changed nodes. After `widen_after`
/// visits of a back-edge target, Widen() accelerates that node's state.
inline constexpr int kDefaultWidenAfter = 3;

template <typename Analysis>
class WorklistSolver {
 public:
  using State = typename Analysis::State;

  /// Runs `analysis` over a graph given by (preds, succs, back_edges,
  /// order). Returns the per-node fixpoint OUT states.
  template <typename GraphT>
  std::vector<State> Solve(Analysis* analysis, const GraphT& graph,
                           int widen_after = kDefaultWidenAfter) {
    const size_t n = graph.order.size();
    std::vector<State> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(analysis->Initial(i));
    std::vector<int> visits(n, 0);
    std::vector<bool> queued(n, false);
    std::deque<size_t> worklist;
    for (size_t node : graph.order) {
      worklist.push_back(node);
      queued[node] = true;
    }
    iterations_ = 0;
    // Safety valve: |V| * widening delay * lattice-step slack. Every lattice
    // here stabilizes long before this; the cap only guards against a broken
    // Transfer/Join pair cycling forever.
    const size_t max_iterations = (n + 1) * (widen_after + 2) * 8;
    while (!worklist.empty() && iterations_ < max_iterations) {
      ++iterations_;
      size_t node = worklist.front();
      worklist.pop_front();
      queued[node] = false;
      ++visits[node];

      std::vector<const State*> pred_outs;
      pred_outs.reserve(graph.preds[node].size());
      for (size_t p : graph.preds[node]) pred_outs.push_back(&out[p]);

      State next = analysis->Transfer(node, pred_outs);
      bool is_widen_point = false;
      for (const auto& [from, to] : graph.back_edges) {
        (void)from;
        is_widen_point = is_widen_point || to == node;
      }
      if (is_widen_point && visits[node] > widen_after) {
        analysis->Widen(&next, out[node]);
      }
      if (analysis->Join(&out[node], next)) {
        for (size_t s : graph.succs[node]) {
          if (!queued[s]) {
            worklist.push_back(s);
            queued[s] = true;
          }
        }
        // A changed sink re-enters the loop body via the back edges.
        for (const auto& [from, to] : graph.back_edges) {
          if (from == node && !queued[to]) {
            worklist.push_back(to);
            queued[to] = true;
          }
        }
      }
    }
    converged_ = worklist.empty();
    return out;
  }

  /// Solver telemetry: transfer applications of the last Solve().
  size_t iterations() const { return iterations_; }
  /// False only when the iteration cap fired (a framework bug).
  bool converged() const { return converged_; }

 private:
  size_t iterations_ = 0;
  bool converged_ = true;
};

}  // namespace fedflow::analysis::dataflow

#endif  // FEDFLOW_ANALYSIS_DATAFLOW_FRAMEWORK_H_
