#include "analysis/dataflow/taint_analysis.h"

#include "analysis/dataflow/dataflow_lint.h"

#include <algorithm>
#include <string>

#include "common/strings.h"

namespace fedflow::analysis::dataflow {

namespace {

using federation::SpecOutput;

/// Backward reachability as a forward problem on the reversed graph: a node
/// escapes when an output reads it or any of its (forward) successors
/// escapes. State is a two-point lattice, so the solver's plain join
/// converges without widening.
class EscapeLattice {
 public:
  /// char, not bool: the solver hands out State* into a std::vector<State>,
  /// and std::vector<bool>'s proxy references have no addresses.
  using State = char;

  explicit EscapeLattice(std::vector<bool> output_reads)
      : output_reads_(std::move(output_reads)) {}

  State Initial(size_t node) { return output_reads_[node] ? 1 : 0; }

  State Transfer(size_t node, const std::vector<const State*>& pred_outs) {
    char escapes = output_reads_[node] ? 1 : 0;
    for (const State* p : pred_outs) {
      if (*p != 0) escapes = 1;
    }
    return escapes;
  }

  bool Join(State* into, const State& from) {
    if (*into != 0 || from == 0) return false;
    *into = 1;
    return true;
  }

  void Widen(State*, const State&) {}

 private:
  std::vector<bool> output_reads_;
};

}  // namespace

TaintAnalysisResult AnalyzeTaint(const PlanGraph& graph,
                                 const federation::FederatedFunctionSpec& spec,
                                 std::size_t pool_max_size,
                                 std::size_t per_tenant_quota,
                                 bool parallelize) {
  TaintAnalysisResult result;
  const plan::FedPlan& plan = *graph.plan;
  const size_t n = plan.calls.size();

  std::vector<bool> output_reads(n, false);
  for (const SpecOutput& out : spec.outputs) {
    Result<size_t> node = plan.CallIndex(out.node);
    if (node.ok()) output_reads[*node] = true;
  }

  // Reverse the graph: escape facts flow from consumers back to producers.
  Graph reversed;
  reversed.preds.resize(n);
  reversed.succs.resize(n);
  for (size_t node = 0; node < n; ++node) {
    for (size_t succ : graph.succs[node]) {
      reversed.preds[node].push_back(succ);
      reversed.succs[succ].push_back(node);
    }
  }
  for (size_t k = graph.order.size(); k-- > 0;) {
    reversed.order.push_back(graph.order[k]);
  }
  EscapeLattice lattice(output_reads);
  WorklistSolver<EscapeLattice> solver;
  std::vector<char> states = solver.Solve(&lattice, reversed);
  result.escapes.assign(states.begin(), states.end());

  for (const std::vector<size_t>& stage : plan.stages) {
    result.max_stage_width = std::max(result.max_stage_width, stage.size());
  }

  const bool shared_pool = pool_max_size > 1 && per_tenant_quota == 0;
  if (shared_pool) {
    // Report once per spec, at the first escaping output.
    for (const SpecOutput& out : spec.outputs) {
      Result<size_t> node = plan.CallIndex(out.node);
      if (!node.ok() || !result.escapes[*node]) continue;
      result.diagnostics.push_back(Diagnostic{
          Severity::kWarning, kDfSharedLeaseFlow,
          "spec:" + spec.name + "/output:" + out.name,
          "A-UDTF results flow into federated outputs through a shared "
          "controller pool (" +
              std::to_string(pool_max_size) +
              " controllers, no per-tenant quota)",
          "controllers and their warmth ledgers serve tenants back to back; "
          "set ControllerPoolOptions::per_tenant_quota to scope leases"});
      break;
    }
  }

  if (parallelize && per_tenant_quota >= 1 &&
      result.max_stage_width > per_tenant_quota) {
    // Locate the widest stage for the report (1-based, like arg paths).
    size_t stage_index = 0;
    for (size_t s = 0; s < plan.stages.size(); ++s) {
      if (plan.stages[s].size() == result.max_stage_width) {
        stage_index = s + 1;
        break;
      }
    }
    result.diagnostics.push_back(Diagnostic{
        Severity::kError, kDfStageOverTenantQuota,
        "spec:" + spec.name + "/stage:" + std::to_string(stage_index),
        "parallel stage " + std::to_string(stage_index) + " is " +
            std::to_string(result.max_stage_width) +
            " calls wide but the per-tenant quota admits only " +
            std::to_string(per_tenant_quota) + " concurrent lease(s)",
        "one tenant's flows cannot execute the stage concurrently; raise "
        "per_tenant_quota or drop the parallelize pass"});
  }
  return result;
}

}  // namespace fedflow::analysis::dataflow
