#include "analysis/dataflow/cardinality_analysis.h"

#include "analysis/dataflow/dataflow_lint.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/strings.h"

namespace fedflow::analysis::dataflow {

namespace {

using federation::SpecArg;
using federation::SpecCall;
using federation::SpecJoin;

/// Declared row contract of the node's local function; [1, 1] when the
/// function cannot be resolved (spec lint already errored).
Interval RowContract(const plan::PlanCall& call,
                     const appsys::AppSystemRegistry& systems) {
  Result<appsys::AppSystem*> sys = systems.Get(call.system);
  if (!sys.ok()) return Interval::Exact(1);
  Result<const appsys::LocalFunction*> fn = (*sys)->GetFunction(call.function);
  if (!fn.ok()) return Interval::Exact(1);
  if ((*fn)->max_rows == appsys::kUnboundedRows) {
    return Interval::AtLeast((*fn)->min_rows);
  }
  return Interval::Of((*fn)->min_rows, (*fn)->max_rows);
}

/// The lattice over the lateral chain: the state after position k is the
/// row interval of the lateral product of positions 0..k (one loop
/// iteration). Bottom is "no fact yet" so the hull join never pulls a real
/// bound toward zero.
struct ChainState {
  bool defined = false;
  Interval product;
};

class ChainLattice {
 public:
  using State = ChainState;

  ChainLattice(std::vector<Interval> rows, std::vector<bool> filtered)
      : rows_(std::move(rows)), filtered_(std::move(filtered)) {}

  State Initial(size_t) { return ChainState{}; }

  State Transfer(size_t pos, const std::vector<const State*>& pred_outs) {
    Interval in = Interval::Exact(1);
    for (const State* p : pred_outs) {
      if (p->defined) in = p->product;
    }
    ChainState out;
    out.defined = true;
    out.product = in.Mul(rows_[pos]);
    if (filtered_[pos]) out.product.min = 0;  // a filter can drop every row
    return out;
  }

  bool Join(State* into, const State& from) {
    if (!from.defined) return false;
    if (!into->defined) {
      *into = from;
      return true;
    }
    Interval hull = into->product.Join(from.product);
    if (hull == into->product) return false;
    into->product = hull;
    return true;
  }

  void Widen(State* into, const State& previous) {
    if (into->defined && previous.defined) {
      into->product = previous.product.Widen(into->product);
    }
  }

 private:
  std::vector<Interval> rows_;
  std::vector<bool> filtered_;
};

std::string NodeLoc(const std::string& spec_name, const std::string& id) {
  return "spec:" + spec_name + "/node:" + id;
}

}  // namespace

CardinalityAnalysisResult AnalyzeCardinality(
    const PlanGraph& graph, const federation::FederatedFunctionSpec& spec,
    const appsys::AppSystemRegistry& systems,
    std::optional<std::int64_t> concrete_loop_count) {
  CardinalityAnalysisResult result;
  const plan::FedPlan& plan = *graph.plan;
  const size_t n = plan.calls.size();

  result.iterations = Interval::Exact(1);
  if (plan.loop.enabled) {
    // A do-until loop runs at least once; the count parameter is operator
    // supplied, so the static bound is open above. This is NOT a data-driven
    // unbounded factor — FF410/FF411 count row sources only.
    result.iterations = concrete_loop_count.has_value()
                            ? Interval::Exact(std::max<std::int64_t>(
                                  1, *concrete_loop_count))
                            : Interval::AtLeast(1);
  }

  // Per-position facts along the lateral order.
  std::vector<Interval> rows_by_pos(n, Interval::Exact(1));
  std::vector<bool> filtered(n, false);
  for (size_t k = 0; k < n; ++k) {
    const plan::PlanCall& call = plan.calls[graph.order[k]];
    rows_by_pos[k] = RowContract(call, systems);
    filtered[k] = !call.predicates.empty();
  }
  // A join filters at its LATER lateral position (where the executor's
  // dynamic pushdown applies the conjunct).
  for (const SpecJoin& join : plan.joins) {
    Result<size_t> left = plan.CallIndex(join.left_node);
    Result<size_t> right = plan.CallIndex(join.right_node);
    if (!left.ok() || !right.ok()) continue;
    for (size_t k = n; k-- > 0;) {
      if (graph.order[k] == *left || graph.order[k] == *right) {
        filtered[k] = true;
        break;
      }
    }
  }

  // Solve the chain: position k's state = product rows of positions 0..k.
  Graph chain;
  chain.preds.resize(n);
  chain.succs.resize(n);
  for (size_t k = 0; k < n; ++k) {
    chain.order.push_back(k);
    if (k > 0) {
      chain.preds[k].push_back(k - 1);
      chain.succs[k - 1].push_back(k);
    }
  }
  ChainLattice lattice(rows_by_pos, filtered);
  WorklistSolver<ChainLattice> solver;
  std::vector<ChainState> states = solver.Solve(&lattice, chain);

  result.nodes.resize(n);
  for (size_t k = 0; k < n; ++k) {
    size_t node = graph.order[k];
    NodeCardinality& card = result.nodes[node];
    card.rows = rows_by_pos[k];
    // Inflow = the product BEFORE this position: the nest-loop lowerings
    // invoke the position once per row of it; the WfMS process runs the
    // activity exactly once. Both scale with the loop iterations.
    Interval inflow = k == 0 ? Interval::Exact(1) : states[k - 1].product;
    card.invocations_udtf = inflow.Mul(result.iterations);
    card.invocations_wfms = Interval::Exact(1).Mul(result.iterations);
    for (size_t j = 0; j < k; ++j) {
      if (rows_by_pos[j].unbounded()) ++card.unbounded_factors;
    }
  }

  Interval per_iteration =
      n == 0 ? Interval::Exact(0) : states[n - 1].product;
  Interval total = spec.loop.enabled && !spec.loop.union_all
                       ? per_iteration  // keep-last loop: one iteration's rows
                       : per_iteration.Mul(result.iterations);
  result.result_rows_wfms = total;
  result.result_rows_udtf = total;

  // FF410/FF411: one finding per spec, the worst explosion degree at its
  // earliest lateral position.
  size_t worst_node = n;
  int worst_factors = 0;
  for (size_t k = 0; k < n; ++k) {
    size_t node = graph.order[k];
    int factors = result.nodes[node].unbounded_factors;
    if (factors > worst_factors) {
      worst_factors = factors;
      worst_node = node;
    }
  }
  if (worst_node < n) {
    const std::string& id = plan.calls[worst_node].id;
    if (worst_factors >= 2) {
      result.diagnostics.push_back(Diagnostic{
          Severity::kError, kDfInvocationExplosion, NodeLoc(spec.name, id),
          "invocation count multiplies " + std::to_string(worst_factors) +
              " unbounded row sources under the nest-loop lowerings",
          "the lateral product has no polynomial bound; restructure the "
          "mapping or bound the set-returning calls"});
    } else {
      result.diagnostics.push_back(Diagnostic{
          Severity::kWarning, kDfUnboundedInvocations, NodeLoc(spec.name, id),
          "invocation count is unbounded under the nest-loop lowerings "
          "(one unbounded preceding row source)",
          "each row of the preceding set-returner triggers one invocation"});
    }
  }

  // FF412: a multi-row result consumed as a scalar argument. The lowerings
  // disagree here — the WfMS activity rejects inputs with more than one row
  // while the lateral lowerings nest-loop over them.
  for (const SpecCall& call : spec.calls) {
    for (size_t a = 0; a < call.args.size(); ++a) {
      const SpecArg& arg = call.args[a];
      if (arg.kind != SpecArg::Kind::kNodeColumn) continue;
      Result<size_t> source = plan.CallIndex(arg.node);
      if (!source.ok()) continue;
      const Interval& rows = result.nodes[*source].rows;
      if (rows.unbounded() || rows.max > 1) {
        result.diagnostics.push_back(Diagnostic{
            Severity::kError, kDfScalarOfMultiRow,
            NodeLoc(spec.name, call.id) + "/arg:" + std::to_string(a + 1),
            "scalar argument consumes node '" + arg.node +
                "', whose row contract " + rows.ToString() +
                " allows more than one row",
            "the WfMS activity rejects multi-row inputs while the lateral "
            "lowerings nest-loop over them — the couplings would diverge"});
      }
    }
  }

  // FF413: a union-all do-until over an unbounded body accumulates without
  // bound.
  if (spec.loop.enabled && spec.loop.union_all && per_iteration.unbounded()) {
    result.diagnostics.push_back(Diagnostic{
        Severity::kError, kDfUnboundedLoopUnion, "spec:" + spec.name + "/loop",
        "do-until loop unions an unbounded per-iteration result " +
            per_iteration.ToString(),
        "bound the set-returning calls in the loop body or keep only the "
        "last iteration"});
  }

  return result;
}

}  // namespace fedflow::analysis::dataflow
