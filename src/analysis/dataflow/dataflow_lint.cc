#include "analysis/dataflow/dataflow_lint.h"

#include <optional>
#include <utility>

#include "analysis/dataflow/budget_analysis.h"
#include "analysis/dataflow/cardinality_analysis.h"
#include "analysis/dataflow/framework.h"
#include "analysis/dataflow/saga_analysis.h"
#include "analysis/dataflow/schema_analysis.h"
#include "analysis/dataflow/taint_analysis.h"
#include "plan/fed_plan.h"
#include "plan/optimizer.h"

namespace fedflow::analysis {

Result<DataflowResult> RunDataflow(
    const federation::FederatedFunctionSpec& spec,
    const appsys::AppSystemRegistry& systems, const sim::LatencyModel& model,
    const DataflowOptions& options, const plan::FedPlan* optimized) {
  // All value-level analyses run over the passthrough plan — the optimizer
  // passes reshape schedules, never schemas or cardinalities. Only the
  // taint pass looks at the (possibly parallelized) stage structure.
  FEDFLOW_ASSIGN_OR_RETURN(plan::FedPlan passthrough,
                           plan::CompilePlan(spec, systems));
  dataflow::PlanGraph graph = dataflow::PlanGraph::Build(passthrough);

  DataflowResult result;

  dataflow::SchemaAnalysisResult schema = dataflow::AnalyzeSchema(graph, spec);
  result.inferred_result_schema = std::move(schema.inferred_result_schema);
  for (Diagnostic& d : schema.diagnostics) {
    result.diagnostics.push_back(std::move(d));
  }

  dataflow::CardinalityAnalysisResult cards = dataflow::AnalyzeCardinality(
      graph, spec, systems, options.concrete_loop_count);
  result.cards = std::move(cards.nodes);
  result.iterations = cards.iterations;
  result.result_rows_wfms = cards.result_rows_wfms;
  result.result_rows_udtf = cards.result_rows_udtf;
  result.call_ids.reserve(passthrough.calls.size());
  for (const plan::PlanCall& call : passthrough.calls) {
    result.call_ids.push_back(call.id);
  }
  for (Diagnostic& d : cards.diagnostics) {
    result.diagnostics.push_back(std::move(d));
  }

  dataflow::BudgetAnalysisResult budget = dataflow::AnalyzeBudget(
      passthrough, spec, model, options.deadline_us, options.retry);
  result.hot_wfms_us = budget.hot_wfms_us;
  result.hot_udtf_us = budget.hot_udtf_us;
  for (Diagnostic& d : budget.diagnostics) {
    result.diagnostics.push_back(std::move(d));
  }

  // Saga coordination checks (FF45x) — a no-op for read-only specs, which is
  // every spec compiled before the txn subsystem existed.
  dataflow::SagaAnalysisResult saga = dataflow::AnalyzeSaga(
      passthrough, spec, systems, options.retry, options.saga_coordination);
  for (Diagnostic& d : saga.diagnostics) {
    result.diagnostics.push_back(std::move(d));
  }

  // The taint pass judges the stage structure the deployment will actually
  // run: the parallelized plan when registration requests the pass. The
  // server's plan cache supplies it as `optimized`; without one, compile it
  // here (direct callers, tests).
  if (options.parallelize) {
    std::optional<plan::FedPlan> owned;
    if (optimized == nullptr) {
      plan::PlanOptions plan_options;
      plan_options.parallelize = true;
      FEDFLOW_ASSIGN_OR_RETURN(
          plan::FedPlan parallel,
          plan::BuildPlan(spec, systems, model, plan_options));
      owned = std::move(parallel);
    }
    const plan::FedPlan& parallel_plan =
        optimized != nullptr ? *optimized : *owned;
    dataflow::PlanGraph parallel_graph =
        dataflow::PlanGraph::Build(parallel_plan);
    dataflow::TaintAnalysisResult taint = dataflow::AnalyzeTaint(
        parallel_graph, spec, options.pool_max_size, options.per_tenant_quota,
        /*parallelize=*/true);
    for (Diagnostic& d : taint.diagnostics) {
      result.diagnostics.push_back(std::move(d));
    }
  } else {
    dataflow::TaintAnalysisResult taint = dataflow::AnalyzeTaint(
        graph, spec, options.pool_max_size, options.per_tenant_quota,
        /*parallelize=*/false);
    for (Diagnostic& d : taint.diagnostics) {
      result.diagnostics.push_back(std::move(d));
    }
  }
  return result;
}

}  // namespace fedflow::analysis
