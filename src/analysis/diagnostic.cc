#include "analysis/diagnostic.h"

namespace fedflow::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = std::string(SeverityName(severity)) + "[" + code + "] " +
                    location + ": " + message;
  if (!note.empty()) out += "; note: " + note;
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::vector<Diagnostic> Filter(const std::vector<Diagnostic>& diagnostics,
                               Severity severity) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) out.push_back(d);
  }
  return out;
}

std::vector<std::string> Codes(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> out;
  out.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics) out.push_back(d.code);
  return out;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i > 0) out += "\n";
    out += diagnostics[i].ToString();
  }
  return out;
}

}  // namespace fedflow::analysis
