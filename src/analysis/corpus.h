// A corpus of deliberately malformed federated-function specs, one per
// diagnostic family. Golden tests pin the exact FF### code and location path
// each entry produces; the fedlint CLI exposes the corpus for demonstration
// (`fedlint --corpus NAME` must exit non-zero on every entry).
#ifndef FEDFLOW_ANALYSIS_CORPUS_H_
#define FEDFLOW_ANALYSIS_CORPUS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/vclock.h"
#include "federation/spec.h"
#include "sim/fault.h"

namespace fedflow::analysis {

/// One corpus entry: a spec that is defective in exactly one intended way.
struct CorpusEntry {
  std::string name;           ///< stable entry name (CLI `--corpus NAME`)
  std::string expected_code;  ///< the FF### code the defect must produce
  std::string expected_location;  ///< the exact location path of the finding
  federation::FederatedFunctionSpec spec;
};

/// Malformed specs targeting the sample scenario's application systems
/// (stock / purchasing / pdm). Every entry produces at least the expected
/// diagnostic; entries are ordered by code.
std::vector<CorpusEntry> MalformedSpecCorpus();

/// One semantic corpus entry: a spec that passes every shape pass (spec lint
/// is error-free) yet must be rejected by the dataflow pass under the given
/// deployment facts. The knobs mirror DataflowOptions so the CLI and the
/// registration gate can reproduce the exact analysis configuration.
struct SemanticCorpusEntry {
  std::string name;           ///< stable entry name (CLI `--corpus NAME`)
  std::string expected_code;  ///< the FF4xx code the defect must produce
  std::string expected_location;  ///< the exact location path of the finding
  federation::FederatedFunctionSpec spec;
  // Deployment facts under which the dataflow pass judges the spec.
  VDuration deadline_us = 0;
  sim::RetryPolicy retry;
  std::size_t pool_max_size = 1;
  std::size_t per_tenant_quota = 0;
  bool parallelize = false;
};

/// Semantically broken but syntactically clean specs, one per dataflow
/// diagnostic family with a deterministic trigger. Every entry lints clean
/// through passes 1-4 and produces at least the expected FF4xx error from
/// the dataflow pass; entries are ordered by code.
std::vector<SemanticCorpusEntry> SemanticSpecCorpus();

}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_CORPUS_H_
