// A corpus of deliberately malformed federated-function specs, one per
// diagnostic family. Golden tests pin the exact FF### code and location path
// each entry produces; the fedlint CLI exposes the corpus for demonstration
// (`fedlint --corpus NAME` must exit non-zero on every entry).
#ifndef FEDFLOW_ANALYSIS_CORPUS_H_
#define FEDFLOW_ANALYSIS_CORPUS_H_

#include <string>
#include <vector>

#include "federation/spec.h"

namespace fedflow::analysis {

/// One corpus entry: a spec that is defective in exactly one intended way.
struct CorpusEntry {
  std::string name;           ///< stable entry name (CLI `--corpus NAME`)
  std::string expected_code;  ///< the FF### code the defect must produce
  std::string expected_location;  ///< the exact location path of the finding
  federation::FederatedFunctionSpec spec;
};

/// Malformed specs targeting the sample scenario's application systems
/// (stock / purchasing / pdm). Every entry produces at least the expected
/// diagnostic; entries are ordered by code.
std::vector<CorpusEntry> MalformedSpecCorpus();

}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_CORPUS_H_
