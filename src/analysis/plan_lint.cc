#include "analysis/plan_lint.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "common/dag.h"
#include "common/strings.h"
#include "federation/classify.h"
#include "plan/fed_plan.h"
#include "plan/lower_sql.h"
#include "plan/lower_wfms.h"
#include "sql/parser.h"

namespace fedflow::analysis {

namespace {

void Add(std::vector<Diagnostic>* out, const char* code, std::string location,
         std::string message, std::string note = "") {
  Diagnostic d;
  d.severity = Severity::kError;
  d.code = code;
  d.location = std::move(location);
  d.message = std::move(message);
  d.note = std::move(note);
  out->push_back(std::move(d));
}

std::string Joined(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  std::string s;
  for (const std::string& n : names) {
    if (!s.empty()) s += ", ";
    s += n;
  }
  return s;
}

/// The process level holding the program activities (the loop lowering nests
/// them one block down).
const wfms::ProcessDefinition* CallGraphLevel(
    const wfms::ProcessDefinition& def) {
  for (const wfms::ActivityDef& a : def.activities) {
    if (a.kind == wfms::ActivityKind::kProgram) return &def;
  }
  for (const wfms::ActivityDef& a : def.activities) {
    if (a.kind == wfms::ActivityKind::kBlock && a.sub != nullptr) {
      const wfms::ProcessDefinition* inner = CallGraphLevel(*a.sub);
      if (inner != nullptr) return inner;
    }
  }
  return nullptr;
}

/// "SYSTEM.FUNCTION" multiset of the plan's call nodes.
std::vector<std::string> PlanCallSet(const plan::FedPlan& fed_plan) {
  std::vector<std::string> calls;
  for (const plan::PlanCall& c : fed_plan.calls) {
    calls.push_back(ToUpper(c.system) + "." + ToUpper(c.function));
  }
  return calls;
}

void CheckProcessLowering(const plan::FedPlan& fed_plan,
                          const std::string& where,
                          std::vector<Diagnostic>* out) {
  Result<plan::LoweredProcess> lowered = plan::LowerToProcess(fed_plan);
  if (!lowered.ok()) {
    Add(out, kPlanCompileFailed, where,
        "WfMS lowering failed: " + lowered.status().message());
    return;
  }
  const wfms::ProcessDefinition* level = CallGraphLevel(lowered->process);
  if (level == nullptr) {
    Add(out, kPlanCallSetMismatch, where,
        "WfMS lowering contains no program activities");
    return;
  }

  // Call-set agreement: the program activities must be exactly the plan's
  // call nodes (same multiset of local functions, same node ids).
  std::vector<std::string> got;
  std::vector<std::string> got_ids;
  for (const wfms::ActivityDef& a : level->activities) {
    if (a.kind != wfms::ActivityKind::kProgram) continue;
    got.push_back(ToUpper(a.system) + "." + ToUpper(a.function));
    got_ids.push_back(ToUpper(a.name));
  }
  std::vector<std::string> want = PlanCallSet(fed_plan);
  std::vector<std::string> want_ids;
  for (const plan::PlanCall& c : fed_plan.calls) {
    want_ids.push_back(ToUpper(c.id));
  }
  if (Joined(got) != Joined(want) || Joined(got_ids) != Joined(want_ids)) {
    Add(out, kPlanCallSetMismatch, where,
        "WfMS lowering calls {" + Joined(got) + "} but the plan calls {" +
            Joined(want) + "}");
    return;
  }

  // Ordering agreement: every plan constraint (data dep or sequencing edge)
  // must be realized as connector reachability in the process graph.
  std::vector<size_t> act_of(fed_plan.calls.size(), 0);
  for (size_t i = 0; i < fed_plan.calls.size(); ++i) {
    for (size_t a = 0; a < level->activities.size(); ++a) {
      if (EqualsIgnoreCase(level->activities[a].name, fed_plan.calls[i].id)) {
        act_of[i] = a;
      }
    }
  }
  std::vector<std::vector<size_t>> succ(level->activities.size());
  for (const wfms::ControlConnector& c : level->connectors) {
    size_t from = level->activities.size();
    size_t to = level->activities.size();
    for (size_t a = 0; a < level->activities.size(); ++a) {
      if (EqualsIgnoreCase(level->activities[a].name, c.from)) from = a;
      if (EqualsIgnoreCase(level->activities[a].name, c.to)) to = a;
    }
    if (from < succ.size() && to < succ.size()) succ[from].push_back(to);
  }
  std::vector<std::vector<bool>> reach = dag::Reachability(succ);
  auto check_edge = [&](size_t from, size_t to, const char* why) {
    if (!reach[act_of[from]][act_of[to]]) {
      Add(out, kPlanOrderingViolation,
          where + "/edge:" + fed_plan.calls[from].id + "->" +
              fed_plan.calls[to].id,
          std::string("WfMS lowering has no control path enforcing the ") +
              why + " " + fed_plan.calls[from].id + " -> " +
              fed_plan.calls[to].id);
    }
  };
  for (size_t i = 0; i < fed_plan.calls.size(); ++i) {
    for (size_t d : fed_plan.calls[i].data_deps) {
      check_edge(d, i, "data dependency");
    }
  }
  for (const auto& [from, to] : fed_plan.sequencing_edges) {
    check_edge(from, to, "sequencing edge");
  }
}

void CheckSqlLowering(const plan::FedPlan& fed_plan, const std::string& where,
                      std::vector<Diagnostic>* out) {
  Result<std::string> select = plan::RenderSelectSql(
      fed_plan, [](const std::string& param) { return param; });
  if (!select.ok()) {
    Add(out, kPlanCompileFailed, where,
        "SQL lowering failed: " + select.status().message());
    return;
  }
  Result<sql::Statement> parsed = sql::Parse(*select);
  if (!parsed.ok() || parsed->kind != sql::StatementKind::kSelect ||
      parsed->select == nullptr) {
    Add(out, kPlanCompileFailed, where,
        "SQL lowering did not parse as a SELECT" +
            (parsed.ok() ? std::string()
                         : ": " + parsed.status().message()));
    return;
  }
  const sql::SelectStmt& stmt = *parsed->select;

  // Call-set agreement: the lateral chain must reference exactly the plan's
  // local functions, one TABLE(...) item per call node.
  std::vector<std::string> got_fns;
  std::vector<std::string> got_ids;
  std::vector<size_t> lateral_pos(fed_plan.calls.size(),
                                  fed_plan.calls.size());
  for (size_t k = 0; k < stmt.from.size(); ++k) {
    const sql::TableRef& ref = stmt.from[k];
    if (ref.kind != sql::TableRefKind::kTableFunction) {
      Add(out, kPlanCallSetMismatch, where,
          "SQL lowering references base table " + ref.name +
              " (only A-UDTF lateral references are expected)");
      continue;
    }
    got_fns.push_back(ToUpper(ref.name));
    got_ids.push_back(ToUpper(ref.alias));
    for (size_t i = 0; i < fed_plan.calls.size(); ++i) {
      if (EqualsIgnoreCase(fed_plan.calls[i].id, ref.alias)) {
        lateral_pos[i] = k;
      }
    }
  }
  std::vector<std::string> want_fns;
  std::vector<std::string> want_ids;
  for (const plan::PlanCall& c : fed_plan.calls) {
    want_fns.push_back(ToUpper(c.function));
    want_ids.push_back(ToUpper(c.id));
  }
  if (Joined(got_fns) != Joined(want_fns) ||
      Joined(got_ids) != Joined(want_ids)) {
    Add(out, kPlanCallSetMismatch, where,
        "SQL lowering references {" + Joined(got_fns) +
            "} but the plan calls {" + Joined(want_fns) + "}");
    return;
  }

  // Ordering agreement: DB2's lateral correlation only sees columns of FROM
  // items to the LEFT, so every plan constraint must hold positionally.
  auto check_edge = [&](size_t from, size_t to, const char* why) {
    if (lateral_pos[from] >= lateral_pos[to]) {
      Add(out, kPlanOrderingViolation,
          where + "/edge:" + fed_plan.calls[from].id + "->" +
              fed_plan.calls[to].id,
          std::string("SQL lowering places ") + fed_plan.calls[to].id +
              " at or before " + fed_plan.calls[from].id +
              " in the lateral chain, violating the " + why);
    }
  };
  for (size_t i = 0; i < fed_plan.calls.size(); ++i) {
    for (size_t d : fed_plan.calls[i].data_deps) {
      check_edge(d, i, "data dependency");
    }
  }
  for (const auto& [from, to] : fed_plan.sequencing_edges) {
    check_edge(from, to, "sequencing edge");
  }
}

void CheckPredicates(const plan::FedPlan& fed_plan, const std::string& where,
                     std::vector<Diagnostic>* out) {
  std::vector<size_t> position(fed_plan.calls.size(), 0);
  for (size_t k = 0; k < fed_plan.order.size(); ++k) {
    position[fed_plan.order[k]] = k;
  }
  for (size_t c = 0; c < fed_plan.calls.size(); ++c) {
    for (const std::string& pred : fed_plan.calls[c].predicates) {
      // Conjunct text is "L.lc=R.rc"; both sides must be bound at the sink.
      size_t eq = pred.find('=');
      size_t ldot = pred.find('.');
      size_t rdot = pred.find('.', eq == std::string::npos ? 0 : eq);
      if (eq == std::string::npos || ldot == std::string::npos ||
          rdot == std::string::npos || ldot >= eq) {
        Add(out, kPlanPredicateMisplaced, where + "/call:" +
            fed_plan.calls[c].id,
            "unparseable sunk predicate '" + pred + "'");
        continue;
      }
      std::string left_node = pred.substr(0, ldot);
      std::string right_node = pred.substr(eq + 1, rdot - eq - 1);
      for (const std::string& node : {left_node, right_node}) {
        Result<size_t> idx = fed_plan.CallIndex(node);
        if (!idx.ok()) {
          Add(out, kPlanPredicateMisplaced,
              where + "/call:" + fed_plan.calls[c].id,
              "sunk predicate '" + pred + "' references unknown call node " +
                  node);
          continue;
        }
        if (position[*idx] > position[c]) {
          Add(out, kPlanPredicateMisplaced,
              where + "/call:" + fed_plan.calls[c].id,
              "sunk predicate '" + pred + "' is placed on " +
                  fed_plan.calls[c].id + " before its side " + node +
                  " is bound in the lateral order");
        }
      }
    }
  }
}

}  // namespace

std::vector<Diagnostic> LintPlan(const federation::FederatedFunctionSpec& spec,
                                 const appsys::AppSystemRegistry& systems,
                                 const sim::LatencyModel& model,
                                 const plan::PlanOptions& options,
                                 const plan::FedPlan* prebuilt) {
  std::vector<Diagnostic> out;
  const std::string where = "plan:" + spec.name;

  std::optional<plan::FedPlan> compiled;
  if (prebuilt == nullptr) {
    Result<plan::FedPlan> built = plan::BuildPlan(spec, systems, model, options);
    if (!built.ok()) {
      Add(&out, kPlanCompileFailed, where,
          "plan compilation failed: " + built.status().message());
      return out;
    }
    compiled = std::move(*built);
  }
  const plan::FedPlan& fed_plan = prebuilt != nullptr ? *prebuilt : *compiled;

  // Classification agreement: the spec-level classifier, the plan's recorded
  // case and the IR-shape classifier must coincide.
  Result<federation::MappingCase> spec_case = federation::ClassifySpec(spec);
  if (spec_case.ok() && *spec_case != fed_plan.mapping_case) {
    Add(&out, kPlanClassificationDrift, where,
        std::string("spec classifies as ") +
            federation::MappingCaseName(*spec_case) +
            " but the plan records " +
            federation::MappingCaseName(fed_plan.mapping_case));
  }
  federation::MappingCase ir_case = plan::ClassifyPlan(fed_plan);
  if (ir_case != fed_plan.mapping_case) {
    Add(&out, kPlanClassificationDrift, where,
        std::string("plan IR shape classifies as ") +
            federation::MappingCaseName(ir_case) + " but the plan records " +
            federation::MappingCaseName(fed_plan.mapping_case));
  }

  // Lowerings: every architecture that supports this mapping case must agree
  // with the plan. The WfMS lowering always exists; the SQL lowering only
  // for cases expressible as one statement.
  CheckProcessLowering(fed_plan, where, &out);
  if (federation::UdtfSupports(fed_plan.mapping_case)) {
    CheckSqlLowering(fed_plan, where, &out);
  }
  CheckPredicates(fed_plan, where, &out);
  return out;
}

std::vector<Diagnostic> LintPoolConfig(
    const federation::FederatedFunctionSpec& spec,
    const plan::PlanOptions& options, size_t controller_pool_size) {
  std::vector<Diagnostic> out;
  if (!options.parallelize || controller_pool_size > 1) return out;
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = kPlanPoolSerialized;
  d.location = "spec:" + spec.name;
  d.message =
      "PlanOptions.parallelize is requested but the controller pool holds a "
      "single controller: parallel stages all dispatch through it and "
      "serialize";
  d.note =
      "size the pool to the plan's parallel width "
      "(ControllerPoolOptions.max_size > 1) or drop the parallelize pass";
  out.push_back(std::move(d));
  return out;
}

}  // namespace fedflow::analysis
