#include "analysis/workflow_lint.h"

#include <optional>
#include <string>
#include <utility>

#include "common/dag.h"
#include "common/strings.h"
#include "sql/ast.h"

namespace fedflow::analysis {

namespace {

using wfms::ActivityDef;
using wfms::ActivityKind;
using wfms::ControlConnector;
using wfms::InputSource;
using wfms::ProcessDefinition;

bool IsNumeric(DataType t) {
  return t == DataType::kInt || t == DataType::kBigInt || t == DataType::kDouble;
}

/// Constant-folds an expression to a Value when every leaf is a literal.
/// Covers the operators transition conditions use (NOT, AND, OR,
/// comparisons, IS [NOT] NULL); anything else is "not constant".
std::optional<Value> EvalConst(const sql::Expr& expr) {
  switch (expr.kind()) {
    case sql::ExprKind::kLiteral:
      return static_cast<const sql::LiteralExpr&>(expr).value();
    case sql::ExprKind::kUnary: {
      const auto& u = static_cast<const sql::UnaryExpr&>(expr);
      std::optional<Value> v = EvalConst(*u.operand());
      if (!v.has_value()) return std::nullopt;
      switch (u.op()) {
        case sql::UnaryOp::kNot:
          if (v->is_null()) return Value::Null();
          if (v->type() != DataType::kBool) return std::nullopt;
          return Value::Bool(!v->AsBool());
        case sql::UnaryOp::kIsNull:
          return Value::Bool(v->is_null());
        case sql::UnaryOp::kIsNotNull:
          return Value::Bool(!v->is_null());
        case sql::UnaryOp::kNeg:
          return std::nullopt;
      }
      return std::nullopt;
    }
    case sql::ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      std::optional<Value> l = EvalConst(*b.left());
      std::optional<Value> r = EvalConst(*b.right());
      if (!l.has_value() || !r.has_value()) return std::nullopt;
      auto as_bool = [](const Value& v) -> std::optional<bool> {
        if (v.is_null()) return std::nullopt;  // SQL unknown
        if (v.type() != DataType::kBool) return std::nullopt;
        return v.AsBool();
      };
      switch (b.op()) {
        case sql::BinaryOp::kAnd: {
          std::optional<bool> lb = as_bool(*l), rb = as_bool(*r);
          if (lb.has_value() && !*lb) return Value::Bool(false);
          if (rb.has_value() && !*rb) return Value::Bool(false);
          if (lb.has_value() && rb.has_value()) return Value::Bool(true);
          return Value::Null();
        }
        case sql::BinaryOp::kOr: {
          std::optional<bool> lb = as_bool(*l), rb = as_bool(*r);
          if (lb.has_value() && *lb) return Value::Bool(true);
          if (rb.has_value() && *rb) return Value::Bool(true);
          if (lb.has_value() && rb.has_value()) return Value::Bool(false);
          return Value::Null();
        }
        case sql::BinaryOp::kEq:
        case sql::BinaryOp::kNe:
        case sql::BinaryOp::kLt:
        case sql::BinaryOp::kLe:
        case sql::BinaryOp::kGt:
        case sql::BinaryOp::kGe: {
          if (l->is_null() || r->is_null()) return Value::Null();
          Result<int> cmp = l->Compare(*r);
          if (!cmp.ok()) return std::nullopt;
          if (b.op() == sql::BinaryOp::kEq) return Value::Bool(*cmp == 0);
          if (b.op() == sql::BinaryOp::kNe) return Value::Bool(*cmp != 0);
          if (b.op() == sql::BinaryOp::kLt) return Value::Bool(*cmp < 0);
          if (b.op() == sql::BinaryOp::kLe) return Value::Bool(*cmp <= 0);
          if (b.op() == sql::BinaryOp::kGt) return Value::Bool(*cmp > 0);
          return Value::Bool(*cmp >= 0);
        }
        case sql::BinaryOp::kAdd:
        case sql::BinaryOp::kSub:
        case sql::BinaryOp::kMul:
        case sql::BinaryOp::kDiv:
        case sql::BinaryOp::kMod:
        case sql::BinaryOp::kConcat:
        case sql::BinaryOp::kLike:
          return std::nullopt;
      }
      return std::nullopt;
    }
    case sql::ExprKind::kColumnRef:
    case sql::ExprKind::kFunctionCall:
    case sql::ExprKind::kCase:
      return std::nullopt;
  }
  return std::nullopt;
}

/// A transition condition that can never fire: constant FALSE or constant
/// NULL (unknown does not fire a connector).
bool IsConstantFalse(const sql::Expr& expr) {
  std::optional<Value> v = EvalConst(expr);
  if (!v.has_value()) return false;
  if (v->is_null()) return true;
  return v->type() == DataType::kBool && !v->AsBool();
}

/// The comparison operator that is the logical complement of `op`, if any.
std::optional<sql::BinaryOp> ComplementOp(sql::BinaryOp op) {
  if (op == sql::BinaryOp::kEq) return sql::BinaryOp::kNe;
  if (op == sql::BinaryOp::kNe) return sql::BinaryOp::kEq;
  if (op == sql::BinaryOp::kLt) return sql::BinaryOp::kGe;
  if (op == sql::BinaryOp::kGe) return sql::BinaryOp::kLt;
  if (op == sql::BinaryOp::kGt) return sql::BinaryOp::kLe;
  if (op == sql::BinaryOp::kLe) return sql::BinaryOp::kGt;
  return std::nullopt;
}

/// Structural complement check: `NOT x` vs `x`, or the same comparison with
/// the complementary operator (`a > b` vs `a <= b`). Conservative — a miss
/// only means no warning.
bool AreComplementary(const sql::Expr& a, const sql::Expr& b) {
  if (a.kind() == sql::ExprKind::kUnary) {
    const auto& u = static_cast<const sql::UnaryExpr&>(a);
    if (u.op() == sql::UnaryOp::kNot &&
        u.operand()->ToSql() == b.ToSql()) {
      return true;
    }
  }
  if (b.kind() == sql::ExprKind::kUnary) {
    const auto& u = static_cast<const sql::UnaryExpr&>(b);
    if (u.op() == sql::UnaryOp::kNot &&
        u.operand()->ToSql() == a.ToSql()) {
      return true;
    }
  }
  if (a.kind() == sql::ExprKind::kBinary &&
      b.kind() == sql::ExprKind::kBinary) {
    const auto& ba = static_cast<const sql::BinaryExpr&>(a);
    const auto& bb = static_cast<const sql::BinaryExpr&>(b);
    std::optional<sql::BinaryOp> comp = ComplementOp(ba.op());
    if (comp.has_value() && *comp == bb.op() &&
        ba.left()->ToSql() == bb.left()->ToSql() &&
        ba.right()->ToSql() == bb.right()->ToSql()) {
      return true;
    }
  }
  return false;
}

/// Collects unqualified column references (process-input / loop-counter
/// reads) of a condition expression into `out`.
void CollectUnqualifiedRefs(const sql::Expr& expr,
                            std::vector<std::string>* out) {
  switch (expr.kind()) {
    case sql::ExprKind::kLiteral:
      return;
    case sql::ExprKind::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      if (ref.qualifier().empty()) out->push_back(ref.name());
      return;
    }
    case sql::ExprKind::kFunctionCall: {
      const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
      for (const sql::ExprPtr& arg : call.args()) {
        CollectUnqualifiedRefs(*arg, out);
      }
      return;
    }
    case sql::ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      CollectUnqualifiedRefs(*b.left(), out);
      CollectUnqualifiedRefs(*b.right(), out);
      return;
    }
    case sql::ExprKind::kUnary:
      CollectUnqualifiedRefs(
          *static_cast<const sql::UnaryExpr&>(expr).operand(), out);
      return;
    case sql::ExprKind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      for (const sql::CaseExpr::Branch& br : c.branches()) {
        CollectUnqualifiedRefs(*br.condition, out);
        CollectUnqualifiedRefs(*br.value, out);
      }
      if (c.else_value() != nullptr) {
        CollectUnqualifiedRefs(*c.else_value(), out);
      }
      return;
    }
  }
}

class ProcessLinter {
 public:
  /// `external_uses` names sub-process params read from outside, e.g. by the
  /// enclosing block activity's exit condition; they count as used for FF153.
  ProcessLinter(const ProcessDefinition& def,
                const appsys::AppSystemRegistry& systems,
                std::vector<std::string> external_uses = {})
      : def_(def), systems_(systems), external_uses_(std::move(external_uses)) {}

  std::vector<Diagnostic> Run() {
    if (def_.name.empty()) {
      Error(kWfNoName, ProcLoc(), "process has no name");
    }
    if (def_.activities.empty()) {
      Error(kWfNoActivities, ProcLoc(), "process has no activities");
      return std::move(diags_);
    }
    ResolveActivities();
    CheckOutputActivity();
    BuildGraph();
    CheckActivities();
    CheckDeadActivities();
    CheckConditions();
    CheckUnusedProcessInputs();
    return std::move(diags_);
  }

 private:
  void Error(const char* code, std::string location, std::string message,
             std::string note = "") {
    diags_.push_back(Diagnostic{Severity::kError, code, std::move(location),
                                std::move(message), std::move(note)});
  }
  void Warn(const char* code, std::string location, std::string message,
            std::string note = "") {
    diags_.push_back(Diagnostic{Severity::kWarning, code, std::move(location),
                                std::move(message), std::move(note)});
  }

  std::string ProcLoc() const {
    return "process:" +
           (def_.name.empty() ? std::string("<unnamed>") : def_.name);
  }
  std::string ActLoc(const ActivityDef& a) const {
    return ProcLoc() + "/activity:" + (a.name.empty() ? "<unnamed>" : a.name);
  }
  std::string InputLoc(const ActivityDef& a, size_t i) const {
    return ActLoc(a) + "/input:" + std::to_string(i + 1);
  }
  std::string ConnLoc(const ControlConnector& c) const {
    return ProcLoc() + "/connector:" + c.from + "->" + c.to;
  }

  std::optional<size_t> ActivityIndex(const std::string& name) const {
    for (size_t i = 0; i < def_.activities.size(); ++i) {
      if (EqualsIgnoreCase(def_.activities[i].name, name)) return i;
    }
    return std::nullopt;
  }

  /// Duplicate names and program-function resolution.
  void ResolveActivities() {
    const size_t n = def_.activities.size();
    functions_.resize(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
      const ActivityDef& a = def_.activities[i];
      for (size_t j = i + 1; j < n; ++j) {
        if (!a.name.empty() &&
            EqualsIgnoreCase(a.name, def_.activities[j].name)) {
          Error(kWfDuplicateActivity, ActLoc(def_.activities[j]),
                "duplicate activity name '" + def_.activities[j].name + "'");
        }
      }
      if (a.kind != ActivityKind::kProgram) continue;
      if (a.system.empty() || a.function.empty()) {
        Error(kWfProgramIncomplete, ActLoc(a),
              "program activity must name an application system and a "
              "function");
        continue;
      }
      Result<appsys::AppSystem*> sys = systems_.Get(a.system);
      if (!sys.ok()) {
        Error(kWfUnknownSystem, ActLoc(a),
              "unknown application system '" + a.system + "'");
        continue;
      }
      Result<const appsys::LocalFunction*> fn = (*sys)->GetFunction(a.function);
      if (!fn.ok()) {
        Error(kWfUnknownFunction, ActLoc(a),
              "application system '" + a.system + "' has no function '" +
                  a.function + "'");
        continue;
      }
      functions_[i] = *fn;
    }
  }

  void CheckOutputActivity() {
    output_index_ = ActivityIndex(def_.output_activity);
    if (!output_index_.has_value()) {
      Error(kWfUnknownOutputActivity, ProcLoc() + "/output",
            "output activity '" + def_.output_activity + "' does not exist");
    }
  }

  /// Successor lists and the reachability matrix; also connector endpoint
  /// and cycle diagnostics.
  void BuildGraph() {
    const size_t n = def_.activities.size();
    succ_.assign(n, {});
    for (const ControlConnector& c : def_.connectors) {
      std::optional<size_t> from = ActivityIndex(c.from);
      std::optional<size_t> to = ActivityIndex(c.to);
      if (!from.has_value()) {
        Error(kWfUnknownConnectorEndpoint, ConnLoc(c),
              "connector starts at unknown activity '" + c.from + "'");
      }
      if (!to.has_value()) {
        Error(kWfUnknownConnectorEndpoint, ConnLoc(c),
              "connector ends at unknown activity '" + c.to + "'");
      }
      if (!from.has_value() || !to.has_value()) continue;
      if (*from == *to) {
        Error(kWfSelfLoopConnector, ConnLoc(c),
              "self-loop connector on '" + c.from + "'",
              "use a block activity with an exit condition for loops");
        continue;
      }
      succ_[*from].push_back(*to);
    }
    reach_ = dag::Reachability(succ_);
    for (size_t i = 0; i < n; ++i) {
      if (reach_[i][i]) {
        Error(kWfControlCycle, ActLoc(def_.activities[i]),
              "control-flow cycle through activity '" +
                  def_.activities[i].name + "'",
              "loops are expressed as block activities with exit conditions");
      }
    }
  }

  /// Static type of activity `src`'s output column `column`, when the source
  /// is a program activity with a resolved signature.
  std::optional<DataType> SourceColumnType(size_t src,
                                           const std::string& column) const {
    if (functions_[src] == nullptr) return std::nullopt;
    std::optional<size_t> idx =
        functions_[src]->result_schema.IndexOf(column);
    if (!idx.has_value()) return std::nullopt;
    return functions_[src]->result_schema.column(*idx).type;
  }

  std::optional<DataType> ProcessInputType(const std::string& field) const {
    for (const Column& p : def_.input_params) {
      if (EqualsIgnoreCase(p.name, field)) return p.type;
    }
    return std::nullopt;
  }

  void CheckActivities() {
    for (size_t i = 0; i < def_.activities.size(); ++i) {
      const ActivityDef& a = def_.activities[i];
      switch (a.kind) {
        case ActivityKind::kProgram:
          if (functions_[i] != nullptr &&
              a.inputs.size() != functions_[i]->params.size()) {
            Error(kWfInputArityMismatch, ActLoc(a),
                  a.system + "." + a.function + " expects " +
                      std::to_string(functions_[i]->params.size()) +
                      " input(s), activity supplies " +
                      std::to_string(a.inputs.size()));
          }
          break;
        case ActivityKind::kHelper:
          if (a.helper.empty()) {
            Error(kWfHelperUnnamed, ActLoc(a),
                  "helper activity must name a registered helper function");
          }
          break;
        case ActivityKind::kBlock:
          if (a.sub == nullptr) {
            Error(kWfBlockWithoutSub, ActLoc(a),
                  "block activity has no sub-process");
          } else {
            if (a.inputs.size() != a.sub->input_params.size()) {
              Error(kWfBlockArityMismatch, ActLoc(a),
                    "block supplies " + std::to_string(a.inputs.size()) +
                        " input(s) but sub-process '" + a.sub->name +
                        "' declares " +
                        std::to_string(a.sub->input_params.size()));
            }
            // Recurse into the sub-workflow. The block's exit condition is
            // evaluated in the sub-process scope, so params it references
            // count as used there.
            std::vector<std::string> exit_refs;
            if (a.exit_condition != nullptr) {
              CollectUnqualifiedRefs(*a.exit_condition, &exit_refs);
            }
            std::vector<Diagnostic> sub =
                ProcessLinter(*a.sub, systems_, std::move(exit_refs)).Run();
            diags_.insert(diags_.end(), sub.begin(), sub.end());
          }
          if (a.max_iterations <= 0) {
            Error(kWfBadMaxIterations, ActLoc(a),
                  "non-positive max_iterations " +
                      std::to_string(a.max_iterations));
          }
          break;
      }
      CheckInputs(i);
    }
  }

  void CheckInputs(size_t i) {
    const ActivityDef& a = def_.activities[i];
    for (size_t k = 0; k < a.inputs.size(); ++k) {
      const InputSource& in = a.inputs[k];
      std::optional<DataType> got;
      switch (in.kind) {
        case InputSource::Kind::kConstant:
          if (!in.constant.is_null()) got = in.constant.type();
          break;
        case InputSource::Kind::kProcessInput: {
          got = ProcessInputType(in.param);
          if (!got.has_value()) {
            bool declared = false;
            for (const Column& p : def_.input_params) {
              if (EqualsIgnoreCase(p.name, in.param)) declared = true;
            }
            if (!declared) {
              Error(kWfUnknownProcessInput, InputLoc(a, k),
                    "reads unknown process input field '" + in.param + "'",
                    "declared fields: " + InputFieldNames());
            }
          }
          break;
        }
        case InputSource::Kind::kActivityOutput: {
          std::optional<size_t> src = ActivityIndex(in.activity);
          if (!src.has_value()) {
            Error(kWfSourceUnknownActivity, InputLoc(a, k),
                  "reads output of unknown activity '" + in.activity + "'");
            break;
          }
          if (*src == i) {
            Error(kWfSelfInput, InputLoc(a, k),
                  "activity reads its own output");
            break;
          }
          if (!reach_[*src][i]) {
            Error(kWfSourceCannotPrecede, InputLoc(a, k),
                  "reads output of '" + in.activity +
                      "' but no control path guarantees it ran first",
                  "add a control connector from '" + in.activity + "' to '" +
                      a.name + "'");
          }
          if (!in.column.empty() && functions_[*src] != nullptr &&
              !functions_[*src]->result_schema.IndexOf(in.column)
                   .has_value()) {
            Error(kWfSourceUnknownColumn, InputLoc(a, k),
                  "activity '" + in.activity + "' has no output column '" +
                      in.column + "'",
                  "columns: " + functions_[*src]->result_schema.ToString());
          }
          if (!in.column.empty()) got = SourceColumnType(*src, in.column);
          break;
        }
      }
      // Container type check against the program signature.
      if (a.kind != ActivityKind::kProgram || functions_[i] == nullptr ||
          k >= functions_[i]->params.size() || !got.has_value()) {
        continue;
      }
      DataType want = functions_[i]->params[k].type;
      if (*got == want) continue;
      if (IsNumeric(*got) && IsNumeric(want)) continue;  // coercible
      Error(kWfInputTypeMismatch, InputLoc(a, k),
            "input has type " + std::string(DataTypeName(*got)) +
                " but parameter " + functions_[i]->params[k].name + " of " +
                a.system + "." + a.function + " is " + DataTypeName(want));
    }
  }

  std::string InputFieldNames() const {
    std::string out;
    for (size_t i = 0; i < def_.input_params.size(); ++i) {
      if (i > 0) out += ", ";
      out += def_.input_params[i].name;
    }
    return out.empty() ? "<none>" : out;
  }

  /// An activity is dead when the output activity is unreachable from it and
  /// no other activity consumes its output container.
  void CheckDeadActivities() {
    if (!output_index_.has_value()) return;
    const size_t out = *output_index_;
    for (size_t i = 0; i < def_.activities.size(); ++i) {
      if (i == out || reach_[i][out]) continue;
      bool consumed = false;
      for (size_t j = 0; j < def_.activities.size() && !consumed; ++j) {
        if (j == i) continue;
        for (const InputSource& in : def_.activities[j].inputs) {
          if (in.kind == InputSource::Kind::kActivityOutput &&
              EqualsIgnoreCase(in.activity, def_.activities[i].name)) {
            consumed = true;
          }
        }
      }
      if (!consumed) {
        Warn(kWfDeadActivity, ActLoc(def_.activities[i]),
             "activity cannot reach the output activity '" +
                 def_.output_activity + "' and nothing consumes its output",
             "it still runs (and is paid for) on every instance");
      }
    }
  }

  /// Constant-false transition conditions and contradictory fork conditions
  /// in front of an AND-join.
  void CheckConditions() {
    for (const ControlConnector& c : def_.connectors) {
      if (c.condition != nullptr && IsConstantFalse(*c.condition)) {
        Warn(kWfConstantFalseCondition, ConnLoc(c),
             "transition condition " + c.condition->ToSql() +
                 " can never fire",
             "the target becomes a permanent dead path");
      }
    }
    // Fork with complementary conditions: at most one branch survives; any
    // AND-join fed by both branches can never start.
    for (size_t x = 0; x < def_.activities.size(); ++x) {
      std::vector<const ControlConnector*> outgoing;
      for (const ControlConnector& c : def_.connectors) {
        std::optional<size_t> from = ActivityIndex(c.from);
        if (from.has_value() && *from == x && c.condition != nullptr) {
          outgoing.push_back(&c);
        }
      }
      for (size_t p = 0; p < outgoing.size(); ++p) {
        for (size_t q = p + 1; q < outgoing.size(); ++q) {
          if (!AreComplementary(*outgoing[p]->condition,
                                *outgoing[q]->condition)) {
            continue;
          }
          std::optional<size_t> t1 = ActivityIndex(outgoing[p]->to);
          std::optional<size_t> t2 = ActivityIndex(outgoing[q]->to);
          if (!t1.has_value() || !t2.has_value()) continue;
          for (size_t j = 0; j < def_.activities.size(); ++j) {
            if (def_.activities[j].join != wfms::JoinKind::kAnd) continue;
            bool from_t1 = (j == *t1) || reach_[*t1][j];
            bool from_t2 = (j == *t2) || reach_[*t2][j];
            if (from_t1 && from_t2 && HasMultipleIncoming(j)) {
              Warn(kWfContradictoryFork, ActLoc(def_.activities[j]),
                   "AND-join depends on both branches of the contradictory "
                   "fork at '" +
                       def_.activities[x].name + "' (" +
                       outgoing[p]->condition->ToSql() + " vs " +
                       outgoing[q]->condition->ToSql() + ")",
                   "at most one branch fires, so this activity is always "
                   "dead-path-eliminated");
            }
          }
        }
      }
    }
  }

  bool HasMultipleIncoming(size_t j) const {
    int count = 0;
    for (const ControlConnector& c : def_.connectors) {
      std::optional<size_t> to = ActivityIndex(c.to);
      if (to.has_value() && *to == j) ++count;
    }
    return count >= 2;
  }

  void CheckUnusedProcessInputs() {
    std::vector<std::string> cond_refs;
    for (const ControlConnector& c : def_.connectors) {
      if (c.condition != nullptr) {
        CollectUnqualifiedRefs(*c.condition, &cond_refs);
      }
    }
    for (const ActivityDef& a : def_.activities) {
      if (a.exit_condition != nullptr) {
        CollectUnqualifiedRefs(*a.exit_condition, &cond_refs);
      }
    }
    for (const Column& p : def_.input_params) {
      bool used = false;
      for (const ActivityDef& a : def_.activities) {
        for (const InputSource& in : a.inputs) {
          if (in.kind == InputSource::Kind::kProcessInput &&
              EqualsIgnoreCase(in.param, p.name)) {
            used = true;
          }
        }
      }
      for (const std::string& ref : cond_refs) {
        if (EqualsIgnoreCase(ref, p.name)) used = true;
      }
      for (const std::string& ref : external_uses_) {
        if (EqualsIgnoreCase(ref, p.name)) used = true;
      }
      if (!used) {
        Warn(kWfUnusedProcessInput, ProcLoc() + "/input:" + p.name,
             "process input field " + p.name + " is never read");
      }
    }
  }

  const ProcessDefinition& def_;
  const appsys::AppSystemRegistry& systems_;
  std::vector<std::string> external_uses_;
  /// Resolved local function per program activity; nullptr otherwise.
  std::vector<const appsys::LocalFunction*> functions_;
  std::vector<std::vector<size_t>> succ_;
  std::vector<std::vector<bool>> reach_;
  std::optional<size_t> output_index_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> LintProcess(const wfms::ProcessDefinition& def,
                                    const appsys::AppSystemRegistry& systems) {
  return ProcessLinter(def, systems).Run();
}

}  // namespace fedflow::analysis
