#include "analysis/corpus.h"

#include <utility>

#include "analysis/spec_lint.h"

namespace fedflow::analysis {

namespace {

using federation::FederatedFunctionSpec;
using federation::SpecArg;
using federation::SpecCall;
using federation::SpecOutput;

/// SupplierNo INT -> stock.GetQuality -> Qual: the smallest spec that lints
/// clean against the sample systems; every entry perturbs a copy of it.
FederatedFunctionSpec QualityBase(const std::string& name) {
  FederatedFunctionSpec spec;
  spec.name = name;
  spec.params = {Column{"SupplierNo", DataType::kInt}};
  spec.calls = {SpecCall{
      "GQ", "stock", "GetQuality", {SpecArg::Param("SupplierNo")}}};
  spec.outputs = {SpecOutput{"Qual", "GQ", "Qual", DataType::kNull}};
  return spec;
}

}  // namespace

std::vector<CorpusEntry> MalformedSpecCorpus() {
  std::vector<CorpusEntry> corpus;

  {
    FederatedFunctionSpec spec = QualityBase("UnknownFunction");
    spec.calls[0].function = "NoSuchFn";
    corpus.push_back(CorpusEntry{"unknown-function", kSpecUnknownFunction,
                                 "spec:UnknownFunction/node:GQ",
                                 std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("BadArity");
    spec.calls[0].args.push_back(SpecArg::Constant(Value::Int(7)));
    corpus.push_back(CorpusEntry{"bad-arity", kSpecArityMismatch,
                                 "spec:BadArity/node:GQ", std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("DanglingNode");
    spec.calls[0].args[0] = SpecArg::NodeColumn("NOPE", "SupplierNo");
    spec.params.clear();
    corpus.push_back(CorpusEntry{"dangling-node", kSpecDanglingNode,
                                 "spec:DanglingNode/node:GQ/arg:1",
                                 std::move(spec)});
  }
  {
    // GSN resolves, but GQ asks it for a column it does not produce.
    FederatedFunctionSpec spec;
    spec.name = "DanglingColumn";
    spec.params = {Column{"SupplierName", DataType::kVarchar}};
    spec.calls = {
        SpecCall{"GSN", "purchasing", "GetSupplierNo",
                 {SpecArg::Param("SupplierName")}},
        SpecCall{"GQ", "stock", "GetQuality",
                 {SpecArg::NodeColumn("GSN", "Nope")}}};
    spec.outputs = {SpecOutput{"Qual", "GQ", "Qual", DataType::kNull}};
    corpus.push_back(CorpusEntry{"dangling-column", kSpecUnknownNodeColumn,
                                 "spec:DanglingColumn/node:GQ/arg:1",
                                 std::move(spec)});
  }
  {
    // A and B feed each other — iteration without a do-until exit.
    FederatedFunctionSpec spec;
    spec.name = "CycleNoExit";
    spec.calls = {
        SpecCall{"A", "stock", "GetQuality", {SpecArg::NodeColumn("B", "Qual")}},
        SpecCall{"B", "stock", "GetQuality",
                 {SpecArg::NodeColumn("A", "Qual")}}};
    spec.outputs = {SpecOutput{"Qual", "A", "Qual", DataType::kNull}};
    corpus.push_back(CorpusEntry{"cycle-without-exit", kSpecCycleWithoutExit,
                                 "spec:CycleNoExit", std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("BadLoop");
    spec.params.clear();
    spec.calls[0].args[0] = SpecArg::Param("ITERATION");
    spec.loop.enabled = true;
    spec.loop.count_param = "N";  // never declared
    corpus.push_back(CorpusEntry{"bad-loop", kSpecBadLoopParam,
                                 "spec:BadLoop/loop", std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("TypeMismatch");
    spec.params.clear();
    spec.calls[0].args[0] = SpecArg::Constant(Value::Varchar("oops"));
    corpus.push_back(CorpusEntry{"type-mismatch", kSpecArgTypeMismatch,
                                 "spec:TypeMismatch/node:GQ/arg:1",
                                 std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("DupOutput");
    spec.outputs.push_back(SpecOutput{"Qual", "GQ", "Qual", DataType::kNull});
    corpus.push_back(CorpusEntry{"duplicate-output", kSpecDuplicateOutput,
                                 "spec:DupOutput/output:Qual",
                                 std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("UnusedParam");
    spec.params.push_back(Column{"Extra", DataType::kInt});
    corpus.push_back(CorpusEntry{"unused-param", kSpecUnusedParam,
                                 "spec:UnusedParam/param:Extra",
                                 std::move(spec)});
  }
  {
    // GR runs (and is paid for) but nothing consumes its result.
    FederatedFunctionSpec spec;
    spec.name = "DeadNode";
    spec.params = {Column{"SupplierName", DataType::kVarchar}};
    spec.calls = {
        SpecCall{"GSN", "purchasing", "GetSupplierNo",
                 {SpecArg::Param("SupplierName")}},
        SpecCall{"GR", "purchasing", "GetReliability",
                 {SpecArg::NodeColumn("GSN", "SupplierNo")}}};
    spec.outputs = {
        SpecOutput{"SupplierNo", "GSN", "SupplierNo", DataType::kNull}};
    corpus.push_back(CorpusEntry{"dead-node", kSpecDeadNode,
                                 "spec:DeadNode/node:GR", std::move(spec)});
  }

  return corpus;
}

}  // namespace fedflow::analysis
