#include "analysis/corpus.h"

#include <utility>

#include "analysis/dataflow/dataflow_lint.h"
#include "analysis/spec_lint.h"

namespace fedflow::analysis {

namespace {

using federation::FederatedFunctionSpec;
using federation::SpecArg;
using federation::SpecCall;
using federation::SpecOutput;

/// SupplierNo INT -> stock.GetQuality -> Qual: the smallest spec that lints
/// clean against the sample systems; every entry perturbs a copy of it.
FederatedFunctionSpec QualityBase(const std::string& name) {
  FederatedFunctionSpec spec;
  spec.name = name;
  spec.params = {Column{"SupplierNo", DataType::kInt}};
  spec.calls = {SpecCall{
      "GQ", "stock", "GetQuality", {SpecArg::Param("SupplierNo")}}};
  spec.outputs = {SpecOutput{"Qual", "GQ", "Qual", DataType::kNull}};
  return spec;
}

}  // namespace

std::vector<CorpusEntry> MalformedSpecCorpus() {
  std::vector<CorpusEntry> corpus;

  {
    FederatedFunctionSpec spec = QualityBase("UnknownFunction");
    spec.calls[0].function = "NoSuchFn";
    corpus.push_back(CorpusEntry{"unknown-function", kSpecUnknownFunction,
                                 "spec:UnknownFunction/node:GQ",
                                 std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("BadArity");
    spec.calls[0].args.push_back(SpecArg::Constant(Value::Int(7)));
    corpus.push_back(CorpusEntry{"bad-arity", kSpecArityMismatch,
                                 "spec:BadArity/node:GQ", std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("DanglingNode");
    spec.calls[0].args[0] = SpecArg::NodeColumn("NOPE", "SupplierNo");
    spec.params.clear();
    corpus.push_back(CorpusEntry{"dangling-node", kSpecDanglingNode,
                                 "spec:DanglingNode/node:GQ/arg:1",
                                 std::move(spec)});
  }
  {
    // GSN resolves, but GQ asks it for a column it does not produce.
    FederatedFunctionSpec spec;
    spec.name = "DanglingColumn";
    spec.params = {Column{"SupplierName", DataType::kVarchar}};
    spec.calls = {
        SpecCall{"GSN", "purchasing", "GetSupplierNo",
                 {SpecArg::Param("SupplierName")}},
        SpecCall{"GQ", "stock", "GetQuality",
                 {SpecArg::NodeColumn("GSN", "Nope")}}};
    spec.outputs = {SpecOutput{"Qual", "GQ", "Qual", DataType::kNull}};
    corpus.push_back(CorpusEntry{"dangling-column", kSpecUnknownNodeColumn,
                                 "spec:DanglingColumn/node:GQ/arg:1",
                                 std::move(spec)});
  }
  {
    // A and B feed each other — iteration without a do-until exit.
    FederatedFunctionSpec spec;
    spec.name = "CycleNoExit";
    spec.calls = {
        SpecCall{"A", "stock", "GetQuality", {SpecArg::NodeColumn("B", "Qual")}},
        SpecCall{"B", "stock", "GetQuality",
                 {SpecArg::NodeColumn("A", "Qual")}}};
    spec.outputs = {SpecOutput{"Qual", "A", "Qual", DataType::kNull}};
    corpus.push_back(CorpusEntry{"cycle-without-exit", kSpecCycleWithoutExit,
                                 "spec:CycleNoExit", std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("BadLoop");
    spec.params.clear();
    spec.calls[0].args[0] = SpecArg::Param("ITERATION");
    spec.loop.enabled = true;
    spec.loop.count_param = "N";  // never declared
    corpus.push_back(CorpusEntry{"bad-loop", kSpecBadLoopParam,
                                 "spec:BadLoop/loop", std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("TypeMismatch");
    spec.params.clear();
    spec.calls[0].args[0] = SpecArg::Constant(Value::Varchar("oops"));
    corpus.push_back(CorpusEntry{"type-mismatch", kSpecArgTypeMismatch,
                                 "spec:TypeMismatch/node:GQ/arg:1",
                                 std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("DupOutput");
    spec.outputs.push_back(SpecOutput{"Qual", "GQ", "Qual", DataType::kNull});
    corpus.push_back(CorpusEntry{"duplicate-output", kSpecDuplicateOutput,
                                 "spec:DupOutput/output:Qual",
                                 std::move(spec)});
  }
  {
    FederatedFunctionSpec spec = QualityBase("UnusedParam");
    spec.params.push_back(Column{"Extra", DataType::kInt});
    corpus.push_back(CorpusEntry{"unused-param", kSpecUnusedParam,
                                 "spec:UnusedParam/param:Extra",
                                 std::move(spec)});
  }
  {
    // GR runs (and is paid for) but nothing consumes its result.
    FederatedFunctionSpec spec;
    spec.name = "DeadNode";
    spec.params = {Column{"SupplierName", DataType::kVarchar}};
    spec.calls = {
        SpecCall{"GSN", "purchasing", "GetSupplierNo",
                 {SpecArg::Param("SupplierName")}},
        SpecCall{"GR", "purchasing", "GetReliability",
                 {SpecArg::NodeColumn("GSN", "SupplierNo")}}};
    spec.outputs = {
        SpecOutput{"SupplierNo", "GSN", "SupplierNo", DataType::kNull}};
    corpus.push_back(CorpusEntry{"dead-node", kSpecDeadNode,
                                 "spec:DeadNode/node:GR", std::move(spec)});
  }

  return corpus;
}

std::vector<SemanticCorpusEntry> SemanticSpecCorpus() {
  std::vector<SemanticCorpusEntry> corpus;

  {
    // VARCHAR -> BOOL goes through ToInt64, which rejects every string: the
    // cast is well-formed syntactically but can never succeed at runtime.
    SemanticCorpusEntry entry;
    entry.name = "cast-never-succeeds";
    entry.expected_code = kDfCastNeverSucceeds;
    entry.expected_location = "spec:CastNever/output:Reliable";
    entry.spec.name = "CastNever";
    entry.spec.params = {Column{"SupplierNo", DataType::kInt}};
    entry.spec.calls = {SpecCall{"GSN", "purchasing", "GetSupplierName",
                                 {SpecArg::Param("SupplierNo")}}};
    entry.spec.outputs = {
        SpecOutput{"Reliable", "GSN", "SupplierName", DataType::kBool}};
    corpus.push_back(std::move(entry));
  }
  {
    // Two unbounded set-returners precede GSN in the lateral order, so the
    // nest-loop lowerings invoke it rows(GSC) x rows(GCS) times — a product
    // of two unbounded factors.
    SemanticCorpusEntry entry;
    entry.name = "invocation-explosion";
    entry.expected_code = kDfInvocationExplosion;
    entry.expected_location = "spec:Explosion/node:GSN";
    entry.spec.name = "Explosion";
    entry.spec.params = {Column{"SupplierNo", DataType::kInt},
                         Column{"Discount", DataType::kInt}};
    entry.spec.calls = {
        SpecCall{"GSC", "stock", "GetSuppComps",
                 {SpecArg::Param("SupplierNo")}},
        SpecCall{"GCS", "purchasing", "GetCompSupp4Discount",
                 {SpecArg::Param("Discount")}},
        SpecCall{"GSN", "purchasing", "GetSupplierName",
                 {SpecArg::Param("SupplierNo")}}};
    entry.spec.outputs = {
        SpecOutput{"CompNo", "GSC", "CompNo", DataType::kNull},
        SpecOutput{"DiscComp", "GCS", "CompNo", DataType::kNull},
        SpecOutput{"SupplierName", "GSN", "SupplierName", DataType::kNull}};
    corpus.push_back(std::move(entry));
  }
  {
    // GetCompName takes one CompNo, but GSC's row contract is [0, inf): the
    // WfMS activity rejects multi-row inputs while the lateral lowerings
    // nest-loop over them, so the couplings diverge.
    SemanticCorpusEntry entry;
    entry.name = "scalar-of-multi-row";
    entry.expected_code = kDfScalarOfMultiRow;
    entry.expected_location = "spec:ScalarOfSet/node:GCN/arg:1";
    entry.spec.name = "ScalarOfSet";
    entry.spec.params = {Column{"SupplierNo", DataType::kInt}};
    entry.spec.calls = {
        SpecCall{"GSC", "stock", "GetSuppComps",
                 {SpecArg::Param("SupplierNo")}},
        SpecCall{"GCN", "pdm", "GetCompName",
                 {SpecArg::NodeColumn("GSC", "CompNo")}}};
    entry.spec.outputs = {
        SpecOutput{"CompName", "GCN", "CompName", DataType::kNull}};
    corpus.push_back(std::move(entry));
  }
  {
    // A union-all do-until whose body is an unbounded set-returner
    // accumulates rows without bound across iterations.
    SemanticCorpusEntry entry;
    entry.name = "unbounded-loop-union";
    entry.expected_code = kDfUnboundedLoopUnion;
    entry.expected_location = "spec:UnboundedUnion/loop";
    entry.spec.name = "UnboundedUnion";
    entry.spec.params = {Column{"N", DataType::kInt}};
    entry.spec.calls = {SpecCall{"GSUB", "pdm", "GetSubCompNo",
                                 {SpecArg::Param("ITERATION")}}};
    entry.spec.outputs = {
        SpecOutput{"SubCompNo", "GSUB", "SubCompNo", DataType::kNull}};
    entry.spec.loop.enabled = true;
    entry.spec.loop.count_param = "N";
    entry.spec.loop.union_all = true;
    corpus.push_back(std::move(entry));
  }
  {
    // Even the cheapest supported lowering of a single-call plan costs
    // thousands of modeled microseconds; a 1000us deadline is infeasible
    // fully warm.
    SemanticCorpusEntry entry;
    entry.name = "deadline-infeasible";
    entry.expected_code = kDfDeadlineInfeasible;
    entry.expected_location = "spec:DeadlineMiss/deadline";
    entry.spec.name = "DeadlineMiss";
    entry.spec.params = {Column{"SupplierNo", DataType::kInt}};
    entry.spec.calls = {SpecCall{"GQ", "stock", "GetQuality",
                                 {SpecArg::Param("SupplierNo")}}};
    entry.spec.outputs = {SpecOutput{"Qual", "GQ", "Qual", DataType::kNull}};
    entry.deadline_us = 1000;
    corpus.push_back(std::move(entry));
  }
  {
    // Backoff before attempts 2 and 3 sums to 30000us, more than the retry
    // policy's own 20000us per-call deadline: the last attempt can never run.
    SemanticCorpusEntry entry;
    entry.name = "retry-schedule-infeasible";
    entry.expected_code = kDfRetryScheduleInfeasible;
    entry.expected_location = "spec:RetryInfeasible/retry";
    entry.spec.name = "RetryInfeasible";
    entry.spec.params = {Column{"SupplierNo", DataType::kInt}};
    entry.spec.calls = {SpecCall{"GQ", "stock", "GetQuality",
                                 {SpecArg::Param("SupplierNo")}}};
    entry.spec.outputs = {SpecOutput{"Qual", "GQ", "Qual", DataType::kNull}};
    entry.retry.max_attempts = 3;
    entry.retry.initial_backoff_us = 10000;
    entry.retry.backoff_multiplier = 2;
    entry.retry.deadline_us = 20000;
    corpus.push_back(std::move(entry));
  }
  {
    // GQ and GR are independent, so the parallelize pass puts them in one
    // 2-wide stage — wider than the single lease the tenant quota admits.
    SemanticCorpusEntry entry;
    entry.name = "stage-over-tenant-quota";
    entry.expected_code = kDfStageOverTenantQuota;
    entry.expected_location = "spec:QuotaOverflow/stage:1";
    entry.spec.name = "QuotaOverflow";
    entry.spec.params = {Column{"SupplierNo", DataType::kInt}};
    entry.spec.calls = {
        SpecCall{"GQ", "stock", "GetQuality", {SpecArg::Param("SupplierNo")}},
        SpecCall{"GR", "purchasing", "GetReliability",
                 {SpecArg::Param("SupplierNo")}},
        SpecCall{"GG", "purchasing", "GetGrade",
                 {SpecArg::NodeColumn("GQ", "Qual"),
                  SpecArg::NodeColumn("GR", "Relia")}}};
    entry.spec.outputs = {SpecOutput{"Grade", "GG", "Grade", DataType::kNull}};
    entry.pool_max_size = 4;
    entry.per_tenant_quota = 1;
    entry.parallelize = true;
    corpus.push_back(std::move(entry));
  }

  return corpus;
}

}  // namespace fedflow::analysis
