// The diagnostic-code registry: one table of every FF### code fedlint can
// emit, with its band, default severity and a one-line summary. The
// code_registry test pins uniqueness, band membership and documentation
// coverage (every code must appear in DESIGN.md); the SARIF writer renders
// the table as the tool's rule metadata.
#ifndef FEDFLOW_ANALYSIS_CODE_REGISTRY_H_
#define FEDFLOW_ANALYSIS_CODE_REGISTRY_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"

namespace fedflow::analysis {

/// One registered diagnostic code.
struct CodeInfo {
  std::string code;      ///< "FF410"
  Severity severity;     ///< the severity the passes emit it with
  std::string name;      ///< stable kebab-case rule name for SARIF
  std::string summary;   ///< one line, imperative
};

/// One contiguous code band and the pass that owns it. (Bands scope passes,
/// not severities — the dataflow bands carry both errors and warnings.)
struct CodeBand {
  int lo = 0;            ///< inclusive numeric code
  int hi = 0;            ///< inclusive numeric code
  std::string pass;      ///< "spec" / "workflow" / "sql" / "plan" / "dataflow"
};

/// Every code any fedlint pass can emit, ordered by numeric code.
const std::vector<CodeInfo>& AllDiagnosticCodes();

/// The band layout (documented in DESIGN.md and analysis/diagnostic.h).
const std::vector<CodeBand>& DiagnosticCodeBands();

/// Registry lookup; nullptr for unknown codes.
const CodeInfo* FindDiagnosticCode(const std::string& code);

}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_CODE_REGISTRY_H_
