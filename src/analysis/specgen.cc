#include "analysis/specgen.h"

#include <utility>

#include "common/rng.h"

namespace fedflow::analysis {

namespace {

using federation::FederatedFunctionSpec;
using federation::MappingCase;
using federation::SpecArg;
using federation::SpecCall;
using federation::SpecJoin;
using federation::SpecOutput;

/// The case tag baked into generated function names (also a quick visual
/// check when a fuzz failure names the offending spec).
const char* CaseTag(MappingCase c) {
  switch (c) {
    case MappingCase::kTrivial:
      return "TRIV";
    case MappingCase::kSimple:
      return "SIMP";
    case MappingCase::kIndependent:
      return "INDE";
    case MappingCase::kDependentLinear:
      return "LINE";
    case MappingCase::kDependent1N:
      return "DE1N";
    case MappingCase::kDependentN1:
      return "DEN1";
    case MappingCase::kDependentCyclic:
      return "CYCL";
    case MappingCase::kGeneral:
      return "GENE";
  }
  return "XXXX";
}

/// A local function's registration-facts the generator draws on. Mirrors the
/// three application systems; specgen_test cross-checks this table against
/// the live registry so it cannot drift silently.
struct FnInfo {
  const char* system;
  const char* function;
  std::vector<Column> params;
  std::vector<Column> results;
  bool single_row;  ///< [0,1] or [1,1] contract (scalar-consumable)
};

const std::vector<FnInfo>& Catalog() {
  static const std::vector<FnInfo>* kCatalog = new std::vector<FnInfo>{
      {"stock",
       "GetQuality",
       {Column{"SupplierNo", DataType::kInt}},
       {Column{"Qual", DataType::kInt}},
       true},
      {"stock",
       "GetNumber",
       {Column{"SupplierNo", DataType::kInt}, Column{"CompNo", DataType::kInt}},
       {Column{"Number", DataType::kInt}},
       true},
      {"stock",
       "GetSuppComps",
       {Column{"SupplierNo", DataType::kInt}},
       {Column{"CompNo", DataType::kInt}},
       false},
      {"purchasing",
       "GetSupplierNo",
       {Column{"SupplierName", DataType::kVarchar}},
       {Column{"SupplierNo", DataType::kInt}},
       true},
      {"purchasing",
       "GetSupplierName",
       {Column{"SupplierNo", DataType::kInt}},
       {Column{"SupplierName", DataType::kVarchar}},
       true},
      {"purchasing",
       "GetReliability",
       {Column{"SupplierNo", DataType::kInt}},
       {Column{"Relia", DataType::kInt}},
       true},
      {"purchasing",
       "GetCompSupp4Discount",
       {Column{"Discount", DataType::kInt}},
       {Column{"CompNo", DataType::kInt}, Column{"SupplierNo", DataType::kInt}},
       false},
      {"purchasing",
       "GetGrade",
       {Column{"Qual", DataType::kInt}, Column{"Relia", DataType::kInt}},
       {Column{"Grade", DataType::kInt}},
       true},
      {"purchasing",
       "DecidePurchase",
       {Column{"Grade", DataType::kInt}, Column{"CompNo", DataType::kInt}},
       {Column{"Answer", DataType::kVarchar}},
       true},
      {"pdm",
       "GetCompNo",
       {Column{"CompName", DataType::kVarchar}},
       {Column{"No", DataType::kInt}},
       true},
      {"pdm",
       "GetCompName",
       {Column{"CompNo", DataType::kInt}},
       {Column{"CompName", DataType::kVarchar}},
       true},
      {"pdm",
       "GetSubCompNo",
       {Column{"CompNo", DataType::kInt}},
       {Column{"SubCompNo", DataType::kInt}},
       false},
  };
  return *kCatalog;
}

const FnInfo& Fn(const char* function) {
  for (const FnInfo& f : Catalog()) {
    if (std::string(f.function) == function) return f;
  }
  return Catalog()[0];  // unreachable with valid names
}

/// Builder that accumulates a spec plus the concrete argument values its
/// federated parameters need for guaranteed-hit execution.
class Builder {
 public:
  Builder(std::string name, Rng* rng) : rng_(rng) { spec_.name = std::move(name); }

  /// Declares a federated parameter carrying `value` at execution time.
  /// Returns its (generated) name.
  std::string AddParam(DataType type, Value value) {
    std::string name = "P" + std::to_string(spec_.params.size() + 1);
    spec_.params.push_back(Column{name, type});
    args_.push_back(std::move(value));
    return name;
  }

  /// Adds a call node; `args` in the local function's parameter order.
  std::string AddCall(const FnInfo& fn, std::vector<SpecArg> call_args) {
    std::string id = "N" + std::to_string(spec_.calls.size() + 1);
    spec_.calls.push_back(SpecCall{id, fn.system, fn.function, std::move(call_args)});
    return id;
  }

  /// Exposes `column` of `node`, deduplicating federated output names.
  void AddOutput(const std::string& node, const std::string& column,
                 DataType cast_to = DataType::kNull) {
    std::string name = column;
    for (const SpecOutput& o : spec_.outputs) {
      if (o.name == name) {
        name = node + "_" + column;
        break;
      }
    }
    spec_.outputs.push_back(SpecOutput{name, node, column, cast_to});
  }

  void AddJoin(std::string ln, std::string lc, std::string rn, std::string rc) {
    spec_.joins.push_back(
        SpecJoin{std::move(ln), std::move(lc), std::move(rn), std::move(rc)});
  }

  Rng& rng() { return *rng_; }
  FederatedFunctionSpec& spec() { return spec_; }
  std::vector<Value>& args() { return args_; }

 private:
  FederatedFunctionSpec spec_;
  std::vector<Value> args_;
  Rng* rng_;
};

}  // namespace

SpecGenerator::SpecGenerator(const appsys::Scenario& scenario) {
  for (const appsys::SupplierRecord& s : scenario.suppliers) {
    supplier_nos_.push_back(s.supplier_no);
    supplier_names_.push_back(s.name);
  }
  for (const appsys::ComponentRecord& c : scenario.components) {
    comp_nos_.push_back(c.comp_no);
    comp_names_.push_back(c.name);
  }
  for (const appsys::StockRecord& s : scenario.stock) {
    stock_pairs_.emplace_back(s.supplier_no, s.comp_no);
  }
}

GeneratedSpec SpecGenerator::Generate(std::uint64_t seed) const {
  static constexpr MappingCase kCases[] = {
      MappingCase::kTrivial,        MappingCase::kSimple,
      MappingCase::kIndependent,    MappingCase::kDependentLinear,
      MappingCase::kDependent1N,    MappingCase::kDependentN1,
      MappingCase::kDependentCyclic, MappingCase::kGeneral,
  };
  return GenerateCase(kCases[seed % 8], seed);
}

GeneratedSpec SpecGenerator::GenerateCase(MappingCase c,
                                          std::uint64_t seed) const {
  // Salt the stream with the case so the same seed yields independent
  // draws per class.
  Rng rng(seed * 8 + static_cast<std::uint64_t>(c) + 0x5ecf00dULL);
  std::string name =
      std::string("FZ_") + CaseTag(c) + "_" + std::to_string(seed);

  GeneratedSpec out;
  out.mapping_case = c;
  Builder b(name, &rng);

  // Domain draws.
  auto supplier_no = [&] {
    return Value::Int(supplier_nos_[rng.Uniform(
        0, static_cast<int64_t>(supplier_nos_.size()) - 1)]);
  };
  auto supplier_name = [&] {
    return Value::Varchar(supplier_names_[rng.Uniform(
        0, static_cast<int64_t>(supplier_names_.size()) - 1)]);
  };
  auto comp_no = [&] {
    return Value::Int(comp_nos_[rng.Uniform(
        0, static_cast<int64_t>(comp_nos_.size()) - 1)]);
  };
  auto comp_name = [&] {
    return Value::Varchar(comp_names_[rng.Uniform(
        0, static_cast<int64_t>(comp_names_.size()) - 1)]);
  };
  auto rating = [&] { return Value::Int(static_cast<int32_t>(rng.Uniform(1, 10))); };
  auto discount = [&] {
    static constexpr int32_t kTiers[] = {0, 5, 10, 15};
    return Value::Int(kTiers[rng.Uniform(0, 3)]);
  };
  /// Hit value for a local parameter, by its (semantic) name.
  auto domain_value = [&](const Column& param) {
    const std::string& n = param.name;
    if (n == "SupplierNo") return supplier_no();
    if (n == "SupplierName") return supplier_name();
    if (n == "CompNo") return comp_no();
    if (n == "CompName") return comp_name();
    if (n == "Discount") return discount();
    return rating();  // Qual / Relia / Grade
  };
  /// Declares one federated param (typed like `param`) per local param and
  /// returns the SpecArg list, special-casing GetNumber so its
  /// (SupplierNo, CompNo) pair is a real stock record.
  auto params_for = [&](const FnInfo& fn) {
    std::vector<SpecArg> call_args;
    if (std::string(fn.function) == "GetNumber" && !stock_pairs_.empty()) {
      const auto& pair = stock_pairs_[rng.Uniform(
          0, static_cast<int64_t>(stock_pairs_.size()) - 1)];
      call_args.push_back(
          SpecArg::Param(b.AddParam(DataType::kInt, Value::Int(pair.first))));
      call_args.push_back(
          SpecArg::Param(b.AddParam(DataType::kInt, Value::Int(pair.second))));
      return call_args;
    }
    for (const Column& p : fn.params) {
      call_args.push_back(SpecArg::Param(b.AddParam(p.type, domain_value(p))));
    }
    return call_args;
  };
  auto output_all = [&](const std::string& node, const FnInfo& fn) {
    for (const Column& col : fn.results) b.AddOutput(node, col.name);
  };

  switch (c) {
    case MappingCase::kTrivial: {
      // Identity signature: federated params mirror the local ones by name
      // and order, no constants, no casts.
      const FnInfo& fn =
          Catalog()[rng.Uniform(0, static_cast<int64_t>(Catalog().size()) - 1)];
      std::vector<SpecArg> call_args;
      if (std::string(fn.function) == "GetNumber" && !stock_pairs_.empty()) {
        const auto& pair = stock_pairs_[rng.Uniform(
            0, static_cast<int64_t>(stock_pairs_.size()) - 1)];
        b.spec().params = fn.params;
        b.args() = {Value::Int(pair.first), Value::Int(pair.second)};
      } else {
        b.spec().params = fn.params;
        for (const Column& p : fn.params) b.args().push_back(domain_value(p));
      }
      for (const Column& p : fn.params) {
        call_args.push_back(SpecArg::Param(p.name));
      }
      std::string node = b.AddCall(fn, std::move(call_args));
      output_all(node, fn);
      break;
    }
    case MappingCase::kSimple: {
      // Single call, non-identity: exactly one of (a) a constant-bound
      // argument, (b) reversed parameter order, (c) an always-succeeding
      // output cast.
      const FnInfo& fn =
          Catalog()[rng.Uniform(0, static_cast<int64_t>(Catalog().size()) - 1)];
      int variant = static_cast<int>(rng.Uniform(0, 2));
      // Constant-binding and reordering both need >= 2 local params (the
      // former to keep at least one federated param); fall back to a cast.
      if (variant != 2 && fn.params.size() < 2) variant = 2;
      if (variant == 0) {
        // One local param gets a constant; the rest stay federated.
        std::vector<SpecArg> call_args;
        if (std::string(fn.function) == "GetNumber" && !stock_pairs_.empty()) {
          const auto& pair = stock_pairs_[rng.Uniform(
              0, static_cast<int64_t>(stock_pairs_.size()) - 1)];
          // Bind BOTH halves of the pair (constant + param) so the hit
          // guarantee survives the split.
          call_args.push_back(SpecArg::Constant(Value::Int(pair.first)));
          call_args.push_back(SpecArg::Param(
              b.AddParam(DataType::kInt, Value::Int(pair.second))));
        } else {
          size_t bound = static_cast<size_t>(
              rng.Uniform(0, static_cast<int64_t>(fn.params.size()) - 1));
          for (size_t i = 0; i < fn.params.size(); ++i) {
            if (i == bound) {
              call_args.push_back(SpecArg::Constant(domain_value(fn.params[i])));
            } else {
              call_args.push_back(SpecArg::Param(
                  b.AddParam(fn.params[i].type, domain_value(fn.params[i]))));
            }
          }
        }
        std::string node = b.AddCall(fn, std::move(call_args));
        output_all(node, fn);
      } else if (variant == 1) {
        // Federated params declared in reverse order (args still correct).
        std::vector<std::string> names(fn.params.size());
        std::vector<Value> values(fn.params.size());
        if (std::string(fn.function) == "GetNumber" && !stock_pairs_.empty()) {
          const auto& pair = stock_pairs_[rng.Uniform(
              0, static_cast<int64_t>(stock_pairs_.size()) - 1)];
          values[0] = Value::Int(pair.first);
          values[1] = Value::Int(pair.second);
        } else {
          for (size_t i = 0; i < fn.params.size(); ++i) {
            values[i] = domain_value(fn.params[i]);
          }
        }
        for (size_t k = fn.params.size(); k-- > 0;) {
          names[k] = b.AddParam(fn.params[k].type, values[k]);
        }
        std::vector<SpecArg> call_args;
        for (const std::string& n : names) call_args.push_back(SpecArg::Param(n));
        std::string node = b.AddCall(fn, std::move(call_args));
        output_all(node, fn);
      } else {
        // Cast one output along an always-succeeding edge.
        std::string node = b.AddCall(fn, params_for(fn));
        size_t cast_at = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(fn.results.size()) - 1));
        for (size_t i = 0; i < fn.results.size(); ++i) {
          if (i != cast_at) {
            b.AddOutput(node, fn.results[i].name);
            continue;
          }
          DataType to = DataType::kVarchar;
          if (fn.results[i].type == DataType::kInt) {
            to = rng.Chance(0.5) ? DataType::kBigInt : DataType::kDouble;
          }
          b.AddOutput(node, fn.results[i].name, to);
        }
      }
      break;
    }
    case MappingCase::kIndependent: {
      // The WfMS RESULT activity assembles multi-node outputs either
      // scalarly (every contributing node must be 1x1) or along a join
      // chain — so the generator emits exactly those two shapes.
      if (rng.Chance(0.6)) {
        // 2-3 guaranteed-single-row calls, scalar assembly.
        std::vector<const FnInfo*> single_row;
        for (const FnInfo& fn : Catalog()) {
          if (fn.single_row) single_row.push_back(&fn);
        }
        size_t n = static_cast<size_t>(rng.Uniform(2, 3));
        for (size_t i = 0; i < n; ++i) {
          const FnInfo& fn = *single_row[rng.Uniform(
              0, static_cast<int64_t>(single_row.size()) - 1)];
          std::string node = b.AddCall(fn, params_for(fn));
          output_all(node, fn);
        }
      } else {
        // Two set-returners joined on their component-number columns (the
        // paper's "join with selection" mechanism).
        struct JoinSide {
          const char* function;
          const char* column;
        };
        static constexpr JoinSide kSides[] = {
            {"GetSuppComps", "CompNo"},
            {"GetCompSupp4Discount", "CompNo"},
            {"GetSubCompNo", "SubCompNo"},
        };
        size_t li = static_cast<size_t>(rng.Uniform(0, 2));
        size_t ri = static_cast<size_t>(rng.Uniform(0, 2));
        if (ri == li) ri = (ri + 1) % 3;
        const FnInfo& lf = Fn(kSides[li].function);
        const FnInfo& rf = Fn(kSides[ri].function);
        std::string ln = b.AddCall(lf, params_for(lf));
        std::string rn = b.AddCall(rf, params_for(rf));
        b.AddJoin(ln, kSides[li].column, rn, kSides[ri].column);
        output_all(ln, lf);
        output_all(rn, rf);
      }
      break;
    }
    case MappingCase::kDependentLinear: {
      // A hand-authored chain; every scalar link hits by construction.
      int pattern = static_cast<int>(rng.Uniform(0, 3));
      if (pattern == 0) {
        // GetSupplierNo -> GetQuality [-> GetGrade -> DecidePurchase]
        const FnInfo& pn = Fn("GetSupplierNo");
        const FnInfo& sq = Fn("GetQuality");
        std::string n1 = b.AddCall(pn, params_for(pn));
        std::string n2 =
            b.AddCall(sq, {SpecArg::NodeColumn(n1, "SupplierNo")});
        if (rng.Chance(0.5)) {
          const FnInfo& pg = Fn("GetGrade");
          const FnInfo& pd = Fn("DecidePurchase");
          std::string n3 = b.AddCall(
              pg, {SpecArg::NodeColumn(n2, "Qual"), SpecArg::Constant(rating())});
          std::string n4 = b.AddCall(
              pd, {SpecArg::NodeColumn(n3, "Grade"), SpecArg::Constant(comp_no())});
          output_all(n4, pd);
        } else {
          output_all(n2, sq);
        }
      } else if (pattern == 1) {
        // GetSupplierNo -> GetReliability -> GetGrade
        const FnInfo& pn = Fn("GetSupplierNo");
        const FnInfo& pr = Fn("GetReliability");
        const FnInfo& pg = Fn("GetGrade");
        std::string n1 = b.AddCall(pn, params_for(pn));
        std::string n2 =
            b.AddCall(pr, {SpecArg::NodeColumn(n1, "SupplierNo")});
        std::string n3 = b.AddCall(
            pg, {SpecArg::Constant(rating()), SpecArg::NodeColumn(n2, "Relia")});
        output_all(n3, pg);
      } else if (pattern == 2) {
        // GetCompNo -> {GetCompName | GetSubCompNo}
        const FnInfo& dc = Fn("GetCompNo");
        std::string n1 = b.AddCall(dc, params_for(dc));
        const FnInfo& next =
            rng.Chance(0.5) ? Fn("GetCompName") : Fn("GetSubCompNo");
        std::string n2 = b.AddCall(next, {SpecArg::NodeColumn(n1, "No")});
        output_all(n2, next);
      } else {
        // GetSupplierNo -> {GetSupplierName | GetSuppComps}
        const FnInfo& pn = Fn("GetSupplierNo");
        std::string n1 = b.AddCall(pn, params_for(pn));
        const FnInfo& next =
            rng.Chance(0.5) ? Fn("GetSupplierName") : Fn("GetSuppComps");
        std::string n2 =
            b.AddCall(next, {SpecArg::NodeColumn(n1, "SupplierNo")});
        output_all(n2, next);
      }
      break;
    }
    case MappingCase::kDependent1N: {
      // One node consuming >= 2 nodes.
      if (rng.Chance(0.5)) {
        // GetQuality + GetReliability -> GetGrade [-> DecidePurchase]
        const FnInfo& sq = Fn("GetQuality");
        const FnInfo& pr = Fn("GetReliability");
        const FnInfo& pg = Fn("GetGrade");
        Value s = supplier_no();
        std::string p = b.AddParam(DataType::kInt, s);
        std::string n1 = b.AddCall(sq, {SpecArg::Param(p)});
        std::string n2 = b.AddCall(pr, {SpecArg::Param(p)});
        std::string n3 = b.AddCall(pg, {SpecArg::NodeColumn(n1, "Qual"),
                                        SpecArg::NodeColumn(n2, "Relia")});
        if (rng.Chance(0.4)) {
          const FnInfo& pd = Fn("DecidePurchase");
          std::string n4 = b.AddCall(
              pd, {SpecArg::NodeColumn(n3, "Grade"), SpecArg::Constant(comp_no())});
          output_all(n4, pd);
        } else {
          output_all(n3, pg);
        }
      } else {
        // GetSupplierNo + GetCompNo -> DecidePurchase(Grade<-const, CompNo)
        // via GetGrade on constants? Keep it concrete: GetCompNo + GetGrade
        // (constants) -> DecidePurchase(Grade, No).
        const FnInfo& dc = Fn("GetCompNo");
        const FnInfo& pg = Fn("GetGrade");
        const FnInfo& pd = Fn("DecidePurchase");
        std::string n1 = b.AddCall(dc, params_for(dc));
        std::string n2 = b.AddCall(
            pg, {SpecArg::Constant(rating()), SpecArg::Constant(rating())});
        std::string n3 = b.AddCall(pd, {SpecArg::NodeColumn(n2, "Grade"),
                                        SpecArg::NodeColumn(n1, "No")});
        output_all(n3, pd);
      }
      break;
    }
    case MappingCase::kDependentN1: {
      // One node feeding >= 2 nodes.
      if (rng.Chance(0.5)) {
        const FnInfo& pn = Fn("GetSupplierNo");
        const FnInfo& sq = Fn("GetQuality");
        const FnInfo& pr = Fn("GetReliability");
        std::string n1 = b.AddCall(pn, params_for(pn));
        std::string n2 = b.AddCall(sq, {SpecArg::NodeColumn(n1, "SupplierNo")});
        std::string n3 = b.AddCall(pr, {SpecArg::NodeColumn(n1, "SupplierNo")});
        output_all(n2, sq);
        output_all(n3, pr);
      } else {
        // GetCompNo fans out to GetCompName and DecidePurchase — both
        // guaranteed 1x1, so the WfMS scalar result assembly holds.
        const FnInfo& dc = Fn("GetCompNo");
        const FnInfo& dn = Fn("GetCompName");
        const FnInfo& pd = Fn("DecidePurchase");
        std::string n1 = b.AddCall(dc, params_for(dc));
        std::string n2 = b.AddCall(dn, {SpecArg::NodeColumn(n1, "No")});
        std::string n3 = b.AddCall(
            pd, {SpecArg::Constant(rating()), SpecArg::NodeColumn(n1, "No")});
        output_all(n2, dn);
        output_all(n3, pd);
      }
      break;
    }
    case MappingCase::kDependentCyclic: {
      // Do-until loop; ITERATION drives a component lookup (components are
      // numbered 1..n, so iterations 1..4 always hit). Set-returning bodies
      // keep only the last iteration (union_all would be FF413).
      std::string count =
          b.AddParam(DataType::kInt,
                     Value::Int(static_cast<int32_t>(rng.Uniform(1, 4))));
      const FnInfo& body = rng.Chance(0.7) ? Fn("GetCompName") : Fn("GetSubCompNo");
      std::string n1 = b.AddCall(body, {SpecArg::Param("ITERATION")});
      output_all(n1, body);
      b.spec().loop.enabled = true;
      b.spec().loop.count_param = count;
      b.spec().loop.union_all = body.single_row ? rng.Chance(0.7) : false;
      break;
    }
    case MappingCase::kGeneral: {
      // A pair of specs sharing GetQuality; the set classifies general even
      // though each member is simple/linear on its own.
      const FnInfo& sq = Fn("GetQuality");
      std::string p = b.AddParam(DataType::kInt, supplier_no());
      std::string n1 = b.AddCall(sq, {SpecArg::Param(p)});
      size_t cast = rng.Uniform(0, 1);
      b.AddOutput(n1, "Qual",
                  cast == 0 ? DataType::kBigInt : DataType::kDouble);

      Builder sib(b.spec().name + "_S", &rng);
      const FnInfo& pn = Fn("GetSupplierNo");
      std::string sp = sib.AddParam(DataType::kVarchar, supplier_name());
      std::string s1 = sib.AddCall(pn, {SpecArg::Param(sp)});
      std::string s2 = sib.AddCall(sq, {SpecArg::NodeColumn(s1, "SupplierNo")});
      sib.AddOutput(s2, "Qual");
      out.sibling = std::move(sib.spec());
      out.sibling_args = std::move(sib.args());
      break;
    }
  }

  out.spec = std::move(b.spec());
  out.args = std::move(b.args());
  return out;
}

GeneratedSpec SpecGenerator::GenerateWriteSpec(std::uint64_t seed) const {
  // Write functions stay out of Catalog() on purpose: adding entries there
  // would shift every read-only case's domain draws and re-shuffle the
  // differential seeds fedfuzz has already explored.
  const FnInfo gsn{"purchasing",
                   "GetSupplierNo",
                   {Column{"SupplierName", DataType::kVarchar}},
                   {Column{"SupplierNo", DataType::kInt}},
                   true};
  const FnInfo gq{"stock",
                  "GetQuality",
                  {Column{"SupplierNo", DataType::kInt}},
                  {Column{"Qual", DataType::kInt}},
                  true};
  const FnInfo set_quality{"stock",
                           "SetQuality",
                           {Column{"SupplierNo", DataType::kInt},
                            Column{"Qual", DataType::kInt}},
                           {Column{"Qual", DataType::kInt}},
                           true};
  const FnInfo reserve{"stock",
                       "ReserveStock",
                       {Column{"SupplierNo", DataType::kInt},
                        Column{"CompNo", DataType::kInt},
                        Column{"Amount", DataType::kInt}},
                       {Column{"Reserved", DataType::kInt}},
                       true};
  const FnInfo place{"purchasing",
                     "PlaceOrder",
                     {Column{"SupplierNo", DataType::kInt},
                      Column{"CompNo", DataType::kInt},
                      Column{"Amount", DataType::kInt}},
                     {Column{"OrderNo", DataType::kInt}},
                     true};

  // Own salt so write draws are independent of the read-only case streams.
  Rng rng(seed * 8 + 0x5a6a5eedULL);
  GeneratedSpec out;
  Builder b("FZW_" + std::to_string(seed), &rng);

  auto supplier_no = [&] {
    return Value::Int(supplier_nos_[rng.Uniform(
        0, static_cast<int64_t>(supplier_nos_.size()) - 1)]);
  };
  auto supplier_name = [&] {
    return Value::Varchar(supplier_names_[rng.Uniform(
        0, static_cast<int64_t>(supplier_names_.size()) - 1)]);
  };
  auto comp_no = [&] {
    return Value::Int(comp_nos_[rng.Uniform(
        0, static_cast<int64_t>(comp_nos_.size()) - 1)]);
  };
  auto amount = [&] {
    return Value::Int(static_cast<int32_t>(rng.Uniform(1, 9)));
  };

  switch (seed % 3) {
    case 0: {
      // Two-write procurement saga: the supplier lookup feeds both writes,
      // and its output is a compensation capture (ReleaseStock needs it).
      std::string sn = b.AddParam(DataType::kVarchar, supplier_name());
      std::string cn = b.AddParam(DataType::kInt, comp_no());
      std::string am = b.AddParam(DataType::kInt, amount());
      std::string n1 = b.AddCall(gsn, {SpecArg::Param(sn)});
      std::string n2 = b.AddCall(reserve, {SpecArg::NodeColumn(n1, "SupplierNo"),
                                           SpecArg::Param(cn),
                                           SpecArg::Param(am)});
      std::string n3 = b.AddCall(place, {SpecArg::NodeColumn(n1, "SupplierNo"),
                                         SpecArg::Param(cn),
                                         SpecArg::Param(am)});
      b.spec().compensations.push_back(federation::SpecCompensation{
          n2,
          "ReleaseStock",
          {SpecArg::NodeColumn(n1, "SupplierNo"), SpecArg::Param(cn),
           SpecArg::Param(am)}});
      b.spec().compensations.push_back(federation::SpecCompensation{
          n3, "CancelOrder", {SpecArg::NodeColumn(n3, "OrderNo")}});
      b.AddOutput(n3, "OrderNo");
      b.AddOutput(n2, "Reserved");
      out.mapping_case = MappingCase::kDependentN1;
      break;
    }
    case 1: {
      // Re-rating saga: read the current quality FIRST so the compensation
      // can restore it — the undo args capture the read's output, which the
      // write barriers must order before the SetQuality.
      std::string sp = b.AddParam(DataType::kInt, supplier_no());
      std::string nq = b.AddParam(
          DataType::kInt, Value::Int(static_cast<int32_t>(rng.Uniform(1, 10))));
      std::string n1 = b.AddCall(gq, {SpecArg::Param(sp)});
      std::string n2 =
          b.AddCall(set_quality, {SpecArg::Param(sp), SpecArg::Param(nq)});
      b.spec().compensations.push_back(federation::SpecCompensation{
          n2,
          "RestoreQuality",
          {SpecArg::Param(sp), SpecArg::NodeColumn(n1, "Qual")}});
      b.AddOutput(n1, "Qual");  // captured pre-image
      b.AddOutput(n2, "Qual");  // new rating (deduplicates to N2_Qual)
      out.mapping_case = MappingCase::kIndependent;
      break;
    }
    default: {
      // Single-write saga, no reads at all: the shortest possible write
      // path, where the compensation reuses the federated parameters.
      std::string sp = b.AddParam(DataType::kInt, supplier_no());
      std::string cn = b.AddParam(DataType::kInt, comp_no());
      std::string am = b.AddParam(DataType::kInt, amount());
      std::string n1 = b.AddCall(reserve, {SpecArg::Param(sp),
                                           SpecArg::Param(cn),
                                           SpecArg::Param(am)});
      b.spec().compensations.push_back(federation::SpecCompensation{
          n1,
          "ReleaseStock",
          {SpecArg::Param(sp), SpecArg::Param(cn), SpecArg::Param(am)}});
      b.AddOutput(n1, "Reserved");
      out.mapping_case = MappingCase::kSimple;
      break;
    }
  }

  out.spec = std::move(b.spec());
  out.args = std::move(b.args());
  return out;
}

}  // namespace fedflow::analysis
