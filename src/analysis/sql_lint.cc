#include "analysis/sql_lint.h"

#include <string>
#include <utility>

#include "common/strings.h"
#include "sql/ast.h"
#include "sql/parser.h"

namespace fedflow::analysis {

namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt || t == DataType::kBigInt || t == DataType::kDouble;
}

/// The SQL cast functions the I-UDTF compiler emits around output columns.
std::optional<DataType> CastFunctionTarget(const std::string& name) {
  if (EqualsIgnoreCase(name, "INT")) return DataType::kInt;
  if (EqualsIgnoreCase(name, "BIGINT")) return DataType::kBigInt;
  if (EqualsIgnoreCase(name, "DOUBLE")) return DataType::kDouble;
  if (EqualsIgnoreCase(name, "VARCHAR")) return DataType::kVarchar;
  return std::nullopt;
}

/// One FROM item with its resolved output schema (nullopt for base tables or
/// unresolvable functions — column checks against it are skipped).
struct FromScope {
  std::string alias;
  std::optional<Schema> schema;
};

class SqlLinter {
 public:
  SqlLinter(const sql::CreateFunctionStmt& stmt, const UdtfLookup& lookup)
      : stmt_(stmt), lookup_(lookup) {}

  std::vector<Diagnostic> Run() {
    if (stmt_.body == nullptr) {
      Error(kSqlNotCreateFunction, FnLoc(),
            "function has no SQL body to analyze");
      return std::move(diags_);
    }
    CheckFrom();
    CheckSelectList();
    if (stmt_.body->where != nullptr) {
      CheckExpr(*stmt_.body->where, FnLoc() + "/where", scope_.size());
    }
    CheckReturns();
    return std::move(diags_);
  }

 private:
  void Error(const char* code, std::string location, std::string message,
             std::string note = "") {
    diags_.push_back(Diagnostic{Severity::kError, code, std::move(location),
                                std::move(message), std::move(note)});
  }
  void Warn(const char* code, std::string location, std::string message,
            std::string note = "") {
    diags_.push_back(Diagnostic{Severity::kWarning, code, std::move(location),
                                std::move(message), std::move(note)});
  }

  std::string FnLoc() const { return "function:" + stmt_.name; }

  std::optional<size_t> ParamIndex(const std::string& name) const {
    for (size_t i = 0; i < stmt_.params.size(); ++i) {
      if (EqualsIgnoreCase(stmt_.params[i].name, name)) return i;
    }
    return std::nullopt;
  }

  /// Index of `alias` among the first `visible` FROM items.
  std::optional<size_t> AliasIndex(const std::string& alias,
                                   size_t visible) const {
    for (size_t i = 0; i < visible && i < scope_.size(); ++i) {
      if (EqualsIgnoreCase(scope_[i].alias, alias)) return i;
    }
    return std::nullopt;
  }

  /// Resolves the FROM clause left-to-right: every TABLE(fn(...)) must name a
  /// registered A-UDTF, its arguments may reference only aliases strictly to
  /// the LEFT (lateral correlation), and aliases must be unique.
  void CheckFrom() {
    for (size_t k = 0; k < stmt_.body->from.size(); ++k) {
      const sql::TableRef& ref = stmt_.body->from[k];
      std::string alias = ref.alias.empty() ? ref.name : ref.alias;
      std::string loc = FnLoc() + "/from:" + alias;
      if (AliasIndex(alias, scope_.size()).has_value()) {
        Error(kSqlDuplicateAlias, loc,
              "duplicate FROM alias '" + alias + "'");
      }
      std::optional<Schema> schema;
      std::optional<UdtfSignature> sig;
      if (ref.kind == sql::TableRefKind::kTableFunction) {
        sig = lookup_(ref.name);
        if (!sig.has_value()) {
          Error(kSqlUnknownTableFunction, loc,
                "TABLE(...) references unknown function '" + ref.name + "'",
                "is the A-UDTF registered in the FDBS catalog?");
        } else {
          schema = sig->result_schema;
          if (ref.args.size() != sig->params.size()) {
            Error(kSqlArgArityMismatch, loc,
                  ref.name + " expects " +
                      std::to_string(sig->params.size()) +
                      " argument(s), call supplies " +
                      std::to_string(ref.args.size()));
          }
        }
        // Lateral rule: args see only FROM items already in scope (strictly
        // to the left of this one).
        for (size_t a = 0; a < ref.args.size(); ++a) {
          std::string arg_loc = loc + "/arg:" + std::to_string(a + 1);
          CheckExpr(*ref.args[a], arg_loc, k, /*lateral=*/true);
          if (sig.has_value() && a < sig->params.size()) {
            std::optional<DataType> got = StaticType(*ref.args[a], k);
            if (got.has_value()) {
              DataType want = sig->params[a].type;
              if (*got != want && !(IsNumeric(*got) && IsNumeric(want))) {
                Warn(kSqlArgTypeMismatch, arg_loc,
                     "argument has type " + std::string(DataTypeName(*got)) +
                         " but parameter " + sig->params[a].name + " of " +
                         ref.name + " is " + DataTypeName(want));
              }
            }
          }
        }
      }
      scope_.push_back(FromScope{std::move(alias), std::move(schema)});
    }
  }

  void CheckSelectList() {
    for (size_t i = 0; i < stmt_.body->items.size(); ++i) {
      const sql::SelectItem& item = stmt_.body->items[i];
      if (item.is_star || item.expr == nullptr) continue;
      CheckExpr(*item.expr, FnLoc() + "/select:" + std::to_string(i + 1),
                scope_.size());
    }
  }

  /// RETURNS clause vs SELECT list: arity always; column types when the item
  /// is a plain or cast-wrapped column reference whose type resolves.
  void CheckReturns() {
    bool has_star = false;
    for (const sql::SelectItem& item : stmt_.body->items) {
      if (item.is_star) has_star = true;
    }
    if (has_star) return;  // arity only known at bind time
    if (stmt_.body->items.size() != stmt_.returns.num_columns()) {
      Error(kSqlReturnsArityMismatch, FnLoc() + "/returns",
            "RETURNS TABLE declares " +
                std::to_string(stmt_.returns.num_columns()) +
                " column(s) but the body SELECT produces " +
                std::to_string(stmt_.body->items.size()));
      return;
    }
    for (size_t i = 0; i < stmt_.body->items.size(); ++i) {
      const sql::SelectItem& item = stmt_.body->items[i];
      if (item.expr == nullptr) continue;
      std::optional<DataType> got = StaticType(*item.expr, scope_.size());
      if (!got.has_value()) continue;
      DataType want = stmt_.returns.column(i).type;
      if (*got == want) continue;
      if (IsNumeric(*got) && IsNumeric(want)) continue;
      Warn(kSqlReturnTypeMismatch,
           FnLoc() + "/select:" + std::to_string(i + 1),
           "SELECT item has type " + std::string(DataTypeName(*got)) +
               " but RETURNS column " + stmt_.returns.column(i).name +
               " is " + DataTypeName(want));
    }
  }

  /// Static type of an expression against the first `visible` FROM items;
  /// nullopt when it cannot be determined without execution.
  std::optional<DataType> StaticType(const sql::Expr& expr,
                                     size_t visible) const {
    switch (expr.kind()) {
      case sql::ExprKind::kLiteral: {
        const Value& v = static_cast<const sql::LiteralExpr&>(expr).value();
        return v.is_null() ? std::nullopt : std::optional<DataType>(v.type());
      }
      case sql::ExprKind::kColumnRef: {
        const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
        if (EqualsIgnoreCase(ref.qualifier(), stmt_.name)) {
          std::optional<size_t> p = ParamIndex(ref.name());
          if (p.has_value()) return stmt_.params[*p].type;
          return std::nullopt;
        }
        std::optional<size_t> idx = AliasIndex(ref.qualifier(), visible);
        if (!idx.has_value() || !scope_[*idx].schema.has_value()) {
          return std::nullopt;
        }
        std::optional<size_t> col =
            scope_[*idx].schema->IndexOf(ref.name());
        if (!col.has_value()) return std::nullopt;
        return scope_[*idx].schema->column(*col).type;
      }
      case sql::ExprKind::kFunctionCall: {
        const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
        return CastFunctionTarget(call.name());
      }
      case sql::ExprKind::kBinary:
      case sql::ExprKind::kUnary:
      case sql::ExprKind::kCase:
        return std::nullopt;
    }
    return std::nullopt;
  }

  /// Resolves every column reference of `expr` against the first `visible`
  /// FROM items plus the function's own parameters. With `lateral` set,
  /// unresolvable aliases are reported as forward references (FF203) instead
  /// of plain unknown references (FF205).
  void CheckExpr(const sql::Expr& expr, const std::string& loc, size_t visible,
                 bool lateral = false) {
    switch (expr.kind()) {
      case sql::ExprKind::kLiteral:
        return;
      case sql::ExprKind::kColumnRef: {
        const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
        CheckColumnRef(ref, loc, visible, lateral);
        return;
      }
      case sql::ExprKind::kFunctionCall: {
        const auto& call = static_cast<const sql::FunctionCallExpr&>(expr);
        for (const sql::ExprPtr& arg : call.args()) {
          CheckExpr(*arg, loc, visible, lateral);
        }
        return;
      }
      case sql::ExprKind::kBinary: {
        const auto& b = static_cast<const sql::BinaryExpr&>(expr);
        CheckExpr(*b.left(), loc, visible, lateral);
        CheckExpr(*b.right(), loc, visible, lateral);
        return;
      }
      case sql::ExprKind::kUnary:
        CheckExpr(*static_cast<const sql::UnaryExpr&>(expr).operand(), loc,
                  visible, lateral);
        return;
      case sql::ExprKind::kCase: {
        const auto& c = static_cast<const sql::CaseExpr&>(expr);
        for (const sql::CaseExpr::Branch& br : c.branches()) {
          CheckExpr(*br.condition, loc, visible, lateral);
          CheckExpr(*br.value, loc, visible, lateral);
        }
        if (c.else_value() != nullptr) {
          CheckExpr(*c.else_value(), loc, visible, lateral);
        }
        return;
      }
    }
  }

  void CheckColumnRef(const sql::ColumnRefExpr& ref, const std::string& loc,
                      size_t visible, bool lateral) {
    // FunctionName.Param — DB2-style reference to the function's own
    // parameter.
    if (EqualsIgnoreCase(ref.qualifier(), stmt_.name)) {
      if (!ParamIndex(ref.name()).has_value()) {
        Error(kSqlUnknownParam, loc,
              "reference " + ref.ToSql() + " names no declared parameter",
              "parameters: " + ParamNames());
      }
      return;
    }
    if (ref.qualifier().empty()) {
      // Unqualified: resolvable iff exactly one visible schema has the
      // column, or it names a parameter.
      if (ParamIndex(ref.name()).has_value()) return;
      int hits = 0;
      bool unknown_schema = false;
      for (size_t i = 0; i < visible && i < scope_.size(); ++i) {
        if (!scope_[i].schema.has_value()) {
          unknown_schema = true;
          continue;
        }
        if (scope_[i].schema->IndexOf(ref.name()).has_value()) ++hits;
      }
      if (hits == 0 && !unknown_schema) {
        Error(lateral ? kSqlLateralForwardRef : kSqlUnknownRef, loc,
              "unqualified reference " + ref.name() +
                  " resolves to no visible column");
      }
      return;
    }
    std::optional<size_t> idx = AliasIndex(ref.qualifier(), visible);
    if (!idx.has_value()) {
      if (lateral && AliasAppearsAnywhere(ref.qualifier())) {
        Error(kSqlLateralForwardRef, loc,
              "lateral argument references " + ref.ToSql() +
                  " but alias '" + ref.qualifier() +
                  "' is defined to its right",
              "DB2 lateral correlation only sees FROM items to the left");
      } else {
        Error(lateral ? kSqlLateralForwardRef : kSqlUnknownRef, loc,
              "reference " + ref.ToSql() + " names unknown alias '" +
                  ref.qualifier() + "'");
      }
      return;
    }
    if (!scope_[*idx].schema.has_value()) return;  // base table: skip
    if (!scope_[*idx].schema->IndexOf(ref.name()).has_value()) {
      Error(lateral ? kSqlLateralUnknownColumn : kSqlUnknownRef, loc,
            "function aliased '" + scope_[*idx].alias +
                "' has no output column '" + ref.name() + "'",
            "columns: " + scope_[*idx].schema->ToString());
    }
  }

  /// Whether `alias` names ANY FROM item of the body, scanned or not —
  /// distinguishes a forward lateral reference from a plain unknown alias.
  bool AliasAppearsAnywhere(const std::string& alias) const {
    for (const sql::TableRef& ref : stmt_.body->from) {
      const std::string& a = ref.alias.empty() ? ref.name : ref.alias;
      if (EqualsIgnoreCase(a, alias)) return true;
    }
    return false;
  }

  std::string ParamNames() const {
    std::string out;
    for (size_t i = 0; i < stmt_.params.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt_.params[i].name;
    }
    return out.empty() ? "<none>" : out;
  }

  const sql::CreateFunctionStmt& stmt_;
  const UdtfLookup& lookup_;
  std::vector<FromScope> scope_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> LintIUdtfSql(const std::string& sql,
                                     const UdtfLookup& lookup) {
  Result<sql::Statement> parsed = sql::Parse(sql);
  if (!parsed.ok()) {
    return {Diagnostic{Severity::kError, kSqlParseError, "function:<unparsed>",
                       "SQL does not parse: " + parsed.status().message(), ""}};
  }
  if (parsed->kind != sql::StatementKind::kCreateFunction) {
    return {Diagnostic{Severity::kError, kSqlNotCreateFunction,
                       "function:<unparsed>",
                       "statement is not CREATE FUNCTION ... LANGUAGE SQL",
                       "I-UDTF bodies are single SQL-bodied functions"}};
  }
  return SqlLinter(*parsed->create_function, lookup).Run();
}

}  // namespace fedflow::analysis
