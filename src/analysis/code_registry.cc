#include "analysis/code_registry.h"

namespace fedflow::analysis {

namespace {

constexpr Severity kErr = Severity::kError;
constexpr Severity kWarn = Severity::kWarning;

std::vector<CodeInfo> BuildRegistry() {
  return {
      // Spec errors (FF001..FF049).
      {"FF001", kErr, "spec-no-name", "spec has no name"},
      {"FF002", kErr, "spec-no-calls", "spec declares no call nodes"},
      {"FF003", kErr, "spec-duplicate-call-id", "duplicate call node id"},
      {"FF004", kErr, "spec-call-incomplete", "call node misses system or function"},
      {"FF005", kErr, "spec-unknown-system", "call references an unregistered application system"},
      {"FF006", kErr, "spec-unknown-function", "call references a function the system does not export"},
      {"FF007", kErr, "spec-arity-mismatch", "call argument count differs from the local signature"},
      {"FF008", kErr, "spec-dangling-node", "argument references an undeclared call node"},
      {"FF009", kErr, "spec-unknown-node-column", "argument references a column the node does not produce"},
      {"FF010", kErr, "spec-self-reference", "call node consumes its own output"},
      {"FF011", kErr, "spec-cycle-without-exit", "node dependencies form a cycle"},
      {"FF012", kErr, "spec-unknown-param", "argument references an undeclared federated parameter"},
      {"FF013", kErr, "spec-iteration-outside-loop", "ITERATION used without an enclosing loop"},
      {"FF014", kErr, "spec-bad-loop-param", "loop count parameter missing or undeclared"},
      {"FF015", kErr, "spec-no-outputs", "spec declares no outputs"},
      {"FF016", kErr, "spec-output-unnamed", "output column has no name"},
      {"FF017", kErr, "spec-output-unknown-node", "output references an undeclared call node"},
      {"FF018", kErr, "spec-output-unknown-column", "output references a column the node does not produce"},
      {"FF019", kErr, "spec-join-unknown-node", "join references an undeclared call node"},
      {"FF020", kErr, "spec-join-unknown-column", "join references a column the node does not produce"},
      {"FF021", kErr, "spec-arg-type-mismatch", "argument type cannot satisfy the local parameter"},
      {"FF022", kErr, "spec-join-type-mismatch", "join compares columns of different types"},
      {"FF023", kErr, "spec-duplicate-output", "duplicate federated output name"},
      // Spec warnings (FF050..FF069).
      {"FF050", kWarn, "spec-unused-param", "declared federated parameter is never consumed"},
      {"FF051", kWarn, "spec-dead-node", "call node feeds neither outputs nor other nodes"},
      {"FF052", kWarn, "spec-lossy-coercion", "argument coercion may lose precision"},
      {"FF053", kWarn, "spec-loop-param-not-integer", "loop count parameter is not an integer"},
      // Classification consistency (FF070..FF099).
      {"FF070", kErr, "spec-classification-inconsistent", "spec-level and plan-level classifiers disagree"},
      // Workflow errors (FF100..FF149).
      {"FF100", kErr, "wf-no-name", "process has no name"},
      {"FF101", kErr, "wf-no-activities", "process declares no activities"},
      {"FF102", kErr, "wf-duplicate-activity", "duplicate activity name"},
      {"FF103", kErr, "wf-unknown-output-activity", "process output references an unknown activity"},
      {"FF104", kErr, "wf-unknown-connector-endpoint", "control connector references an unknown activity"},
      {"FF105", kErr, "wf-self-loop-connector", "control connector loops an activity onto itself"},
      {"FF106", kErr, "wf-control-cycle", "control connectors form a cycle"},
      {"FF107", kErr, "wf-program-incomplete", "program activity misses system or function"},
      {"FF108", kErr, "wf-unknown-system", "program activity targets an unregistered system"},
      {"FF109", kErr, "wf-unknown-function", "program activity targets a function the system does not export"},
      {"FF110", kErr, "wf-input-arity-mismatch", "activity input count differs from the signature"},
      {"FF111", kErr, "wf-input-type-mismatch", "activity input type cannot satisfy the signature"},
      {"FF112", kErr, "wf-unknown-process-input", "activity consumes an undeclared process input"},
      {"FF113", kErr, "wf-source-cannot-precede", "data connector source cannot run before its sink"},
      {"FF114", kErr, "wf-helper-unnamed", "helper activity has no helper function"},
      {"FF115", kErr, "wf-block-without-sub", "block activity has no sub-process"},
      {"FF116", kErr, "wf-block-arity-mismatch", "block input count differs from its sub-process"},
      {"FF117", kErr, "wf-bad-max-iterations", "block declares a non-positive iteration bound"},
      {"FF118", kErr, "wf-self-input", "activity consumes its own output"},
      {"FF119", kErr, "wf-source-unknown-column", "data connector selects a column the source lacks"},
      {"FF120", kErr, "wf-source-unknown-activity", "data connector references an unknown activity"},
      // Workflow warnings (FF150..FF199).
      {"FF150", kWarn, "wf-dead-activity", "activity result is never consumed"},
      {"FF151", kWarn, "wf-constant-false-condition", "transition condition is constantly false"},
      {"FF152", kWarn, "wf-contradictory-fork", "fork conditions cannot all be satisfied"},
      {"FF153", kWarn, "wf-unused-process-input", "process input is never consumed"},
      // SQL errors (FF200..FF249).
      {"FF200", kErr, "sql-parse-error", "generated I-UDTF SQL does not parse"},
      {"FF201", kErr, "sql-not-create-function", "statement is not CREATE FUNCTION"},
      {"FF202", kErr, "sql-unknown-table-function", "body references an unregistered table function"},
      {"FF203", kErr, "sql-lateral-forward-ref", "lateral reference points at a later FROM item"},
      {"FF204", kErr, "sql-lateral-unknown-column", "lateral reference selects a column the item lacks"},
      {"FF205", kErr, "sql-unknown-ref", "body references an unknown column or alias"},
      {"FF206", kErr, "sql-duplicate-alias", "duplicate correlation alias"},
      {"FF207", kErr, "sql-returns-arity-mismatch", "RETURNS arity differs from the SELECT list"},
      {"FF208", kErr, "sql-unknown-param", "body references an undeclared function parameter"},
      {"FF209", kErr, "sql-arg-arity-mismatch", "table-function call arity differs from its signature"},
      // SQL warnings (FF250..FF299).
      {"FF250", kWarn, "sql-return-type-mismatch", "RETURNS column type differs from the SELECT list"},
      {"FF251", kWarn, "sql-arg-type-mismatch", "table-function argument type differs from its signature"},
      // Plan consistency errors (FF300..FF309).
      {"FF300", kErr, "plan-call-set-mismatch", "lowering calls a different set of local functions than the plan"},
      {"FF301", kErr, "plan-ordering-violation", "lowering violates the plan's dependency order"},
      {"FF302", kErr, "plan-classification-drift", "plan and lowering disagree on the mapping class"},
      {"FF303", kErr, "plan-predicate-misplaced", "sunk predicate evaluated at the wrong node"},
      {"FF304", kErr, "plan-compile-failed", "spec does not compile into a federated plan"},
      // Plan deployment warnings (FF310..FF349).
      {"FF310", kWarn, "plan-pool-serialized", "parallel plan over a single-controller pool serializes"},
      // Dataflow: schema/type inference (FF400..FF409).
      {"FF400", kErr, "df-cast-never-succeeds", "output cast can never succeed for any value"},
      {"FF401", kWarn, "df-cast-value-dependent", "output cast succeeds only for some runtime values"},
      {"FF402", kWarn, "df-cast-narrowing", "output cast narrows and may lose precision"},
      {"FF403", kErr, "df-result-schema-drift", "inferred result schema differs from the compiled plan"},
      // Dataflow: interval cardinality (FF410..FF419).
      {"FF410", kWarn, "df-unbounded-invocations", "an unbounded factor makes invocation counts unbounded"},
      {"FF411", kErr, "df-invocation-explosion", "two or more unbounded factors multiply invocation counts"},
      {"FF412", kErr, "df-scalar-of-multi-row", "scalar argument consumes a node that can return many rows"},
      {"FF413", kErr, "df-unbounded-loop-union", "union-all loop accumulates an unbounded body"},
      // Dataflow: virtual-time budget (FF420..FF429).
      {"FF420", kErr, "df-deadline-infeasible", "hot critical path exceeds the modeled deadline"},
      {"FF421", kErr, "df-retry-schedule-infeasible", "retry backoff schedule exceeds its own deadline"},
      {"FF422", kWarn, "df-cold-start-over-deadline", "cold-start worst case exceeds the modeled deadline"},
      // Dataflow: tenant-flow taint (FF430..FF449).
      {"FF430", kWarn, "df-shared-lease-flow", "results flow across unquotaed shared-pool leases"},
      {"FF431", kErr, "df-stage-over-tenant-quota", "parallel stage is wider than the per-tenant quota"},
      // Saga coordination (FF450..FF459).
      {"FF450", kErr, "saga-missing-compensation", "mutating call declares no compensation"},
      {"FF451", kErr, "saga-compensation-mismatch", "compensation is unknown, read-only, or signature-incompatible"},
      {"FF452", kErr, "saga-write-in-loop", "mutating call inside a do-until loop defeats idempotency keys"},
      {"FF453", kErr, "saga-retry-without-ledger", "retrying deployment lacks saga idempotency coordination"},
      {"FF454", kErr, "saga-ambiguous-step", "two saga steps resolve to the same (system, function)"},
      {"FF455", kErr, "saga-capture-unordered", "compensation argument reads a node not ordered before its write"},
  };
}

}  // namespace

const std::vector<CodeInfo>& AllDiagnosticCodes() {
  static const std::vector<CodeInfo>* kCodes =
      new std::vector<CodeInfo>(BuildRegistry());
  return *kCodes;
}

const std::vector<CodeBand>& DiagnosticCodeBands() {
  static const std::vector<CodeBand>* kBands = new std::vector<CodeBand>{
      {1, 99, "spec"},
      {100, 199, "workflow"},
      {200, 299, "sql"},
      {300, 349, "plan"},
      {400, 449, "dataflow"},
      {450, 459, "saga"},
  };
  return *kBands;
}

const CodeInfo* FindDiagnosticCode(const std::string& code) {
  for (const CodeInfo& info : AllDiagnosticCodes()) {
    if (info.code == code) return &info;
  }
  return nullptr;
}

}  // namespace fedflow::analysis
