// Generative FederatedFunctionSpec fuzzer: a seeded generator that emits
// lint-clean specs covering the paper's whole §3 mapping-complexity matrix,
// together with guaranteed-hit call arguments derived from the scenario
// dataset. fedfuzz uses it as a differential oracle: every generated spec
// must register, plan and execute identically across the couplings that
// support its class, and the runtime observations must fall inside the
// bounds the dataflow analyses predicted.
#ifndef FEDFLOW_ANALYSIS_SPECGEN_H_
#define FEDFLOW_ANALYSIS_SPECGEN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "appsys/dataset.h"
#include "common/value.h"
#include "federation/classify.h"
#include "federation/spec.h"

namespace fedflow::analysis {

/// One generated case: a spec, its intended mapping class, and arguments
/// (aligned with spec.params) chosen so every scalar-consumed intermediate
/// is guaranteed to hit.
struct GeneratedSpec {
  federation::FederatedFunctionSpec spec;
  federation::MappingCase mapping_case = federation::MappingCase::kTrivial;
  std::vector<Value> args;
  /// The general case is a property of spec SETS (shared local functions):
  /// for it the generator emits a sibling spec sharing a local function with
  /// `spec`; ClassifySet({spec, sibling}) == kGeneral.
  std::optional<federation::FederatedFunctionSpec> sibling;
  std::vector<Value> sibling_args;
};

/// Deterministic spec generator over one scenario's value domains.
class SpecGenerator {
 public:
  explicit SpecGenerator(const appsys::Scenario& scenario);

  /// Generates the case for `seed`, cycling the mapping class so any
  /// contiguous seed range covers the whole matrix.
  GeneratedSpec Generate(std::uint64_t seed) const;

  /// Generates a spec of one specific class.
  GeneratedSpec GenerateCase(federation::MappingCase c,
                             std::uint64_t seed) const;

  /// Generates a write-path (saga) spec for `seed`: mutating steps paired
  /// with compensations over the scenario's stores, plus guaranteed-hit
  /// arguments. Kept out of the 8-case Generate rotation so the read-only
  /// differential seeds stay stable; fedfuzz drives these through its
  /// abort-restores-state oracle.
  GeneratedSpec GenerateWriteSpec(std::uint64_t seed) const;

 private:
  // Domain pools extracted from the scenario (guaranteed-hit argument
  // values).
  std::vector<std::int32_t> supplier_nos_;
  std::vector<std::string> supplier_names_;
  std::vector<std::int32_t> comp_nos_;
  std::vector<std::string> comp_names_;
  /// (supplier_no, comp_no) pairs present in stock — GetNumber hits.
  std::vector<std::pair<std::int32_t, std::int32_t>> stock_pairs_;
};

}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_SPECGEN_H_
