// fedlint pass 1: static analysis of a FederatedFunctionSpec against the
// registered application systems. Unlike ValidateSpec/BindSpec (which stop at
// the first violation with a bare Status), this pass reports EVERY defect it
// can find as a structured Diagnostic, including findings the runtime would
// never surface (dead call nodes, unused parameters, lossy coercions).
#ifndef FEDFLOW_ANALYSIS_SPEC_LINT_H_
#define FEDFLOW_ANALYSIS_SPEC_LINT_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "appsys/registry.h"
#include "federation/spec.h"

namespace fedflow::analysis {

// Spec error codes (FF001..FF049).
inline constexpr char kSpecNoName[] = "FF001";
inline constexpr char kSpecNoCalls[] = "FF002";
inline constexpr char kSpecDuplicateCallId[] = "FF003";
inline constexpr char kSpecCallIncomplete[] = "FF004";
inline constexpr char kSpecUnknownSystem[] = "FF005";
inline constexpr char kSpecUnknownFunction[] = "FF006";
inline constexpr char kSpecArityMismatch[] = "FF007";
inline constexpr char kSpecDanglingNode[] = "FF008";
inline constexpr char kSpecUnknownNodeColumn[] = "FF009";
inline constexpr char kSpecSelfReference[] = "FF010";
inline constexpr char kSpecCycleWithoutExit[] = "FF011";
inline constexpr char kSpecUnknownParam[] = "FF012";
inline constexpr char kSpecIterationOutsideLoop[] = "FF013";
inline constexpr char kSpecBadLoopParam[] = "FF014";
inline constexpr char kSpecNoOutputs[] = "FF015";
inline constexpr char kSpecOutputUnnamed[] = "FF016";
inline constexpr char kSpecOutputUnknownNode[] = "FF017";
inline constexpr char kSpecOutputUnknownColumn[] = "FF018";
inline constexpr char kSpecJoinUnknownNode[] = "FF019";
inline constexpr char kSpecJoinUnknownColumn[] = "FF020";
inline constexpr char kSpecArgTypeMismatch[] = "FF021";
inline constexpr char kSpecJoinTypeMismatch[] = "FF022";
inline constexpr char kSpecDuplicateOutput[] = "FF023";

// Spec warning codes (FF050..FF069).
inline constexpr char kSpecUnusedParam[] = "FF050";
inline constexpr char kSpecDeadNode[] = "FF051";
inline constexpr char kSpecLossyCoercion[] = "FF052";
inline constexpr char kSpecLoopParamNotInteger[] = "FF053";

// Classification consistency (FF070..FF099).
inline constexpr char kSpecClassificationInconsistent[] = "FF070";

/// Analyzes `spec` against `systems` and returns every finding. An empty
/// result means the spec is clean; HasErrors() decides registrability. The
/// pass never fails — unresolvable references produce diagnostics, and
/// dependent checks (e.g. column types behind an unknown system) are skipped.
std::vector<Diagnostic> LintSpec(const federation::FederatedFunctionSpec& spec,
                                 const appsys::AppSystemRegistry& systems);

}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_SPEC_LINT_H_
