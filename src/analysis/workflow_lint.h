// fedlint pass 2: static analysis of a workflow process model. Complements
// wfms::ValidateProcess (first-violation Status) with exhaustive structured
// diagnostics, plus findings validation does not attempt: dead activities,
// constant-false transition conditions, contradictory fork conditions ahead
// of an AND-join, and container field/type checks against the registered
// local-function signatures.
#ifndef FEDFLOW_ANALYSIS_WORKFLOW_LINT_H_
#define FEDFLOW_ANALYSIS_WORKFLOW_LINT_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "appsys/registry.h"
#include "wfms/model.h"

namespace fedflow::analysis {

// Workflow error codes (FF100..FF149).
inline constexpr char kWfNoName[] = "FF100";
inline constexpr char kWfNoActivities[] = "FF101";
inline constexpr char kWfDuplicateActivity[] = "FF102";
inline constexpr char kWfUnknownOutputActivity[] = "FF103";
inline constexpr char kWfUnknownConnectorEndpoint[] = "FF104";
inline constexpr char kWfSelfLoopConnector[] = "FF105";
inline constexpr char kWfControlCycle[] = "FF106";
inline constexpr char kWfProgramIncomplete[] = "FF107";
inline constexpr char kWfUnknownSystem[] = "FF108";
inline constexpr char kWfUnknownFunction[] = "FF109";
inline constexpr char kWfInputArityMismatch[] = "FF110";
inline constexpr char kWfInputTypeMismatch[] = "FF111";
inline constexpr char kWfUnknownProcessInput[] = "FF112";
inline constexpr char kWfSourceCannotPrecede[] = "FF113";
inline constexpr char kWfHelperUnnamed[] = "FF114";
inline constexpr char kWfBlockWithoutSub[] = "FF115";
inline constexpr char kWfBlockArityMismatch[] = "FF116";
inline constexpr char kWfBadMaxIterations[] = "FF117";
inline constexpr char kWfSelfInput[] = "FF118";
inline constexpr char kWfSourceUnknownColumn[] = "FF119";
inline constexpr char kWfSourceUnknownActivity[] = "FF120";

// Workflow warning codes (FF150..FF199).
inline constexpr char kWfDeadActivity[] = "FF150";
inline constexpr char kWfConstantFalseCondition[] = "FF151";
inline constexpr char kWfContradictoryFork[] = "FF152";
inline constexpr char kWfUnusedProcessInput[] = "FF153";

/// Analyzes `def` (and its sub-processes, recursively) against the registered
/// application systems. Never fails; unresolvable pieces produce diagnostics
/// and dependent checks are skipped.
std::vector<Diagnostic> LintProcess(const wfms::ProcessDefinition& def,
                                    const appsys::AppSystemRegistry& systems);

}  // namespace fedflow::analysis

#endif  // FEDFLOW_ANALYSIS_WORKFLOW_LINT_H_
