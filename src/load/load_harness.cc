#include "load/load_harness.h"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace fedflow::load {

namespace {

// One issued flow travelling through admission, dispatch and completion.
struct Job {
  int64_t id = 0;
  size_t workload_index = 0;
  std::string tenant;
  VTime first_arrival = 0;
  int attempts = 0;
};

// Per-function circuit-breaker state. open_until < 0 means closed.
struct Breaker {
  int consecutive_failures = 0;
  VTime open_until = -1;
};

// Discrete-time Poisson process: each arrival_tick the process fires with
// probability tick/mean, so the gap between arrivals is a geometric number
// of ticks with mean `mean_us`. Integer arithmetic only — the draw sequence
// is bit-identical on every platform, unlike an exponential via std::log.
VDuration NextGap(Rng& rng, VDuration mean_us, VDuration tick_us) {
  const uint64_t mean_ticks = static_cast<uint64_t>(mean_us / tick_us);
  VDuration gap = tick_us;
  if (mean_ticks <= 1) return gap;
  while (rng.Next() % mean_ticks != 0) gap += tick_us;
  return gap;
}

}  // namespace

const char* ArrivalModeName(ArrivalMode mode) {
  switch (mode) {
    case ArrivalMode::kClosed:
      return "closed";
    case ArrivalMode::kOpen:
      return "open";
  }
  return "?";
}

LoadHarness::LoadHarness(federation::IntegrationServer* server,
                         LoadOptions options)
    : server_(server), options_(std::move(options)) {
  if (options_.tenants.empty()) options_.tenants.push_back("default");
  if (options_.concurrency == 0) options_.concurrency = 1;
  if (options_.arrival_tick_us <= 0) options_.arrival_tick_us = 100;
  if (options_.mean_interarrival_us < options_.arrival_tick_us) {
    options_.mean_interarrival_us = options_.arrival_tick_us;
  }
}

Result<LoadReport> LoadHarness::Run(const std::vector<Invocation>& workload) {
  if (server_ == nullptr) {
    return Status::InvalidArgument("load harness needs a server");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("load harness needs a non-empty workload");
  }
  return options_.threads > 0 ? RunThreaded(workload) : RunVirtual(workload);
}

Result<LoadReport> LoadHarness::RunVirtual(
    const std::vector<Invocation>& workload) {
  LoadReport report;
  federation::ControllerPool& pool = server_->controller_pool();
  obs::MetricsRegistry& metrics = server_->metrics();
  Rng rng(options_.seed);

  // The virtual timeline: events totally ordered by (time, schedule seq), so
  // simultaneous events fire in the order they were scheduled.
  enum class Kind { kArrival, kRetry, kCompletion };
  struct Event {
    Kind kind = Kind::kArrival;
    Job job;              // kRetry: the flow being re-admitted
    uint64_t flight = 0;  // kCompletion: the in-flight entry
  };
  std::map<std::pair<VTime, uint64_t>, Event> events;
  uint64_t next_seq = 0;
  auto schedule = [&](VTime t, Event ev) {
    events.emplace(std::make_pair(t, next_seq++), std::move(ev));
  };

  // A dispatched flow holds its controller lease until its virtual
  // completion event — that occupancy is what makes pool size matter.
  struct Flight {
    Job job;
    federation::ControllerPool::Lease lease;
  };
  std::map<uint64_t, Flight> flights;
  uint64_t next_flight = 1;

  std::deque<Job> queue;
  std::map<std::string, Breaker> breakers;
  int64_t scheduled_arrivals = 0;  // arrivals put on the timeline
  int64_t issued = 0;              // arrivals that fired (assigns flow ids)
  int64_t terminal = 0;            // flows in a terminal state
  VTime last_event = 0;

  auto schedule_arrival = [&](VTime t) {
    if (scheduled_arrivals >= options_.total_invocations) return;
    ++scheduled_arrivals;
    schedule(t, Event{Kind::kArrival, Job{}, 0});
  };

  // A flow reached a terminal state; in closed-loop mode its client
  // immediately issues the next one.
  auto on_terminal = [&](VTime now) {
    ++terminal;
    if (options_.mode == ArrivalMode::kClosed) schedule_arrival(now);
  };

  auto breaker_admit = [&](const std::string& fn, VTime now) {
    if (options_.breaker_failure_threshold <= 0) return true;
    Breaker& b = breakers[fn];
    if (b.open_until < 0) return true;
    if (now < b.open_until) return false;
    // Half-open: one probe goes through with a single strike left, so one
    // more failure re-opens the breaker immediately.
    b.open_until = -1;
    b.consecutive_failures = options_.breaker_failure_threshold - 1;
    return true;
  };
  auto breaker_success = [&](const std::string& fn) {
    if (options_.breaker_failure_threshold <= 0) return;
    Breaker& b = breakers[fn];
    b.consecutive_failures = 0;
    b.open_until = -1;
  };
  auto breaker_failure = [&](const std::string& fn, VTime now) {
    if (options_.breaker_failure_threshold <= 0) return;
    Breaker& b = breakers[fn];
    if (++b.consecutive_failures >= options_.breaker_failure_threshold) {
      b.open_until = now + options_.breaker_cooldown_us;
    }
  };

  auto note_queue_depth = [&] {
    const int64_t depth = static_cast<int64_t>(queue.size());
    if (depth > report.max_queue_depth) report.max_queue_depth = depth;
    metrics.SetGauge("load.queue.depth", depth);
    metrics.SetGaugeMax("load.queue.max_depth", depth);
  };

  // Admits queued flows head-first while the pool has a controller for the
  // head's tenant. Strict FIFO: an unlucky head (pool or quota exhausted)
  // blocks the line — deterministic, and the fairness policy queues model.
  auto try_dispatch = [&](VTime now) {
    while (!queue.empty()) {
      Job& head = queue.front();
      const Invocation& inv = workload[head.workload_index];
      Result<federation::ControllerPool::Lease> lease =
          pool.Checkout(head.tenant, inv.function);
      if (!lease.ok()) break;
      Job job = std::move(queue.front());
      queue.pop_front();
      note_queue_depth();
      ++job.attempts;
      Result<federation::IntegrationServer::TimedResult> result =
          server_->CallFederatedOnLease(*lease, job.tenant, inv.function,
                                        inv.args);
      if (result.ok()) {
        breaker_success(inv.function);
        const uint64_t fid = next_flight++;
        const VTime done = now + result->elapsed_us;
        flights.emplace(fid, Flight{std::move(job), std::move(*lease)});
        schedule(done, Event{Kind::kCompletion, Job{}, fid});
        continue;
      }
      // The attempt failed; its lease drops here and the controller is back
      // in the pool immediately (a failed flow's virtual cost is not put on
      // the shared timeline — failures surface at dispatch).
      breaker_failure(inv.function, now);
      if (job.attempts <= options_.retry_budget) {
        ++report.retried;
        schedule(now + options_.retry_backoff_us * job.attempts,
                 Event{Kind::kRetry, std::move(job), 0});
      } else {
        ++report.failed;
        on_terminal(now);
      }
    }
  };

  // Re-admission shared by fresh arrivals and retries: breaker first, then
  // the bounded queue, then a dispatch attempt.
  auto admit = [&](Job job, VTime now) {
    const Invocation& inv = workload[job.workload_index];
    if (!breaker_admit(inv.function, now)) {
      ++report.short_circuited;
      on_terminal(now);
      return;
    }
    if (queue.size() >= options_.queue_capacity) {
      ++report.rejected;
      on_terminal(now);
      return;
    }
    queue.push_back(std::move(job));
    note_queue_depth();
    try_dispatch(now);
  };

  // Prime the timeline.
  if (options_.mode == ArrivalMode::kClosed) {
    const int64_t initial =
        std::min<int64_t>(static_cast<int64_t>(options_.concurrency),
                          options_.total_invocations);
    for (int64_t i = 0; i < initial; ++i) schedule_arrival(0);
  } else {
    schedule_arrival(NextGap(rng, options_.mean_interarrival_us,
                             options_.arrival_tick_us));
  }

  while (!events.empty()) {
    auto it = events.begin();
    const VTime now = it->first.first;
    Event ev = std::move(it->second);
    events.erase(it);
    if (now > last_event) last_event = now;
    switch (ev.kind) {
      case Kind::kArrival: {
        // The open-loop arrival process is oblivious to the system state:
        // the next arrival goes on the timeline before this one is admitted.
        if (options_.mode == ArrivalMode::kOpen) {
          schedule_arrival(now + NextGap(rng, options_.mean_interarrival_us,
                                         options_.arrival_tick_us));
        }
        Job job;
        job.id = issued;
        job.workload_index =
            static_cast<size_t>(issued) % workload.size();
        job.tenant = options_.tenants[static_cast<size_t>(issued) %
                                      options_.tenants.size()];
        job.first_arrival = now;
        ++issued;
        admit(std::move(job), now);
        break;
      }
      case Kind::kRetry:
        admit(std::move(ev.job), now);
        break;
      case Kind::kCompletion: {
        auto fit = flights.find(ev.flight);
        if (fit == flights.end()) {
          return Status::Internal("load harness: completion for unknown flow");
        }
        Flight flight = std::move(fit->second);
        flights.erase(fit);
        // Return the controller before re-dispatching so the queue head can
        // take this very slot at the completion timestamp.
        flight.lease.Release();
        ++report.completed;
        report.sojourn_us.Observe(now - flight.job.first_arrival);
        on_terminal(now);
        try_dispatch(now);
        break;
      }
    }
  }

  if (!queue.empty() || !flights.empty() ||
      terminal != options_.total_invocations) {
    return Status::Internal("load harness stalled with flows pending");
  }
  report.makespan_us = last_event;
  report.pool = pool.pool().stats();
  metrics.SetGauge("load.queue.depth", 0);
  return report;
}

Result<LoadReport> LoadHarness::RunThreaded(
    const std::vector<Invocation>& workload) {
  // TSan smoke mode: real workers drive closed-loop calls through the
  // server's own per-call checkout path, exercising the pool, wrapper and
  // metrics mutexes under genuine concurrency. Admission rejections are
  // waited out (the virtual mode models that wait as queueing), so every
  // invocation reaches a terminal state and the counts still add up; timing
  // is wall-dependent and must not be golden-pinned.
  LoadReport report;
  std::mutex mu;
  {
    ThreadPool workers(options_.threads);
    for (int64_t i = 0; i < options_.total_invocations; ++i) {
      workers.Submit([this, &workload, &report, &mu, i] {
        const Invocation& inv = workload[static_cast<size_t>(i) %
                                         workload.size()];
        const std::string& tenant =
            options_.tenants[static_cast<size_t>(i) %
                             options_.tenants.size()];
        for (;;) {
          Result<federation::IntegrationServer::TimedResult> result =
              server_->CallFederatedFor(tenant, inv.function, inv.args);
          std::lock_guard<std::mutex> lock(mu);
          if (result.ok()) {
            ++report.completed;
            report.sojourn_us.Observe(result->elapsed_us);
            return;
          }
          if (result.status().code() == StatusCode::kUnavailable) {
            std::this_thread::yield();
            continue;
          }
          ++report.failed;
          return;
        }
      });
    }
  }  // ~ThreadPool drains every submitted task
  report.pool = server_->controller_pool().pool().stats();
  return report;
}

}  // namespace fedflow::load
