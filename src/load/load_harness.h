// Open/closed-loop load harness over the IntegrationServer: the paper's
// single-flow experiments (§4) generalized to concurrent multi-tenant load.
// Closed loop keeps a fixed number of clients issuing back-to-back flows
// (throughput at saturation); open loop draws Poisson arrivals at a target
// rate (tail latency under a given offered load). Either way, every flow
// leases a controller from the server's pool for its whole virtual duration,
// waits in a bounded admission queue while the pool is exhausted, may retry
// transient failures against a per-invocation budget, and is short-circuited
// by a per-function circuit breaker after consecutive failures.
//
// Determinism: the default mode is a sequential virtual-time event loop —
// arrivals, dispatches and completions are ordered by (virtual time, event
// sequence number), inter-arrival gaps come from an integer geometric draw
// off the shared Rng, and every flow's duration is its deterministic virtual
// elapsed time. A fixed (options, workload, seed) triple therefore always
// produces the same LoadReport, which is what lets bench_load pin throughput
// and p50/p99/p999 in a CI-diffed golden. `threads > 0` switches to a real
// ThreadPool (TSan smoke): counts still add up, but timing is wall-dependent
// and nothing from that mode belongs in a golden.
#ifndef FEDFLOW_LOAD_LOAD_HARNESS_H_
#define FEDFLOW_LOAD_LOAD_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "common/vclock.h"
#include "federation/integration_server.h"
#include "obs/metrics.h"
#include "sim/resource_pools.h"

namespace fedflow::load {

/// How flows arrive at the server.
enum class ArrivalMode {
  kClosed,  ///< `concurrency` clients, each issuing its next flow on completion
  kOpen,    ///< Poisson arrivals with mean gap `mean_interarrival_us`
};

/// Stable display name ("closed" / "open").
const char* ArrivalModeName(ArrivalMode mode);

/// One workload item: a federated function call.
struct Invocation {
  std::string function;
  std::vector<Value> args;
};

/// Harness configuration.
struct LoadOptions {
  ArrivalMode mode = ArrivalMode::kClosed;

  /// Closed loop: clients in flight at once.
  size_t concurrency = 4;

  /// Open loop: mean virtual inter-arrival gap. The gap is drawn as a
  /// geometric number of `arrival_tick_us` ticks (the discrete-time Poisson
  /// process) — integer arithmetic only, so the draw is bit-identical on
  /// every platform.
  VDuration mean_interarrival_us = 20000;
  VDuration arrival_tick_us = 100;

  /// Flows to issue in total (arrivals, including ones later rejected).
  int64_t total_invocations = 100;

  /// Seed for the arrival process and nothing else.
  uint64_t seed = 42;

  /// Bounded admission queue: flows that arrive while the pool is exhausted
  /// wait here; arrivals beyond the bound are rejected outright.
  size_t queue_capacity = 64;

  /// Re-admissions granted to one flow after failed attempts; each retry
  /// waits `retry_backoff_us` × attempt before re-entering the queue.
  int retry_budget = 0;
  VDuration retry_backoff_us = 1000;

  /// Per-function circuit breaker: after this many consecutive failures the
  /// function's arrivals are short-circuited for `breaker_cooldown_us`, then
  /// one probe is let through (half-open). 0 disables the breaker.
  int breaker_failure_threshold = 0;
  VDuration breaker_cooldown_us = 100000;

  /// Tenants, assigned to flows round-robin. Empty means {"default"}.
  std::vector<std::string> tenants;

  /// 0 = deterministic sequential virtual-time loop (the golden mode).
  /// > 0 = that many real ThreadPool workers driving closed-loop calls
  /// through the server — the TSan smoke mode; counts are exact, timing is
  /// not deterministic, queue/retry/breaker do not apply.
  size_t threads = 0;
};

/// Outcome of one run. completed + failed + rejected + short_circuited ==
/// total_invocations.
struct LoadReport {
  int64_t completed = 0;
  int64_t failed = 0;             ///< terminal failures (budget exhausted)
  int64_t rejected = 0;           ///< bounced off a full admission queue
  int64_t short_circuited = 0;    ///< refused by an open circuit breaker
  int64_t retried = 0;            ///< re-admissions after failed attempts
  VDuration makespan_us = 0;      ///< virtual time of the last event
  int64_t max_queue_depth = 0;
  obs::LatencySummary sojourn_us;  ///< arrival → completion, queue wait included
  sim::WarmPool::Stats pool;       ///< controller-pool stats after the run

  /// Completed flows per 1000 virtual seconds (integer, golden-safe).
  int64_t ThroughputPerKiloSecond() const {
    return makespan_us > 0 ? completed * 1000000000 / makespan_us : 0;
  }
};

/// Drives one IntegrationServer. The server outlives the harness.
class LoadHarness {
 public:
  LoadHarness(federation::IntegrationServer* server, LoadOptions options);

  /// Runs `total_invocations` flows, cycling through `workload` in order
  /// (flow i calls workload[i % size]). InvalidArgument on an empty
  /// workload.
  Result<LoadReport> Run(const std::vector<Invocation>& workload);

  const LoadOptions& options() const { return options_; }

 private:
  Result<LoadReport> RunVirtual(const std::vector<Invocation>& workload);
  Result<LoadReport> RunThreaded(const std::vector<Invocation>& workload);

  federation::IntegrationServer* server_;
  LoadOptions options_;
};

}  // namespace fedflow::load

#endif  // FEDFLOW_LOAD_LOAD_HARNESS_H_
