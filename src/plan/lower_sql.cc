#include "plan/lower_sql.h"

#include <sstream>

namespace fedflow::plan {

using federation::SpecArg;
using federation::SpecJoin;
using federation::SpecOutput;

std::string RenderPlanArg(const SpecArg& arg,
                          const ParamRenderer& render_param) {
  switch (arg.kind) {
    case SpecArg::Kind::kConstant:
      if (arg.constant.type() == DataType::kVarchar) {
        std::string escaped;
        for (char c : arg.constant.AsVarchar()) {
          if (c == '\'') escaped += "''";
          else escaped.push_back(c);
        }
        return "'" + escaped + "'";
      }
      return arg.constant.ToString();
    case SpecArg::Kind::kParam:
      return render_param(arg.param);
    case SpecArg::Kind::kNodeColumn:
      return arg.node + "." + arg.column;
  }
  return "?";
}

const char* SqlCastFunctionName(DataType t) {
  switch (t) {
    case DataType::kInt:
      return "INT";
    case DataType::kBigInt:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kVarchar:
      return "VARCHAR";
    case DataType::kNull:
    case DataType::kBool:
      return nullptr;  // no SQL cast function for these targets
  }
  return nullptr;
}

Result<std::string> RenderSelectSql(const FedPlan& plan,
                                    const ParamRenderer& render_param) {
  std::ostringstream sql;
  sql << "SELECT ";
  for (size_t i = 0; i < plan.outputs.size(); ++i) {
    if (i > 0) sql << ", ";
    const SpecOutput& out = plan.outputs[i];
    std::string ref = out.node + "." + out.column;
    if (out.cast_to != DataType::kNull) {
      const char* cast = SqlCastFunctionName(out.cast_to);
      if (cast == nullptr) {
        return Status::Unsupported("no SQL cast function for target type");
      }
      sql << cast << "(" << ref << ")";
    } else {
      sql << ref;
    }
    sql << " AS " << out.name;
  }
  sql << "\nFROM ";
  for (size_t k = 0; k < plan.order.size(); ++k) {
    if (k > 0) sql << ",\n     ";
    const PlanCall& call = plan.calls[plan.order[k]];
    sql << "TABLE (" << call.function << "(";
    for (size_t a = 0; a < call.args.size(); ++a) {
      if (a > 0) sql << ", ";
      sql << RenderPlanArg(call.args[a], render_param);
    }
    sql << ")) AS " << call.id;
  }
  if (!plan.joins.empty()) {
    sql << "\nWHERE ";
    for (size_t j = 0; j < plan.joins.size(); ++j) {
      if (j > 0) sql << " AND ";
      const SpecJoin& join = plan.joins[j];
      sql << join.left_node << "." << join.left_column << "="
          << join.right_node << "." << join.right_column;
    }
  }
  return sql.str();
}

}  // namespace fedflow::plan
