#include "plan/optimizer.h"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "plan/cost.h"

namespace fedflow::plan {

namespace {

/// Appends a decision to the plan log and mirrors it as a span event.
void Decide(FedPlan* plan, obs::SpanScope* span, const std::string& verdict,
            const std::string& detail) {
  plan->decisions.push_back(verdict + ": " + detail);
  if (span != nullptr) span->AddEvent(verdict, detail);
}

std::string OrderNames(const FedPlan& plan, const std::vector<size_t>& order) {
  std::string s;
  for (size_t k : order) {
    if (!s.empty()) s += ", ";
    s += plan.calls[k].id;
  }
  return s;
}

Status Parallelize(FedPlan* plan, const sim::LatencyModel& model,
                   obs::SpanScope* span) {
  if (plan->sequencing_edges.empty()) {
    Decide(plan, span, "parallelize",
           "schedule already data-driven; no sequencing edges to drop");
    return Status::OK();
  }
  // Edges touching a mutating call are saga write barriers (apply order and
  // capture-before-write): never droppable, whatever the cost model says.
  std::vector<std::pair<size_t, size_t>> barriers;
  std::vector<std::pair<size_t, size_t>> droppable;
  for (const auto& edge : plan->sequencing_edges) {
    if (plan->calls[edge.first].mutates || plan->calls[edge.second].mutates) {
      barriers.push_back(edge);
    } else {
      droppable.push_back(edge);
    }
  }
  if (droppable.empty()) {
    Decide(plan, span, "parallelize",
           "rejected: all " + std::to_string(barriers.size()) +
               " sequencing edge(s) are write-ordering barriers of mutating "
               "calls; conflicting writes must not run in parallel");
    return Status::OK();
  }
  PlanCostEstimate sequential = EstimatePlan(*plan, model);
  size_t dropped = droppable.size();
  std::vector<std::pair<size_t, size_t>> all_edges =
      std::move(plan->sequencing_edges);
  plan->sequencing_edges = barriers;
  FEDFLOW_RETURN_NOT_OK(RecomputeSchedule(plan));
  PlanCostEstimate parallel = EstimatePlan(*plan, model);
  if (parallel.wfms_elapsed_us > sequential.wfms_elapsed_us) {
    // Cannot happen (removing constraints never lengthens the critical
    // path), but the pass is cost-based, not structural: keep the cheaper
    // schedule.
    plan->sequencing_edges = std::move(all_edges);
    FEDFLOW_RETURN_NOT_OK(RecomputeSchedule(plan));
    Decide(plan, span, "parallelize",
           "rejected: dropping sequencing edges did not shorten the modeled "
           "critical path");
    return Status::OK();
  }
  std::string detail =
      "chose data-driven schedule over sequential baseline: dropped " +
      std::to_string(dropped) + " sequencing edge(s); modeled wfms elapsed " +
      std::to_string(sequential.wfms_elapsed_us) + "us -> " +
      std::to_string(parallel.wfms_elapsed_us) +
      "us (udtf unchanged: lateral SQL evaluates sequentially)";
  if (!barriers.empty()) {
    detail += "; retained " + std::to_string(barriers.size()) +
              " write-ordering barrier(s)";
  }
  Decide(plan, span, "parallelize", detail);
  return Status::OK();
}

Status Reorder(FedPlan* plan, const sim::LatencyModel& model,
               obs::SpanScope* span) {
  if (!plan->joins.empty()) {
    // Joined sources are multi-row, and the lateral chain nest-loops them:
    // moving a call earlier re-invokes every later call once per extra outer
    // row, changing the multiset of local calls (and their cost) — not an
    // equivalence-preserving transformation.
    Decide(plan, span, "reorder",
           "rejected: joined sources nest-loop in the lateral chain, so "
           "reordering would change inner invocation counts; kept order " +
               OrderNames(*plan, plan->order));
    return Status::OK();
  }
  if (plan->HasMutatingCalls()) {
    // The apply order of writes is what backward recovery reverses, and a
    // fronted read could observe a write that an abort later compensates —
    // reordering is not an equivalence-preserving transformation here.
    Decide(plan, span, "reorder",
           "rejected: plan contains mutating calls; reordering across write "
           "barriers would change the apply/compensation order; kept order " +
               OrderNames(*plan, plan->order));
    return Status::OK();
  }
  const size_t n = plan->calls.size();
  // Constraints: data deps + sequencing edges.
  std::vector<std::vector<size_t>> deps(n);
  for (size_t i = 0; i < n; ++i) deps[i] = plan->calls[i].data_deps;
  for (const auto& [from, to] : plan->sequencing_edges) {
    deps[to].push_back(from);
  }
  std::vector<int> pending(n, 0);
  for (size_t i = 0; i < n; ++i) {
    std::sort(deps[i].begin(), deps[i].end());
    deps[i].erase(std::unique(deps[i].begin(), deps[i].end()), deps[i].end());
    pending[i] = static_cast<int>(deps[i].size());
  }
  PlanCostEstimate est = EstimatePlan(*plan, model);
  // Cost-greedy list scheduling: among ready calls, front the most
  // expensive (longest-processing-time-first); ties keep declaration order.
  std::vector<size_t> order;
  order.reserve(n);
  std::vector<bool> done(n, false);
  for (size_t round = 0; round < n; ++round) {
    size_t chosen = SIZE_MAX;
    for (size_t i = 0; i < n; ++i) {
      if (done[i] || pending[i] != 0) continue;
      if (chosen == SIZE_MAX ||
          est.nodes[i].udtf_us > est.nodes[chosen].udtf_us) {
        chosen = i;
      }
    }
    if (chosen == SIZE_MAX) {
      return Status::Internal("reorder pass found a cycle in plan " +
                              plan->name);
    }
    done[chosen] = true;
    order.push_back(chosen);
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      for (size_t d : deps[i]) {
        if (d == chosen) --pending[i];
      }
    }
  }
  if (order == plan->order) {
    Decide(plan, span, "reorder",
           "kept lateral order " + OrderNames(*plan, plan->order) +
           " (already cost-ranked under the dependency constraints)");
    return Status::OK();
  }
  std::string before = OrderNames(*plan, plan->order);
  plan->order = std::move(order);
  FEDFLOW_RETURN_NOT_OK(RecomputeSchedule(plan));
  Decide(plan, span, "reorder",
         "chose cost-ranked lateral order " + OrderNames(*plan, plan->order) +
             " over declaration order " + before +
             " (most expensive ready call first)");
  return Status::OK();
}

Status SinkPredicates(FedPlan* plan, obs::SpanScope* span) {
  if (plan->joins.empty()) {
    Decide(plan, span, "sink-predicates", "no join conjuncts to place");
    return Status::OK();
  }
  const size_t n = plan->calls.size();
  std::vector<size_t> position(n, 0);
  for (size_t k = 0; k < plan->order.size(); ++k) {
    position[plan->order[k]] = k;
  }
  for (const federation::SpecJoin& join : plan->joins) {
    FEDFLOW_ASSIGN_OR_RETURN(size_t left, plan->CallIndex(join.left_node));
    FEDFLOW_ASSIGN_OR_RETURN(size_t right, plan->CallIndex(join.right_node));
    size_t sink = position[left] >= position[right] ? left : right;
    std::string conjunct = join.left_node + "." + join.left_column + "=" +
                           join.right_node + "." + join.right_column;
    plan->calls[sink].predicates.push_back(conjunct);
    Decide(plan, span, "sink-predicates",
           "conjunct " + conjunct + " sinks onto call " +
               plan->calls[sink].id + " (lateral position " +
               std::to_string(position[sink] + 1) +
               "; the earliest point where both sides are bound)");
  }
  return Status::OK();
}

}  // namespace

Status Optimize(FedPlan* plan, const sim::LatencyModel& model,
                const PlanOptions& options, obs::TraceSession* trace) {
  if (options.passthrough()) return Status::OK();
  obs::SpanScope span(trace, "optimize:" + plan->name, obs::Layer::kPlan);
  span.SetAttribute("mapping_case",
                    federation::MappingCaseName(plan->mapping_case));
  plan->optimized = true;
  if (options.parallelize) {
    FEDFLOW_RETURN_NOT_OK(Parallelize(plan, model, &span));
  }
  if (options.reorder) {
    FEDFLOW_RETURN_NOT_OK(Reorder(plan, model, &span));
  }
  if (options.sink_predicates) {
    FEDFLOW_RETURN_NOT_OK(SinkPredicates(plan, &span));
  }
  return Status::OK();
}

namespace {
std::atomic<int64_t> g_build_plan_invocations{0};
}  // namespace

int64_t BuildPlanInvocations() { return g_build_plan_invocations.load(); }

Result<FedPlan> BuildPlan(const federation::FederatedFunctionSpec& spec,
                          const appsys::AppSystemRegistry& systems,
                          const sim::LatencyModel& model,
                          const PlanOptions& options,
                          obs::TraceSession* trace) {
  g_build_plan_invocations.fetch_add(1);
  CompileOptions compile;
  compile.sequential_baseline = options.sequential_baseline;
  obs::SpanScope span(trace, "plan:" + spec.name, obs::Layer::kPlan);
  FEDFLOW_ASSIGN_OR_RETURN(FedPlan plan,
                           CompilePlan(spec, systems, compile));
  FEDFLOW_RETURN_NOT_OK(Optimize(&plan, model, options, trace));
  return plan;
}

}  // namespace fedflow::plan
