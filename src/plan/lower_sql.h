// SQL lowering of the plan IR: renders the body SELECT of a federated
// function — outputs with casts, lateral TABLE(...) references in plan
// order, join predicates. Shared by the SQL I-UDTF compiler (parameters
// rendered DB2-style as "SpecName.Param"), the PSM compiler and the
// Java/procedural coupling (parameters rendered as literals per call).
// For a passthrough plan the rendered text is byte-identical to the legacy
// BuildSpecSelectSql output.
#ifndef FEDFLOW_PLAN_LOWER_SQL_H_
#define FEDFLOW_PLAN_LOWER_SQL_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "plan/fed_plan.h"

namespace fedflow::plan {

/// Renders a parameter reference inside generated SQL.
using ParamRenderer = std::function<std::string(const std::string& param)>;

/// Renders one call argument (constants escaped, node columns qualified).
std::string RenderPlanArg(const federation::SpecArg& arg,
                          const ParamRenderer& render_param);

/// Name of the SQL cast function for a target type; null when SQL has none.
const char* SqlCastFunctionName(DataType t);

/// Renders the plan's body SELECT. Looping plans render their body graph
/// (the caller supplies ITERATION through `render_param`).
Result<std::string> RenderSelectSql(const FedPlan& plan,
                                    const ParamRenderer& render_param);

}  // namespace fedflow::plan

#endif  // FEDFLOW_PLAN_LOWER_SQL_H_
