#include "plan/cost.h"

#include <algorithm>

namespace fedflow::plan {

PlanCostEstimate EstimatePlan(const FedPlan& plan,
                              const sim::LatencyModel& model) {
  PlanCostEstimate est;
  const size_t n = plan.calls.size();
  est.nodes.reserve(n);
  for (const PlanCall& call : plan.calls) {
    NodeCost c;
    c.wfms_us = model.wf_navigation_us + model.wf_container_us +
                model.wf_jvm_boot_activity_us + call.modeled_call_us;
    c.udtf_us = model.udtf_prepare_a_us + model.controller_attach_us +
                model.rmi_call_base_us + model.controller_dispatch_us +
                call.modeled_call_us + model.udtf_finish_a_us +
                model.controller_return_us + model.rmi_return_base_us;
    est.nodes.push_back(c);
  }

  // WfMS: the engine runs each stage's calls in parallel; a call starts when
  // its latest constraint (data dependency or sequencing edge) finishes.
  std::vector<VDuration> end(n, 0);
  for (size_t k : plan.order) {
    VDuration start = 0;
    for (size_t d : plan.calls[k].data_deps) {
      start = std::max(start, end[d]);
    }
    for (const auto& [from, to] : plan.sequencing_edges) {
      if (to == k) start = std::max(start, end[from]);
    }
    end[k] = start + est.nodes[k].wfms_us;
  }
  VDuration calls_critical = 0;
  for (size_t i = 0; i < n; ++i) {
    calls_critical = std::max(calls_critical, end[i]);
    est.wfms_work_us += est.nodes[i].wfms_us;
  }
  // Join helpers chain pairwise after the call nodes; the result helper is
  // always last.
  const VDuration helper_us =
      model.wf_navigation_us + model.wf_container_us + model.wf_helper_us;
  VDuration engine_elapsed =
      calls_critical +
      static_cast<VDuration>(plan.joins.size() + 1) * helper_us;
  est.wfms_elapsed_us = model.wf_udtf_start_us + model.wf_udtf_process_us +
                        model.wf_controller_process_us +
                        model.rmi_call_base_us + model.wf_process_start_us +
                        engine_elapsed + model.wf_controller_us +
                        model.rmi_return_base_us + model.wf_udtf_finish_us;

  // UDTF: lateral A-UDTF references evaluate left-to-right inside ONE SQL
  // statement — no intra-statement parallelism, regardless of stages.
  est.udtf_elapsed_us = model.udtf_start_i_us + model.udtf_finish_i_us;
  for (const NodeCost& c : est.nodes) est.udtf_elapsed_us += c.udtf_us;
  return est;
}

}  // namespace fedflow::plan
