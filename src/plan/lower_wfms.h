// WfMS lowering of the plan IR: emits the workflow process model (program
// activities per call node, control connectors from the plan's ordering
// constraints, join/result helper activities, do-until blocks for looping
// plans). For a passthrough plan the emitted ProcessDefinition is
// byte-identical to the legacy WfmsCoupling::CompileProcess output; a
// sequential-baseline plan additionally chains the call activities via its
// sequencing edges, serializing the engine's schedule.
#ifndef FEDFLOW_PLAN_LOWER_WFMS_H_
#define FEDFLOW_PLAN_LOWER_WFMS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "plan/fed_plan.h"
#include "wfms/model.h"

namespace fedflow::plan {

/// A lowered plan: the process plus the helpers it needs registered.
struct LoweredProcess {
  wfms::ProcessDefinition process;
  std::vector<std::pair<std::string, wfms::HelperFn>> helpers;
};

/// Lowers `plan` to a validated process definition. Handles every mapping
/// case including loops (the cyclic case).
Result<LoweredProcess> LowerToProcess(const FedPlan& plan);

}  // namespace fedflow::plan

#endif  // FEDFLOW_PLAN_LOWER_WFMS_H_
