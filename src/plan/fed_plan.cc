#include "plan/fed_plan.h"

#include <algorithm>

#include "common/dag.h"
#include "common/strings.h"
#include "federation/binding.h"
#include "plan/shape.h"

namespace fedflow::plan {

using federation::FederatedFunctionSpec;
using federation::SpecArg;
using federation::SpecCall;

Result<size_t> FedPlan::CallIndex(const std::string& id) const {
  for (size_t i = 0; i < calls.size(); ++i) {
    if (EqualsIgnoreCase(calls[i].id, id)) return i;
  }
  return Status::NotFound("call node not found: " + id + " in plan " + name);
}

bool FedPlan::HasMutatingCalls() const {
  for (const PlanCall& call : calls) {
    if (call.mutates) return true;
  }
  return false;
}

namespace {

/// The constraint graph the schedule derives from: parameter-flow edges plus
/// any sequencing edges.
std::vector<std::vector<size_t>> ConstraintDeps(const FedPlan& plan) {
  std::vector<std::vector<size_t>> deps(plan.calls.size());
  for (size_t i = 0; i < plan.calls.size(); ++i) {
    deps[i] = plan.calls[i].data_deps;
  }
  for (const auto& [from, to] : plan.sequencing_edges) {
    if (to < deps.size()) deps[to].push_back(from);
  }
  return deps;
}

ShapeFeatures ShapeOfPlan(const FedPlan& plan) {
  ShapeFeatures f;
  f.num_calls = plan.calls.size();
  f.loop = plan.loop.enabled;
  f.deps.resize(f.num_calls);
  for (size_t i = 0; i < f.num_calls; ++i) {
    f.deps[i] = plan.calls[i].data_deps;
  }
  if (f.num_calls == 1) {
    const PlanCall& call = plan.calls[0];
    bool identity = call.args.size() == plan.params.size();
    if (identity) {
      for (size_t i = 0; i < call.args.size(); ++i) {
        if (call.args[i].kind != SpecArg::Kind::kParam ||
            !EqualsIgnoreCase(call.args[i].param, plan.params[i].name)) {
          identity = false;
          break;
        }
      }
    }
    if (identity) {
      for (const federation::SpecOutput& o : plan.outputs) {
        if (o.cast_to != DataType::kNull) identity = false;
      }
    }
    f.single_call_identity = identity;
  }
  return f;
}

}  // namespace

federation::MappingCase ClassifyPlan(const FedPlan& plan) {
  return ClassifyShape(ShapeOfPlan(plan));
}

Status RecomputeSchedule(FedPlan* plan) {
  const size_t n = plan->calls.size();
  std::vector<std::vector<size_t>> deps = ConstraintDeps(*plan);
  dag::TopoSort sorted = dag::StableTopologicalSort(deps);
  if (!sorted.ok()) {
    return Status::Internal("sequencing edges of plan " + plan->name +
                            " contradict its data dependencies");
  }
  // The total order must respect every constraint (the optimizer owns
  // reordering; this only validates).
  std::vector<size_t> position(n, 0);
  if (plan->order.size() != n) {
    return Status::Internal("plan " + plan->name + " has an incomplete order");
  }
  for (size_t k = 0; k < n; ++k) position[plan->order[k]] = k;
  for (size_t i = 0; i < n; ++i) {
    for (size_t d : deps[i]) {
      if (position[d] >= position[i]) {
        return Status::Internal("order of plan " + plan->name +
                                " violates a dependency of call " +
                                plan->calls[i].id);
      }
    }
  }
  // Longest-path levels over the constraint graph: level 0 holds the
  // unconstrained calls, level k+1 everything whose latest constraint sits
  // in level k — the parallel-stage view of the schedule.
  std::vector<size_t> level(n, 0);
  for (size_t i : sorted.order) {
    for (size_t d : deps[i]) level[i] = std::max(level[i], level[d] + 1);
  }
  size_t depth = 0;
  for (size_t i = 0; i < n; ++i) depth = std::max(depth, level[i] + 1);
  plan->stages.assign(depth, {});
  // Within a stage, list calls in lateral (order) position for stable
  // display.
  for (size_t k = 0; k < n; ++k) {
    size_t i = plan->order[k];
    plan->stages[level[i]].push_back(i);
  }
  if (n == 0) plan->stages.clear();
  return Status::OK();
}

Result<FedPlan> CompilePlan(const FederatedFunctionSpec& spec,
                            const appsys::AppSystemRegistry& systems,
                            const CompileOptions& options) {
  FEDFLOW_RETURN_NOT_OK(federation::ValidateSpec(spec));
  FEDFLOW_RETURN_NOT_OK(federation::BindSpec(spec, systems));

  FedPlan plan;
  plan.name = spec.name;
  plan.params = spec.params;
  plan.joins = spec.joins;
  plan.outputs = spec.outputs;
  plan.loop = spec.loop;
  FEDFLOW_ASSIGN_OR_RETURN(plan.result_schema,
                           federation::ResolveResultSchema(spec, systems));

  const size_t n = spec.calls.size();
  plan.calls.reserve(n);
  for (const SpecCall& call : spec.calls) {
    PlanCall node;
    node.id = call.id;
    node.system = call.system;
    node.function = call.function;
    node.args = call.args;
    FEDFLOW_ASSIGN_OR_RETURN(
        const Schema* schema,
        federation::NodeResultSchema(spec, systems, call.id));
    node.result_schema = *schema;
    FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem * sys, systems.Get(call.system));
    FEDFLOW_ASSIGN_OR_RETURN(const appsys::LocalFunction* fn,
                             sys->GetFunction(call.function));
    node.modeled_call_us = fn->base_cost_us;
    node.mutates = fn->mutates;
    if (const federation::SpecCompensation* comp =
            spec.FindCompensation(call.id)) {
      node.compensation = comp->function;
      node.compensation_args = comp->args;
    }
    for (const SpecArg& a : call.args) {
      if (a.kind != SpecArg::Kind::kNodeColumn) continue;
      for (size_t j = 0; j < n; ++j) {
        if (EqualsIgnoreCase(spec.calls[j].id, a.node)) {
          node.data_deps.push_back(j);
        }
      }
    }
    std::sort(node.data_deps.begin(), node.data_deps.end());
    node.data_deps.erase(
        std::unique(node.data_deps.begin(), node.data_deps.end()),
        node.data_deps.end());
    plan.calls.push_back(std::move(node));
  }

  // Passthrough order == TopologicalCallOrder of the spec: the SQL lowering
  // renders byte-identical lateral FROM chains.
  std::vector<std::vector<size_t>> deps(n);
  for (size_t i = 0; i < n; ++i) deps[i] = plan.calls[i].data_deps;
  dag::TopoSort sorted = dag::StableTopologicalSort(deps);
  if (!sorted.ok()) {
    return Status::InvalidArgument(
        "cyclic dependency between call nodes of spec " + spec.name);
  }
  plan.order = std::move(sorted.order);

  if (options.sequential_baseline) {
    for (size_t k = 0; k + 1 < plan.order.size(); ++k) {
      size_t from = plan.order[k];
      size_t to = plan.order[k + 1];
      const std::vector<size_t>& dd = plan.calls[to].data_deps;
      if (std::find(dd.begin(), dd.end(), from) == dd.end()) {
        plan.sequencing_edges.emplace_back(from, to);
      }
    }
  }

  // Saga write barriers. Mutating calls must keep their relative order (the
  // apply order is what backward recovery reverses), and every capture
  // source feeding a compensation argument must run before its write
  // applies. Both obligations become sequencing edges that the optimizer is
  // forbidden to drop. Write-free plans take neither branch, so their
  // lowerings stay byte-identical to the pre-saga compiler.
  if (plan.HasMutatingCalls()) {
    std::vector<size_t> position(n, 0);
    for (size_t k = 0; k < plan.order.size(); ++k) position[plan.order[k]] = k;
    auto add_edge = [&](size_t from, size_t to) {
      if (from == to) return;
      // An edge against the topological order would be a cycle; the FF455
      // dataflow check rejects such specs at the registration gate.
      if (position[from] >= position[to]) return;
      const std::vector<size_t>& dd = plan.calls[to].data_deps;
      if (std::find(dd.begin(), dd.end(), from) != dd.end()) return;
      for (const auto& [f, t] : plan.sequencing_edges) {
        if (f == from && t == to) return;
      }
      plan.sequencing_edges.emplace_back(from, to);
    };
    size_t prev_write = n;  // n = none yet
    for (size_t k : plan.order) {
      if (!plan.calls[k].mutates) continue;
      if (prev_write != n) add_edge(prev_write, k);
      prev_write = k;
    }
    for (size_t i = 0; i < n; ++i) {
      for (const SpecArg& a : plan.calls[i].compensation_args) {
        if (a.kind != SpecArg::Kind::kNodeColumn) continue;
        for (size_t j = 0; j < n; ++j) {
          if (EqualsIgnoreCase(plan.calls[j].id, a.node)) add_edge(j, i);
        }
      }
    }
  }

  FEDFLOW_RETURN_NOT_OK(RecomputeSchedule(&plan));
  plan.mapping_case = ClassifyShape(ShapeOfSpec(spec));
  return plan;
}

}  // namespace fedflow::plan
