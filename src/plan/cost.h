// Static cost model over the plan IR: per-node and whole-plan virtual-time
// estimates for both architectures, derived from the same LatencyModel the
// runtime charges. The WfMS estimate follows the engine's schedule semantics
// (critical path through the parallel stages, helpers chained after the call
// nodes); the UDTF estimate sums the lateral chain sequentially — a single
// SQL statement cannot parallelize independent calls, which is the paper's
// structural argument and what makes parallelization a WfMS-only win.
//
// Scope: base costs only. Per-row costs, marshalled bytes, warm-up
// surcharges and retries depend on runtime data and are excluded, so the
// estimate is an ordering tool (compare schedules of one plan), not a
// predictor of absolute elapsed time.
#ifndef FEDFLOW_PLAN_COST_H_
#define FEDFLOW_PLAN_COST_H_

#include <vector>

#include "common/vclock.h"
#include "plan/fed_plan.h"
#include "sim/latency.h"

namespace fedflow::plan {

/// Modeled cost of one call node under each architecture.
struct NodeCost {
  VDuration wfms_us = 0;  ///< navigation + container + JVM boot + call
  VDuration udtf_us = 0;  ///< A-UDTF prepare/finish + controller + RMI + call
};

/// Modeled cost of a whole plan (one loop iteration for looping plans).
struct PlanCostEstimate {
  std::vector<NodeCost> nodes;  ///< indexed like plan.calls
  /// WfMS: wrapper + process start overhead + critical path through the
  /// stages + join/result helper chain + return overhead.
  VDuration wfms_elapsed_us = 0;
  /// WfMS: summed activity work (what elapsed collapses to when every stage
  /// is a singleton).
  VDuration wfms_work_us = 0;
  /// UDTF: I-UDTF start/finish + the lateral chain, summed sequentially.
  VDuration udtf_elapsed_us = 0;
};

/// Estimates `plan` under both architectures.
PlanCostEstimate EstimatePlan(const FedPlan& plan,
                              const sim::LatencyModel& model);

}  // namespace fedflow::plan

#endif  // FEDFLOW_PLAN_COST_H_
