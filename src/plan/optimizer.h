// The cost-based plan optimizer. Passes are opt-in per federated function
// (mirroring ExecContext::predicate_pushdown): with every pass off the plan
// is a pure passthrough and the lowerings reproduce the legacy compilers
// byte-for-byte — the bit-identical virtual-time guarantee all existing
// benchmarks pin. Each pass logs its decision (chosen vs rejected
// alternative, with modeled costs) into FedPlan::decisions and, when a trace
// session is supplied, as events on a plan-layer span.
#ifndef FEDFLOW_PLAN_OPTIMIZER_H_
#define FEDFLOW_PLAN_OPTIMIZER_H_

#include "appsys/registry.h"
#include "common/result.h"
#include "obs/trace.h"
#include "plan/fed_plan.h"
#include "sim/latency.h"

namespace fedflow::plan {

/// Per-function plan options: compile-time shape plus opt-in passes.
struct PlanOptions {
  /// Compile the naive sequential baseline (see CompileOptions).
  bool sequential_baseline = false;
  /// Drop sequencing edges not implied by parameter flow, recovering the
  /// data-driven parallel schedule (a WfMS-only elapsed-time win; lateral
  /// SQL stays sequential either way).
  bool parallelize = false;
  /// Re-derive the total order cost-ranked: among ready calls, schedule the
  /// most expensive first (ties by declaration order). Changes the lateral
  /// FROM order of the SQL lowering; the WfMS process graph is order-free.
  bool reorder = false;
  /// Sink WHERE conjuncts onto the earliest call in the lateral order at
  /// which both sides are available (annotation consumed by EXPLAIN and the
  /// FF3xx lint; the executor's dynamic pushdown already applies conjuncts
  /// at exactly that point).
  bool sink_predicates = false;

  /// True when no optimization pass is enabled — the lowerings then
  /// reproduce the legacy compilers bit-identically.
  bool passthrough() const {
    return !parallelize && !reorder && !sink_predicates;
  }
};

/// Runs the enabled passes over `plan` in place, appending decisions.
/// `trace` (optional) gets an "optimize:<name>" plan-layer span whose events
/// mirror the decision log.
Status Optimize(FedPlan* plan, const sim::LatencyModel& model,
                const PlanOptions& options,
                obs::TraceSession* trace = nullptr);

/// Compile + optimize in one step: what the couplings call at registration.
Result<FedPlan> BuildPlan(const federation::FederatedFunctionSpec& spec,
                          const appsys::AppSystemRegistry& systems,
                          const sim::LatencyModel& model,
                          const PlanOptions& options = {},
                          obs::TraceSession* trace = nullptr);

/// Process-wide count of BuildPlan invocations. The plan-cache regression
/// tests diff this across registration + call sequences to pin "compile
/// exactly once per registered spec".
int64_t BuildPlanInvocations();

}  // namespace fedflow::plan

#endif  // FEDFLOW_PLAN_OPTIMIZER_H_
