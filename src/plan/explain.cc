#include "plan/explain.h"

#include <sstream>

#include "plan/cost.h"

namespace fedflow::plan {

namespace {

std::string TypeNameLower(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt:
      return "int";
    case DataType::kBigInt:
      return "bigint";
    case DataType::kDouble:
      return "double";
    case DataType::kVarchar:
      return "varchar";
  }
  return "?";
}

std::string RenderArgBrief(const federation::SpecArg& arg) {
  switch (arg.kind) {
    case federation::SpecArg::Kind::kConstant:
      return arg.constant.ToString();
    case federation::SpecArg::Kind::kParam:
      return ":" + arg.param;
    case federation::SpecArg::Kind::kNodeColumn:
      return arg.node + "." + arg.column;
  }
  return "?";
}

}  // namespace

std::string ExplainPlan(const FedPlan& plan, const sim::LatencyModel& model) {
  PlanCostEstimate est = EstimatePlan(plan, model);
  std::ostringstream out;
  out << "PLAN " << plan.name << "  ["
      << federation::MappingCaseName(plan.mapping_case) << ", "
      << (plan.optimized ? "optimized" : "passthrough") << "]\n";

  out << "  params:";
  if (plan.params.empty()) {
    out << " (none)";
  } else {
    for (const Column& p : plan.params) {
      out << " " << p.name << " " << TypeNameLower(p.type);
    }
  }
  out << "\n";

  if (plan.loop.enabled) {
    out << "  loop: do-until ITERATION >= " << plan.loop.count_param
        << (plan.loop.union_all ? " (union all)" : " (keep last)") << "\n";
  }

  for (size_t s = 0; s < plan.stages.size(); ++s) {
    out << "  stage " << (s + 1);
    if (plan.stages[s].size() > 1) out << "  (parallel fork)";
    out << "\n";
    for (size_t i : plan.stages[s]) {
      const PlanCall& call = plan.calls[i];
      out << "    call " << call.id << " = " << call.system << "."
          << call.function << "(";
      for (size_t a = 0; a < call.args.size(); ++a) {
        if (a > 0) out << ", ";
        out << RenderArgBrief(call.args[a]);
      }
      out << ")  wfms=" << est.nodes[i].wfms_us
          << "us udtf=" << est.nodes[i].udtf_us << "us\n";
      for (const std::string& pred : call.predicates) {
        out << "      sink predicate: " << pred << "\n";
      }
    }
  }

  for (size_t j = 0; j < plan.joins.size(); ++j) {
    const federation::SpecJoin& join = plan.joins[j];
    out << "  join " << (j + 1) << ": " << join.left_node << "."
        << join.left_column << "=" << join.right_node << "."
        << join.right_column << "\n";
  }

  out << "  lateral order:";
  for (size_t k : plan.order) out << " " << plan.calls[k].id;
  out << "\n";

  out << "  modeled elapsed: wfms=" << est.wfms_elapsed_us
      << "us (critical path)  udtf=" << est.udtf_elapsed_us
      << "us (sequential lateral chain)\n";

  if (!plan.decisions.empty()) {
    out << "  decisions:\n";
    for (const std::string& d : plan.decisions) {
      out << "    - " << d << "\n";
    }
  }
  return out.str();
}

}  // namespace fedflow::plan
