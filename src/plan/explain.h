// EXPLAIN-style rendering of an optimized plan: the stages with per-node
// modeled costs under both architectures, the lateral order, sunk
// predicates, modeled totals and the optimizer's decision log. Deterministic
// text, suitable for golden-file diffing in CI.
#ifndef FEDFLOW_PLAN_EXPLAIN_H_
#define FEDFLOW_PLAN_EXPLAIN_H_

#include <string>

#include "plan/fed_plan.h"
#include "sim/latency.h"

namespace fedflow::plan {

/// Renders `plan` as a multi-line EXPLAIN report (trailing newline).
std::string ExplainPlan(const FedPlan& plan, const sim::LatencyModel& model);

}  // namespace fedflow::plan

#endif  // FEDFLOW_PLAN_EXPLAIN_H_
