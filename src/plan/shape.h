// Mapping-shape classification over the plan IR's dependency structure.
// Header-only so BOTH the spec-level classifier (fedflow_spec, which the plan
// library links) and the plan-level classifier can share ONE rule set without
// a link cycle — the single source of truth the complexity matrix pins
// against.
#ifndef FEDFLOW_PLAN_SHAPE_H_
#define FEDFLOW_PLAN_SHAPE_H_

#include <cstddef>
#include <vector>

#include "common/strings.h"
#include "federation/classify.h"

namespace fedflow::plan {

/// The structural features the paper's §3 complexity cases are decided on.
struct ShapeFeatures {
  size_t num_calls = 0;
  /// deps[i] = call nodes i's arguments reference (deduplicated, no
  /// self-references).
  std::vector<std::vector<size_t>> deps;
  /// Do-until loop around the whole call graph (the cyclic case).
  bool loop = false;
  /// Single-call specs only: parameters pass through 1:1 in declaration
  /// order, no constants, no output casts (the trivial case).
  bool single_call_identity = false;
};

/// Classifies a mapping by its dependency shape. Rules, in order:
///  - a loop is cyclic regardless of the graph;
///  - one call is trivial (identity signature) or simple;
///  - no dependency edge at all: independent;
///  - a node consuming >= 2 nodes: dependent (1:n);
///  - a node feeding >= 2 nodes: dependent (n:1);
///  - otherwise every node has fan-in and fan-out <= 1, i.e. the graph is a
///    union of chains: ONE chain covering all nodes (exactly n-1 edges) is
///    dependent (linear); a chain PLUS detached nodes mixes parallel and
///    sequential execution and is dependent (1:n) — the matrix row covering
///    "parallel and sequential execution of activities". (The classifier
///    previously called such mixed shapes linear, which the I-UDTF SQL lint
///    contradicted; this rule is now the single source of truth.)
inline federation::MappingCase ClassifyShape(const ShapeFeatures& f) {
  using federation::MappingCase;
  if (f.loop) return MappingCase::kDependentCyclic;
  if (f.num_calls <= 1) {
    return f.single_call_identity ? MappingCase::kTrivial
                                  : MappingCase::kSimple;
  }
  size_t edges = 0;
  std::vector<size_t> fan_out(f.num_calls, 0);
  for (size_t i = 0; i < f.deps.size() && i < f.num_calls; ++i) {
    edges += f.deps[i].size();
    for (size_t d : f.deps[i]) {
      if (d < f.num_calls) ++fan_out[d];
    }
  }
  if (edges == 0) return MappingCase::kIndependent;
  for (size_t i = 0; i < f.deps.size(); ++i) {
    if (f.deps[i].size() >= 2) return MappingCase::kDependent1N;
  }
  for (size_t i = 0; i < f.num_calls; ++i) {
    if (fan_out[i] >= 2) return MappingCase::kDependentN1;
  }
  if (edges == f.num_calls - 1) return MappingCase::kDependentLinear;
  return MappingCase::kDependent1N;  // chain(s) + detached nodes: mixed
}

/// Extracts the features of a spec (the classifier's view before binding).
inline ShapeFeatures ShapeOfSpec(const federation::FederatedFunctionSpec& spec) {
  using federation::SpecArg;
  ShapeFeatures f;
  f.num_calls = spec.calls.size();
  f.loop = spec.loop.enabled;
  f.deps.resize(f.num_calls);
  for (size_t i = 0; i < f.num_calls; ++i) {
    for (const SpecArg& a : spec.calls[i].args) {
      if (a.kind != SpecArg::Kind::kNodeColumn) continue;
      for (size_t j = 0; j < f.num_calls; ++j) {
        if (j == i) continue;
        if (EqualsIgnoreCase(spec.calls[j].id, a.node)) {
          bool seen = false;
          for (size_t d : f.deps[i]) seen = seen || d == j;
          if (!seen) f.deps[i].push_back(j);
        }
      }
    }
  }
  if (f.num_calls == 1) {
    const federation::SpecCall& call = spec.calls[0];
    bool identity = call.args.size() == spec.params.size();
    if (identity) {
      for (size_t i = 0; i < call.args.size(); ++i) {
        if (call.args[i].kind != SpecArg::Kind::kParam ||
            !EqualsIgnoreCase(call.args[i].param, spec.params[i].name)) {
          identity = false;
          break;
        }
      }
    }
    if (identity) {
      for (const federation::SpecOutput& o : spec.outputs) {
        if (o.cast_to != DataType::kNull) identity = false;
      }
    }
    f.single_call_identity = identity;
  }
  return f;
}

}  // namespace fedflow::plan

#endif  // FEDFLOW_PLAN_SHAPE_H_
