// The federated-plan IR: one DAG compiled from a FederatedFunctionSpec that
// all three couplings lower — the WfMS builder emits its process model from
// it, the SQL I-UDTF compiler renders its lateral SELECT from it, and the
// Java/procedural I-UDTF interprets it. Centralizing the execution structure
// (call nodes, parameter-flow edges, parallel stages, do-until loops,
// pushdown-able predicates) means an optimization written once benefits every
// architecture, and the per-architecture cost gap stays attributable to
// coupling overhead rather than plan shape (paper §6's open problem).
#ifndef FEDFLOW_PLAN_FED_PLAN_H_
#define FEDFLOW_PLAN_FED_PLAN_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "appsys/registry.h"
#include "common/result.h"
#include "common/schema.h"
#include "common/vclock.h"
#include "federation/classify.h"
#include "federation/spec.h"

namespace fedflow::plan {

/// One local-function call node of the plan.
struct PlanCall {
  std::string id;        ///< correlation name / activity name (e.g. "GQ")
  std::string system;    ///< owning application system
  std::string function;  ///< local function
  std::vector<federation::SpecArg> args;  ///< parameter flow, verbatim

  /// The call's declared result schema (resolved against the registry at
  /// compile time, so lowerings never re-bind).
  Schema result_schema;
  /// The local function's modeled server-side cost (base cost; per-row and
  /// marshalling costs are runtime-dependent and excluded from the static
  /// estimate).
  VDuration modeled_call_us = 0;
  /// Parameter-flow edges: indices of calls this node's arguments reference
  /// (sorted, deduplicated). These are the plan's hard ordering constraints.
  std::vector<size_t> data_deps;
  /// WHERE conjuncts the optimizer sank onto this node: each becomes
  /// evaluable as soon as this call (the later of the conjunct's two sides in
  /// the lateral order) has produced its columns. Annotation only — the FDBS
  /// executor's dynamic pushdown applies conjuncts at exactly this point.
  std::vector<std::string> predicates;

  /// Whether the local function writes its system's store (a saga write
  /// node). Write nodes carry ordering obligations: the optimizer must not
  /// reorder across them or parallelize conflicting writes.
  bool mutates = false;
  /// Compensation pairing from the spec (empty when none): the undo function
  /// on the node's system plus its argument template. Carried in the IR so
  /// the saga runtime and the lowerings share one source of truth.
  std::string compensation;
  std::vector<federation::SpecArg> compensation_args;
};

/// The compiled plan of one federated function.
struct FedPlan {
  std::string name;
  std::vector<Column> params;
  std::vector<PlanCall> calls;  ///< declaration order (stable node ids)
  std::vector<federation::SpecJoin> joins;
  std::vector<federation::SpecOutput> outputs;
  federation::SpecLoop loop;
  Schema result_schema;

  /// Ordering constraints BEYOND the data dependencies. Empty for
  /// data-driven (passthrough) plans; the sequential-baseline compiler
  /// chains every call after its predecessor here, and the parallelize pass
  /// removes edges not implied by parameter flow.
  std::vector<std::pair<size_t, size_t>> sequencing_edges;
  /// Total order over `calls` honoring data_deps and sequencing_edges; the
  /// lateral FROM order of the SQL lowering. For passthrough plans this is
  /// exactly TopologicalCallOrder of the spec.
  std::vector<size_t> order;
  /// Parallel stages: stages[k] runs after every call in stages[0..k-1] it
  /// is constrained against. Nodes within a stage are independent (the WfMS
  /// engine's parallel fork). Derived from the constraint graph; display and
  /// cost model only — the WfMS lowering stays data-driven.
  std::vector<std::vector<size_t>> stages;

  federation::MappingCase mapping_case = federation::MappingCase::kSimple;
  /// True once an optimizer pass ran (regardless of whether it changed
  /// anything).
  bool optimized = false;
  /// Optimizer decision log: chosen vs rejected alternatives, in pass order.
  std::vector<std::string> decisions;

  /// Index of the call with `id` (case-insensitive).
  Result<size_t> CallIndex(const std::string& id) const;

  /// True when any call node mutates its application system's store.
  bool HasMutatingCalls() const;
};

/// Compile-time shape directives (distinct from optimizer passes).
struct CompileOptions {
  /// Model a naive one-call-at-a-time integration: chain every call after
  /// the previous one in topological order via sequencing edges. This is the
  /// optimizer's baseline — the parallelize pass recovers the data-driven
  /// schedule from it.
  bool sequential_baseline = false;
};

/// Compiles a spec into the plan IR: validates, binds against the
/// application systems, resolves schemas and modeled costs, derives the
/// dependency edges, the total order and the parallel stages. Performs no
/// optimization: lowering a freshly compiled plan is byte-identical to the
/// legacy per-coupling compilers (the passthrough guarantee).
Result<FedPlan> CompilePlan(const federation::FederatedFunctionSpec& spec,
                            const appsys::AppSystemRegistry& systems,
                            const CompileOptions& options = {});

/// Classifies a plan by IR shape — the same rule set ClassifySpec uses
/// (plan/shape.h), recomputed from the IR so fedlint can cross-check that
/// compilation preserved the mapping class.
federation::MappingCase ClassifyPlan(const FedPlan& plan);

/// Recomputes `plan->stages` (longest-path levels) and verifies
/// `plan->order` against the current constraint graph (data_deps +
/// sequencing_edges). Used by optimizer passes after edge changes.
Status RecomputeSchedule(FedPlan* plan);

}  // namespace fedflow::plan

#endif  // FEDFLOW_PLAN_FED_PLAN_H_
