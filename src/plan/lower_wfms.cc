#include "plan/lower_wfms.h"

#include <set>
#include <unordered_map>

#include "common/strings.h"
#include "sql/parser.h"

namespace fedflow::plan {

using federation::SpecArg;
using federation::SpecJoin;
using federation::SpecOutput;
using wfms::ActivityDef;
using wfms::ActivityKind;
using wfms::BlockAccumulate;
using wfms::InputSource;
using wfms::ProcessDefinition;

namespace {

InputSource SpecArgToInput(const SpecArg& arg) {
  switch (arg.kind) {
    case SpecArg::Kind::kConstant:
      return InputSource::Constant(arg.constant);
    case SpecArg::Kind::kParam:
      return InputSource::FromProcessInput(arg.param);
    case SpecArg::Kind::kNodeColumn:
      return InputSource::FromActivity(arg.node, arg.column);
  }
  return InputSource::Constant(Value::Null());
}

/// Builds the result-assembly helper: projects/renames/casts the columns of
/// one input table to the plan's output schema.
wfms::HelperFn MakeSingleTableResultHelper(
    std::vector<SpecOutput> outputs, Schema result_schema) {
  return [outputs = std::move(outputs), result_schema = std::move(
              result_schema)](const std::vector<Table>& inputs)
             -> Result<Table> {
    if (inputs.size() != 1) {
      return Status::InvalidArgument("result helper expects 1 input");
    }
    const Table& in = inputs[0];
    std::vector<size_t> idx;
    for (const SpecOutput& out : outputs) {
      FEDFLOW_ASSIGN_OR_RETURN(size_t i, in.schema().FindColumn(out.column));
      idx.push_back(i);
    }
    Table result(result_schema);
    for (const Row& r : in.rows()) {
      Row row;
      row.reserve(idx.size());
      for (size_t i : idx) row.push_back(r[i]);
      FEDFLOW_RETURN_NOT_OK(result.AppendRow(std::move(row)));
    }
    return result;
  };
}

/// Positional hash join of exactly two inputs on key columns given by index
/// (column names may repeat across join chains, so names are unreliable).
wfms::HelperFn MakeIndexJoinHelper(size_t left_index, size_t right_index) {
  return [left_index, right_index](
             const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.size() != 2) {
      return Status::InvalidArgument("join helper expects 2 inputs");
    }
    const Table& left = inputs[0];
    const Table& right = inputs[1];
    if (left_index >= left.schema().num_columns() ||
        right_index >= right.schema().num_columns()) {
      return Status::Internal("join key index out of range");
    }
    std::unordered_multimap<size_t, size_t> index;
    index.reserve(right.num_rows());
    for (size_t r = 0; r < right.num_rows(); ++r) {
      index.emplace(right.rows()[r][right_index].Hash(), r);
    }
    Table out(left.schema().Concat(right.schema()));
    for (const Row& lrow : left.rows()) {
      auto [lo, hi] = index.equal_range(lrow[left_index].Hash());
      for (auto it = lo; it != hi; ++it) {
        const Row& rrow = right.rows()[it->second];
        if (!lrow[left_index].SqlEquals(rrow[right_index])) continue;
        Row combined = lrow;
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        out.AppendRowUnchecked(std::move(combined));
      }
    }
    return out;
  };
}

/// Builds a positional projector: picks columns of the single input by index
/// (used after join chains, where column names may be ambiguous).
wfms::HelperFn MakeIndexProjectHelper(std::vector<size_t> indices,
                                      Schema result_schema) {
  return [indices = std::move(indices), result_schema = std::move(
              result_schema)](const std::vector<Table>& inputs)
             -> Result<Table> {
    if (inputs.size() != 1) {
      return Status::InvalidArgument("result helper expects 1 input");
    }
    const Table& in = inputs[0];
    Table result(result_schema);
    for (const Row& r : in.rows()) {
      Row row;
      row.reserve(indices.size());
      for (size_t i : indices) {
        if (i >= r.size()) {
          return Status::Internal("result projection index out of range");
        }
        row.push_back(r[i]);
      }
      FEDFLOW_RETURN_NOT_OK(result.AppendRow(std::move(row)));
    }
    return result;
  };
}

/// Builds the result-assembly helper for scalar outputs taken from several
/// activities: each input is a single-column single-row table, concatenated
/// into one row of the output schema.
wfms::HelperFn MakeConcatResultHelper(Schema result_schema) {
  return [result_schema = std::move(result_schema)](
             const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.size() != result_schema.num_columns()) {
      return Status::InvalidArgument("result helper arity mismatch");
    }
    Row row;
    for (const Table& in : inputs) {
      if (in.num_rows() != 1 || in.schema().num_columns() != 1) {
        return Status::ExecutionError(
            "scalar result assembly requires 1x1 inputs");
      }
      row.push_back(in.rows()[0][0]);
    }
    Table result(result_schema);
    FEDFLOW_RETURN_NOT_OK(result.AppendRow(std::move(row)));
    return result;
  };
}

constexpr char kResultActivity[] = "RESULT";

/// Result schema of the call node `node` (compile-time resolved).
Result<const Schema*> NodeSchema(const FedPlan& plan,
                                 const std::string& node) {
  FEDFLOW_ASSIGN_OR_RETURN(size_t idx, plan.CallIndex(node));
  return &plan.calls[idx].result_schema;
}

/// Lowers the plan's call graph (ignoring the loop) into a process named
/// `name` with input parameters `params`. Factored out so the loop case can
/// lower its body under "<plan>_body" with the extra ITERATION parameter —
/// helper names derive from `name`, preserving the legacy naming.
Result<LoweredProcess> LowerGraph(const FedPlan& plan, const std::string& name,
                                  const std::vector<Column>& params) {
  LoweredProcess compiled;
  ProcessDefinition& def = compiled.process;
  def.name = name;
  def.input_params = params;

  // One program activity per call node; control connectors follow the data
  // dependencies (the paper's precedence graph).
  std::set<std::string> edges;  // dedupe "from->to"
  auto connect = [&](const std::string& from, const std::string& to) {
    std::string key = ToUpper(from) + "->" + ToUpper(to);
    if (edges.insert(key).second) {
      def.connectors.push_back(wfms::ControlConnector{from, to, nullptr});
    }
  };

  for (const PlanCall& call : plan.calls) {
    ActivityDef a;
    a.name = call.id;
    a.kind = ActivityKind::kProgram;
    a.system = call.system;
    a.function = call.function;
    for (const SpecArg& arg : call.args) {
      a.inputs.push_back(SpecArgToInput(arg));
      if (arg.kind == SpecArg::Kind::kNodeColumn) {
        connect(arg.node, call.id);
      }
    }
    def.activities.push_back(std::move(a));
  }

  // Sequencing edges (sequential-baseline plans): extra connectors carrying
  // no data, serializing the engine's schedule beyond the parameter flow.
  for (const auto& [from, to] : plan.sequencing_edges) {
    connect(plan.calls[from].id, plan.calls[to].id);
  }

  // Joins: chained join-helper activities (the independent case's result
  // composition). Join k combines the running result with join k's right
  // node. Column positions are tracked explicitly because column names may
  // repeat across the joined nodes.
  std::string joined_source;  // activity providing the joined table so far
  std::vector<std::pair<std::string, std::string>> joined_cols;
  auto append_node_cols = [&](const std::string& node) -> Status {
    FEDFLOW_ASSIGN_OR_RETURN(const Schema* schema, NodeSchema(plan, node));
    for (const Column& c : schema->columns()) {
      joined_cols.emplace_back(node, c.name);
    }
    return Status::OK();
  };
  auto joined_index = [&](const std::string& node,
                          const std::string& column) -> Result<size_t> {
    for (size_t i = 0; i < joined_cols.size(); ++i) {
      if (EqualsIgnoreCase(joined_cols[i].first, node) &&
          EqualsIgnoreCase(joined_cols[i].second, column)) {
        return i;
      }
    }
    return Status::InvalidArgument("column " + node + "." + column +
                                   " is not part of the join result of plan " +
                                   plan.name);
  };
  for (size_t j = 0; j < plan.joins.size(); ++j) {
    const SpecJoin& join = plan.joins[j];
    if (joined_source.empty()) {
      FEDFLOW_RETURN_NOT_OK(append_node_cols(join.left_node));
    }
    FEDFLOW_ASSIGN_OR_RETURN(size_t left_idx,
                             joined_index(join.left_node, join.left_column));
    FEDFLOW_ASSIGN_OR_RETURN(const Schema* right_schema,
                             NodeSchema(plan, join.right_node));
    FEDFLOW_ASSIGN_OR_RETURN(size_t right_idx,
                             right_schema->FindColumn(join.right_column));

    std::string helper_name = name + "_join" + std::to_string(j + 1);
    compiled.helpers.emplace_back(helper_name,
                                  MakeIndexJoinHelper(left_idx, right_idx));
    ActivityDef a;
    a.name = "JOIN" + std::to_string(j + 1);
    a.kind = ActivityKind::kHelper;
    a.helper = helper_name;
    const std::string left =
        joined_source.empty() ? join.left_node : joined_source;
    a.inputs.push_back(InputSource::FromActivity(left, ""));
    a.inputs.push_back(InputSource::FromActivity(join.right_node, ""));
    connect(left, a.name);
    connect(join.right_node, a.name);
    joined_source = a.name;
    FEDFLOW_RETURN_NOT_OK(append_node_cols(join.right_node));
    def.activities.push_back(std::move(a));
  }

  // Result assembly.
  std::set<std::string> output_nodes;
  for (const SpecOutput& out : plan.outputs) {
    output_nodes.insert(ToUpper(out.node));
  }
  ActivityDef result_activity;
  result_activity.name = kResultActivity;
  result_activity.kind = ActivityKind::kHelper;
  std::string result_helper = name + "_result";
  result_activity.helper = result_helper;
  if (!joined_source.empty()) {
    // Project the joined table by tracked column positions.
    std::vector<size_t> indices;
    for (const SpecOutput& out : plan.outputs) {
      FEDFLOW_ASSIGN_OR_RETURN(size_t idx,
                               joined_index(out.node, out.column));
      indices.push_back(idx);
    }
    compiled.helpers.emplace_back(
        result_helper,
        MakeIndexProjectHelper(std::move(indices), plan.result_schema));
    result_activity.inputs.push_back(
        InputSource::FromActivity(joined_source, ""));
    connect(joined_source, result_activity.name);
  } else if (output_nodes.size() == 1) {
    // All outputs come from one call: project its (possibly multi-row) table.
    compiled.helpers.emplace_back(
        result_helper,
        MakeSingleTableResultHelper(plan.outputs, plan.result_schema));
    result_activity.inputs.push_back(
        InputSource::FromActivity(plan.outputs[0].node, ""));
    connect(plan.outputs[0].node, result_activity.name);
  } else {
    // Scalar outputs from several parallel activities: concatenate.
    compiled.helpers.emplace_back(result_helper,
                                  MakeConcatResultHelper(plan.result_schema));
    for (const SpecOutput& out : plan.outputs) {
      result_activity.inputs.push_back(
          InputSource::FromActivity(out.node, out.column));
      connect(out.node, result_activity.name);
    }
  }
  def.activities.push_back(std::move(result_activity));
  def.output_activity = kResultActivity;

  FEDFLOW_RETURN_NOT_OK(wfms::ValidateProcess(def));
  return compiled;
}

}  // namespace

Result<LoweredProcess> LowerToProcess(const FedPlan& plan) {
  // For looping plans, lower the body graph as a sub-process and wrap it in
  // a block activity with a do-until exit condition.
  if (plan.loop.enabled) {
    std::vector<Column> body_params = plan.params;
    body_params.push_back(Column{"ITERATION", DataType::kInt});
    FEDFLOW_ASSIGN_OR_RETURN(
        LoweredProcess body,
        LowerGraph(plan, plan.name + "_body", body_params));

    LoweredProcess compiled;
    compiled.helpers = std::move(body.helpers);
    ProcessDefinition& def = compiled.process;
    def.name = plan.name;
    def.input_params = plan.params;
    ActivityDef block;
    block.name = "LOOP";
    block.kind = ActivityKind::kBlock;
    block.sub = std::make_shared<ProcessDefinition>(std::move(body.process));
    for (const Column& p : plan.params) {
      block.inputs.push_back(InputSource::FromProcessInput(p.name));
    }
    block.inputs.push_back(InputSource::Constant(Value::Int(0)));  // ITERATION
    FEDFLOW_ASSIGN_OR_RETURN(
        block.exit_condition,
        sql::ParseExpression("ITERATION >= " + plan.loop.count_param));
    block.accumulate = plan.loop.union_all ? BlockAccumulate::kUnionAll
                                           : BlockAccumulate::kLastIteration;
    def.activities.push_back(std::move(block));
    def.output_activity = "LOOP";
    FEDFLOW_RETURN_NOT_OK(wfms::ValidateProcess(def));
    return compiled;
  }

  return LowerGraph(plan, plan.name, plan.params);
}

}  // namespace fedflow::plan
