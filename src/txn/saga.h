// The saga transaction subsystem: write-path federated functions with
// compensation-based backward recovery and exactly-once forward semantics.
//
// A federated function becomes a *saga* when its spec declares mutating call
// nodes paired with compensation functions (federation::SpecCompensation).
// Execution then follows the classic saga protocol adapted to the paper's
// architectures:
//
//   * Forward path, exactly-once: every mutating local call carries an
//     idempotency key (saga id + node id) marshalled with the RMI request.
//     The store-side dedup ledger records the acknowledgement of the first
//     successful apply; a retried attempt (WfMS checkpoint resume or
//     restart-everything I-UDTF) that presents a known key replays the
//     recorded acknowledgement at txn_dedup_us instead of re-applying.
//   * Durable saga log (virtual durability): BEGIN / APPLY / DEDUP /
//     COMPENSATE / COMMIT / ABORT records survive the failed flow, mirroring
//     what the paper credits the WfMS with keeping on persistent storage.
//     Forward recovery itself rides the WfMS engine's InstanceCheckpoint.
//   * Backward recovery: when a step exhausts its retry budget or deadline,
//     the coordinator runs the applied steps' compensations in reverse apply
//     order. Compensations are themselves mutating local calls, so each one
//     bumps the store's data_version — the result cache can never serve
//     state derived from an aborted saga.
#ifndef FEDFLOW_TXN_SAGA_H_
#define FEDFLOW_TXN_SAGA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "appsys/registry.h"
#include "common/result.h"
#include "common/table.h"
#include "common/vclock.h"
#include "federation/spec.h"
#include "obs/metrics.h"
#include "sim/latency.h"

namespace fedflow::txn {

/// One registered mutating step of a saga-enabled federated function.
struct SagaStep {
  std::string node;          ///< spec/plan call id (e.g. "RS")
  std::string system;        ///< application system of the write
  std::string function;      ///< mutating local function (e.g. ReserveStock)
  std::string compensation;  ///< undo function on the same system
  /// Undo arguments; resolved when the write applies, against the federated
  /// parameters, captured node outputs, and the write's own output.
  std::vector<federation::SpecArg> undo_args;
};

/// Registration-time saga view of one federated function. Step resolution at
/// the couplings is by (system, function) — FF454 guarantees uniqueness —
/// so no engine or RMI API had to grow a node-id channel.
struct SagaSpecInfo {
  std::string function;        ///< federated function name
  std::vector<Column> params;  ///< federated parameters, declaration order
  std::vector<SagaStep> writes;  ///< in dependency (execution) order
  /// Upper "SYSTEM.FUNCTION" -> index into `writes`.
  std::map<std::string, size_t> write_index;
  /// Upper "SYSTEM.FUNCTION" -> upper node id, for non-write nodes whose
  /// output feeds some compensation argument (capture sources).
  std::map<std::string, std::string> captures;
};

/// One record of the (virtually) durable saga log.
struct SagaLogRecord {
  enum class Kind { kBegin, kApply, kDedup, kCompensate, kCommit, kAbort };
  int64_t seq = 0;      ///< global monotonic sequence (durability order)
  int64_t saga_id = 0;
  Kind kind = Kind::kBegin;
  std::string node;     ///< step node for apply/dedup/compensate; else empty
};

/// Outcome of one finished saga, queryable per federated function.
struct SagaOutcome {
  std::string function;
  int64_t saga_id = 0;
  bool aborted = false;
  int64_t steps_applied = 0;       ///< writes applied (each exactly once)
  int64_t dedup_hits = 0;          ///< retried writes served from the ledger
  int64_t compensations_run = 0;   ///< backward-recovery undo calls
  int64_t compensation_failures = 0;
  /// Virtual time the failed forward attempt(s) burned before the abort.
  VDuration failed_elapsed_us = 0;
  /// Modeled virtual-time cost of backward recovery: per compensation the
  /// RMI legs, the undo function's own work, and txn_compensation_us of
  /// coordinator overhead.
  VDuration abort_cost_us = 0;
  std::string error;  ///< the status message that triggered the abort
};

class SagaRuntime;

/// Per-invocation saga execution state, created by SagaRuntime::Begin and
/// threaded to the couplings via sim::FlowState::saga. Thread-safe: under
/// the WfMS architecture, activities run on the engine's thread pool.
class SagaExec {
 public:
  /// The write step registered for (system, function); nullptr when the call
  /// is not a saga write (then it executes with plain read semantics).
  const SagaStep* WriteStepFor(const std::string& system,
                               const std::string& function) const;

  /// The capture-source node id for (system, function); empty when the
  /// call's output feeds no compensation argument.
  std::string CaptureNodeFor(const std::string& system,
                             const std::string& function) const;

  /// The idempotency key marshalled with `step`'s RMI request: stable across
  /// retries of the same invocation, unique across invocations.
  std::string IdempotencyKey(const SagaStep& step) const;

  /// The recorded acknowledgement of an already-applied write, or nullopt on
  /// the first attempt. A hit means the previous attempt applied the effect
  /// but its response was lost — the caller must NOT re-apply.
  std::optional<Table> DedupLookup(const SagaStep& step);

  /// Records a freshly applied write: the acknowledgement enters the dedup
  /// ledger under the idempotency key, an APPLY record enters the saga log,
  /// and the undo arguments are resolved and snapshotted for a later abort.
  /// Internal error when an undo argument cannot be resolved (a capture
  /// source did not run or returned no row) — registration-time FF455
  /// ordering checks make that unreachable for gated specs.
  Status RecordApplied(const SagaStep& step, const Table& output);

  /// Records a capture source's output for later undo-arg resolution.
  void RecordOutput(const std::string& node, const Table& output);

  int64_t saga_id() const { return saga_id_; }
  const SagaSpecInfo& info() const { return *info_; }
  int64_t steps_applied() const;
  int64_t dedup_hits() const;

 private:
  friend class SagaRuntime;

  struct AppliedStep {
    std::string node;
    std::string system;
    std::string compensation;
    std::vector<Value> undo_args;  ///< resolved at apply time
  };

  SagaExec(const SagaSpecInfo* info, SagaRuntime* runtime, int64_t saga_id,
           const std::vector<Value>& args);

  Result<Value> ResolveUndoArg(const federation::SpecArg& arg,
                               const SagaStep& step, const Table& output) const;

  const SagaSpecInfo* info_;
  SagaRuntime* runtime_;
  int64_t saga_id_;
  std::map<std::string, Value> params_;  ///< upper param name -> bound value

  mutable std::mutex mu_;
  std::map<std::string, Table> node_outputs_;  ///< upper node id -> output
  std::vector<AppliedStep> applied_;           ///< in apply order
  int64_t dedup_hits_ = 0;
  bool finished_ = false;
};

/// The saga coordinator of one integration server: registered saga specs,
/// the per-store dedup ledger, the durable (virtual-time) saga log, and the
/// backward-recovery path. Thread-safe.
class SagaRuntime {
 public:
  /// Wires the deployment. `systems` must outlive the runtime; `metrics`
  /// (optional) counts saga.begin/commit/abort/dedup/compensation.
  void Configure(const appsys::AppSystemRegistry* systems,
                 sim::LatencyModel model, obs::MetricsRegistry* metrics);

  /// Registers the saga view of `spec`. `order` lists the spec's call
  /// indices in execution (dependency) order, so writes are chained the way
  /// the lowering runs them. No-op (OK) when the spec has no mutating calls.
  Status Register(const federation::FederatedFunctionSpec& spec,
                  const std::vector<size_t>& order);

  /// The saga view of federated function `name`; nullptr for read-only
  /// functions (the common case).
  const SagaSpecInfo* Find(const std::string& name) const;

  /// Starts a saga: assigns the saga id, binds the federated parameters for
  /// undo resolution, writes the BEGIN log record.
  std::unique_ptr<SagaExec> Begin(const SagaSpecInfo& info,
                                  const std::vector<Value>& args);

  /// Commits: drops the saga's ledger entries, writes COMMIT, records the
  /// outcome.
  void Commit(SagaExec& exec);

  /// Backward recovery: runs the applied steps' compensations in reverse
  /// apply order (each a mutating local call, so data versions bump), drops
  /// the saga's ledger entries, writes ABORT, and returns the outcome.
  SagaOutcome Abort(SagaExec& exec, VDuration failed_elapsed_us,
                    const Status& error);

  /// Last finished outcome of federated function `name` (case-insensitive).
  std::optional<SagaOutcome> LastOutcome(const std::string& name) const;

  /// Snapshot of the saga log, in durability order.
  std::vector<SagaLogRecord> LogSnapshot() const;

  /// Entries currently resident in the dedup ledger (all stores).
  int64_t ledger_size() const;

  const sim::LatencyModel& model() const { return model_; }

 private:
  friend class SagaExec;

  void Append(int64_t saga_id, SagaLogRecord::Kind kind,
              const std::string& node);
  std::optional<Table> LedgerLookup(const std::string& store,
                                    const std::string& key);
  void LedgerRecord(const std::string& store, const std::string& key,
                    const Table& ack);
  void LedgerDropSaga(int64_t saga_id);

  const appsys::AppSystemRegistry* systems_ = nullptr;
  sim::LatencyModel model_;
  obs::MetricsRegistry* metrics_ = nullptr;

  mutable std::mutex mu_;
  std::map<std::string, SagaSpecInfo> specs_;  ///< upper fed name -> info
  std::map<std::string, std::map<std::string, Table>> ledger_;  ///< per store
  std::vector<SagaLogRecord> log_;
  std::map<std::string, SagaOutcome> outcomes_;  ///< upper fed name -> last
  int64_t next_saga_id_ = 1;
  int64_t next_log_seq_ = 1;
};

}  // namespace fedflow::txn

#endif  // FEDFLOW_TXN_SAGA_H_
