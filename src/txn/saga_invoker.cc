#include "txn/saga_invoker.h"

#include <utility>

#include "common/codec.h"
#include "obs/trace.h"
#include "wfms/engine.h"

namespace fedflow::txn {

Result<wfms::InvokeResult> SagaInvoker::InvokeWrite(
    const SagaStep& step, const std::string& system,
    const std::string& function, const std::vector<Value>& args) {
  // The idempotency key is marshalled with the activity's input container;
  // its wire cost rides with the call either way.
  const std::string key = exec_->IdempotencyKey(step);
  ByteWriter key_bytes;
  key_bytes.PutString(key);
  const VDuration key_cost = model_->MarshalCost(key_bytes.size());

  // Retry of an already-applied write: the store recognizes the key and
  // replays the recorded acknowledgement. No program launch, no fault window.
  std::optional<Table> recorded = exec_->DedupLookup(step);
  if (recorded.has_value()) {
    wfms::InvokeResult result;
    result.output = std::move(*recorded);
    result.duration = model_->txn_dedup_us + key_cost;
    result.steps.Add(sim::steps::kSagaDedup, result.duration);
    return result;
  }

  FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem * sys, systems_->Get(system));
  FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem::CallResult call,
                           sys->Call(function, args));
  // The write is applied (and the store's data version bumped) from here on:
  // ledger + saga log first, THEN the fault consult — a fault now models the
  // lost acknowledgement, not a lost request.
  FEDFLOW_RETURN_NOT_OK(exec_->RecordApplied(step, call.table));
  sim::FaultInjector::Decision decision;
  if (faults_ != nullptr) decision = faults_->Consult(function);
  if (decision.fault != sim::FaultInjector::Fault::kNone) {
    return Status::Unavailable("saga: response of applied write " + function +
                               " lost in program activity");
  }
  wfms::InvokeResult result;
  result.output = std::move(call.table);
  result.duration = model_->wf_jvm_boot_activity_us + call.cost_us + key_cost +
                    decision.extra_latency_us;
  result.steps.Add(wfms::steps::kProcessActivities, result.duration);
  return result;
}

Result<wfms::InvokeResult> SagaInvoker::Invoke(const std::string& system,
                                               const std::string& function,
                                               const std::vector<Value>& args) {
  const SagaStep* step = exec_->WriteStepFor(system, function);
  if (step != nullptr) return InvokeWrite(*step, system, function, args);
  Result<wfms::InvokeResult> result = inner_->Invoke(system, function, args);
  if (result.ok()) {
    const std::string node = exec_->CaptureNodeFor(system, function);
    if (!node.empty()) exec_->RecordOutput(node, result->output);
  }
  return result;
}

Result<wfms::InvokeResult> SagaInvoker::InvokeTraced(
    const std::string& system, const std::string& function,
    const std::vector<Value>& args, const obs::TraceHandle& trace) {
  const SagaStep* step = exec_->WriteStepFor(system, function);
  if (step == nullptr) {
    Result<wfms::InvokeResult> result =
        inner_->InvokeTraced(system, function, args, trace);
    if (result.ok()) {
      const std::string node = exec_->CaptureNodeFor(system, function);
      if (!node.empty()) exec_->RecordOutput(node, result->output);
    }
    return result;
  }
  if (!trace.active()) return InvokeWrite(*step, system, function, args);
  obs::Tracer* tracer = trace.tracer;
  obs::SpanId span = tracer->StartSpan("local:" + function, obs::Layer::kAppsys,
                                       trace.parent, trace.base_us);
  tracer->SetAttribute(span, "system", system);
  tracer->SetAttribute(span, "saga.step", step->node);
  Result<wfms::InvokeResult> result =
      InvokeWrite(*step, system, function, args);
  if (!result.ok()) {
    tracer->SetStatus(span, result.status());
    tracer->AddEvent(span, trace.base_us, "invoke failed",
                     result.status().message());
    tracer->EndSpan(span, trace.base_us);
    return result;
  }
  tracer->EndSpan(span, trace.base_us + result->duration);
  return result;
}

}  // namespace fedflow::txn
