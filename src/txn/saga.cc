#include "txn/saga.h"

#include <algorithm>
#include <utility>

#include "common/codec.h"
#include "common/strings.h"

namespace fedflow::txn {

namespace {

std::string StepKey(const std::string& system, const std::string& function) {
  return ToUpper(system) + "." + ToUpper(function);
}

}  // namespace

// ---------------------------------------------------------------------------
// SagaExec
// ---------------------------------------------------------------------------

SagaExec::SagaExec(const SagaSpecInfo* info, SagaRuntime* runtime,
                   int64_t saga_id, const std::vector<Value>& args)
    : info_(info), runtime_(runtime), saga_id_(saga_id) {
  const size_t n = std::min(info_->params.size(), args.size());
  for (size_t i = 0; i < n; ++i) {
    params_[ToUpper(info_->params[i].name)] = args[i];
  }
}

const SagaStep* SagaExec::WriteStepFor(const std::string& system,
                                       const std::string& function) const {
  auto it = info_->write_index.find(StepKey(system, function));
  if (it == info_->write_index.end()) return nullptr;
  return &info_->writes[it->second];
}

std::string SagaExec::CaptureNodeFor(const std::string& system,
                                     const std::string& function) const {
  auto it = info_->captures.find(StepKey(system, function));
  return it == info_->captures.end() ? std::string() : it->second;
}

std::string SagaExec::IdempotencyKey(const SagaStep& step) const {
  return "S" + std::to_string(saga_id_) + "#" + ToUpper(step.node);
}

std::optional<Table> SagaExec::DedupLookup(const SagaStep& step) {
  std::optional<Table> hit =
      runtime_->LedgerLookup(ToUpper(step.system), IdempotencyKey(step));
  if (hit.has_value()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++dedup_hits_;
    }
    runtime_->Append(saga_id_, SagaLogRecord::Kind::kDedup, step.node);
    if (runtime_->metrics_ != nullptr) runtime_->metrics_->Inc("saga.dedup");
  }
  return hit;
}

Result<Value> SagaExec::ResolveUndoArg(const federation::SpecArg& arg,
                                       const SagaStep& step,
                                       const Table& output) const {
  using Kind = federation::SpecArg::Kind;
  switch (arg.kind) {
    case Kind::kConstant:
      return arg.constant;
    case Kind::kParam: {
      auto it = params_.find(ToUpper(arg.param));
      if (it == params_.end()) {
        return Status::Internal("saga " + info_->function +
                                ": undo argument references unbound parameter " +
                                arg.param);
      }
      return it->second;
    }
    case Kind::kNodeColumn: {
      const Table* source = nullptr;
      if (EqualsIgnoreCase(arg.node, step.node)) {
        source = &output;
      } else {
        auto it = node_outputs_.find(ToUpper(arg.node));
        if (it != node_outputs_.end()) source = &it->second;
      }
      if (source == nullptr) {
        return Status::Internal("saga " + info_->function + ": undo argument of " +
                                step.node + " needs output of node " + arg.node +
                                ", which has not run");
      }
      FEDFLOW_ASSIGN_OR_RETURN(size_t col,
                               source->schema().FindColumn(arg.column));
      if (source->empty()) {
        return Status::Internal("saga " + info_->function + ": undo argument of " +
                                step.node + " reads column " + arg.column +
                                " of node " + arg.node +
                                ", whose output has no rows");
      }
      return source->At(0, col);
    }
  }
  return Status::Internal("saga: unknown undo argument kind");
}

Status SagaExec::RecordApplied(const SagaStep& step, const Table& output) {
  AppliedStep applied;
  applied.node = step.node;
  applied.system = step.system;
  applied.compensation = step.compensation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const federation::SpecArg& arg : step.undo_args) {
      FEDFLOW_ASSIGN_OR_RETURN(Value v, ResolveUndoArg(arg, step, output));
      applied.undo_args.push_back(std::move(v));
    }
    applied_.push_back(std::move(applied));
    node_outputs_[ToUpper(step.node)] = output;
  }
  runtime_->LedgerRecord(ToUpper(step.system), IdempotencyKey(step), output);
  runtime_->Append(saga_id_, SagaLogRecord::Kind::kApply, step.node);
  if (runtime_->metrics_ != nullptr) runtime_->metrics_->Inc("saga.apply");
  return Status::OK();
}

void SagaExec::RecordOutput(const std::string& node, const Table& output) {
  std::lock_guard<std::mutex> lock(mu_);
  node_outputs_[ToUpper(node)] = output;
}

int64_t SagaExec::steps_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(applied_.size());
}

int64_t SagaExec::dedup_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dedup_hits_;
}

// ---------------------------------------------------------------------------
// SagaRuntime
// ---------------------------------------------------------------------------

void SagaRuntime::Configure(const appsys::AppSystemRegistry* systems,
                            sim::LatencyModel model,
                            obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  systems_ = systems;
  model_ = model;
  metrics_ = metrics;
}

Status SagaRuntime::Register(const federation::FederatedFunctionSpec& spec,
                             const std::vector<size_t>& order) {
  SagaSpecInfo info;
  info.function = spec.name;
  info.params = spec.params;

  // Writes in execution order, so Abort's reverse walk undoes them the way
  // the lowering applied them.
  for (size_t idx : order) {
    if (idx >= spec.calls.size()) {
      return Status::Internal("saga registration: order index out of range");
    }
    const federation::SpecCall& call = spec.calls[idx];
    const federation::SpecCompensation* comp = spec.FindCompensation(call.id);
    if (comp == nullptr) continue;
    SagaStep step;
    step.node = call.id;
    step.system = call.system;
    step.function = call.function;
    step.compensation = comp->function;
    step.undo_args = comp->args;
    const std::string key = StepKey(step.system, step.function);
    if (info.write_index.count(key) > 0) {
      return Status::InvalidArgument(
          "saga " + spec.name + ": ambiguous write step " + key +
          " (two mutating nodes call the same local function)");
    }
    info.write_index[key] = info.writes.size();
    info.writes.push_back(std::move(step));
  }
  if (info.writes.empty()) return Status::OK();  // read-only function

  // Capture sources: non-write nodes whose output feeds some undo argument.
  for (const SagaStep& step : info.writes) {
    for (const federation::SpecArg& arg : step.undo_args) {
      if (arg.kind != federation::SpecArg::Kind::kNodeColumn) continue;
      if (EqualsIgnoreCase(arg.node, step.node)) continue;
      FEDFLOW_ASSIGN_OR_RETURN(const federation::SpecCall* src,
                               spec.FindCall(arg.node));
      const std::string key = StepKey(src->system, src->function);
      if (info.write_index.count(key) > 0) continue;  // write outputs recorded
      auto it = info.captures.find(key);
      if (it != info.captures.end() &&
          !EqualsIgnoreCase(it->second, src->id)) {
        return Status::InvalidArgument(
            "saga " + spec.name + ": ambiguous capture source " + key +
            " (two nodes call the same local function)");
      }
      info.captures[key] = ToUpper(src->id);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  specs_[ToUpper(spec.name)] = std::move(info);
  return Status::OK();
}

const SagaSpecInfo* SagaRuntime::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = specs_.find(ToUpper(name));
  return it == specs_.end() ? nullptr : &it->second;
}

std::unique_ptr<SagaExec> SagaRuntime::Begin(const SagaSpecInfo& info,
                                             const std::vector<Value>& args) {
  int64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_saga_id_++;
    log_.push_back(SagaLogRecord{next_log_seq_++, id,
                                 SagaLogRecord::Kind::kBegin, ""});
  }
  if (metrics_ != nullptr) metrics_->Inc("saga.begin");
  return std::unique_ptr<SagaExec>(new SagaExec(&info, this, id, args));
}

void SagaRuntime::Commit(SagaExec& exec) {
  SagaOutcome outcome;
  outcome.function = exec.info().function;
  outcome.saga_id = exec.saga_id();
  outcome.aborted = false;
  outcome.steps_applied = exec.steps_applied();
  outcome.dedup_hits = exec.dedup_hits();
  LedgerDropSaga(exec.saga_id());
  Append(exec.saga_id(), SagaLogRecord::Kind::kCommit, "");
  {
    std::lock_guard<std::mutex> lock(mu_);
    outcomes_[ToUpper(outcome.function)] = outcome;
  }
  {
    std::lock_guard<std::mutex> lock(exec.mu_);
    exec.finished_ = true;
  }
  if (metrics_ != nullptr) metrics_->Inc("saga.commit");
}

SagaOutcome SagaRuntime::Abort(SagaExec& exec, VDuration failed_elapsed_us,
                               const Status& error) {
  SagaOutcome outcome;
  outcome.function = exec.info().function;
  outcome.saga_id = exec.saga_id();
  outcome.aborted = true;
  outcome.steps_applied = exec.steps_applied();
  outcome.dedup_hits = exec.dedup_hits();
  outcome.failed_elapsed_us = failed_elapsed_us;
  outcome.error = error.ToString();

  // Backward recovery: undo the applied writes in reverse apply order. Each
  // compensation is a mutating local call, so the store's data version bumps
  // and no result-cache entry derived from the aborted state stays servable.
  std::vector<SagaExec::AppliedStep> applied;
  {
    std::lock_guard<std::mutex> lock(exec.mu_);
    applied = exec.applied_;
    exec.finished_ = true;
  }
  for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
    Append(exec.saga_id(), SagaLogRecord::Kind::kCompensate, it->node);
    if (metrics_ != nullptr) metrics_->Inc("saga.compensation");
    Result<appsys::AppSystem*> sys =
        systems_ == nullptr
            ? Result<appsys::AppSystem*>(
                  Status::Internal("saga runtime not configured"))
            : systems_->Get(it->system);
    if (!sys.ok()) {
      ++outcome.compensation_failures;
      continue;
    }
    ByteWriter request;
    request.PutRow(it->undo_args);
    Result<appsys::AppSystem::CallResult> call =
        (*sys)->Call(it->compensation, it->undo_args);
    if (!call.ok()) {
      ++outcome.compensation_failures;
      continue;
    }
    ++outcome.compensations_run;
    outcome.abort_cost_us += model_.rmi_call_base_us +
                             model_.MarshalCost(request.size()) +
                             call->cost_us + model_.rmi_return_base_us +
                             model_.txn_compensation_us;
  }

  LedgerDropSaga(exec.saga_id());
  Append(exec.saga_id(), SagaLogRecord::Kind::kAbort, "");
  {
    std::lock_guard<std::mutex> lock(mu_);
    outcomes_[ToUpper(outcome.function)] = outcome;
  }
  if (metrics_ != nullptr) metrics_->Inc("saga.abort");
  return outcome;
}

std::optional<SagaOutcome> SagaRuntime::LastOutcome(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = outcomes_.find(ToUpper(name));
  if (it == outcomes_.end()) return std::nullopt;
  return it->second;
}

std::vector<SagaLogRecord> SagaRuntime::LogSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

int64_t SagaRuntime::ledger_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const auto& [store, entries] : ledger_) {
    n += static_cast<int64_t>(entries.size());
  }
  return n;
}

void SagaRuntime::Append(int64_t saga_id, SagaLogRecord::Kind kind,
                         const std::string& node) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.push_back(SagaLogRecord{next_log_seq_++, saga_id, kind, ToUpper(node)});
}

std::optional<Table> SagaRuntime::LedgerLookup(const std::string& store,
                                               const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = ledger_.find(store);
  if (sit == ledger_.end()) return std::nullopt;
  auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return std::nullopt;
  return kit->second;
}

void SagaRuntime::LedgerRecord(const std::string& store, const std::string& key,
                               const Table& ack) {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_[store][key] = ack;
}

void SagaRuntime::LedgerDropSaga(int64_t saga_id) {
  const std::string prefix = "S" + std::to_string(saga_id) + "#";
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [store, entries] : ledger_) {
    for (auto it = entries.begin(); it != entries.end();) {
      if (StartsWith(it->first, prefix)) {
        it = entries.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace fedflow::txn
