// Saga-aware ProgramInvoker: the write-path interception for the WfMS
// coupling. Wraps the coupling's regular invoker; read activities pass
// through untouched, mutating saga steps get exactly-once semantics:
//
//   * The idempotency key travels with the activity's input container
//     (its marshalling cost is charged with the call).
//   * A duplicate key is served from the store's dedup ledger at
//     txn_dedup_us — the effect is NOT re-applied, and no fault is consulted
//     (the ledger answers before the unreliable program launch).
//   * A first apply runs the local function, records the acknowledgement in
//     the ledger, and only THEN consults the fault injector: a fault at that
//     point models the apply-then-crash window — the effect landed, the
//     response was lost, and only the ledger makes the retry safe.
#ifndef FEDFLOW_TXN_SAGA_INVOKER_H_
#define FEDFLOW_TXN_SAGA_INVOKER_H_

#include <string>
#include <vector>

#include "appsys/registry.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "txn/saga.h"
#include "wfms/program.h"

namespace fedflow::txn {

class SagaInvoker : public wfms::ProgramInvoker {
 public:
  /// `inner` handles non-write activities (and stays the owner of their
  /// fault semantics); `faults` may be null. All pointers are borrowed and
  /// must outlive the invoker (it lives for one engine run).
  SagaInvoker(wfms::ProgramInvoker* inner,
              const appsys::AppSystemRegistry* systems,
              const sim::LatencyModel* model, sim::FaultInjector* faults,
              SagaExec* exec)
      : inner_(inner),
        systems_(systems),
        model_(model),
        faults_(faults),
        exec_(exec) {}

  Result<wfms::InvokeResult> Invoke(const std::string& system,
                                    const std::string& function,
                                    const std::vector<Value>& args) override;

  Result<wfms::InvokeResult> InvokeTraced(
      const std::string& system, const std::string& function,
      const std::vector<Value>& args, const obs::TraceHandle& trace) override;

 private:
  Result<wfms::InvokeResult> InvokeWrite(const SagaStep& step,
                                         const std::string& system,
                                         const std::string& function,
                                         const std::vector<Value>& args);

  wfms::ProgramInvoker* inner_;
  const appsys::AppSystemRegistry* systems_;
  const sim::LatencyModel* model_;
  sim::FaultInjector* faults_;
  SagaExec* exec_;
};

}  // namespace fedflow::txn

#endif  // FEDFLOW_TXN_SAGA_INVOKER_H_
