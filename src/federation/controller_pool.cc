#include "federation/controller_pool.h"

#include "cache/result_cache.h"

namespace fedflow::federation {

namespace {

sim::WarmPoolOptions ToWarmPoolOptions(const ControllerPoolOptions& options) {
  sim::WarmPoolOptions out;
  out.max_size = options.max_size == 0 ? 1 : options.max_size;
  out.warm_target = options.warm_target;
  out.per_tenant_quota = options.per_tenant_quota;
  out.pin_first_slot = true;
  return out;
}

}  // namespace

ControllerPool::ControllerPool(const appsys::AppSystemRegistry* systems,
                               const sim::LatencyModel* model,
                               ControllerPoolOptions options)
    : systems_(systems),
      model_(model),
      pool_("controller", ToWarmPoolOptions(options)) {
  const uint64_t pinned = pool_.pinned_slot();
  auto controller = std::make_unique<Controller>(systems_, model_);
  primary_ = controller.get();
  primary_state_ = pool_.ledger(pinned);
  controllers_.emplace(pinned, std::move(controller));
}

ControllerPool::Lease& ControllerPool::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    slot_ = other.slot_;
    controller_ = other.controller_;
    ledger_ = other.ledger_;
    warmth_ = other.warmth_;
    other.pool_ = nullptr;
    other.slot_ = 0;
    other.controller_ = nullptr;
    other.ledger_ = nullptr;
  }
  return *this;
}

void ControllerPool::Lease::Release() {
  if (pool_ != nullptr) {
    pool_->ReturnSlot(slot_);
    pool_ = nullptr;
    slot_ = 0;
    controller_ = nullptr;
    ledger_ = nullptr;
  }
}

Result<ControllerPool::Lease> ControllerPool::Checkout(
    const std::string& tenant, const std::string& function) {
  FEDFLOW_ASSIGN_OR_RETURN(sim::WarmPool::Checkout checkout,
                           pool_.Acquire(tenant, function));
  Lease lease;
  lease.pool_ = this;
  lease.slot_ = checkout.slot;
  lease.ledger_ = checkout.ledger;
  lease.warmth_ = checkout.warmth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = controllers_.find(checkout.slot);
    if (it == controllers_.end()) {
      it = controllers_
               .emplace(checkout.slot,
                        std::make_unique<Controller>(systems_, model_))
               .first;
      if (started_) it->second->Start();
    }
    lease.controller_ = it->second.get();
  }
  return lease;
}

void ControllerPool::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  started_ = true;
  for (auto& [slot, controller] : controllers_) controller->Start();
}

void ControllerPool::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  for (auto& [slot, controller] : controllers_) controller->Stop();
}

Status ControllerPool::Reboot() {
  if (pool_.in_use() > 0) {
    return Status::ExecutionError(
        "controller pool reboot with " + std::to_string(pool_.in_use()) +
        " leases outstanding");
  }
  // Evicting idle slots and booting the pinned ledger mirrors the legacy
  // Stop/Start + SystemState::Boot sequence exactly when the pool holds only
  // the pinned slot.
  std::vector<uint64_t> evicted = pool_.Reboot();
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t slot : evicted) controllers_.erase(slot);
  // Every warmth ledger just went cold; a memoized result served at hot cost
  // from a rebooted controller would undo the experiment the reboot sets up.
  if (result_cache_ != nullptr) result_cache_->InvalidateAll();
  primary_->Stop();
  if (started_) primary_->Start();
  return Status::OK();
}

void ControllerPool::AttachMetrics(obs::MetricsRegistry* metrics) {
  pool_.AttachMetrics(metrics);
}

void ControllerPool::AttachResultCache(cache::ResultCache* result_cache) {
  std::lock_guard<std::mutex> lock(mu_);
  result_cache_ = result_cache;
}

void ControllerPool::set_options(const ControllerPoolOptions& options) {
  pool_.set_options(ToWarmPoolOptions(options));
}

ControllerPoolOptions ControllerPool::options() const {
  sim::WarmPoolOptions wp = pool_.options();
  ControllerPoolOptions out;
  out.max_size = wp.max_size;
  out.warm_target = wp.warm_target;
  out.per_tenant_quota = wp.per_tenant_quota;
  return out;
}

void ControllerPool::ReturnSlot(uint64_t slot) {
  std::vector<uint64_t> evicted = pool_.Release(slot);
  if (!evicted.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t id : evicted) controllers_.erase(id);
    // The evicted slots' warmth ledgers are gone; flush the results priced
    // against them.
    if (result_cache_ != nullptr) result_cache_->InvalidateSlots(evicted);
  }
}

}  // namespace fedflow::federation
