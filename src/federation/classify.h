// Mapping-complexity classification (paper §3): trivial, simple, independent,
// dependent (linear / 1:n / n:1 / cyclic), general — and the support matrix
// comparing what the UDTF and WfMS couplings can express.
#ifndef FEDFLOW_FEDERATION_CLASSIFY_H_
#define FEDFLOW_FEDERATION_CLASSIFY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/spec.h"

namespace fedflow::federation {

/// The paper's heterogeneity cases, by increasing complexity.
enum class MappingCase {
  kTrivial,
  kSimple,
  kIndependent,
  kDependentLinear,
  kDependent1N,
  kDependentN1,
  kDependentCyclic,
  kGeneral,
};

/// Stable display name ("dependent: (1:n)", ...).
const char* MappingCaseName(MappingCase c);

/// Classifies a single federated function's mapping.
Result<MappingCase> ClassifySpec(const FederatedFunctionSpec& spec);

/// Classifies a set of federated functions mapped together: kGeneral when
/// they share local functions (the paper's general case); otherwise the most
/// complex individual case.
Result<MappingCase> ClassifySet(
    const std::vector<FederatedFunctionSpec>& specs);

/// True when the enhanced SQL UDTF architecture can express this case.
bool UdtfSupports(MappingCase c);

/// True when the WfMS architecture can express this case (all of them).
bool WfmsSupports(MappingCase c);

/// One row of the paper's §3 summary table.
struct SupportEntry {
  MappingCase mapping_case;
  bool udtf_supported;
  bool wfms_supported;
  std::string udtf_mechanism;
  std::string wfms_mechanism;
};

/// The full support matrix in case order.
std::vector<SupportEntry> SupportMatrix();

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_CLASSIFY_H_
