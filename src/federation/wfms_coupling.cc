#include "federation/wfms_coupling.h"

#include "common/codec.h"
#include "common/strings.h"
#include "federation/binding.h"
#include "obs/trace.h"
#include "plan/lower_wfms.h"
#include "sim/flow_state.h"
#include "sim/rmi.h"
#include "txn/saga_invoker.h"

namespace fedflow::federation {

Result<wfms::InvokeResult> WfmsProgramInvoker::Invoke(
    const std::string& system, const std::string& function,
    const std::vector<Value>& args) {
  // Local calls bypass RMI under this architecture, so injected faults hit
  // here: a faulted attempt fails when the activity's program is launched.
  sim::FaultInjector::Decision decision;
  if (faults_ != nullptr) decision = faults_->Consult(function);
  if (decision.fault == sim::FaultInjector::Fault::kTransient) {
    return Status::Unavailable("wfms: transient failure in program activity " +
                               function);
  }
  if (decision.fault == sim::FaultInjector::Fault::kPermanent) {
    return Status::Unavailable("wfms: " + function +
                               " is down (permanent outage)");
  }
  FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem * sys, systems_->Get(system));
  FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem::CallResult call,
                           sys->Call(function, args));
  wfms::InvokeResult result;
  result.output = std::move(call.table);
  // The paper's dominant WfMS cost: each activity starts a fresh Java
  // program (JVM boot) before doing its actual work.
  result.duration = model_->wf_jvm_boot_activity_us + call.cost_us +
                    decision.extra_latency_us;
  result.steps.Add(wfms::steps::kProcessActivities, result.duration);
  return result;
}

Result<wfms::InvokeResult> WfmsProgramInvoker::InvokeTraced(
    const std::string& system, const std::string& function,
    const std::vector<Value>& args, const obs::TraceHandle& trace) {
  if (!trace.active()) return Invoke(system, function, args);
  obs::Tracer* tracer = trace.tracer;
  obs::SpanId span = tracer->StartSpan("local:" + function, obs::Layer::kAppsys,
                                       trace.parent, trace.base_us);
  tracer->SetAttribute(span, "system", system);
  Result<wfms::InvokeResult> result = Invoke(system, function, args);
  if (!result.ok()) {
    tracer->SetStatus(span, result.status());
    tracer->AddEvent(span, trace.base_us, "invoke failed",
                     result.status().message());
    tracer->EndSpan(span, trace.base_us);
    return result;
  }
  tracer->EndSpan(span, trace.base_us + result->duration);
  return result;
}

const wfms::InstanceCheckpoint* WfmsWrapper::checkpoint(
    const std::string& function) const {
  std::lock_guard<std::mutex> lock(recovery_mu_);
  auto it = recovery_.find(ToUpper(function));
  if (it == recovery_.end() || !it->second.ckpt.valid) return nullptr;
  return &it->second.ckpt;
}

void WfmsWrapper::ClearCheckpoint(const std::string& function) {
  std::lock_guard<std::mutex> lock(recovery_mu_);
  recovery_.erase(ToUpper(function));
}

WfmsWrapper::PendingRecovery WfmsWrapper::TakeRecovery(
    const std::string& function, const std::vector<Value>& args) {
  ByteWriter writer;
  writer.PutRow(args);
  std::lock_guard<std::mutex> lock(recovery_mu_);
  PendingRecovery rec;
  auto it = recovery_.find(ToUpper(function));
  if (it != recovery_.end()) {
    rec = std::move(it->second);
    recovery_.erase(it);
  }
  // A checkpoint only carries across attempts of the same call; different
  // arguments mean a new statement, so a stale instance is discarded.
  if (rec.ckpt.valid && rec.args_key != writer.buffer()) {
    rec = PendingRecovery{};
  }
  rec.args_key = writer.buffer();
  return rec;
}

void WfmsWrapper::StoreRecovery(const std::string& function,
                                PendingRecovery rec) {
  std::lock_guard<std::mutex> lock(recovery_mu_);
  recovery_[ToUpper(function)] = std::move(rec);
}

Controller* WfmsWrapper::FlowController(const fdbs::ExecContext& ctx) const {
  if (ctx.flow != nullptr && ctx.flow->controller != nullptr) {
    return ctx.flow->controller;
  }
  return controller_;
}

sim::SystemState* WfmsWrapper::FlowLedger(const fdbs::ExecContext& ctx) const {
  if (ctx.flow != nullptr && ctx.flow->warmth != nullptr) {
    return ctx.flow->warmth;
  }
  return state_;
}

Result<Table> WfmsWrapper::Execute(const std::string& function,
                                   const std::vector<Value>& args,
                                   fdbs::ExecContext& ctx) {
  SimClock* clock = ctx.clock;
  sim::SystemState* state = FlowLedger(ctx);
  if (!FlowController(ctx)->started()) {
    return Status::ExecutionError(
        "controller not started; boot the integration environment first");
  }
  obs::SpanScope span(ctx.trace, "wrapper:" + function, obs::Layer::kCoupling);
  span.SetAttribute("architecture", "wfms");
  // Warm-up surcharges (cold/warm/hot experiment).
  if (clock != nullptr && state != nullptr) {
    switch (state->QueryWarmth(function)) {
      case sim::SystemState::Warmth::kCold:
        clock->Charge(sim::steps::kWarmup, model_->cold_infrastructure_us +
                                               model_->first_run_function_us);
        break;
      case sim::SystemState::Warmth::kWarm:
        clock->Charge(sim::steps::kWarmup, model_->first_run_function_us);
        break;
      case sim::SystemState::Warmth::kHot:
        break;
    }
  }
  if (clock != nullptr) {
    clock->Charge(sim::steps::kWfStartUdtf, model_->wf_udtf_start_us);
    clock->Charge(sim::steps::kWfProcessUdtf,
                  model_->wf_udtf_process_us + model_->wf_controller_process_us);
  }

  // One RMI call ships the request to the workflow engine; the process runs
  // behind it, recoverably: the engine checkpoints completed activities into
  // the wrapper's per-function recovery slot, so a retried Execute resumes
  // the failed instance from the last completed activity.
  PendingRecovery rec = TakeRecovery(function, args);
  const bool resuming = rec.ckpt.valid;
  if (resuming) span.SetAttribute("resumed", "true");
  sim::RmiChannel rmi(model_, faults_);
  sim::RmiChannel::CallCosts costs;
  wfms::ProcessResult process_result;
  bool engine_ran = false;
  obs::TraceSession* trace = ctx.trace;
  // Write-path federated function: route the engine's program activities
  // through the saga invoker, which dedups applied writes by idempotency key
  // and moves the fault consultation after the apply (a lost-response fault
  // must leave the write committed — that is what the ledger compensates).
  txn::SagaExec* saga = ctx.flow != nullptr ? ctx.flow->saga : nullptr;
  txn::SagaInvoker saga_invoker(
      &invoker_, systems_, model_,
      ctx.flow != nullptr && ctx.flow->faults != nullptr ? ctx.flow->faults
                                                         : faults_,
      saga);
  wfms::ProgramInvoker* invoker =
      saga != nullptr ? static_cast<wfms::ProgramInvoker*>(&saga_invoker)
                      : &invoker_;
  auto handler = [this, invoker, &process_result, &rec, &engine_ran, trace,
                  clock](const std::string& fn,
                         const std::vector<Value>& remote_args)
      -> Result<Table> {
    engine_ran = true;
    // The serve-side RMI span is current here; the process span hangs under
    // it, with the engine's instance-relative token times mapped onto the
    // session timeline from the current clock reading.
    obs::TraceHandle engine_trace;
    if (trace != nullptr && trace->active()) {
      engine_trace = obs::TraceHandle{trace->tracer(), trace->current(),
                                      clock != nullptr ? clock->now() : 0};
    }
    Result<wfms::ProcessResult> run = engine_->RunRecoverable(
        fn, remote_args, invoker, &rec.ckpt, engine_trace);
    if (!run.ok()) return run.status();
    process_result = std::move(*run);
    return process_result.output;
  };
  Result<Table> invoked = rmi.Invoke(function, args, handler, &costs, trace);
  if (!invoked.ok()) {
    span.SetStatus(invoked.status());
    // Charge what the failed attempt really consumed: the RMI legs always
    // (request plus error response), and — when the engine ran and left a
    // checkpoint — the process start plus the attempt's partial work, with
    // the clock advanced only by the newly covered instance time.
    if (clock != nullptr) {
      clock->Charge(sim::steps::kWfRmiCall, costs.call_us);
      if (engine_ran) {
        if (!resuming) {
          clock->Charge(sim::steps::kWfProcessStart,
                        model_->wf_process_start_us);
        }
        if (rec.ckpt.valid) {
          for (const auto& [step, dur] : rec.ckpt.attempt_work.entries()) {
            clock->ChargeWork(step, dur);
          }
          VDuration delta = rec.ckpt.failed_at_us - rec.engine_charged_us;
          if (delta > 0) {
            clock->AdvanceTo(clock->now() + delta);
            rec.engine_charged_us = rec.ckpt.failed_at_us;
          }
        }
      }
      clock->Charge(sim::steps::kWfRmiReturn, costs.return_us);
    }
    StoreRecovery(function, std::move(rec));
    return invoked.status();
  }
  Table out = std::move(invoked).ValueUnsafe();
  if (clock != nullptr) {
    clock->Charge(sim::steps::kWfRmiCall, costs.call_us);
    if (!resuming) {
      clock->Charge(sim::steps::kWfProcessStart, model_->wf_process_start_us);
    }
    // The engine reports per-step work and a parallel-aware elapsed time:
    // merge the work into the breakdown and advance the clock by the
    // instance's end-to-end time (on a resumed run: the part not yet
    // advanced by failed attempts — the breakdown then holds new work only).
    for (const auto& [step, dur] : process_result.breakdown.entries()) {
      clock->ChargeWork(step, dur);
    }
    VDuration delta = process_result.elapsed_us - rec.engine_charged_us;
    if (delta > 0) clock->AdvanceTo(clock->now() + delta);
    clock->Charge(sim::steps::kWfController, model_->wf_controller_us);
    clock->Charge(sim::steps::kWfRmiReturn, costs.return_us);
    clock->Charge(sim::steps::kWfFinishUdtf, model_->wf_udtf_finish_us);
  }
  // Success: the recovery entry taken at the top is simply dropped.
  if (state != nullptr) state->MarkRun(function);

  // Coerce to the declared result schema.
  for (const ForeignFunction& fn : functions_) {
    if (EqualsIgnoreCase(fn.name, function)) {
      Table coerced(fn.result_schema);
      for (Row& r : out.mutable_rows()) {
        FEDFLOW_RETURN_NOT_OK(coerced.AppendRow(std::move(r)));
      }
      return coerced;
    }
  }
  return out;
}

Result<RowSourcePtr> WfmsWrapper::ExecuteStream(const std::string& function,
                                                const std::vector<Value>& args,
                                                fdbs::ExecContext& ctx,
                                                size_t batch_size) {
  SimClock* clock = ctx.clock;
  sim::SystemState* state = FlowLedger(ctx);
  if (!FlowController(ctx)->started()) {
    return Status::ExecutionError(
        "controller not started; boot the integration environment first");
  }
  obs::SpanScope span(ctx.trace, "wrapper:" + function, obs::Layer::kCoupling);
  span.SetAttribute("architecture", "wfms");
  span.SetAttribute("streaming", "true");
  if (clock != nullptr && state != nullptr) {
    switch (state->QueryWarmth(function)) {
      case sim::SystemState::Warmth::kCold:
        clock->Charge(sim::steps::kWarmup, model_->cold_infrastructure_us +
                                               model_->first_run_function_us);
        break;
      case sim::SystemState::Warmth::kWarm:
        clock->Charge(sim::steps::kWarmup, model_->first_run_function_us);
        break;
      case sim::SystemState::Warmth::kHot:
        break;
    }
  }
  if (clock != nullptr) {
    clock->Charge(sim::steps::kWfStartUdtf, model_->wf_udtf_start_us);
    clock->Charge(sim::steps::kWfProcessUdtf,
                  model_->wf_udtf_process_us + model_->wf_controller_process_us);
  }

  PendingRecovery rec = TakeRecovery(function, args);
  const bool resuming = rec.ckpt.valid;
  if (resuming) span.SetAttribute("resumed", "true");
  sim::RmiChannel rmi(model_, faults_);
  sim::RmiChannel::CallCosts costs;
  wfms::ProcessResult process_result;
  bool engine_ran = false;
  obs::TraceSession* trace = ctx.trace;
  // Same saga routing as Execute (see there).
  txn::SagaExec* saga = ctx.flow != nullptr ? ctx.flow->saga : nullptr;
  txn::SagaInvoker saga_invoker(
      &invoker_, systems_, model_,
      ctx.flow != nullptr && ctx.flow->faults != nullptr ? ctx.flow->faults
                                                         : faults_,
      saga);
  wfms::ProgramInvoker* invoker =
      saga != nullptr ? static_cast<wfms::ProgramInvoker*>(&saga_invoker)
                      : &invoker_;
  auto handler = [this, invoker, &process_result, &rec, &engine_ran, trace,
                  clock](const std::string& fn,
                         const std::vector<Value>& remote_args)
      -> Result<Table> {
    engine_ran = true;
    obs::TraceHandle engine_trace;
    if (trace != nullptr && trace->active()) {
      engine_trace = obs::TraceHandle{trace->tracer(), trace->current(),
                                      clock != nullptr ? clock->now() : 0};
    }
    Result<wfms::ProcessResult> run = engine_->RunRecoverable(
        fn, remote_args, invoker, &rec.ckpt, engine_trace);
    if (!run.ok()) return run.status();
    process_result = std::move(*run);
    return process_result.output;
  };
  sim::RmiChannel::ChunkCostFn on_chunk;
  if (clock != nullptr) {
    on_chunk = [clock](VDuration cost) {
      clock->Charge(sim::steps::kWfRmiReturn, cost);
    };
  }
  Result<RowSourcePtr> streamed =
      rmi.InvokeStreaming(function, args, handler, batch_size, &costs,
                          std::move(on_chunk), trace);
  if (!streamed.ok()) {
    span.SetStatus(streamed.status());
    // Same failed-attempt accounting as Execute: RMI legs, and partial
    // engine progress when a checkpoint was left behind.
    if (clock != nullptr) {
      clock->Charge(sim::steps::kWfRmiCall, costs.call_us);
      if (engine_ran) {
        if (!resuming) {
          clock->Charge(sim::steps::kWfProcessStart,
                        model_->wf_process_start_us);
        }
        if (rec.ckpt.valid) {
          for (const auto& [step, dur] : rec.ckpt.attempt_work.entries()) {
            clock->ChargeWork(step, dur);
          }
          VDuration delta = rec.ckpt.failed_at_us - rec.engine_charged_us;
          if (delta > 0) {
            clock->AdvanceTo(clock->now() + delta);
            rec.engine_charged_us = rec.ckpt.failed_at_us;
          }
        }
      }
      clock->Charge(sim::steps::kWfRmiReturn, costs.return_us);
    }
    StoreRecovery(function, std::move(rec));
    return streamed.status();
  }
  RowSourcePtr source = std::move(streamed).ValueUnsafe();
  if (clock != nullptr) {
    clock->Charge(sim::steps::kWfRmiCall, costs.call_us);
    if (!resuming) {
      clock->Charge(sim::steps::kWfProcessStart, model_->wf_process_start_us);
    }
    for (const auto& [step, dur] : process_result.breakdown.entries()) {
      clock->ChargeWork(step, dur);
    }
    VDuration delta = process_result.elapsed_us - rec.engine_charged_us;
    if (delta > 0) clock->AdvanceTo(clock->now() + delta);
    clock->Charge(sim::steps::kWfController, model_->wf_controller_us);
    // Register the RMI-return step at its usual breakdown position; the
    // actual cost arrives per chunk as the stream is drained.
    clock->ChargeWork(sim::steps::kWfRmiReturn, 0);
    clock->Charge(sim::steps::kWfFinishUdtf, model_->wf_udtf_finish_us);
  }
  // Success: the recovery entry taken at the top is simply dropped.
  if (state != nullptr) state->MarkRun(function);

  // Coerce each pulled batch to the declared result schema.
  for (const ForeignFunction& fn : functions_) {
    if (EqualsIgnoreCase(fn.name, function)) {
      std::shared_ptr<RowSource> inner(std::move(source));
      Schema target = fn.result_schema;
      return MakeGeneratorSource(
          fn.result_schema, [inner, target]() -> Result<RowBatch> {
            FEDFLOW_ASSIGN_OR_RETURN(RowBatch raw, inner->Next());
            if (raw.empty()) return raw;
            Table coerced(target);
            for (Row& r : raw.rows) {
              FEDFLOW_RETURN_NOT_OK(coerced.AppendRow(std::move(r)));
            }
            RowBatch batch;
            batch.rows = std::move(coerced.mutable_rows());
            return batch;
          });
    }
  }
  return source;
}

WfmsCoupling::WfmsCoupling(fdbs::Database* db, wfms::Engine* engine,
                           const appsys::AppSystemRegistry* systems,
                           Controller* controller,
                           const sim::LatencyModel* model,
                           sim::SystemState* state, sim::FaultInjector* faults,
                           const sim::RetryPolicy* retry)
    : db_(db),
      engine_(engine),
      systems_(systems),
      model_(model),
      wrapper_(std::make_shared<WfmsWrapper>(engine, systems, controller,
                                             model, state, faults, retry)) {}

Result<CompiledProcess> WfmsCoupling::CompileProcess(
    const FederatedFunctionSpec& spec,
    const plan::PlanOptions& options) const {
  // Compile + optimize once in the shared plan IR, then lower to the process
  // model (plan/lower_wfms.h). A passthrough plan lowers to the identical
  // ProcessDefinition the pre-IR compiler emitted.
  FEDFLOW_ASSIGN_OR_RETURN(plan::FedPlan fed_plan,
                           plan::BuildPlan(spec, *systems_, *model_, options));
  return CompileProcess(spec, fed_plan);
}

Result<CompiledProcess> WfmsCoupling::CompileProcess(
    const FederatedFunctionSpec& spec, const plan::FedPlan& fed_plan) const {
  (void)spec;  // identification only; the plan carries everything lowered
  FEDFLOW_ASSIGN_OR_RETURN(plan::LoweredProcess lowered,
                           plan::LowerToProcess(fed_plan));
  CompiledProcess compiled;
  compiled.process = std::move(lowered.process);
  compiled.helpers = std::move(lowered.helpers);
  return compiled;
}

Status WfmsCoupling::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec, const plan::PlanOptions& options) {
  FEDFLOW_ASSIGN_OR_RETURN(plan::FedPlan fed_plan,
                           plan::BuildPlan(spec, *systems_, *model_, options));
  return RegisterFederatedFunction(spec, fed_plan);
}

Status WfmsCoupling::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec, const plan::FedPlan& fed_plan) {
  FEDFLOW_ASSIGN_OR_RETURN(CompiledProcess compiled,
                           CompileProcess(spec, fed_plan));
  for (auto& [name, fn] : compiled.helpers) {
    FEDFLOW_RETURN_NOT_OK(engine_->RegisterHelper(name, std::move(fn)));
  }
  FEDFLOW_RETURN_NOT_OK(engine_->RegisterProcess(std::move(compiled.process)));

  ForeignFunctionWrapper::ForeignFunction descriptor;
  descriptor.name = spec.name;
  descriptor.params = spec.params;
  FEDFLOW_ASSIGN_OR_RETURN(descriptor.result_schema,
                           ResolveResultSchema(spec, *systems_));
  wrapper_->AddFunction(descriptor);
  return RegisterWrapperFunction(db_, wrapper_, spec.name);
}

}  // namespace fedflow::federation
