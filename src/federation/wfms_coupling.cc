#include "federation/wfms_coupling.h"

#include <set>
#include <unordered_map>

#include "common/codec.h"
#include "common/strings.h"
#include "federation/binding.h"
#include "obs/trace.h"
#include "sim/rmi.h"
#include "sql/parser.h"
#include "wfms/helpers.h"

namespace fedflow::federation {

using wfms::ActivityDef;
using wfms::ActivityKind;
using wfms::BlockAccumulate;
using wfms::InputSource;
using wfms::ProcessDefinition;

Result<wfms::InvokeResult> WfmsProgramInvoker::Invoke(
    const std::string& system, const std::string& function,
    const std::vector<Value>& args) {
  // Local calls bypass RMI under this architecture, so injected faults hit
  // here: a faulted attempt fails when the activity's program is launched.
  sim::FaultInjector::Decision decision;
  if (faults_ != nullptr) decision = faults_->Consult(function);
  if (decision.fault == sim::FaultInjector::Fault::kTransient) {
    return Status::Unavailable("wfms: transient failure in program activity " +
                               function);
  }
  if (decision.fault == sim::FaultInjector::Fault::kPermanent) {
    return Status::Unavailable("wfms: " + function +
                               " is down (permanent outage)");
  }
  FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem * sys, systems_->Get(system));
  FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem::CallResult call,
                           sys->Call(function, args));
  wfms::InvokeResult result;
  result.output = std::move(call.table);
  // The paper's dominant WfMS cost: each activity starts a fresh Java
  // program (JVM boot) before doing its actual work.
  result.duration = model_->wf_jvm_boot_activity_us + call.cost_us +
                    decision.extra_latency_us;
  result.steps.Add(wfms::steps::kProcessActivities, result.duration);
  return result;
}

Result<wfms::InvokeResult> WfmsProgramInvoker::InvokeTraced(
    const std::string& system, const std::string& function,
    const std::vector<Value>& args, const obs::TraceHandle& trace) {
  if (!trace.active()) return Invoke(system, function, args);
  obs::Tracer* tracer = trace.tracer;
  obs::SpanId span = tracer->StartSpan("local:" + function, obs::Layer::kAppsys,
                                       trace.parent, trace.base_us);
  tracer->SetAttribute(span, "system", system);
  Result<wfms::InvokeResult> result = Invoke(system, function, args);
  if (!result.ok()) {
    tracer->SetStatus(span, result.status());
    tracer->AddEvent(span, trace.base_us, "invoke failed",
                     result.status().message());
    tracer->EndSpan(span, trace.base_us);
    return result;
  }
  tracer->EndSpan(span, trace.base_us + result->duration);
  return result;
}

const wfms::InstanceCheckpoint* WfmsWrapper::checkpoint(
    const std::string& function) const {
  auto it = recovery_.find(ToUpper(function));
  if (it == recovery_.end() || !it->second.ckpt.valid) return nullptr;
  return &it->second.ckpt;
}

WfmsWrapper::PendingRecovery& WfmsWrapper::RecoveryFor(
    const std::string& function, const std::vector<Value>& args) {
  PendingRecovery& rec = recovery_[ToUpper(function)];
  ByteWriter writer;
  writer.PutRow(args);
  // A checkpoint only carries across attempts of the same call; different
  // arguments mean a new statement, so a stale instance is discarded.
  if (rec.ckpt.valid && rec.args_key != writer.buffer()) {
    rec = PendingRecovery{};
  }
  rec.args_key = writer.buffer();
  return rec;
}

Result<Table> WfmsWrapper::Execute(const std::string& function,
                                   const std::vector<Value>& args,
                                   fdbs::ExecContext& ctx) {
  SimClock* clock = ctx.clock;
  if (!controller_->started()) {
    return Status::ExecutionError(
        "controller not started; boot the integration environment first");
  }
  obs::SpanScope span(ctx.trace, "wrapper:" + function, obs::Layer::kCoupling);
  span.SetAttribute("architecture", "wfms");
  // Warm-up surcharges (cold/warm/hot experiment).
  if (clock != nullptr && state_ != nullptr) {
    switch (state_->QueryWarmth(function)) {
      case sim::SystemState::Warmth::kCold:
        clock->Charge(sim::steps::kWarmup, model_->cold_infrastructure_us +
                                               model_->first_run_function_us);
        break;
      case sim::SystemState::Warmth::kWarm:
        clock->Charge(sim::steps::kWarmup, model_->first_run_function_us);
        break;
      case sim::SystemState::Warmth::kHot:
        break;
    }
  }
  if (clock != nullptr) {
    clock->Charge(sim::steps::kWfStartUdtf, model_->wf_udtf_start_us);
    clock->Charge(sim::steps::kWfProcessUdtf,
                  model_->wf_udtf_process_us + model_->wf_controller_process_us);
  }

  // One RMI call ships the request to the workflow engine; the process runs
  // behind it, recoverably: the engine checkpoints completed activities into
  // the wrapper's per-function recovery slot, so a retried Execute resumes
  // the failed instance from the last completed activity.
  PendingRecovery& rec = RecoveryFor(function, args);
  const bool resuming = rec.ckpt.valid;
  if (resuming) span.SetAttribute("resumed", "true");
  sim::RmiChannel rmi(model_, faults_);
  sim::RmiChannel::CallCosts costs;
  wfms::ProcessResult process_result;
  bool engine_ran = false;
  obs::TraceSession* trace = ctx.trace;
  auto handler = [this, &process_result, &rec, &engine_ran, trace, clock](
                     const std::string& fn,
                     const std::vector<Value>& remote_args) -> Result<Table> {
    engine_ran = true;
    // The serve-side RMI span is current here; the process span hangs under
    // it, with the engine's instance-relative token times mapped onto the
    // session timeline from the current clock reading.
    obs::TraceHandle engine_trace;
    if (trace != nullptr && trace->active()) {
      engine_trace = obs::TraceHandle{trace->tracer(), trace->current(),
                                      clock != nullptr ? clock->now() : 0};
    }
    Result<wfms::ProcessResult> run = engine_->RunRecoverable(
        fn, remote_args, &invoker_, &rec.ckpt, engine_trace);
    if (!run.ok()) return run.status();
    process_result = std::move(*run);
    return process_result.output;
  };
  Result<Table> invoked = rmi.Invoke(function, args, handler, &costs, trace);
  if (!invoked.ok()) {
    span.SetStatus(invoked.status());
    // Charge what the failed attempt really consumed: the RMI legs always
    // (request plus error response), and — when the engine ran and left a
    // checkpoint — the process start plus the attempt's partial work, with
    // the clock advanced only by the newly covered instance time.
    if (clock != nullptr) {
      clock->Charge(sim::steps::kWfRmiCall, costs.call_us);
      if (engine_ran) {
        if (!resuming) {
          clock->Charge(sim::steps::kWfProcessStart,
                        model_->wf_process_start_us);
        }
        if (rec.ckpt.valid) {
          for (const auto& [step, dur] : rec.ckpt.attempt_work.entries()) {
            clock->ChargeWork(step, dur);
          }
          VDuration delta = rec.ckpt.failed_at_us - rec.engine_charged_us;
          if (delta > 0) {
            clock->AdvanceTo(clock->now() + delta);
            rec.engine_charged_us = rec.ckpt.failed_at_us;
          }
        }
      }
      clock->Charge(sim::steps::kWfRmiReturn, costs.return_us);
    }
    return invoked.status();
  }
  Table out = std::move(invoked).ValueUnsafe();
  if (clock != nullptr) {
    clock->Charge(sim::steps::kWfRmiCall, costs.call_us);
    if (!resuming) {
      clock->Charge(sim::steps::kWfProcessStart, model_->wf_process_start_us);
    }
    // The engine reports per-step work and a parallel-aware elapsed time:
    // merge the work into the breakdown and advance the clock by the
    // instance's end-to-end time (on a resumed run: the part not yet
    // advanced by failed attempts — the breakdown then holds new work only).
    for (const auto& [step, dur] : process_result.breakdown.entries()) {
      clock->ChargeWork(step, dur);
    }
    VDuration delta = process_result.elapsed_us - rec.engine_charged_us;
    if (delta > 0) clock->AdvanceTo(clock->now() + delta);
    clock->Charge(sim::steps::kWfController, model_->wf_controller_us);
    clock->Charge(sim::steps::kWfRmiReturn, costs.return_us);
    clock->Charge(sim::steps::kWfFinishUdtf, model_->wf_udtf_finish_us);
  }
  recovery_.erase(ToUpper(function));
  if (state_ != nullptr) state_->MarkRun(function);

  // Coerce to the declared result schema.
  for (const ForeignFunction& fn : functions_) {
    if (EqualsIgnoreCase(fn.name, function)) {
      Table coerced(fn.result_schema);
      for (Row& r : out.mutable_rows()) {
        FEDFLOW_RETURN_NOT_OK(coerced.AppendRow(std::move(r)));
      }
      return coerced;
    }
  }
  return out;
}

Result<RowSourcePtr> WfmsWrapper::ExecuteStream(const std::string& function,
                                                const std::vector<Value>& args,
                                                fdbs::ExecContext& ctx,
                                                size_t batch_size) {
  SimClock* clock = ctx.clock;
  if (!controller_->started()) {
    return Status::ExecutionError(
        "controller not started; boot the integration environment first");
  }
  obs::SpanScope span(ctx.trace, "wrapper:" + function, obs::Layer::kCoupling);
  span.SetAttribute("architecture", "wfms");
  span.SetAttribute("streaming", "true");
  if (clock != nullptr && state_ != nullptr) {
    switch (state_->QueryWarmth(function)) {
      case sim::SystemState::Warmth::kCold:
        clock->Charge(sim::steps::kWarmup, model_->cold_infrastructure_us +
                                               model_->first_run_function_us);
        break;
      case sim::SystemState::Warmth::kWarm:
        clock->Charge(sim::steps::kWarmup, model_->first_run_function_us);
        break;
      case sim::SystemState::Warmth::kHot:
        break;
    }
  }
  if (clock != nullptr) {
    clock->Charge(sim::steps::kWfStartUdtf, model_->wf_udtf_start_us);
    clock->Charge(sim::steps::kWfProcessUdtf,
                  model_->wf_udtf_process_us + model_->wf_controller_process_us);
  }

  PendingRecovery& rec = RecoveryFor(function, args);
  const bool resuming = rec.ckpt.valid;
  if (resuming) span.SetAttribute("resumed", "true");
  sim::RmiChannel rmi(model_, faults_);
  sim::RmiChannel::CallCosts costs;
  wfms::ProcessResult process_result;
  bool engine_ran = false;
  obs::TraceSession* trace = ctx.trace;
  auto handler = [this, &process_result, &rec, &engine_ran, trace, clock](
                     const std::string& fn,
                     const std::vector<Value>& remote_args) -> Result<Table> {
    engine_ran = true;
    obs::TraceHandle engine_trace;
    if (trace != nullptr && trace->active()) {
      engine_trace = obs::TraceHandle{trace->tracer(), trace->current(),
                                      clock != nullptr ? clock->now() : 0};
    }
    Result<wfms::ProcessResult> run = engine_->RunRecoverable(
        fn, remote_args, &invoker_, &rec.ckpt, engine_trace);
    if (!run.ok()) return run.status();
    process_result = std::move(*run);
    return process_result.output;
  };
  sim::RmiChannel::ChunkCostFn on_chunk;
  if (clock != nullptr) {
    on_chunk = [clock](VDuration cost) {
      clock->Charge(sim::steps::kWfRmiReturn, cost);
    };
  }
  Result<RowSourcePtr> streamed =
      rmi.InvokeStreaming(function, args, handler, batch_size, &costs,
                          std::move(on_chunk), trace);
  if (!streamed.ok()) {
    span.SetStatus(streamed.status());
    // Same failed-attempt accounting as Execute: RMI legs, and partial
    // engine progress when a checkpoint was left behind.
    if (clock != nullptr) {
      clock->Charge(sim::steps::kWfRmiCall, costs.call_us);
      if (engine_ran) {
        if (!resuming) {
          clock->Charge(sim::steps::kWfProcessStart,
                        model_->wf_process_start_us);
        }
        if (rec.ckpt.valid) {
          for (const auto& [step, dur] : rec.ckpt.attempt_work.entries()) {
            clock->ChargeWork(step, dur);
          }
          VDuration delta = rec.ckpt.failed_at_us - rec.engine_charged_us;
          if (delta > 0) {
            clock->AdvanceTo(clock->now() + delta);
            rec.engine_charged_us = rec.ckpt.failed_at_us;
          }
        }
      }
      clock->Charge(sim::steps::kWfRmiReturn, costs.return_us);
    }
    return streamed.status();
  }
  RowSourcePtr source = std::move(streamed).ValueUnsafe();
  if (clock != nullptr) {
    clock->Charge(sim::steps::kWfRmiCall, costs.call_us);
    if (!resuming) {
      clock->Charge(sim::steps::kWfProcessStart, model_->wf_process_start_us);
    }
    for (const auto& [step, dur] : process_result.breakdown.entries()) {
      clock->ChargeWork(step, dur);
    }
    VDuration delta = process_result.elapsed_us - rec.engine_charged_us;
    if (delta > 0) clock->AdvanceTo(clock->now() + delta);
    clock->Charge(sim::steps::kWfController, model_->wf_controller_us);
    // Register the RMI-return step at its usual breakdown position; the
    // actual cost arrives per chunk as the stream is drained.
    clock->ChargeWork(sim::steps::kWfRmiReturn, 0);
    clock->Charge(sim::steps::kWfFinishUdtf, model_->wf_udtf_finish_us);
  }
  recovery_.erase(ToUpper(function));
  if (state_ != nullptr) state_->MarkRun(function);

  // Coerce each pulled batch to the declared result schema.
  for (const ForeignFunction& fn : functions_) {
    if (EqualsIgnoreCase(fn.name, function)) {
      std::shared_ptr<RowSource> inner(std::move(source));
      Schema target = fn.result_schema;
      return MakeGeneratorSource(
          fn.result_schema, [inner, target]() -> Result<RowBatch> {
            FEDFLOW_ASSIGN_OR_RETURN(RowBatch raw, inner->Next());
            if (raw.empty()) return raw;
            Table coerced(target);
            for (Row& r : raw.rows) {
              FEDFLOW_RETURN_NOT_OK(coerced.AppendRow(std::move(r)));
            }
            RowBatch batch;
            batch.rows = std::move(coerced.mutable_rows());
            return batch;
          });
    }
  }
  return source;
}

WfmsCoupling::WfmsCoupling(fdbs::Database* db, wfms::Engine* engine,
                           const appsys::AppSystemRegistry* systems,
                           Controller* controller,
                           const sim::LatencyModel* model,
                           sim::SystemState* state, sim::FaultInjector* faults,
                           const sim::RetryPolicy* retry)
    : db_(db),
      engine_(engine),
      systems_(systems),
      wrapper_(std::make_shared<WfmsWrapper>(engine, systems, controller,
                                             model, state, faults, retry)) {}

namespace {

InputSource SpecArgToInput(const SpecArg& arg) {
  switch (arg.kind) {
    case SpecArg::Kind::kConstant:
      return InputSource::Constant(arg.constant);
    case SpecArg::Kind::kParam:
      return InputSource::FromProcessInput(arg.param);
    case SpecArg::Kind::kNodeColumn:
      return InputSource::FromActivity(arg.node, arg.column);
  }
  return InputSource::Constant(Value::Null());
}

/// Builds the result-assembly helper: projects/renames/casts the columns of
/// one input table to the spec's output schema.
wfms::HelperFn MakeSingleTableResultHelper(
    std::vector<SpecOutput> outputs, Schema result_schema) {
  return [outputs = std::move(outputs), result_schema = std::move(
              result_schema)](const std::vector<Table>& inputs)
             -> Result<Table> {
    if (inputs.size() != 1) {
      return Status::InvalidArgument("result helper expects 1 input");
    }
    const Table& in = inputs[0];
    std::vector<size_t> idx;
    for (const SpecOutput& out : outputs) {
      FEDFLOW_ASSIGN_OR_RETURN(size_t i, in.schema().FindColumn(out.column));
      idx.push_back(i);
    }
    Table result(result_schema);
    for (const Row& r : in.rows()) {
      Row row;
      row.reserve(idx.size());
      for (size_t i : idx) row.push_back(r[i]);
      FEDFLOW_RETURN_NOT_OK(result.AppendRow(std::move(row)));
    }
    return result;
  };
}

/// Positional hash join of exactly two inputs on key columns given by index
/// (column names may repeat across join chains, so names are unreliable).
wfms::HelperFn MakeIndexJoinHelper(size_t left_index, size_t right_index) {
  return [left_index, right_index](
             const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.size() != 2) {
      return Status::InvalidArgument("join helper expects 2 inputs");
    }
    const Table& left = inputs[0];
    const Table& right = inputs[1];
    if (left_index >= left.schema().num_columns() ||
        right_index >= right.schema().num_columns()) {
      return Status::Internal("join key index out of range");
    }
    std::unordered_multimap<size_t, size_t> index;
    index.reserve(right.num_rows());
    for (size_t r = 0; r < right.num_rows(); ++r) {
      index.emplace(right.rows()[r][right_index].Hash(), r);
    }
    Table out(left.schema().Concat(right.schema()));
    for (const Row& lrow : left.rows()) {
      auto [lo, hi] = index.equal_range(lrow[left_index].Hash());
      for (auto it = lo; it != hi; ++it) {
        const Row& rrow = right.rows()[it->second];
        if (!lrow[left_index].SqlEquals(rrow[right_index])) continue;
        Row combined = lrow;
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        out.AppendRowUnchecked(std::move(combined));
      }
    }
    return out;
  };
}

/// Builds a positional projector: picks columns of the single input by index
/// (used after join chains, where column names may be ambiguous).
wfms::HelperFn MakeIndexProjectHelper(std::vector<size_t> indices,
                                      Schema result_schema) {
  return [indices = std::move(indices), result_schema = std::move(
              result_schema)](const std::vector<Table>& inputs)
             -> Result<Table> {
    if (inputs.size() != 1) {
      return Status::InvalidArgument("result helper expects 1 input");
    }
    const Table& in = inputs[0];
    Table result(result_schema);
    for (const Row& r : in.rows()) {
      Row row;
      row.reserve(indices.size());
      for (size_t i : indices) {
        if (i >= r.size()) {
          return Status::Internal("result projection index out of range");
        }
        row.push_back(r[i]);
      }
      FEDFLOW_RETURN_NOT_OK(result.AppendRow(std::move(row)));
    }
    return result;
  };
}

/// Builds the result-assembly helper for scalar outputs taken from several
/// activities: each input is a single-column single-row table, concatenated
/// into one row of the output schema.
wfms::HelperFn MakeConcatResultHelper(Schema result_schema) {
  return [result_schema = std::move(result_schema)](
             const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.size() != result_schema.num_columns()) {
      return Status::InvalidArgument("result helper arity mismatch");
    }
    Row row;
    for (const Table& in : inputs) {
      if (in.num_rows() != 1 || in.schema().num_columns() != 1) {
        return Status::ExecutionError(
            "scalar result assembly requires 1x1 inputs");
      }
      row.push_back(in.rows()[0][0]);
    }
    Table result(result_schema);
    FEDFLOW_RETURN_NOT_OK(result.AppendRow(std::move(row)));
    return result;
  };
}

constexpr char kResultActivity[] = "RESULT";

}  // namespace

Result<CompiledProcess> WfmsCoupling::CompileProcess(
    const FederatedFunctionSpec& spec) const {
  FEDFLOW_RETURN_NOT_OK(BindSpec(spec, *systems_));
  FEDFLOW_ASSIGN_OR_RETURN(Schema result_schema,
                           ResolveResultSchema(spec, *systems_));

  // For looping specs, compile the loop body as a sub-process and wrap it in
  // a block activity with a do-until exit condition.
  if (spec.loop.enabled) {
    FederatedFunctionSpec body = spec;
    body.loop.enabled = false;
    body.name = spec.name + "_body";
    body.params.push_back(Column{"ITERATION", DataType::kInt});
    FEDFLOW_ASSIGN_OR_RETURN(CompiledProcess body_compiled,
                             CompileProcess(body));

    CompiledProcess compiled;
    compiled.helpers = std::move(body_compiled.helpers);
    ProcessDefinition& def = compiled.process;
    def.name = spec.name;
    def.input_params = spec.params;
    ActivityDef block;
    block.name = "LOOP";
    block.kind = ActivityKind::kBlock;
    block.sub =
        std::make_shared<ProcessDefinition>(std::move(body_compiled.process));
    for (const Column& p : spec.params) {
      block.inputs.push_back(InputSource::FromProcessInput(p.name));
    }
    block.inputs.push_back(InputSource::Constant(Value::Int(0)));  // ITERATION
    FEDFLOW_ASSIGN_OR_RETURN(
        block.exit_condition,
        sql::ParseExpression("ITERATION >= " + spec.loop.count_param));
    block.accumulate = spec.loop.union_all ? BlockAccumulate::kUnionAll
                                           : BlockAccumulate::kLastIteration;
    def.activities.push_back(std::move(block));
    def.output_activity = "LOOP";
    FEDFLOW_RETURN_NOT_OK(wfms::ValidateProcess(def));
    return compiled;
  }

  CompiledProcess compiled;
  ProcessDefinition& def = compiled.process;
  def.name = spec.name;
  def.input_params = spec.params;

  // One program activity per local-function call; control connectors follow
  // the data dependencies (the paper's precedence graph).
  std::set<std::string> edges;  // dedupe "from->to"
  auto connect = [&](const std::string& from, const std::string& to) {
    std::string key = ToUpper(from) + "->" + ToUpper(to);
    if (edges.insert(key).second) {
      def.connectors.push_back(wfms::ControlConnector{from, to, nullptr});
    }
  };

  for (const SpecCall& call : spec.calls) {
    ActivityDef a;
    a.name = call.id;
    a.kind = ActivityKind::kProgram;
    a.system = call.system;
    a.function = call.function;
    for (const SpecArg& arg : call.args) {
      a.inputs.push_back(SpecArgToInput(arg));
      if (arg.kind == SpecArg::Kind::kNodeColumn) {
        connect(arg.node, call.id);
      }
    }
    def.activities.push_back(std::move(a));
  }

  // Joins: chained join-helper activities (the independent case's result
  // composition). Join k combines the running result with join k's right
  // node. Column positions are tracked explicitly because column names may
  // repeat across the joined nodes.
  std::string joined_source;  // activity providing the joined table so far
  std::vector<std::pair<std::string, std::string>> joined_cols;
  auto append_node_cols = [&](const std::string& node) -> Status {
    FEDFLOW_ASSIGN_OR_RETURN(const Schema* schema,
                             NodeResultSchema(spec, *systems_, node));
    for (const Column& c : schema->columns()) {
      joined_cols.emplace_back(node, c.name);
    }
    return Status::OK();
  };
  auto joined_index = [&](const std::string& node,
                          const std::string& column) -> Result<size_t> {
    for (size_t i = 0; i < joined_cols.size(); ++i) {
      if (EqualsIgnoreCase(joined_cols[i].first, node) &&
          EqualsIgnoreCase(joined_cols[i].second, column)) {
        return i;
      }
    }
    return Status::InvalidArgument("column " + node + "." + column +
                                   " is not part of the join result of spec " +
                                   spec.name);
  };
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    const SpecJoin& join = spec.joins[j];
    if (joined_source.empty()) {
      FEDFLOW_RETURN_NOT_OK(append_node_cols(join.left_node));
    }
    FEDFLOW_ASSIGN_OR_RETURN(size_t left_idx,
                             joined_index(join.left_node, join.left_column));
    FEDFLOW_ASSIGN_OR_RETURN(const Schema* right_schema,
                             NodeResultSchema(spec, *systems_,
                                              join.right_node));
    FEDFLOW_ASSIGN_OR_RETURN(size_t right_idx,
                             right_schema->FindColumn(join.right_column));

    std::string helper_name = spec.name + "_join" + std::to_string(j + 1);
    compiled.helpers.emplace_back(helper_name,
                                  MakeIndexJoinHelper(left_idx, right_idx));
    ActivityDef a;
    a.name = "JOIN" + std::to_string(j + 1);
    a.kind = ActivityKind::kHelper;
    a.helper = helper_name;
    const std::string left =
        joined_source.empty() ? join.left_node : joined_source;
    a.inputs.push_back(InputSource::FromActivity(left, ""));
    a.inputs.push_back(InputSource::FromActivity(join.right_node, ""));
    connect(left, a.name);
    connect(join.right_node, a.name);
    joined_source = a.name;
    FEDFLOW_RETURN_NOT_OK(append_node_cols(join.right_node));
    def.activities.push_back(std::move(a));
  }

  // Result assembly.
  std::set<std::string> output_nodes;
  for (const SpecOutput& out : spec.outputs) {
    output_nodes.insert(ToUpper(out.node));
  }
  ActivityDef result_activity;
  result_activity.name = kResultActivity;
  result_activity.kind = ActivityKind::kHelper;
  std::string result_helper = spec.name + "_result";
  result_activity.helper = result_helper;
  if (!joined_source.empty()) {
    // Project the joined table by tracked column positions.
    std::vector<size_t> indices;
    for (const SpecOutput& out : spec.outputs) {
      FEDFLOW_ASSIGN_OR_RETURN(size_t idx,
                               joined_index(out.node, out.column));
      indices.push_back(idx);
    }
    compiled.helpers.emplace_back(
        result_helper,
        MakeIndexProjectHelper(std::move(indices), result_schema));
    result_activity.inputs.push_back(
        InputSource::FromActivity(joined_source, ""));
    connect(joined_source, result_activity.name);
  } else if (output_nodes.size() == 1) {
    // All outputs come from one call: project its (possibly multi-row) table.
    compiled.helpers.emplace_back(
        result_helper,
        MakeSingleTableResultHelper(spec.outputs, result_schema));
    result_activity.inputs.push_back(
        InputSource::FromActivity(spec.outputs[0].node, ""));
    connect(spec.outputs[0].node, result_activity.name);
  } else {
    // Scalar outputs from several parallel activities: concatenate.
    compiled.helpers.emplace_back(result_helper,
                                  MakeConcatResultHelper(result_schema));
    for (const SpecOutput& out : spec.outputs) {
      result_activity.inputs.push_back(
          InputSource::FromActivity(out.node, out.column));
      connect(out.node, result_activity.name);
    }
  }
  def.activities.push_back(std::move(result_activity));
  def.output_activity = kResultActivity;

  FEDFLOW_RETURN_NOT_OK(wfms::ValidateProcess(def));
  return compiled;
}

Status WfmsCoupling::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec) {
  FEDFLOW_ASSIGN_OR_RETURN(CompiledProcess compiled, CompileProcess(spec));
  for (auto& [name, fn] : compiled.helpers) {
    FEDFLOW_RETURN_NOT_OK(engine_->RegisterHelper(name, std::move(fn)));
  }
  FEDFLOW_RETURN_NOT_OK(engine_->RegisterProcess(std::move(compiled.process)));

  ForeignFunctionWrapper::ForeignFunction descriptor;
  descriptor.name = spec.name;
  descriptor.params = spec.params;
  FEDFLOW_ASSIGN_OR_RETURN(descriptor.result_schema,
                           ResolveResultSchema(spec, *systems_));
  wrapper_->AddFunction(descriptor);
  return RegisterWrapperFunction(db_, wrapper_, spec.name);
}

}  // namespace fedflow::federation
