// A bounded pool of warm controllers, replacing the singleton controller of
// earlier revisions. The paper's controller ablation measured "controller vs.
// no controller" for a single flow; under concurrent load the question
// becomes "how many warm controllers does an arrival rate need" — each slot
// is one long-running controller process with its own warmth ledger, checked
// out per flow, returned on completion, and LRU-evicted beyond the warm
// target. Slot 1 is pinned and doubles as the legacy single-flow controller:
// with pool size 1 every checkout returns it and behavior is bit-identical
// to the singleton.
#ifndef FEDFLOW_FEDERATION_CONTROLLER_POOL_H_
#define FEDFLOW_FEDERATION_CONTROLLER_POOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "appsys/registry.h"
#include "common/result.h"
#include "federation/controller.h"
#include "obs/metrics.h"
#include "sim/latency.h"
#include "sim/resource_pools.h"
#include "sim/system_state.h"

namespace fedflow::cache {
class ResultCache;
}  // namespace fedflow::cache

namespace fedflow::federation {

/// Pool limits; forwarded into the underlying sim::WarmPool.
struct ControllerPoolOptions {
  /// Controllers that may exist at once (busy + warm-idle). 1 = the paper's
  /// single-controller deployment.
  size_t max_size = 1;
  /// Idle controllers kept warm; 0 keeps all of them (no eviction below
  /// max_size).
  size_t warm_target = 0;
  /// Concurrent checkouts per tenant; 0 = unlimited.
  size_t per_tenant_quota = 0;
};

/// Bounded warm-controller pool with per-flow RAII leases.
class ControllerPool {
 public:
  ControllerPool(const appsys::AppSystemRegistry* systems,
                 const sim::LatencyModel* model,
                 ControllerPoolOptions options = {});

  /// A checked-out controller; returns its slot to the pool on destruction.
  /// Move-only.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    /// Returns the slot early (idempotent).
    void Release();

    bool valid() const { return pool_ != nullptr; }
    Controller* controller() const { return controller_; }
    sim::SystemState* ledger() const { return ledger_; }
    /// Warmth the checkout observed for the affinity function.
    sim::SystemState::Warmth warmth() const { return warmth_; }
    uint64_t slot() const { return slot_; }

   private:
    friend class ControllerPool;
    ControllerPool* pool_ = nullptr;
    uint64_t slot_ = 0;
    Controller* controller_ = nullptr;
    sim::SystemState* ledger_ = nullptr;
    sim::SystemState::Warmth warmth_ = sim::SystemState::Warmth::kHot;
  };

  /// Checks a controller out for one flow. `function` is the warmth affinity
  /// (hot slots for it are preferred). kUnavailable when the pool or the
  /// tenant quota is exhausted — admission control, not an error in the
  /// statement itself.
  Result<Lease> Checkout(const std::string& tenant,
                         const std::string& function);

  /// The pinned slot's controller/ledger: the stable single-flow identity
  /// that couplings are wired with at construction.
  Controller* primary() { return primary_; }
  sim::SystemState* primary_state() { return primary_state_; }

  /// Starts / stops every live controller. Controllers created later inherit
  /// the running state.
  void Start();
  void Stop();

  /// Environment reboot: evicts all non-pinned controllers, restarts the
  /// pinned one and boots its ledger cold. Fails while leases are
  /// outstanding.
  Status Reboot();

  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// Attaches the server's result cache (nullptr detaches; not owned).
  /// Rebooting the pool flushes the whole cache, and evicting a slot flushes
  /// the entries produced on it — a cached result must never outlive the
  /// warmth ledger it was priced under.
  void AttachResultCache(cache::ResultCache* result_cache);

  /// Replaces the pool limits (existing warm slots are trimmed lazily on the
  /// next release).
  void set_options(const ControllerPoolOptions& options);
  ControllerPoolOptions options() const;

  /// The underlying slot pool (stats, occupancy).
  sim::WarmPool& pool() { return pool_; }
  const sim::WarmPool& pool() const { return pool_; }

  size_t size() const { return pool_.size(); }
  size_t in_use() const { return pool_.in_use(); }

 private:
  void ReturnSlot(uint64_t slot);

  const appsys::AppSystemRegistry* systems_;
  const sim::LatencyModel* model_;
  sim::WarmPool pool_;
  mutable std::mutex mu_;  // guards controllers_ and started_
  std::map<uint64_t, std::unique_ptr<Controller>> controllers_;
  bool started_ = false;
  Controller* primary_ = nullptr;
  sim::SystemState* primary_state_ = nullptr;
  cache::ResultCache* result_cache_ = nullptr;  // guarded by mu_
};

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_CONTROLLER_POOL_H_
