// The WfMS architecture (paper §2): a federated function is a workflow
// process. The FDBS reaches it through one SQL/MED-style wrapper UDTF that
// starts the process in the workflow engine; the engine calls the local
// functions (each activity boots its own Java program, the dominant cost),
// handles containers, parallel forks and loops.
#ifndef FEDFLOW_FEDERATION_WFMS_COUPLING_H_
#define FEDFLOW_FEDERATION_WFMS_COUPLING_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "appsys/registry.h"
#include "fdbs/database.h"
#include "federation/controller.h"
#include "federation/med_wrapper.h"
#include "federation/spec.h"
#include "plan/optimizer.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/system_state.h"
#include "wfms/engine.h"

namespace fedflow::federation {

/// ProgramInvoker used by the engine under this coupling: every program
/// activity boots a fresh Java program (JVM boot cost) and then performs the
/// local function call in the application system.
class WfmsProgramInvoker : public wfms::ProgramInvoker {
 public:
  /// `faults` (optional) is consulted per local-function invocation — WfMS
  /// program activities call the application systems directly (no RMI), so
  /// the invoker is where their attempts can fail.
  WfmsProgramInvoker(const appsys::AppSystemRegistry* systems,
                     const sim::LatencyModel* model,
                     sim::FaultInjector* faults = nullptr)
      : systems_(systems), model_(model), faults_(faults) {}

  Result<wfms::InvokeResult> Invoke(const std::string& system,
                                    const std::string& function,
                                    const std::vector<Value>& args) override;

  /// Traced variant: hangs a `local:<function>` appsys-layer span under the
  /// activity span carried by `trace`, stamped with the invocation's virtual
  /// duration; a failed attempt records the failure status on the span.
  Result<wfms::InvokeResult> InvokeTraced(
      const std::string& system, const std::string& function,
      const std::vector<Value>& args, const obs::TraceHandle& trace) override;

 private:
  const appsys::AppSystemRegistry* systems_;
  const sim::LatencyModel* model_;
  sim::FaultInjector* faults_;
};

/// A compiled spec: the process plus the helpers it needs registered.
struct CompiledProcess {
  wfms::ProcessDefinition process;
  std::vector<std::pair<std::string, wfms::HelperFn>> helpers;
};

/// The SQL/MED wrapper bridging the FDBS to the workflow engine.
class WfmsWrapper : public ForeignFunctionWrapper {
 public:
  /// `faults` feeds both the wrapper's RMI channel (federated-function
  /// level) and the program invoker (local-function level); `retry` is
  /// surfaced through retry_policy() so the SQL/MED adapter drives the retry
  /// loop. Each Execute call is ONE attempt; between attempts the wrapper
  /// keeps the engine's InstanceCheckpoint, so a retried call resumes the
  /// failed process instance instead of restarting it — the paper's
  /// forward-recovery argument for the WfMS coupling.
  WfmsWrapper(wfms::Engine* engine, const appsys::AppSystemRegistry* systems,
              Controller* controller, const sim::LatencyModel* model,
              sim::SystemState* state, sim::FaultInjector* faults = nullptr,
              const sim::RetryPolicy* retry = nullptr)
      : engine_(engine),
        systems_(systems),
        controller_(controller),
        model_(model),
        state_(state),
        faults_(faults),
        retry_(retry),
        invoker_(systems, model, faults) {}

  std::string Name() const override { return "wfms"; }
  std::vector<ForeignFunction> Functions() const override {
    return functions_;
  }

  /// Adds a federated function served by this wrapper (its process must be
  /// registered with the engine under the same name).
  void AddFunction(ForeignFunction fn) {
    functions_.push_back(std::move(fn));
  }

  Result<Table> Execute(const std::string& function,
                        const std::vector<Value>& args,
                        fdbs::ExecContext& ctx) override;

  /// Streaming execution: the process still runs to completion inside the
  /// engine (a workflow instance is atomic), but the RMI return leg streams
  /// the result rows back in chunks, charging wire cost per pulled batch.
  Result<RowSourcePtr> ExecuteStream(const std::string& function,
                                     const std::vector<Value>& args,
                                     fdbs::ExecContext& ctx,
                                     size_t batch_size) override;

  wfms::ProgramInvoker* invoker() { return &invoker_; }

  const sim::RetryPolicy* retry_policy() const override { return retry_; }

  /// The pending recovery checkpoint of `function` (null when its last run
  /// succeeded or it never ran). For tests and audit inspection.
  const wfms::InstanceCheckpoint* checkpoint(const std::string& function) const;

  /// Drops the pending recovery checkpoint of `function` (no-op when none).
  /// The saga coordinator calls this after backward recovery: the checkpoint
  /// memoizes completed activities whose effects the abort just compensated,
  /// so a later resume from it would skip re-applying undone writes.
  void ClearCheckpoint(const std::string& function);

 private:
  /// Cross-attempt recovery state of one federated function.
  struct PendingRecovery {
    wfms::InstanceCheckpoint ckpt;
    /// Engine-instance virtual time already advanced on the caller's clock
    /// by earlier (failed) attempts, so a later attempt only adds the delta.
    VTime engine_charged_us = 0;
    /// Marshalled arguments of the attempt that created the checkpoint; a
    /// call with different arguments discards the stale instance.
    std::vector<uint8_t> args_key;
  };

  /// Takes the pending recovery entry of `function` out of the map (empty
  /// when none, reset when the arguments differ from the checkpointed call).
  /// The attempt operates on the returned copy; StoreRecovery puts it back
  /// on failure, a successful attempt simply drops it — sequentially
  /// identical to the old in-map reference, and safe for concurrent flows.
  PendingRecovery TakeRecovery(const std::string& function,
                               const std::vector<Value>& args);
  void StoreRecovery(const std::string& function, PendingRecovery rec);

  /// Per-flow controller / warmth ledger with single-flow fallback to the
  /// construction-time wiring (see fdbs::ExecContext::flow).
  Controller* FlowController(const fdbs::ExecContext& ctx) const;
  sim::SystemState* FlowLedger(const fdbs::ExecContext& ctx) const;

  wfms::Engine* engine_;
  const appsys::AppSystemRegistry* systems_;
  Controller* controller_;
  const sim::LatencyModel* model_;
  sim::SystemState* state_;
  sim::FaultInjector* faults_;
  const sim::RetryPolicy* retry_;
  WfmsProgramInvoker invoker_;
  std::vector<ForeignFunction> functions_;
  mutable std::mutex recovery_mu_;
  std::map<std::string, PendingRecovery> recovery_;
};

/// Wires the WfMS architecture into an FDBS + engine pair.
class WfmsCoupling {
 public:
  WfmsCoupling(fdbs::Database* db, wfms::Engine* engine,
               const appsys::AppSystemRegistry* systems,
               Controller* controller, const sim::LatencyModel* model,
               sim::SystemState* state, sim::FaultInjector* faults = nullptr,
               const sim::RetryPolicy* retry = nullptr);

  /// Compiles a spec into a process definition plus required helpers by
  /// building the federated plan (plan/fed_plan.h) and lowering it. Handles
  /// every mapping case including loops (the cyclic case). With default
  /// (passthrough) options the result is identical to the pre-IR compiler;
  /// optimizer passes are opt-in per statement, mirroring
  /// ExecContext::predicate_pushdown.
  Result<CompiledProcess> CompileProcess(
      const FederatedFunctionSpec& spec,
      const plan::PlanOptions& options = {}) const;

  /// Lowers an already-built plan (the server's plan cache compiles once at
  /// registration and hands the plan to every consumer) to the process model.
  Result<CompiledProcess> CompileProcess(const FederatedFunctionSpec& spec,
                                         const plan::FedPlan& fed_plan) const;

  /// Compiles the spec, registers helpers and process with the engine, and
  /// registers the wrapper UDTF with the FDBS.
  Status RegisterFederatedFunction(const FederatedFunctionSpec& spec,
                                   const plan::PlanOptions& options = {});

  /// Registers from an already-built plan without recompiling.
  Status RegisterFederatedFunction(const FederatedFunctionSpec& spec,
                                   const plan::FedPlan& fed_plan);

  /// The wrapper instance (shared with the FDBS catalog).
  const std::shared_ptr<WfmsWrapper>& wrapper() const { return wrapper_; }

 private:
  fdbs::Database* db_;
  wfms::Engine* engine_;
  const appsys::AppSystemRegistry* systems_;
  const sim::LatencyModel* model_;
  std::shared_ptr<WfmsWrapper> wrapper_;
};

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_WFMS_COUPLING_H_
