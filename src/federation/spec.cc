#include "federation/spec.h"

#include <algorithm>
#include <utility>

#include "common/dag.h"
#include "common/strings.h"

namespace fedflow::federation {

Result<const SpecCall*> FederatedFunctionSpec::FindCall(
    const std::string& id) const {
  for (const SpecCall& c : calls) {
    if (EqualsIgnoreCase(c.id, id)) return &c;
  }
  return Status::NotFound("call node not found: " + id + " in spec " + name);
}

const SpecCompensation* FederatedFunctionSpec::FindCompensation(
    const std::string& id) const {
  for (const SpecCompensation& c : compensations) {
    if (EqualsIgnoreCase(c.node, id)) return &c;
  }
  return nullptr;
}

namespace {

bool IsDeclaredParam(const FederatedFunctionSpec& spec,
                     const std::string& name) {
  for (const Column& p : spec.params) {
    if (EqualsIgnoreCase(p.name, name)) return true;
  }
  return false;
}

}  // namespace

Status ValidateSpec(const FederatedFunctionSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("federated function has no name");
  }
  if (spec.calls.empty()) {
    return Status::InvalidArgument("spec " + spec.name + " has no calls");
  }
  for (size_t i = 0; i < spec.calls.size(); ++i) {
    for (size_t j = i + 1; j < spec.calls.size(); ++j) {
      if (EqualsIgnoreCase(spec.calls[i].id, spec.calls[j].id)) {
        return Status::InvalidArgument("duplicate call id: " +
                                       spec.calls[i].id);
      }
    }
  }
  for (const SpecCall& c : spec.calls) {
    if (c.id.empty() || c.system.empty() || c.function.empty()) {
      return Status::InvalidArgument(
          "call nodes need id, system and function (spec " + spec.name + ")");
    }
    for (const SpecArg& a : c.args) {
      switch (a.kind) {
        case SpecArg::Kind::kConstant:
          break;
        case SpecArg::Kind::kParam:
          if (!IsDeclaredParam(spec, a.param)) {
            if (EqualsIgnoreCase(a.param, "ITERATION")) {
              if (!spec.loop.enabled) {
                return Status::InvalidArgument(
                    "call " + c.id +
                    " uses ITERATION outside a loop (spec " + spec.name + ")");
              }
              break;
            }
            return Status::InvalidArgument("call " + c.id +
                                           " references unknown parameter " +
                                           a.param);
          }
          break;
        case SpecArg::Kind::kNodeColumn: {
          FEDFLOW_ASSIGN_OR_RETURN(const SpecCall* src, spec.FindCall(a.node));
          if (EqualsIgnoreCase(src->id, c.id)) {
            return Status::InvalidArgument("call " + c.id +
                                           " references its own output");
          }
          break;
        }
      }
    }
  }
  for (const SpecJoin& j : spec.joins) {
    FEDFLOW_RETURN_NOT_OK(spec.FindCall(j.left_node).status());
    FEDFLOW_RETURN_NOT_OK(spec.FindCall(j.right_node).status());
  }
  if (spec.outputs.empty()) {
    return Status::InvalidArgument("spec " + spec.name + " has no outputs");
  }
  for (const SpecOutput& o : spec.outputs) {
    if (o.name.empty()) {
      return Status::InvalidArgument("output column without a name in spec " +
                                     spec.name);
    }
    FEDFLOW_RETURN_NOT_OK(spec.FindCall(o.node).status());
  }
  for (const SpecCompensation& comp : spec.compensations) {
    FEDFLOW_RETURN_NOT_OK(spec.FindCall(comp.node).status());
    if (comp.function.empty()) {
      return Status::InvalidArgument("compensation of node " + comp.node +
                                     " names no function (spec " + spec.name +
                                     ")");
    }
    for (const SpecCompensation& other : spec.compensations) {
      if (&other != &comp && EqualsIgnoreCase(other.node, comp.node)) {
        return Status::InvalidArgument("duplicate compensation for node " +
                                       comp.node + " (spec " + spec.name + ")");
      }
    }
    for (const SpecArg& a : comp.args) {
      switch (a.kind) {
        case SpecArg::Kind::kConstant:
          break;
        case SpecArg::Kind::kParam:
          if (!IsDeclaredParam(spec, a.param)) {
            return Status::InvalidArgument(
                "compensation of node " + comp.node +
                " references unknown parameter " + a.param);
          }
          break;
        case SpecArg::Kind::kNodeColumn:
          // The write node's own output is a legal undo source.
          FEDFLOW_RETURN_NOT_OK(spec.FindCall(a.node).status());
          break;
      }
    }
  }
  if (spec.loop.enabled) {
    if (spec.loop.count_param.empty() ||
        !IsDeclaredParam(spec, spec.loop.count_param)) {
      return Status::InvalidArgument(
          "loop of spec " + spec.name +
          " needs a declared count parameter, got '" + spec.loop.count_param +
          "'");
    }
  }
  // Dependency acyclicity.
  FEDFLOW_RETURN_NOT_OK(TopologicalCallOrder(spec).status());
  return Status::OK();
}

Result<std::vector<size_t>> TopologicalCallOrder(
    const FederatedFunctionSpec& spec) {
  const size_t n = spec.calls.size();
  auto index_of = [&](const std::string& id) -> int {
    for (size_t i = 0; i < n; ++i) {
      if (EqualsIgnoreCase(spec.calls[i].id, id)) return static_cast<int>(i);
    }
    return -1;
  };
  std::vector<std::vector<size_t>> deps(n);
  for (size_t i = 0; i < n; ++i) {
    for (const SpecArg& a : spec.calls[i].args) {
      if (a.kind != SpecArg::Kind::kNodeColumn) continue;
      int d = index_of(a.node);
      if (d < 0) return Status::NotFound("call node not found: " + a.node);
      deps[i].push_back(static_cast<size_t>(d));
    }
  }
  dag::TopoSort sorted = dag::StableTopologicalSort(deps);
  if (!sorted.ok()) {
    return Status::InvalidArgument(
        "cyclic dependency between call nodes of spec " + spec.name);
  }
  return std::move(sorted.order);
}

}  // namespace fedflow::federation
