// Resolution of a federated-function spec against the application systems:
// signature checks and result-schema derivation, shared by both couplings.
#ifndef FEDFLOW_FEDERATION_BINDING_H_
#define FEDFLOW_FEDERATION_BINDING_H_

#include "appsys/registry.h"
#include "common/result.h"
#include "common/schema.h"
#include "federation/spec.h"

namespace fedflow::federation {

/// Checks that every call node names an existing function with matching
/// argument arity, that node-column references name existing result columns,
/// and that join/output columns exist.
Status BindSpec(const FederatedFunctionSpec& spec,
                const appsys::AppSystemRegistry& systems);

/// Static type of `node`.`column` (the call's declared result schema).
Result<DataType> NodeColumnType(const FederatedFunctionSpec& spec,
                                const appsys::AppSystemRegistry& systems,
                                const std::string& node,
                                const std::string& column);

/// The declared result schema of `node`'s local function.
Result<const Schema*> NodeResultSchema(const FederatedFunctionSpec& spec,
                                       const appsys::AppSystemRegistry& systems,
                                       const std::string& node);

/// The federated function's result schema: one column per SpecOutput, typed
/// from the source call's signature with casts applied.
Result<Schema> ResolveResultSchema(const FederatedFunctionSpec& spec,
                                   const appsys::AppSystemRegistry& systems);

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_BINDING_H_
