// The enhanced Java UDTF architecture (paper §2): A-UDTFs as in the SQL UDTF
// architecture, but the Integration UDTF is implemented in a host language
// ("Java" in the paper; C++ here) issuing JDBC-style statements against the
// FDBS. This lifts the one-SQL-statement restriction: the body may issue as
// many statements as needed and use control structures — so, unlike the SQL
// variant, it CAN express the cyclic case with a client-side do-until loop.
#ifndef FEDFLOW_FEDERATION_JAVA_COUPLING_H_
#define FEDFLOW_FEDERATION_JAVA_COUPLING_H_

#include <memory>

#include "appsys/registry.h"
#include "fdbs/database.h"
#include "federation/classify.h"
#include "federation/spec.h"
#include "plan/optimizer.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/system_state.h"

namespace fedflow::federation {

/// True when the Java UDTF architecture can express this case (everything
/// except the general case, which needs one artifact covering several
/// federated functions).
bool JavaUdtfSupports(MappingCase c);

/// Wires Java-style procedural I-UDTFs into an FDBS. A-UDTF registration is
/// shared with UdtfCoupling (both variants sit on the same access layer).
class JavaUdtfCoupling {
 public:
  /// `retry` (optional) is the deployment's statement-level retry policy:
  /// like the SQL I-UDTF, the procedural body holds no state between
  /// attempts, so a retriable failure restarts the whole interpretation.
  JavaUdtfCoupling(fdbs::Database* db,
                   const appsys::AppSystemRegistry* systems,
                   const sim::LatencyModel* model, sim::SystemState* state,
                   const sim::RetryPolicy* retry = nullptr)
      : db_(db), systems_(systems), model_(model), state_(state),
        retry_(retry) {}

  /// Compiles the spec into the federated plan (plan/fed_plan.h) and
  /// registers a procedural I-UDTF interpreting it. The body interprets the
  /// mapping: non-cyclic plans issue the same single SELECT the SQL I-UDTF
  /// would contain; cyclic plans run a client-side do-until loop issuing one
  /// statement per iteration and unioning the results. Optimizer passes are
  /// opt-in via `options` and shape the captured plan once, at registration.
  Status RegisterFederatedFunction(const FederatedFunctionSpec& spec,
                                   const plan::PlanOptions& options = {});

  /// Registers from an already-built plan without recompiling. The body
  /// shares ownership of `fed_plan` — under the server's plan cache, the
  /// interpreter and fedplan EXPLAIN read the same instance.
  Status RegisterFederatedFunction(
      const FederatedFunctionSpec& spec,
      std::shared_ptr<const plan::FedPlan> fed_plan);

 private:
  fdbs::Database* db_;
  const appsys::AppSystemRegistry* systems_;
  const sim::LatencyModel* model_;
  sim::SystemState* state_;
  const sim::RetryPolicy* retry_;
};

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_JAVA_COUPLING_H_
