#include "federation/sample_scenario.h"

#include "federation/classify.h"

namespace fedflow::federation {

FederatedFunctionSpec GibKompNrSpec() {
  FederatedFunctionSpec spec;
  spec.name = "GibKompNr";
  spec.params = {Column{"KompName", DataType::kVarchar}};
  spec.calls = {{"GCN", "pdm", "GetCompNo", {SpecArg::Param("KompName")}}};
  spec.outputs = {{"Nr", "GCN", "No", DataType::kNull}};
  return spec;
}

FederatedFunctionSpec GetNumberSupp1234Spec() {
  FederatedFunctionSpec spec;
  spec.name = "GetNumberSupp1234";
  spec.params = {Column{"CompNo", DataType::kInt}};
  spec.calls = {{"GN",
                 "stock",
                 "GetNumber",
                 {SpecArg::Constant(Value::Int(1234)),
                  SpecArg::Param("CompNo")}}};
  spec.outputs = {{"Number", "GN", "Number", DataType::kBigInt}};
  return spec;
}

FederatedFunctionSpec GetSuppQualSpec() {
  FederatedFunctionSpec spec;
  spec.name = "GetSuppQual";
  spec.params = {Column{"SupplierName", DataType::kVarchar}};
  spec.calls = {
      {"GSN", "purchasing", "GetSupplierNo", {SpecArg::Param("SupplierName")}},
      {"GQ", "stock", "GetQuality",
       {SpecArg::NodeColumn("GSN", "SupplierNo")}},
  };
  spec.outputs = {{"Qual", "GQ", "Qual", DataType::kNull}};
  return spec;
}

FederatedFunctionSpec GetSuppQualReliaSpec() {
  FederatedFunctionSpec spec;
  spec.name = "GetSuppQualRelia";
  spec.params = {Column{"SupplierNo", DataType::kInt}};
  spec.calls = {
      {"GQ", "stock", "GetQuality", {SpecArg::Param("SupplierNo")}},
      {"GR", "purchasing", "GetReliability", {SpecArg::Param("SupplierNo")}},
  };
  spec.outputs = {
      {"Qual", "GQ", "Qual", DataType::kNull},
      {"Relia", "GR", "Relia", DataType::kNull},
  };
  return spec;
}

FederatedFunctionSpec GetSubCompDiscountsSpec() {
  FederatedFunctionSpec spec;
  spec.name = "GetSubCompDiscounts";
  spec.params = {Column{"CompNo", DataType::kInt},
                 Column{"Discount", DataType::kInt}};
  spec.calls = {
      {"GSCD", "pdm", "GetSubCompNo", {SpecArg::Param("CompNo")}},
      {"GCS4D", "purchasing", "GetCompSupp4Discount",
       {SpecArg::Param("Discount")}},
  };
  spec.joins = {{"GSCD", "SubCompNo", "GCS4D", "CompNo"}};
  spec.outputs = {
      {"SubCompNo", "GSCD", "SubCompNo", DataType::kNull},
      {"SupplierNo", "GCS4D", "SupplierNo", DataType::kNull},
  };
  return spec;
}

FederatedFunctionSpec GetNoSuppCompSpec() {
  FederatedFunctionSpec spec;
  spec.name = "GetNoSuppComp";
  spec.params = {Column{"SupplierName", DataType::kVarchar},
                 Column{"CompName", DataType::kVarchar}};
  spec.calls = {
      {"GSN", "purchasing", "GetSupplierNo", {SpecArg::Param("SupplierName")}},
      {"GCN", "pdm", "GetCompNo", {SpecArg::Param("CompName")}},
      {"GN", "stock", "GetNumber",
       {SpecArg::NodeColumn("GSN", "SupplierNo"),
        SpecArg::NodeColumn("GCN", "No")}},
  };
  spec.outputs = {{"Number", "GN", "Number", DataType::kNull}};
  return spec;
}

FederatedFunctionSpec GetSuppInfoSpec() {
  FederatedFunctionSpec spec;
  spec.name = "GetSuppInfo";
  spec.params = {Column{"SupplierName", DataType::kVarchar}};
  spec.calls = {
      {"GSN", "purchasing", "GetSupplierNo", {SpecArg::Param("SupplierName")}},
      {"GQ", "stock", "GetQuality",
       {SpecArg::NodeColumn("GSN", "SupplierNo")}},
      {"GR", "purchasing", "GetReliability",
       {SpecArg::NodeColumn("GSN", "SupplierNo")}},
  };
  spec.outputs = {
      {"Qual", "GQ", "Qual", DataType::kNull},
      {"Relia", "GR", "Relia", DataType::kNull},
  };
  return spec;
}

FederatedFunctionSpec AllCompNamesSpec() {
  FederatedFunctionSpec spec;
  spec.name = "AllCompNames";
  spec.params = {Column{"MaxNo", DataType::kInt}};
  spec.calls = {{"GCN", "pdm", "GetCompName", {SpecArg::Param("ITERATION")}}};
  spec.outputs = {{"CompName", "GCN", "CompName", DataType::kNull}};
  spec.loop.enabled = true;
  spec.loop.count_param = "MaxNo";
  spec.loop.union_all = true;
  return spec;
}

FederatedFunctionSpec BuySuppCompSpec() {
  FederatedFunctionSpec spec;
  spec.name = "BuySuppComp";
  spec.params = {Column{"SupplierNo", DataType::kInt},
                 Column{"CompName", DataType::kVarchar}};
  spec.calls = {
      {"GQ", "stock", "GetQuality", {SpecArg::Param("SupplierNo")}},
      {"GR", "purchasing", "GetReliability", {SpecArg::Param("SupplierNo")}},
      {"GG", "purchasing", "GetGrade",
       {SpecArg::NodeColumn("GQ", "Qual"), SpecArg::NodeColumn("GR", "Relia")}},
      {"GCN", "pdm", "GetCompNo", {SpecArg::Param("CompName")}},
      {"DP", "purchasing", "DecidePurchase",
       {SpecArg::NodeColumn("GG", "Grade"), SpecArg::NodeColumn("GCN", "No")}},
  };
  spec.outputs = {{"Answer", "DP", "Answer", DataType::kNull}};
  return spec;
}

FederatedFunctionSpec ProcureComponentSpec() {
  FederatedFunctionSpec spec;
  spec.name = "ProcureComponent";
  spec.params = {Column{"SupplierName", DataType::kVarchar},
                 Column{"CompNo", DataType::kInt},
                 Column{"Amount", DataType::kInt}};
  spec.calls = {
      {"GSN", "purchasing", "GetSupplierNo", {SpecArg::Param("SupplierName")}},
      {"RS", "stock", "ReserveStock",
       {SpecArg::NodeColumn("GSN", "SupplierNo"), SpecArg::Param("CompNo"),
        SpecArg::Param("Amount")}},
      {"PO", "purchasing", "PlaceOrder",
       {SpecArg::NodeColumn("GSN", "SupplierNo"), SpecArg::Param("CompNo"),
        SpecArg::Param("Amount")}},
  };
  // Undo arguments resolve against the captured GSN output, the federated
  // parameters, and (for CancelOrder) the write's own acknowledgement.
  spec.compensations = {
      {"RS", "ReleaseStock",
       {SpecArg::NodeColumn("GSN", "SupplierNo"), SpecArg::Param("CompNo"),
        SpecArg::Param("Amount")}},
      {"PO", "CancelOrder", {SpecArg::NodeColumn("PO", "OrderNo")}},
  };
  spec.outputs = {
      {"OrderNo", "PO", "OrderNo", DataType::kNull},
      {"Reserved", "RS", "Reserved", DataType::kNull},
  };
  return spec;
}

std::vector<FederatedFunctionSpec> SampleSpecs() {
  return {
      GibKompNrSpec(),         GetNumberSupp1234Spec(), GetSuppQualSpec(),
      GetSuppQualReliaSpec(),  GetSubCompDiscountsSpec(), GetNoSuppCompSpec(),
      GetSuppInfoSpec(),       BuySuppCompSpec(),
  };
}

std::vector<FederatedFunctionSpec> AllSampleSpecs() {
  std::vector<FederatedFunctionSpec> specs = SampleSpecs();
  specs.push_back(AllCompNamesSpec());
  return specs;
}

Result<std::unique_ptr<IntegrationServer>> MakeSampleServer(
    Architecture arch, const appsys::ScenarioConfig& config,
    sim::LatencyModel model, ControllerPoolOptions pool_options) {
  appsys::Scenario scenario = appsys::GenerateScenario(config);
  FEDFLOW_ASSIGN_OR_RETURN(
      std::unique_ptr<IntegrationServer> server,
      IntegrationServer::Create(arch, scenario, model, pool_options));
  for (const FederatedFunctionSpec& spec : AllSampleSpecs()) {
    FEDFLOW_ASSIGN_OR_RETURN(MappingCase c, ClassifySpec(spec));
    if (arch == Architecture::kUdtf && !UdtfSupports(c)) continue;
    if (arch == Architecture::kJavaUdtf && !JavaUdtfSupports(c)) continue;
    FEDFLOW_RETURN_NOT_OK(server->RegisterFederatedFunction(spec));
  }
  return server;
}

}  // namespace fedflow::federation
