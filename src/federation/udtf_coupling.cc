#include "federation/udtf_coupling.h"

#include <memory>
#include <sstream>

#include "cache/cache_key.h"
#include "cache/result_cache.h"
#include "common/strings.h"
#include "fdbs/sql_function.h"
#include "federation/binding.h"
#include "federation/classify.h"
#include "obs/trace.h"
#include "plan/lower_sql.h"
#include "sim/flow_state.h"
#include "sim/rmi.h"
#include "sql/parser.h"
#include "txn/saga.h"

namespace fedflow::federation {

namespace {

/// An Access UDTF: bridges one local function into the FDBS. Each invocation
/// models the paper's fenced-UDTF path: prepare the UDTF process, RMI to the
/// controller, controller dispatch into the application system, RMI return,
/// finish the UDTF.
class AccessUdtf : public fdbs::TableFunction {
 public:
  AccessUdtf(std::string system, const appsys::AppSystem* app,
             const appsys::LocalFunction& fn, Controller* controller,
             const sim::LatencyModel* model, sim::FaultInjector* faults)
      : system_(std::move(system)),
        app_(app),
        name_(fn.name),
        params_(fn.params),
        schema_(fn.result_schema),
        controller_(controller),
        model_(model),
        faults_(faults),
        rmi_(model, faults) {}

  const std::string& name() const override { return name_; }
  const std::vector<Column>& params() const override { return params_; }
  const Schema& result_schema() const override { return schema_; }

  Result<Table> Invoke(const std::vector<Value>& args,
                       fdbs::ExecContext& ctx) override {
    SimClock* clock = ctx.clock;
    obs::SpanScope span(ctx.trace, "audtf:" + name_, obs::Layer::kCoupling);
    span.SetAttribute("system", system_);
    txn::SagaExec* saga = ctx.flow != nullptr ? ctx.flow->saga : nullptr;
    if (saga != nullptr) {
      if (const txn::SagaStep* step = saga->WriteStepFor(system_, name_)) {
        return InvokeSagaWrite(*step, saga, args, ctx, span);
      }
    }
    // Opt-in memoization of the local call: a resident entry at the system's
    // current data version skips the whole fenced-UDTF + RMI + dispatch path.
    const bool memoize = ctx.use_result_cache && ctx.result_cache != nullptr &&
                         app_ != nullptr;
    cache::ResultCache::Key key;
    if (memoize) {
      key.scope = system_;
      key.function = name_;
      key.args = cache::FingerprintArgs(args);
      key.version = std::to_string(app_->data_version());
      if (clock != nullptr) {
        clock->Charge(sim::steps::kCacheProbe, model_->cache_probe_us);
      }
      Table resident(schema_);
      if (ctx.result_cache->Lookup(key, &resident)) {
        span.SetAttribute("cache", "hit");
        if (saga != nullptr) RecordCapture(saga, resident);
        return resident;
      }
      span.SetAttribute("cache", "miss");
    }
    const VDuration uncached_start = clock != nullptr ? clock->now() : 0;
    if (clock != nullptr) {
      clock->Charge(sim::steps::kUdtfPrepareA,
                    model_->udtf_prepare_a_us + model_->controller_attach_us);
    }
    Controller::DispatchResult dispatched;
    sim::RmiChannel::CallCosts costs;
    obs::TraceSession* trace = ctx.trace;
    Controller* controller = FlowController(ctx);
    auto handler = [this, controller, &dispatched, trace](
                       const std::string& fn,
                       const std::vector<Value>& remote_args) -> Result<Table> {
      // Runs under the serve-side RMI span: the local-function execution
      // inside the application system gets its own appsys-layer span.
      obs::SpanScope local(trace, "local:" + fn, obs::Layer::kAppsys);
      local.SetAttribute("system", system_);
      Result<Controller::DispatchResult> d =
          controller->Dispatch(system_, fn, remote_args);
      if (!d.ok()) {
        local.SetStatus(d.status());
        return d.status();
      }
      dispatched = std::move(*d);
      return dispatched.table;
    };
    Result<Table> out = rmi_.Invoke(name_, args, handler, &costs, ctx.trace);
    if (!out.ok()) {
      span.SetStatus(out.status());
      // A failed call is not free: the request leg was spent and the error
      // response still travels back (satellite fix for rmi cost accounting).
      if (clock != nullptr) {
        clock->Charge(sim::steps::kUdtfRmiCalls, costs.call_us);
        clock->Charge(sim::steps::kUdtfRmiReturns, costs.return_us);
      }
      return out.status();
    }
    if (clock != nullptr) {
      clock->Charge(sim::steps::kUdtfRmiCalls, costs.call_us);
      clock->Charge(sim::steps::kUdtfControllerRuns,
                    dispatched.dispatch_cost_us);
      clock->Charge(sim::steps::kUdtfProcessActivities, dispatched.app_cost_us);
      clock->Charge(sim::steps::kUdtfFinishA,
                    model_->udtf_finish_a_us + model_->controller_return_us);
      clock->Charge(sim::steps::kUdtfRmiReturns, costs.return_us);
    }
    if (memoize) {
      cache::ResultCache::Entry entry;
      entry.table = *out;
      entry.saved_cost_us =
          clock != nullptr ? clock->now() - uncached_start : 0;
      if (ctx.flow != nullptr) {
        entry.slot = ctx.flow->slot;
        entry.tenant = ctx.flow->tenant;
      }
      // The store may have moved under this call (key.version is stale then);
      // Insert keyed by the version read before the call keeps such an entry
      // unreachable for future lookups, which re-stamp the current version.
      ctx.result_cache->Insert(key, std::move(entry));
    }
    if (saga != nullptr) RecordCapture(saga, *out);
    return out;
  }

  /// Streaming A-UDTF invocation: the dispatch into the application system
  /// still happens eagerly (the remote side computes its full result), but
  /// the RMI return leg is chunked — each pulled batch charges its share of
  /// the wire cost, and a fully drained stream charges exactly what Invoke
  /// charges.
  Result<fedflow::RowSourcePtr> InvokeStream(const std::vector<Value>& args,
                                             fdbs::ExecContext& ctx,
                                             size_t batch_size) override {
    txn::SagaExec* saga = ctx.flow != nullptr ? ctx.flow->saga : nullptr;
    const bool saga_step =
        saga != nullptr && (saga->WriteStepFor(system_, name_) != nullptr ||
                            !saga->CaptureNodeFor(system_, name_).empty());
    if (saga_step || (ctx.use_result_cache && ctx.result_cache != nullptr &&
                      app_ != nullptr)) {
      // Memoization wants the materialized table anyway, and a fully drained
      // stream charges exactly what Invoke charges — so the cached path runs
      // eagerly and streams the result out of the (possibly resident) table.
      // Saga write and capture steps take the same route: the dedup ledger
      // and undo-arg capture need the materialized acknowledgement.
      FEDFLOW_ASSIGN_OR_RETURN(Table out, Invoke(args, ctx));
      return fedflow::MakeTableSource(std::move(out), batch_size);
    }
    SimClock* clock = ctx.clock;
    obs::SpanScope span(ctx.trace, "audtf:" + name_, obs::Layer::kCoupling);
    span.SetAttribute("system", system_);
    span.SetAttribute("streaming", "true");
    if (clock != nullptr) {
      clock->Charge(sim::steps::kUdtfPrepareA,
                    model_->udtf_prepare_a_us + model_->controller_attach_us);
    }
    Controller::DispatchResult dispatched;
    obs::TraceSession* trace = ctx.trace;
    Controller* controller = FlowController(ctx);
    auto handler = [this, controller, &dispatched, trace](
                       const std::string& fn,
                       const std::vector<Value>& remote_args) -> Result<Table> {
      obs::SpanScope local(trace, "local:" + fn, obs::Layer::kAppsys);
      local.SetAttribute("system", system_);
      Result<Controller::DispatchResult> d =
          controller->Dispatch(system_, fn, remote_args);
      if (!d.ok()) {
        local.SetStatus(d.status());
        return d.status();
      }
      dispatched = std::move(*d);
      return dispatched.table;
    };
    sim::RmiChannel::CallCosts costs;
    sim::RmiChannel::ChunkCostFn on_chunk;
    if (clock != nullptr) {
      on_chunk = [clock](VDuration cost) {
        clock->Charge(sim::steps::kUdtfRmiReturns, cost);
      };
    }
    Result<fedflow::RowSourcePtr> source =
        rmi_.InvokeStreaming(name_, args, handler, batch_size, &costs,
                             std::move(on_chunk), ctx.trace);
    if (!source.ok()) {
      span.SetStatus(source.status());
      if (clock != nullptr) {
        clock->Charge(sim::steps::kUdtfRmiCalls, costs.call_us);
        clock->Charge(sim::steps::kUdtfRmiReturns, costs.return_us);
      }
      return source.status();
    }
    if (clock != nullptr) {
      clock->Charge(sim::steps::kUdtfRmiCalls, costs.call_us);
      clock->Charge(sim::steps::kUdtfControllerRuns,
                    dispatched.dispatch_cost_us);
      clock->Charge(sim::steps::kUdtfProcessActivities, dispatched.app_cost_us);
      clock->Charge(sim::steps::kUdtfFinishA,
                    model_->udtf_finish_a_us + model_->controller_return_us);
      // Register the RMI-returns step at its usual breakdown position; the
      // actual cost arrives per chunk as the stream is drained.
      clock->ChargeWork(sim::steps::kUdtfRmiReturns, 0);
    }
    return source;
  }

 private:
  /// Records the output of a capture-source node (one whose result feeds a
  /// compensation argument of a later write) for undo-arg resolution.
  void RecordCapture(txn::SagaExec* saga, const Table& out) const {
    std::string node = saga->CaptureNodeFor(system_, name_);
    if (!node.empty()) saga->RecordOutput(node, out);
  }

  /// The saga write path of this A-UDTF. It differs from the read path in
  /// four ways: the call is never memoized (a write must reach the store);
  /// the idempotency key is marshalled with the RMI request as an extra
  /// VARCHAR argument, so its bytes are charged at real wire cost; a
  /// duplicate key is answered from the dedup ledger without re-dispatching
  /// into the application system; and the fault consultation happens AFTER
  /// the local call applied — an injected fault models the acknowledgement
  /// getting lost on the return leg, which is exactly the case the ledger
  /// exists for. The member rmi_ consults faults BEFORE its handler runs, so
  /// this path uses a fault-free channel and consults the injector by hand.
  Result<Table> InvokeSagaWrite(const txn::SagaStep& step, txn::SagaExec* saga,
                                const std::vector<Value>& args,
                                fdbs::ExecContext& ctx, obs::SpanScope& span) {
    SimClock* clock = ctx.clock;
    span.SetAttribute("saga.step", step.node);
    const std::string key = saga->IdempotencyKey(step);
    std::vector<Value> wire_args = args;
    wire_args.push_back(Value::Varchar(key));
    if (clock != nullptr) {
      clock->Charge(sim::steps::kUdtfPrepareA,
                    model_->udtf_prepare_a_us + model_->controller_attach_us);
    }
    sim::RmiChannel channel(model_, nullptr);
    sim::RmiChannel::CallCosts costs;
    obs::TraceSession* trace = ctx.trace;

    // Duplicate key: a previous attempt applied this write but its response
    // was lost. Replay the recorded acknowledgement; the store does not run
    // the local function again.
    std::optional<Table> recorded = saga->DedupLookup(step);
    if (recorded.has_value()) {
      span.SetAttribute("saga.dedup", "hit");
      auto replay = [this, clock, &recorded](
                        const std::string&,
                        const std::vector<Value>&) -> Result<Table> {
        if (clock != nullptr) {
          clock->Charge(sim::steps::kSagaDedup, model_->txn_dedup_us);
        }
        return *recorded;
      };
      Result<Table> out =
          channel.Invoke(name_, wire_args, replay, &costs, trace);
      if (clock != nullptr) {
        clock->Charge(sim::steps::kUdtfRmiCalls, costs.call_us);
        clock->Charge(sim::steps::kUdtfFinishA,
                      model_->udtf_finish_a_us + model_->controller_return_us);
        clock->Charge(sim::steps::kUdtfRmiReturns, costs.return_us);
      }
      return out;
    }

    Controller::DispatchResult dispatched;
    Controller* controller = FlowController(ctx);
    sim::FaultInjector* faults =
        ctx.flow != nullptr ? ctx.flow->faults : faults_;
    VDuration spike_us = 0;
    auto handler = [this, controller, saga, &step, &key, &dispatched,
                    &spike_us, trace, faults](
                       const std::string& fn,
                       const std::vector<Value>& remote_args) -> Result<Table> {
      obs::SpanScope local(trace, "local:" + fn, obs::Layer::kAppsys);
      local.SetAttribute("system", system_);
      local.SetAttribute("saga.step", step.node);
      // The idempotency key rides last in the request; strip it before the
      // dispatch into the application system.
      std::vector<Value> call_args(remote_args.begin(),
                                   remote_args.end() - 1);
      Result<Controller::DispatchResult> d =
          controller->Dispatch(system_, fn, call_args);
      if (!d.ok()) {
        local.SetStatus(d.status());
        return d.status();
      }
      dispatched = std::move(*d);
      // The write is applied from here on: ledger + saga log first, THEN the
      // fault consultation — a fault loses the acknowledgement after the
      // store committed, never before.
      Status ledger = saga->RecordApplied(step, dispatched.table);
      if (!ledger.ok()) {
        local.SetStatus(ledger);
        return ledger;
      }
      sim::FaultInjector::Decision decision;
      if (faults != nullptr) decision = faults->Consult(fn);
      spike_us = decision.extra_latency_us;
      if (decision.fault != sim::FaultInjector::Fault::kNone) {
        Status lost =
            Status::Unavailable("saga: acknowledgement of applied write " +
                                fn + " lost on the return leg");
        local.AddEvent("write applied", "ack recorded under " + key);
        local.SetStatus(lost);
        return lost;
      }
      return dispatched.table;
    };
    Result<Table> out = channel.Invoke(name_, wire_args, handler, &costs,
                                       trace);
    if (!out.ok()) {
      span.SetStatus(out.status());
      // The request leg, the dispatch, and the applied local work were all
      // spent before the failure; only the finish step is saved.
      if (clock != nullptr) {
        clock->Charge(sim::steps::kUdtfRmiCalls, costs.call_us);
        clock->Charge(sim::steps::kUdtfControllerRuns,
                      dispatched.dispatch_cost_us);
        clock->Charge(sim::steps::kUdtfProcessActivities,
                      dispatched.app_cost_us + spike_us);
        clock->Charge(sim::steps::kUdtfRmiReturns, costs.return_us);
      }
      return out.status();
    }
    if (clock != nullptr) {
      clock->Charge(sim::steps::kUdtfRmiCalls, costs.call_us);
      clock->Charge(sim::steps::kUdtfControllerRuns,
                    dispatched.dispatch_cost_us);
      clock->Charge(sim::steps::kUdtfProcessActivities,
                    dispatched.app_cost_us + spike_us);
      clock->Charge(sim::steps::kUdtfFinishA,
                    model_->udtf_finish_a_us + model_->controller_return_us);
      clock->Charge(sim::steps::kUdtfRmiReturns, costs.return_us);
    }
    return out;
  }

  /// The controller this invocation dispatches through: the flow's leased
  /// controller under pooled execution, else the coupling's construction-time
  /// controller (single-flow mode — bit-identical legacy behavior).
  Controller* FlowController(const fdbs::ExecContext& ctx) const {
    if (ctx.flow != nullptr && ctx.flow->controller != nullptr) {
      return ctx.flow->controller;
    }
    return controller_;
  }

  std::string system_;
  const appsys::AppSystem* app_;
  std::string name_;
  std::vector<Column> params_;
  Schema schema_;
  Controller* controller_;
  const sim::LatencyModel* model_;
  sim::FaultInjector* faults_;
  sim::RmiChannel rmi_;
};

/// Decorates the SQL-bodied I-UDTF with start/finish and warm-up costs.
class InstrumentedIUdtf : public fdbs::TableFunction {
 public:
  InstrumentedIUdtf(std::shared_ptr<fdbs::TableFunction> inner,
                    const sim::LatencyModel* model, sim::SystemState* state,
                    const sim::RetryPolicy* retry)
      : inner_(std::move(inner)), model_(model), state_(state),
        retry_(retry) {}

  const std::string& name() const override { return inner_->name(); }
  const std::vector<Column>& params() const override {
    return inner_->params();
  }
  const Schema& result_schema() const override {
    return inner_->result_schema();
  }

  Result<Table> Invoke(const std::vector<Value>& args,
                       fdbs::ExecContext& ctx) override {
    SimClock* clock = ctx.clock;
    sim::SystemState* state = FlowLedger(ctx);
    obs::SpanScope span(ctx.trace, "iudtf:" + name(), obs::Layer::kCoupling);
    if (clock != nullptr && state != nullptr) {
      switch (state->QueryWarmth(name())) {
        case sim::SystemState::Warmth::kCold:
          clock->Charge(sim::steps::kWarmup, model_->cold_infrastructure_us +
                                                 model_->first_run_function_us);
          break;
        case sim::SystemState::Warmth::kWarm:
          clock->Charge(sim::steps::kWarmup, model_->first_run_function_us);
          break;
        case sim::SystemState::Warmth::kHot:
          break;
      }
    }
    // Statement-level retry: the I-UDTF holds no state between attempts, so
    // a retriable failure restarts the WHOLE body statement — every lateral
    // A-UDTF reference runs (and charges) again. This is the architectural
    // price the fault/recovery experiment measures.
    sim::RetryLoop retry(retry_, clock, ctx.metrics, name());
    while (true) {
      if (clock != nullptr) {
        clock->Charge(sim::steps::kUdtfStartI, model_->udtf_start_i_us);
      }
      Result<Table> out = inner_->Invoke(args, ctx);
      if (out.ok()) {
        if (clock != nullptr) {
          clock->Charge(sim::steps::kUdtfFinishI, model_->udtf_finish_i_us);
        }
        if (state != nullptr) state->MarkRun(name());
        return out;
      }
      if (!retry.ShouldRetry(out.status())) {
        span.SetStatus(out.status());
        return out.status();
      }
      span.AddEvent("retrying statement", out.status().message());
      FEDFLOW_RETURN_NOT_OK(retry.Backoff());
    }
  }

  /// Streaming I-UDTF invocation: charges warm-up and start/finish exactly
  /// as Invoke (clock charges are order-independent), then passes the
  /// inner function's stream through untouched.
  Result<fedflow::RowSourcePtr> InvokeStream(const std::vector<Value>& args,
                                             fdbs::ExecContext& ctx,
                                             size_t batch_size) override {
    SimClock* clock = ctx.clock;
    sim::SystemState* state = FlowLedger(ctx);
    obs::SpanScope span(ctx.trace, "iudtf:" + name(), obs::Layer::kCoupling);
    span.SetAttribute("streaming", "true");
    if (clock != nullptr && state != nullptr) {
      switch (state->QueryWarmth(name())) {
        case sim::SystemState::Warmth::kCold:
          clock->Charge(sim::steps::kWarmup, model_->cold_infrastructure_us +
                                                 model_->first_run_function_us);
          break;
        case sim::SystemState::Warmth::kWarm:
          clock->Charge(sim::steps::kWarmup, model_->first_run_function_us);
          break;
        case sim::SystemState::Warmth::kHot:
          break;
      }
    }
    // Same statement-level retry as Invoke; only the eager part of the inner
    // execution can fail here (stream construction), and it restarts whole.
    sim::RetryLoop retry(retry_, clock, ctx.metrics, name());
    while (true) {
      if (clock != nullptr) {
        clock->Charge(sim::steps::kUdtfStartI, model_->udtf_start_i_us);
      }
      Result<fedflow::RowSourcePtr> source =
          inner_->InvokeStream(args, ctx, batch_size);
      if (source.ok()) {
        if (clock != nullptr) {
          clock->Charge(sim::steps::kUdtfFinishI, model_->udtf_finish_i_us);
        }
        if (state != nullptr) state->MarkRun(name());
        return source;
      }
      if (!retry.ShouldRetry(source.status())) {
        span.SetStatus(source.status());
        return source.status();
      }
      span.AddEvent("retrying statement", source.status().message());
      FEDFLOW_RETURN_NOT_OK(retry.Backoff());
    }
  }

 private:
  /// The warmth ledger this invocation charges against: the flow's leased
  /// controller's ledger under pooled execution, else the construction-time
  /// global state (single-flow mode).
  sim::SystemState* FlowLedger(const fdbs::ExecContext& ctx) const {
    if (ctx.flow != nullptr && ctx.flow->warmth != nullptr) {
      return ctx.flow->warmth;
    }
    return state_;
  }

  std::shared_ptr<fdbs::TableFunction> inner_;
  const sim::LatencyModel* model_;
  sim::SystemState* state_;
  const sim::RetryPolicy* retry_;
};

}  // namespace

Status UdtfCoupling::RegisterAccessUdtfs() {
  for (const std::string& sys_name : systems_->Names()) {
    FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem * sys, systems_->Get(sys_name));
    for (const std::string& fn_name : sys->FunctionNames()) {
      FEDFLOW_ASSIGN_OR_RETURN(const appsys::LocalFunction* fn,
                               sys->GetFunction(fn_name));
      FEDFLOW_RETURN_NOT_OK(db_->catalog().RegisterTableFunction(
          std::make_shared<AccessUdtf>(sys_name, sys, *fn, controller_, model_,
                                       faults_)));
    }
  }
  return Status::OK();
}

Result<std::string> UdtfCoupling::CompileIUdtfSql(
    const FederatedFunctionSpec& spec,
    const plan::PlanOptions& options) const {
  FEDFLOW_ASSIGN_OR_RETURN(plan::FedPlan fed_plan,
                           plan::BuildPlan(spec, *systems_, *model_, options));
  return CompileIUdtfSql(spec, fed_plan);
}

Result<std::string> UdtfCoupling::CompileIUdtfSql(
    const FederatedFunctionSpec& spec, const plan::FedPlan& fed_plan) const {
  if (!UdtfSupports(fed_plan.mapping_case)) {
    return Status::Unsupported(
        std::string("the enhanced SQL UDTF architecture cannot express the ") +
        MappingCaseName(fed_plan.mapping_case) +
        " case (no loop/control structures in a single SQL statement)");
  }

  const Schema& returns = fed_plan.result_schema;
  std::ostringstream sql;
  sql << "CREATE FUNCTION " << spec.name << " (";
  for (size_t i = 0; i < spec.params.size(); ++i) {
    if (i > 0) sql << ", ";
    sql << spec.params[i].name << " " << DataTypeName(spec.params[i].type);
  }
  sql << ")\nRETURNS TABLE (";
  for (size_t i = 0; i < returns.num_columns(); ++i) {
    if (i > 0) sql << ", ";
    sql << returns.column(i).name << " "
        << DataTypeName(returns.column(i).type);
  }
  sql << ")\nLANGUAGE SQL RETURN\n";
  // DB2 style: the body references the function's own parameters as
  // FunctionName.ParamName.
  FEDFLOW_ASSIGN_OR_RETURN(
      std::string select,
      plan::RenderSelectSql(fed_plan, [&spec](const std::string& param) {
        return spec.name + "." + param;
      }));
  sql << select;
  return sql.str();
}

Result<std::string> UdtfCoupling::CompilePsmSql(
    const FederatedFunctionSpec& spec,
    const plan::PlanOptions& options) const {
  // Compile the plan of the spec as declared — the loop stays in the IR
  // (RenderSelectSql renders the body graph), so no loop-stripped spec copy
  // is needed.
  FEDFLOW_ASSIGN_OR_RETURN(plan::FedPlan fed_plan,
                           plan::BuildPlan(spec, *systems_, *model_, options));
  return CompilePsmSql(spec, fed_plan);
}

Result<std::string> UdtfCoupling::CompilePsmSql(
    const FederatedFunctionSpec& spec, const plan::FedPlan& fed_plan) const {
  if (fed_plan.mapping_case == MappingCase::kGeneral) {
    return Status::Unsupported(
        "a stored procedure still implements ONE federated function; the "
        "general case needs a shared mapping artifact");
  }

  // The body's SELECT, with parameters (and ITERATION, when looping)
  // referenced as ProcName.X — PSM variables resolve the same way.
  FEDFLOW_ASSIGN_OR_RETURN(
      std::string select,
      plan::RenderSelectSql(fed_plan, [&spec](const std::string& p) {
        return spec.name + "." + p;
      }));

  std::ostringstream sql;
  sql << "CREATE PROCEDURE " << spec.name << " (";
  for (size_t i = 0; i < spec.params.size(); ++i) {
    if (i > 0) sql << ", ";
    sql << spec.params[i].name << " " << DataTypeName(spec.params[i].type);
  }
  sql << ")\nBEGIN\n";
  if (spec.loop.enabled) {
    sql << "  DECLARE ITERATION INT;\n"
        << "  SET ITERATION = 0;\n"
        << "  WHILE ITERATION < " << spec.name << "." << spec.loop.count_param
        << " DO\n"
        << "    SET ITERATION = ITERATION + 1;\n"
        << "    EMIT " << select << ";\n"
        << "  END WHILE;\n";
  } else {
    sql << "  RETURN " << select << ";\n";
  }
  sql << "END";
  return sql.str();
}

Status UdtfCoupling::RegisterPsmProcedure(const FederatedFunctionSpec& spec) {
  FEDFLOW_ASSIGN_OR_RETURN(std::string sql, CompilePsmSql(spec));
  FEDFLOW_ASSIGN_OR_RETURN(Table ignored, db_->Execute(sql));
  (void)ignored;
  return Status::OK();
}

Status UdtfCoupling::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec, const plan::PlanOptions& options) {
  FEDFLOW_ASSIGN_OR_RETURN(plan::FedPlan fed_plan,
                           plan::BuildPlan(spec, *systems_, *model_, options));
  return RegisterFederatedFunction(spec, fed_plan);
}

Status UdtfCoupling::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec, const plan::FedPlan& fed_plan) {
  FEDFLOW_ASSIGN_OR_RETURN(std::string sql, CompileIUdtfSql(spec, fed_plan));
  // Dogfood: parse the generated SQL with our own parser.
  FEDFLOW_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind != sql::StatementKind::kCreateFunction) {
    return Status::Internal("generated I-UDTF SQL did not parse as "
                            "CREATE FUNCTION");
  }
  auto def = std::make_shared<sql::CreateFunctionStmt>();
  def->name = stmt.create_function->name;
  def->params = stmt.create_function->params;
  def->returns = stmt.create_function->returns;
  def->body = std::move(stmt.create_function->body);
  auto inner = std::make_shared<fdbs::SqlTableFunction>(std::move(def));
  return db_->catalog().RegisterTableFunction(std::make_shared<InstrumentedIUdtf>(
      std::move(inner), model_, state_, retry_));
}

}  // namespace fedflow::federation
