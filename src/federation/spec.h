// The federated-function specification: the mapping graph from one federated
// function to local functions of application systems (paper §2/§3). One spec
// is the single source of truth compiled by BOTH couplings — into a workflow
// process (WfMS approach) or into CREATE FUNCTION SQL (enhanced SQL UDTF
// approach). The UDTF compiler rejects what SQL cannot express (cycles),
// which is how the paper's mapping-complexity matrix is computed rather than
// asserted.
#ifndef FEDFLOW_FEDERATION_SPEC_H_
#define FEDFLOW_FEDERATION_SPEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/value.h"

namespace fedflow::federation {

/// One argument of a local-function call within the mapping.
struct SpecArg {
  enum class Kind {
    kConstant,    ///< fixed value (paper's "supply of constant parameters")
    kParam,       ///< parameter of the federated function
    kNodeColumn,  ///< output column of another call node (dependency)
  };
  Kind kind = Kind::kConstant;
  Value constant;
  std::string param;
  std::string node;
  std::string column;

  static SpecArg Constant(Value v) {
    SpecArg a;
    a.kind = Kind::kConstant;
    a.constant = std::move(v);
    return a;
  }
  static SpecArg Param(std::string name) {
    SpecArg a;
    a.kind = Kind::kParam;
    a.param = std::move(name);
    return a;
  }
  static SpecArg NodeColumn(std::string node, std::string column) {
    SpecArg a;
    a.kind = Kind::kNodeColumn;
    a.node = std::move(node);
    a.column = std::move(column);
    return a;
  }
};

/// One local-function call node of the mapping graph. `id` doubles as the
/// correlation name in generated SQL (e.g. "GQ") and the activity name in the
/// generated workflow process.
struct SpecCall {
  std::string id;
  std::string system;
  std::string function;
  std::vector<SpecArg> args;
};

/// An equi-join predicate between two call results (the independent case's
/// "join with selection", e.g. GSCD.SubCompNo = GCS4D.CompNo).
struct SpecJoin {
  std::string left_node;
  std::string left_column;
  std::string right_node;
  std::string right_column;
};

/// One output column of the federated function.
struct SpecOutput {
  std::string name;                       ///< federated column name
  std::string node;                       ///< source call node
  std::string column;                     ///< source column
  DataType cast_to = DataType::kNull;     ///< optional cast (simple case)
};

/// Compensation pairing of one *mutating* call node (saga semantics): when
/// the federated function aborts after `node` applied its write, the saga
/// coordinator undoes it by calling `function` on the same application
/// system. Arguments resolve like call arguments — constants, federated
/// parameters, or output columns of nodes that ran before the abort
/// (including the write node's own output, e.g. PlaceOrder's OrderNo feeding
/// CancelOrder) — and are snapshotted when the write applies.
struct SpecCompensation {
  std::string node;           ///< id of the mutating call node being paired
  std::string function;       ///< compensation function on the node's system
  std::vector<SpecArg> args;  ///< undo arguments, resolved at apply time
};

/// Optional do-until loop around the whole call graph (the cyclic case, e.g.
/// AllCompNames). The implicit ITERATION counter (1-based) is available as an
/// argument via SpecArg::Param("ITERATION").
struct SpecLoop {
  bool enabled = false;
  /// Loop until ITERATION >= the value of this federated parameter.
  std::string count_param;
  /// Union all iterations' outputs (vs. keep only the last iteration).
  bool union_all = true;
};

/// The complete mapping specification of one federated function.
struct FederatedFunctionSpec {
  std::string name;
  std::vector<Column> params;
  std::vector<SpecCall> calls;
  std::vector<SpecJoin> joins;
  std::vector<SpecOutput> outputs;
  std::vector<SpecCompensation> compensations;
  SpecLoop loop;

  /// The compensation paired with call node `id`; nullptr when none.
  const SpecCompensation* FindCompensation(const std::string& id) const;

  /// The declared result schema, derived from outputs (casts applied).
  /// Column types resolve through the call nodes' function signatures, so
  /// this needs the registry; the couplings compute it during compilation.
  Result<const SpecCall*> FindCall(const std::string& id) const;
};

/// Structural validation: unique ids, known arg/output/join references,
/// acyclic node dependencies, loop parameter declared, ITERATION only used
/// inside loops. (Function existence is checked by the couplings, which know
/// the application systems.)
Status ValidateSpec(const FederatedFunctionSpec& spec);

/// Stable topological order of the call nodes (by arg dependencies), with
/// ties broken by declaration order. InvalidArgument on dependency cycles.
Result<std::vector<size_t>> TopologicalCallOrder(
    const FederatedFunctionSpec& spec);

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_SPEC_H_
