// Remote SQL sources: the FDBS side of the paper's architecture integrates
// several SQL databases besides the function-only application systems ("the
// query is divided into the appropriate SQL subqueries for the SQL sources").
// A RemoteSqlSource wraps another relational database behind the relational
// wrapper interface: attached tables become external tables of the federation
// FDBS; each scan ships one subquery to the source and pays a modeled
// round-trip plus result-marshalling cost.
#ifndef FEDFLOW_FEDERATION_SQL_SOURCE_H_
#define FEDFLOW_FEDERATION_SQL_SOURCE_H_

#include <memory>
#include <string>

#include "fdbs/database.h"
#include "sim/latency.h"

namespace fedflow::federation {

/// A remote relational database reachable through SQL subqueries.
class RemoteSqlSource {
 public:
  /// `name` identifies the source in error messages and cost accounting.
  RemoteSqlSource(std::string name, const sim::LatencyModel* model)
      : name_(std::move(name)),
        model_(model),
        db_(std::make_unique<fdbs::Database>()) {}

  const std::string& name() const { return name_; }

  /// The remote database itself (load data, create tables, ...).
  fdbs::Database& database() { return *db_; }

  /// Attaches remote table `remote_table` to `federation_db` under
  /// `local_name`. Every scan of the attached table executes
  /// SELECT * FROM <remote_table> on this source and charges the
  /// "SQL subqueries" cost (round trip + per-byte result marshalling).
  Status AttachTable(fdbs::Database* federation_db,
                     const std::string& local_name,
                     const std::string& remote_table);

  /// Number of subqueries shipped to this source so far.
  int64_t subqueries_shipped() const { return subqueries_; }

 private:
  std::string name_;
  const sim::LatencyModel* model_;
  std::unique_ptr<fdbs::Database> db_;
  int64_t subqueries_ = 0;
};

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_SQL_SOURCE_H_
