#include "federation/binding.h"

namespace fedflow::federation {

namespace {

Result<const appsys::LocalFunction*> FindFunction(
    const FederatedFunctionSpec& spec,
    const appsys::AppSystemRegistry& systems, const std::string& node) {
  FEDFLOW_ASSIGN_OR_RETURN(const SpecCall* call, spec.FindCall(node));
  FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem * sys, systems.Get(call->system));
  return sys->GetFunction(call->function);
}

}  // namespace

Status BindSpec(const FederatedFunctionSpec& spec,
                const appsys::AppSystemRegistry& systems) {
  FEDFLOW_RETURN_NOT_OK(ValidateSpec(spec));
  for (const SpecCall& call : spec.calls) {
    FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem * sys,
                             systems.Get(call.system));
    FEDFLOW_ASSIGN_OR_RETURN(const appsys::LocalFunction* fn,
                             sys->GetFunction(call.function));
    if (fn->params.size() != call.args.size()) {
      return Status::InvalidArgument(
          "call " + call.id + ": " + call.system + "." + call.function +
          " expects " + std::to_string(fn->params.size()) +
          " argument(s), spec supplies " + std::to_string(call.args.size()));
    }
    for (const SpecArg& arg : call.args) {
      if (arg.kind == SpecArg::Kind::kNodeColumn) {
        FEDFLOW_RETURN_NOT_OK(
            NodeColumnType(spec, systems, arg.node, arg.column).status());
      }
    }
  }
  for (const SpecJoin& join : spec.joins) {
    FEDFLOW_RETURN_NOT_OK(
        NodeColumnType(spec, systems, join.left_node, join.left_column)
            .status());
    FEDFLOW_RETURN_NOT_OK(
        NodeColumnType(spec, systems, join.right_node, join.right_column)
            .status());
  }
  for (const SpecOutput& out : spec.outputs) {
    FEDFLOW_RETURN_NOT_OK(
        NodeColumnType(spec, systems, out.node, out.column).status());
  }
  return Status::OK();
}

Result<const Schema*> NodeResultSchema(
    const FederatedFunctionSpec& spec,
    const appsys::AppSystemRegistry& systems, const std::string& node) {
  FEDFLOW_ASSIGN_OR_RETURN(const appsys::LocalFunction* fn,
                           FindFunction(spec, systems, node));
  return &fn->result_schema;
}

Result<DataType> NodeColumnType(const FederatedFunctionSpec& spec,
                                const appsys::AppSystemRegistry& systems,
                                const std::string& node,
                                const std::string& column) {
  FEDFLOW_ASSIGN_OR_RETURN(const appsys::LocalFunction* fn,
                           FindFunction(spec, systems, node));
  FEDFLOW_ASSIGN_OR_RETURN(size_t idx, fn->result_schema.FindColumn(column));
  return fn->result_schema.column(idx).type;
}

Result<Schema> ResolveResultSchema(const FederatedFunctionSpec& spec,
                                   const appsys::AppSystemRegistry& systems) {
  Schema schema;
  for (const SpecOutput& out : spec.outputs) {
    FEDFLOW_ASSIGN_OR_RETURN(DataType t,
                             NodeColumnType(spec, systems, out.node,
                                            out.column));
    if (out.cast_to != DataType::kNull) t = out.cast_to;
    schema.AddColumn(out.name, t);
  }
  return schema;
}

}  // namespace fedflow::federation
