#include "federation/classify.h"

#include <set>

#include "common/strings.h"
#include "plan/shape.h"

namespace fedflow::federation {

const char* MappingCaseName(MappingCase c) {
  switch (c) {
    case MappingCase::kTrivial:
      return "trivial";
    case MappingCase::kSimple:
      return "simple";
    case MappingCase::kIndependent:
      return "independent";
    case MappingCase::kDependentLinear:
      return "dependent: linear";
    case MappingCase::kDependent1N:
      return "dependent: (1:n)";
    case MappingCase::kDependentN1:
      return "dependent: (n:1)";
    case MappingCase::kDependentCyclic:
      return "dependent: cyclic";
    case MappingCase::kGeneral:
      return "general";
  }
  return "?";
}

Result<MappingCase> ClassifySpec(const FederatedFunctionSpec& spec) {
  // The dependency-shape rules live in plan/shape.h (header-only) so the
  // plan IR classifier and this spec-level classifier cannot drift apart —
  // fedlint cross-checks them per spec.
  FEDFLOW_RETURN_NOT_OK(ValidateSpec(spec));
  return plan::ClassifyShape(plan::ShapeOfSpec(spec));
}

Result<MappingCase> ClassifySet(
    const std::vector<FederatedFunctionSpec>& specs) {
  if (specs.empty()) {
    return Status::InvalidArgument("empty spec set");
  }
  if (specs.size() > 1) {
    // General when federated functions share local functions.
    std::set<std::string> seen;
    for (const FederatedFunctionSpec& spec : specs) {
      std::set<std::string> mine;
      for (const SpecCall& c : spec.calls) {
        mine.insert(ToUpper(c.system) + "." + ToUpper(c.function));
      }
      for (const std::string& fn : mine) {
        if (seen.count(fn) > 0) return MappingCase::kGeneral;
      }
      seen.insert(mine.begin(), mine.end());
    }
  }
  MappingCase worst = MappingCase::kTrivial;
  for (const FederatedFunctionSpec& spec : specs) {
    FEDFLOW_ASSIGN_OR_RETURN(MappingCase c, ClassifySpec(spec));
    if (static_cast<int>(c) > static_cast<int>(worst)) worst = c;
  }
  return worst;
}

bool UdtfSupports(MappingCase c) {
  switch (c) {
    case MappingCase::kDependentCyclic:
    case MappingCase::kGeneral:
      return false;
    case MappingCase::kTrivial:
    case MappingCase::kSimple:
    case MappingCase::kIndependent:
    case MappingCase::kDependentLinear:
    case MappingCase::kDependent1N:
    case MappingCase::kDependentN1:
      return true;
  }
  return true;
}

bool WfmsSupports(MappingCase) { return true; }

std::vector<SupportEntry> SupportMatrix() {
  return {
      {MappingCase::kTrivial, true, true,
       "hidden behind the federated function's signature",
       "hidden behind the federated function's signature"},
      {MappingCase::kSimple, true, true,
       "cast functions, supply of constant parameters", "helper functions"},
      {MappingCase::kIndependent, true, true, "join with selection",
       "parallel execution of activities"},
      {MappingCase::kDependentLinear, true, true,
       "join with selection; execution order defined by input parameters",
       "sequential execution of activities"},
      {MappingCase::kDependent1N, true, true,
       "join with selection; execution order defined by input parameters",
       "parallel and sequential execution of activities"},
      {MappingCase::kDependentN1, true, true,
       "join with selection; execution order defined by input parameters",
       "parallel and sequential execution of activities"},
      {MappingCase::kDependentCyclic, false, true, "not supported",
       "loop construct with sub-workflow"},
      {MappingCase::kGeneral, false, true, "not supported",
       "multiple processes over shared activities"},
  };
}

}  // namespace fedflow::federation
