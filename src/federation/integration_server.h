// The integration server: the middle tier of the paper's three-tier
// architecture (Fig. 2). Owns the FDBS, the workflow engine (WfMS
// architecture) or the A-UDTF layer (enhanced SQL UDTF architecture), the
// controller, the application systems, and the simulation state. One server
// instance embodies one of the two evaluated architectures.
#ifndef FEDFLOW_FEDERATION_INTEGRATION_SERVER_H_
#define FEDFLOW_FEDERATION_INTEGRATION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "appsys/dataset.h"
#include "appsys/registry.h"
#include "cache/plan_cache.h"
#include "cache/result_cache.h"
#include "fdbs/database.h"
#include "federation/controller.h"
#include "federation/controller_pool.h"
#include "federation/spec.h"
#include "federation/java_coupling.h"
#include "federation/udtf_coupling.h"
#include "federation/wfms_coupling.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/resource_pools.h"
#include "sim/system_state.h"
#include "txn/saga.h"
#include "wfms/engine.h"

namespace fedflow::federation {

/// Which coupling the server runs.
enum class Architecture {
  kWfms,      ///< federated functions as workflow processes behind one wrapper
  kUdtf,      ///< federated functions as SQL I-UDTFs over A-UDTFs
  kJavaUdtf,  ///< federated functions as procedural ("Java") I-UDTFs over
              ///< A-UDTFs, issuing JDBC-style statements (paper §2)
};

/// Stable display name ("WfMS approach" / "UDTF approach").
const char* ArchitectureName(Architecture arch);

/// One integration-server deployment.
class IntegrationServer {
 public:
  /// Builds a server over the scenario's three application systems and
  /// boots it (controllers started, state cold). `pool_options` sizes the
  /// warm-controller pool; the default (max_size 1) reproduces the paper's
  /// single-controller deployment bit-identically.
  static Result<std::unique_ptr<IntegrationServer>> Create(
      Architecture arch, const appsys::Scenario& scenario,
      sim::LatencyModel model = {}, ControllerPoolOptions pool_options = {});

  /// Registers a federated function under the server's architecture. The
  /// spec is linted first: error diagnostics (including the FF3xx
  /// plan-consistency checks) reject the registration (InvalidArgument
  /// carrying every finding), warnings are collected and queryable via
  /// lint_warnings(). Unsupported when the UDTF architecture cannot express
  /// the mapping. `options` selects the plan-optimizer passes for this
  /// statement (default passthrough, mirroring ExecContext's opt-in
  /// predicate_pushdown).
  Status RegisterFederatedFunction(const FederatedFunctionSpec& spec,
                                   const plan::PlanOptions& options = {});

  /// Warning-severity fedlint findings accumulated across registrations.
  const std::vector<analysis::Diagnostic>& lint_warnings() const {
    return lint_warnings_;
  }

  /// Executes SQL without cost accounting (functional path).
  Result<Table> Query(const std::string& sql);

  /// A timed call: result plus virtual elapsed time and step breakdown.
  struct TimedResult {
    Table table;
    VDuration elapsed_us = 0;
    TimeBreakdown breakdown;
    sim::SystemState::Warmth warmth = sim::SystemState::Warmth::kHot;
  };

  /// Executes SQL under the virtual clock.
  Result<TimedResult> QueryTimed(const std::string& sql);

  /// Multi-tenant entry point: runs `sql` as one flow for `tenant`, leasing
  /// a controller from the pool with `function` as warmth affinity (empty =
  /// no affinity). kUnavailable when admission fails (pool or tenant quota
  /// exhausted). QueryTimed delegates here with ("default", "").
  Result<TimedResult> QueryTimedFor(const std::string& tenant,
                                    const std::string& function,
                                    const std::string& sql);

  /// Convenience: SELECT * FROM TABLE(name(args...)) AS R, timed.
  Result<TimedResult> CallFederated(const std::string& name,
                                    const std::vector<Value>& args);

  /// CallFederated for one tenant's flow; tenants other than "default" also
  /// get tenant-scoped call metrics ("tenant.<t>.call.*").
  Result<TimedResult> CallFederatedFor(const std::string& tenant,
                                       const std::string& name,
                                       const std::vector<Value>& args);

  /// CallFederatedFor on a controller the caller already leased from
  /// controller_pool(). The load harness holds one lease per in-flight
  /// virtual flow for the flow's whole virtual duration, so concurrent flows
  /// occupy distinct controllers; this entry point runs the statement on
  /// that lease instead of checking out per call. Warmth is the leased
  /// ledger's pre-call verdict for `name`. InvalidArgument on a released
  /// lease.
  Result<TimedResult> CallFederatedOnLease(const ControllerPool::Lease& lease,
                                           const std::string& tenant,
                                           const std::string& name,
                                           const std::vector<Value>& args);

  /// Reboots the environment: controller restart, all caches cold, pooled
  /// controllers beyond the pinned one evicted.
  void Reboot();

  Architecture architecture() const { return arch_; }
  fdbs::Database& database() { return db_; }
  const appsys::AppSystemRegistry& systems() const { return systems_; }
  /// The pinned (primary) controller — the single-flow identity.
  Controller& controller() { return *controller_pool_.primary(); }
  /// The pinned controller's warmth ledger — the single-flow identity.
  sim::SystemState& state() { return *controller_pool_.primary_state(); }
  /// The warm-controller pool behind all flows.
  ControllerPool& controller_pool() { return controller_pool_; }
  const sim::LatencyModel& model() const { return model_; }

  /// Fault injector wired into every coupling's invocation path. Without
  /// profiles it is inert; configure profiles (or forced failures) and a
  /// retry policy to run the fault/recovery experiments.
  sim::FaultInjector& fault_injector() { return fault_injector_; }

  /// Coupling-level retry policy. Default-constructed = retries disabled;
  /// mutable so experiments can tune attempts/backoff/deadline (the
  /// couplings hold a pointer to this instance).
  sim::RetryPolicy& retry_policy() { return retry_policy_; }

  /// Modeled per-call deadline the registration-time dataflow analyses
  /// check plans against (FF420/FF422). 0 (the default) disables the
  /// deadline checks; set before RegisterFederatedFunction to enforce one.
  VDuration& analysis_deadline_us() { return analysis_deadline_us_; }

  /// The server's tracer. Default-disabled (every instrumentation site is a
  /// no-op and virtual-time totals are bit-identical to an uninstrumented
  /// build); call tracer().Enable() before a query to collect spans, then
  /// tracer().Snapshot() to export them.
  obs::Tracer& tracer() { return tracer_; }

  /// Counters and virtual-time histograms: per-function call counts, warmth
  /// transitions, retries, workflow checkpoints/resumes.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// The compiled-plan cache: one optimized FedPlan per registered function,
  /// built exactly once at registration and shared by the lint gate, the
  /// dataflow analyses, the coupling lowerings and fedplan EXPLAIN.
  cache::PlanCache& plan_cache() { return plan_cache_; }
  const cache::PlanCache& plan_cache() const { return plan_cache_; }

  /// The result cache behind the opt-in caching path (see
  /// set_caching_enabled); always constructed, only consulted when enabled.
  cache::ResultCache& result_cache() { return result_cache_; }
  const cache::ResultCache& result_cache() const { return result_cache_; }

  /// The saga coordinator: write-path federated functions (specs with
  /// mutating calls + compensations) register their saga view here at
  /// RegisterFederatedFunction time, and CallFederated* runs them as sagas —
  /// idempotency-keyed exactly-once forward execution, compensation-based
  /// backward recovery on abort. Read-only functions never touch it.
  txn::SagaRuntime& saga_runtime() { return saga_runtime_; }
  const txn::SagaRuntime& saga_runtime() const { return saga_runtime_; }

  /// Per-statement opt-in for result caching, mirroring the opt-in optimizer
  /// passes: default OFF, so the uncached virtual-time totals every golden
  /// pins stay bit-identical. When ON, A-UDTF local calls are memoized and a
  /// whole federated call on a hot controller can be served straight from a
  /// resident entry at cache_hit_us.
  void set_caching_enabled(bool enabled) { caching_enabled_ = enabled; }
  bool caching_enabled() const { return caching_enabled_; }

  /// Columnar batch execution for this server's statements (default ON).
  /// Purely a wall-clock lever: results, virtual-time totals, and pipeline
  /// counters are identical either way — the differential harnesses run a
  /// row-only mirror server with this set to false.
  void set_columnar_execution(bool enabled) { columnar_execution_ = enabled; }
  bool columnar_execution() const { return columnar_execution_; }

  /// Forward-recovery checkpoint of a failed WfMS federated function; null
  /// under the UDTF architectures or when no instance is pending.
  const wfms::InstanceCheckpoint* recovery_checkpoint(
      const std::string& function) const {
    return wfms_ ? wfms_->wrapper()->checkpoint(function) : nullptr;
  }
  /// Engine of the WfMS architecture; null under the UDTF architecture.
  wfms::Engine* engine() { return engine_.get(); }

  /// Program invoker of the WfMS architecture (for driving the engine
  /// directly, e.g. to inspect audit trails); null under the UDTF
  /// architecture.
  wfms::ProgramInvoker* program_invoker() {
    return wfms_ ? wfms_->wrapper()->invoker() : nullptr;
  }

 private:
  /// One flow on an already-selected controller/ledger pair: builds the
  /// per-invocation FlowState, traces and times the statement. Shared by the
  /// per-call checkout path (QueryTimedFor) and the external-lease path
  /// (CallFederatedOnLease). `slot` is the lease's warm-pool slot (0 when
  /// unpooled); result-cache entries produced by the flow record it. The
  /// result's warmth is left at its default. `saga` (optional) rides the
  /// flow state so the couplings route mutating calls through it; on failure
  /// `failed_elapsed_us` (optional) receives the virtual time the failed
  /// flow burned — the clock is lost with the flow otherwise, and the saga
  /// abort path accounts it into the outcome.
  Result<TimedResult> RunFlow(Controller* controller,
                              sim::SystemState* ledger, uint64_t slot,
                              const std::string& tenant,
                              const std::string& sql,
                              txn::SagaExec* saga = nullptr,
                              VDuration* failed_elapsed_us = nullptr);

  /// CallFederatedFor/OnLease body for a saga-registered (write-path)
  /// function: Begin outside every coupling retry loop (idempotency keys
  /// must survive WfMS resume and I-UDTF restart alike), never whole-call
  /// cached, Commit on success, Abort + backward recovery on failure.
  Result<TimedResult> RunSagaCall(const txn::SagaSpecInfo& info,
                                  Controller* controller,
                                  sim::SystemState* ledger, uint64_t slot,
                                  const std::string& tenant,
                                  const std::string& name,
                                  const std::vector<Value>& args);

  /// The whole-federated-call cache key of name(args): the data-version
  /// stamp covers the systems the cached plan calls into (every registered
  /// system when no plan is resident).
  cache::ResultCache::Key FederatedCacheKey(
      const std::string& name, const std::vector<Value>& args) const;

  /// Serves name(args) from a resident whole-call entry when caching is
  /// enabled and the leased controller is hot for `name` — the fleet
  /// generalization of the paper's hot call. True on a hit (with `*out`
  /// filled at cache_hit_us); false = run the flow for real.
  bool TryServeCached(sim::SystemState::Warmth warmth, const std::string& name,
                      const std::vector<Value>& args, TimedResult* out);

  /// Post-run bookkeeping of the opt-in cache: charges the probe that
  /// preceded a hot miss onto `result` and memoizes the call result.
  void FinishCachedCall(sim::SystemState::Warmth warmth, uint64_t slot,
                        const std::string& tenant, const std::string& name,
                        const std::vector<Value>& args, TimedResult* result);

  /// "SELECT * FROM TABLE (name(args...)) AS R".
  static std::string BuildCallSql(const std::string& name,
                                  const std::vector<Value>& args);

  /// The call.* counters/histograms (plus the tenant-scoped view for
  /// non-default tenants) recorded after every successful federated call.
  void RecordCallMetrics(const std::string& tenant, const std::string& name,
                         const TimedResult& result);

  IntegrationServer(Architecture arch, sim::LatencyModel model,
                    ControllerPoolOptions pool_options)
      : arch_(arch),
        model_(model),
        controller_pool_(&systems_, &model_, pool_options) {}

  Architecture arch_;
  sim::LatencyModel model_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  appsys::AppSystemRegistry systems_;
  cache::PlanCache plan_cache_;
  cache::ResultCache result_cache_;
  txn::SagaRuntime saga_runtime_;
  bool caching_enabled_ = false;
  bool columnar_execution_ = true;
  ControllerPool controller_pool_;
  std::atomic<int64_t> next_flow_id_{1};
  sim::FaultInjector fault_injector_;
  sim::RetryPolicy retry_policy_;
  VDuration analysis_deadline_us_ = 0;
  fdbs::Database db_;
  std::unique_ptr<wfms::Engine> engine_;
  std::unique_ptr<WfmsCoupling> wfms_;
  std::unique_ptr<UdtfCoupling> udtf_;
  std::unique_ptr<JavaUdtfCoupling> java_;
  std::vector<analysis::Diagnostic> lint_warnings_;
};

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_INTEGRATION_SERVER_H_
