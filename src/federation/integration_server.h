// The integration server: the middle tier of the paper's three-tier
// architecture (Fig. 2). Owns the FDBS, the workflow engine (WfMS
// architecture) or the A-UDTF layer (enhanced SQL UDTF architecture), the
// controller, the application systems, and the simulation state. One server
// instance embodies one of the two evaluated architectures.
#ifndef FEDFLOW_FEDERATION_INTEGRATION_SERVER_H_
#define FEDFLOW_FEDERATION_INTEGRATION_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "appsys/dataset.h"
#include "appsys/registry.h"
#include "fdbs/database.h"
#include "federation/controller.h"
#include "federation/spec.h"
#include "federation/java_coupling.h"
#include "federation/udtf_coupling.h"
#include "federation/wfms_coupling.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/system_state.h"
#include "wfms/engine.h"

namespace fedflow::federation {

/// Which coupling the server runs.
enum class Architecture {
  kWfms,      ///< federated functions as workflow processes behind one wrapper
  kUdtf,      ///< federated functions as SQL I-UDTFs over A-UDTFs
  kJavaUdtf,  ///< federated functions as procedural ("Java") I-UDTFs over
              ///< A-UDTFs, issuing JDBC-style statements (paper §2)
};

/// Stable display name ("WfMS approach" / "UDTF approach").
const char* ArchitectureName(Architecture arch);

/// One integration-server deployment.
class IntegrationServer {
 public:
  /// Builds a server over the scenario's three application systems and
  /// boots it (controller started, state cold).
  static Result<std::unique_ptr<IntegrationServer>> Create(
      Architecture arch, const appsys::Scenario& scenario,
      sim::LatencyModel model = {});

  /// Registers a federated function under the server's architecture. The
  /// spec is linted first: error diagnostics (including the FF3xx
  /// plan-consistency checks) reject the registration (InvalidArgument
  /// carrying every finding), warnings are collected and queryable via
  /// lint_warnings(). Unsupported when the UDTF architecture cannot express
  /// the mapping. `options` selects the plan-optimizer passes for this
  /// statement (default passthrough, mirroring ExecContext's opt-in
  /// predicate_pushdown).
  Status RegisterFederatedFunction(const FederatedFunctionSpec& spec,
                                   const plan::PlanOptions& options = {});

  /// Warning-severity fedlint findings accumulated across registrations.
  const std::vector<analysis::Diagnostic>& lint_warnings() const {
    return lint_warnings_;
  }

  /// Executes SQL without cost accounting (functional path).
  Result<Table> Query(const std::string& sql);

  /// A timed call: result plus virtual elapsed time and step breakdown.
  struct TimedResult {
    Table table;
    VDuration elapsed_us = 0;
    TimeBreakdown breakdown;
    sim::SystemState::Warmth warmth = sim::SystemState::Warmth::kHot;
  };

  /// Executes SQL under the virtual clock.
  Result<TimedResult> QueryTimed(const std::string& sql);

  /// Convenience: SELECT * FROM TABLE(name(args...)) AS R, timed.
  Result<TimedResult> CallFederated(const std::string& name,
                                    const std::vector<Value>& args);

  /// Reboots the environment: controller restart, all caches cold.
  void Reboot();

  Architecture architecture() const { return arch_; }
  fdbs::Database& database() { return db_; }
  const appsys::AppSystemRegistry& systems() const { return systems_; }
  Controller& controller() { return controller_; }
  sim::SystemState& state() { return state_; }
  const sim::LatencyModel& model() const { return model_; }

  /// Fault injector wired into every coupling's invocation path. Without
  /// profiles it is inert; configure profiles (or forced failures) and a
  /// retry policy to run the fault/recovery experiments.
  sim::FaultInjector& fault_injector() { return fault_injector_; }

  /// Coupling-level retry policy. Default-constructed = retries disabled;
  /// mutable so experiments can tune attempts/backoff/deadline (the
  /// couplings hold a pointer to this instance).
  sim::RetryPolicy& retry_policy() { return retry_policy_; }

  /// The server's tracer. Default-disabled (every instrumentation site is a
  /// no-op and virtual-time totals are bit-identical to an uninstrumented
  /// build); call tracer().Enable() before a query to collect spans, then
  /// tracer().Snapshot() to export them.
  obs::Tracer& tracer() { return tracer_; }

  /// Counters and virtual-time histograms: per-function call counts, warmth
  /// transitions, retries, workflow checkpoints/resumes.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Forward-recovery checkpoint of a failed WfMS federated function; null
  /// under the UDTF architectures or when no instance is pending.
  const wfms::InstanceCheckpoint* recovery_checkpoint(
      const std::string& function) const {
    return wfms_ ? wfms_->wrapper()->checkpoint(function) : nullptr;
  }
  /// Engine of the WfMS architecture; null under the UDTF architecture.
  wfms::Engine* engine() { return engine_.get(); }

  /// Program invoker of the WfMS architecture (for driving the engine
  /// directly, e.g. to inspect audit trails); null under the UDTF
  /// architecture.
  wfms::ProgramInvoker* program_invoker() {
    return wfms_ ? wfms_->wrapper()->invoker() : nullptr;
  }

 private:
  IntegrationServer(Architecture arch, sim::LatencyModel model)
      : arch_(arch), model_(model), controller_(&systems_, &model_) {}

  Architecture arch_;
  sim::LatencyModel model_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  appsys::AppSystemRegistry systems_;
  Controller controller_;
  sim::SystemState state_;
  sim::FaultInjector fault_injector_;
  sim::RetryPolicy retry_policy_;
  fdbs::Database db_;
  std::unique_ptr<wfms::Engine> engine_;
  std::unique_ptr<WfmsCoupling> wfms_;
  std::unique_ptr<UdtfCoupling> udtf_;
  std::unique_ptr<JavaUdtfCoupling> java_;
  std::vector<analysis::Diagnostic> lint_warnings_;
};

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_INTEGRATION_SERVER_H_
