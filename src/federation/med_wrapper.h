// SQL/MED-style foreign function wrapper interface (ISO SQL Part 9 draft,
// paper §2): a standardized boundary that isolates the FDBS from the
// intricacies of federated function execution. The WfMS coupling implements
// this interface; RegisterWrapper() adapts every wrapper function into an
// FDBS table function, which is how the paper prototyped the missing
// SQL/MED support in commercial products.
#ifndef FEDFLOW_FEDERATION_MED_WRAPPER_H_
#define FEDFLOW_FEDERATION_MED_WRAPPER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/row_source.h"
#include "common/table.h"
#include "fdbs/database.h"
#include "fdbs/exec_context.h"
#include "sim/fault.h"

namespace fedflow::federation {

/// A foreign-function wrapper: exposes named, typed functions of an external
/// engine (here: the WfMS) to the FDBS.
class ForeignFunctionWrapper {
 public:
  virtual ~ForeignFunctionWrapper() = default;

  /// Wrapper identifier (e.g. "wfms").
  virtual std::string Name() const = 0;

  /// Descriptor of one foreign function the wrapper serves.
  struct ForeignFunction {
    std::string name;
    std::vector<Column> params;
    Schema result_schema;
  };

  /// All foreign functions currently served.
  virtual std::vector<ForeignFunction> Functions() const = 0;

  /// Executes a foreign function. Charges its costs to ctx.clock when set.
  virtual Result<Table> Execute(const std::string& function,
                                const std::vector<Value>& args,
                                fdbs::ExecContext& ctx) = 0;

  /// Streaming execution: the result rows are pulled in batches of
  /// `batch_size`, charging transfer costs incrementally where the wrapper's
  /// transport supports it. The default adapts Execute(); a fully drained
  /// stream charges the same total as Execute().
  virtual Result<RowSourcePtr> ExecuteStream(const std::string& function,
                                             const std::vector<Value>& args,
                                             fdbs::ExecContext& ctx,
                                             size_t batch_size) {
    FEDFLOW_ASSIGN_OR_RETURN(Table result, Execute(function, args, ctx));
    return MakeTableSource(std::move(result), batch_size);
  }

  /// Retry policy the FDBS-side adapter applies around Execute /
  /// ExecuteStream: on a retriable failure the same function is executed
  /// again after a backoff charged to ctx.clock. Null (the default) disables
  /// retries. A wrapper that keeps recovery state between attempts (the WfMS
  /// coupling's checkpoints) gets its forward recovery driven by this loop.
  virtual const sim::RetryPolicy* retry_policy() const { return nullptr; }
};

/// Registers every function of `wrapper` as a table function of `db`, so it
/// can be referenced as TABLE(fn(args)) in the FROM clause.
Status RegisterWrapper(fdbs::Database* db,
                       std::shared_ptr<ForeignFunctionWrapper> wrapper);

/// Registers a single named function of `wrapper` (used when functions are
/// added to the wrapper incrementally).
Status RegisterWrapperFunction(fdbs::Database* db,
                               std::shared_ptr<ForeignFunctionWrapper> wrapper,
                               const std::string& function);

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_MED_WRAPPER_H_
