// The enhanced SQL UDTF architecture (paper §2): every local function of
// every application system is exposed to the FDBS as an Access UDTF
// (A-UDTF); a federated function becomes an Integration UDTF (I-UDTF) whose
// body is ONE SQL statement referencing the A-UDTFs laterally. The I-UDTF SQL
// is generated from the FederatedFunctionSpec and then parsed and executed by
// our own FDBS — cyclic and general mappings are rejected at compile time,
// exactly the paper's expressiveness limit.
#ifndef FEDFLOW_FEDERATION_UDTF_COUPLING_H_
#define FEDFLOW_FEDERATION_UDTF_COUPLING_H_

#include <string>

#include "appsys/registry.h"
#include "fdbs/database.h"
#include "federation/controller.h"
#include "federation/spec.h"
#include "plan/optimizer.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/system_state.h"

namespace fedflow::federation {

/// Wires the UDTF architecture into an FDBS.
class UdtfCoupling {
 public:
  /// `faults` (optional) makes the A-UDTF RMI channels unreliable; `retry`
  /// (optional) is the statement-level retry policy of the I-UDTFs. Because
  /// an I-UDTF keeps no state between attempts, a retry restarts the WHOLE
  /// SQL statement — every A-UDTF runs again (contrast WfmsCoupling, which
  /// resumes from the engine's checkpoint).
  UdtfCoupling(fdbs::Database* db, const appsys::AppSystemRegistry* systems,
               Controller* controller, const sim::LatencyModel* model,
               sim::SystemState* state, sim::FaultInjector* faults = nullptr,
               const sim::RetryPolicy* retry = nullptr)
      : db_(db),
        systems_(systems),
        controller_(controller),
        model_(model),
        state_(state),
        faults_(faults),
        retry_(retry) {}

  /// Registers one A-UDTF per local function of every application system
  /// (this alone is the paper's "simple UDTF architecture": applications can
  /// reference the A-UDTFs directly and do the integration themselves).
  Status RegisterAccessUdtfs();

  /// Generates the CREATE FUNCTION ... LANGUAGE SQL RETURN SELECT text for a
  /// spec by building the federated plan (plan/fed_plan.h) and rendering its
  /// SQL lowering. Unsupported for cyclic/looping mappings (SQL has no
  /// loop). With default (passthrough) options the text is identical to the
  /// pre-IR compiler; optimizer passes are opt-in per statement.
  Result<std::string> CompileIUdtfSql(const FederatedFunctionSpec& spec,
                                      const plan::PlanOptions& options = {}) const;

  /// Renders the I-UDTF SQL from an already-built plan (the server's plan
  /// cache compiles once at registration and hands the plan to every
  /// consumer). `fed_plan` must be the compiled plan of `spec`.
  Result<std::string> CompileIUdtfSql(const FederatedFunctionSpec& spec,
                                      const plan::FedPlan& fed_plan) const;

  /// Compiles, parses and registers the I-UDTF (instrumented with I-UDTF
  /// start/finish and warm-up costs).
  Status RegisterFederatedFunction(const FederatedFunctionSpec& spec,
                                   const plan::PlanOptions& options = {});

  /// Registers the I-UDTF from an already-built plan without recompiling.
  Status RegisterFederatedFunction(const FederatedFunctionSpec& spec,
                                   const plan::FedPlan& fed_plan);

  /// Generates CREATE PROCEDURE ... BEGIN ... END text for a spec — PSM
  /// stored procedures DO support control structures, so this works for the
  /// cyclic case too. But the result is CALL-only: it cannot be referenced
  /// in a FROM clause and thus does not compose with other federated
  /// functions or tables (the paper's §2/§3 point).
  Result<std::string> CompilePsmSql(const FederatedFunctionSpec& spec,
                                    const plan::PlanOptions& options = {}) const;

  /// Renders the PSM procedure from an already-built plan.
  Result<std::string> CompilePsmSql(const FederatedFunctionSpec& spec,
                                    const plan::FedPlan& fed_plan) const;

  /// Compiles and registers the PSM procedure in the FDBS.
  Status RegisterPsmProcedure(const FederatedFunctionSpec& spec);

 private:
  fdbs::Database* db_;
  const appsys::AppSystemRegistry* systems_;
  Controller* controller_;
  const sim::LatencyModel* model_;
  sim::SystemState* state_;
  sim::FaultInjector* faults_;
  const sim::RetryPolicy* retry_;
};

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_UDTF_COUPLING_H_
