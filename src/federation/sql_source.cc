#include "federation/sql_source.h"

#include "common/codec.h"

namespace fedflow::federation {

Status RemoteSqlSource::AttachTable(fdbs::Database* federation_db,
                                    const std::string& local_name,
                                    const std::string& remote_table) {
  // Validate the remote table exists and capture its schema now; the
  // provider re-reads the data on every scan (the source stays autonomous).
  FEDFLOW_ASSIGN_OR_RETURN(const Table* remote,
                           db_->catalog().GetTableConst(remote_table));
  fdbs::ExternalTable entry;
  entry.name = local_name;
  entry.schema = remote->schema();
  fdbs::Database* source_db = db_.get();
  const sim::LatencyModel* model = model_;
  int64_t* counter = &subqueries_;
  std::string subquery = "SELECT * FROM " + remote_table;
  entry.provider =
      [source_db, model, counter, subquery](
          fdbs::ExecContext& ctx) -> Result<Table> {
    ++*counter;
    // The subquery runs in the remote engine with its own context (its
    // internal costs are the source's own business; the federation pays the
    // shipping).
    fdbs::ExecContext remote_ctx;
    remote_ctx.db = source_db;
    FEDFLOW_ASSIGN_OR_RETURN(Table result,
                             source_db->Execute(subquery, remote_ctx));
    if (ctx.clock != nullptr) {
      ByteWriter sizer;
      sizer.PutTable(result);
      ctx.clock->Charge(sim::steps::kSqlSubqueries,
                        model->sql_subquery_base_us +
                            model->MarshalCost(sizer.size()));
    }
    return result;
  };
  return federation_db->catalog().RegisterExternalTable(std::move(entry));
}

}  // namespace fedflow::federation
