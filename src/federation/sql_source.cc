#include "federation/sql_source.h"

#include <algorithm>
#include <memory>

#include "common/codec.h"
#include "common/row_source.h"

namespace fedflow::federation {

Status RemoteSqlSource::AttachTable(fdbs::Database* federation_db,
                                    const std::string& local_name,
                                    const std::string& remote_table) {
  // Validate the remote table exists and capture its schema now; the
  // provider re-reads the data on every scan (the source stays autonomous).
  FEDFLOW_ASSIGN_OR_RETURN(const Table* remote,
                           db_->catalog().GetTableConst(remote_table));
  fdbs::ExternalTable entry;
  entry.name = local_name;
  entry.schema = remote->schema();
  fdbs::Database* source_db = db_.get();
  const sim::LatencyModel* model = model_;
  int64_t* counter = &subqueries_;
  std::string subquery = "SELECT * FROM " + remote_table;
  entry.provider =
      [source_db, model, counter, subquery](
          fdbs::ExecContext& ctx) -> Result<Table> {
    ++*counter;
    // The subquery runs in the remote engine with its own context (its
    // internal costs are the source's own business; the federation pays the
    // shipping).
    fdbs::ExecContext remote_ctx;
    remote_ctx.db = source_db;
    FEDFLOW_ASSIGN_OR_RETURN(Table result,
                             source_db->Execute(subquery, remote_ctx));
    if (ctx.clock != nullptr) {
      ByteWriter sizer;
      sizer.PutTable(result);
      ctx.clock->Charge(sim::steps::kSqlSubqueries,
                        model->sql_subquery_base_us +
                            model->MarshalCost(sizer.size()));
    }
    return result;
  };
  // Streaming scan: the subquery still runs remotely in one piece, but the
  // result ships back chunk by chunk. Chunk costs telescope over the
  // cumulative marshalled size, so a fully drained stream charges exactly
  // what the materializing provider charges.
  entry.stream_provider =
      [source_db, model, counter, subquery](
          fdbs::ExecContext& ctx, size_t batch_size) -> Result<RowSourcePtr> {
    ++*counter;
    fdbs::ExecContext remote_ctx;
    remote_ctx.db = source_db;
    FEDFLOW_ASSIGN_OR_RETURN(Table result,
                             source_db->Execute(subquery, remote_ctx));
    SimClock* clock = ctx.clock;
    struct StreamState {
      Table table;
      std::vector<size_t> prefix;  // cumulative marshalled size per row
      size_t header_bytes = 0;
      size_t next_row = 0;
      size_t charged_bytes = 0;
      bool charged_base = false;
    };
    auto st = std::make_shared<StreamState>();
    if (clock != nullptr) {
      ByteWriter sizer;
      sizer.PutSchema(result.schema());
      sizer.PutU32(static_cast<uint32_t>(result.num_rows()));
      st->header_bytes = sizer.size();
      st->prefix.reserve(result.num_rows());
      for (const Row& r : result.rows()) {
        sizer.PutRow(r);
        st->prefix.push_back(sizer.size());
      }
    }
    st->table = std::move(result);
    Schema schema = st->table.schema();
    return MakeGeneratorSource(
        std::move(schema),
        [st, clock, model, batch_size]() -> Result<RowBatch> {
          RowBatch batch;
          const size_t take =
              std::min(batch_size, st->table.num_rows() - st->next_row);
          batch.rows.reserve(take);
          for (size_t i = 0; i < take; ++i) {
            batch.rows.push_back(
                std::move(st->table.mutable_rows()[st->next_row + i]));
          }
          const size_t end = st->next_row + take;
          st->next_row = end;
          if (clock != nullptr) {
            const size_t cum =
                end == 0 ? st->header_bytes : st->prefix[end - 1];
            VDuration cost = model->MarshalCost(cum) -
                             model->MarshalCost(st->charged_bytes);
            if (!st->charged_base) {
              cost += model->sql_subquery_base_us;
              st->charged_base = true;
            }
            st->charged_bytes = cum;
            if (cost > 0) clock->Charge(sim::steps::kSqlSubqueries, cost);
          }
          return batch;
        });
  };
  return federation_db->catalog().RegisterExternalTable(std::move(entry));
}

}  // namespace fedflow::federation
