#include "federation/java_coupling.h"

#include <memory>

#include "common/strings.h"
#include "fdbs/procedural_function.h"
#include "federation/binding.h"
#include "federation/udtf_coupling.h"
#include "obs/trace.h"

namespace fedflow::federation {

bool JavaUdtfSupports(MappingCase c) { return c != MappingCase::kGeneral; }

namespace {

/// Renders a value as a SQL literal for parameter substitution.
std::string LiteralSql(const Value& v) {
  if (v.is_null()) return "NULL";
  if (v.type() == DataType::kVarchar) {
    std::string escaped;
    for (char c : v.AsVarchar()) {
      if (c == '\'') escaped += "''";
      else escaped.push_back(c);
    }
    return "'" + escaped + "'";
  }
  if (v.type() == DataType::kBool) return v.AsBool() ? "TRUE" : "FALSE";
  return v.ToString();
}

}  // namespace

Status JavaUdtfCoupling::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec) {
  FEDFLOW_RETURN_NOT_OK(BindSpec(spec, *systems_));
  FEDFLOW_ASSIGN_OR_RETURN(MappingCase mapping_case, ClassifySpec(spec));
  if (!JavaUdtfSupports(mapping_case)) {
    return Status::Unsupported(
        std::string("the Java UDTF architecture cannot express the ") +
        MappingCaseName(mapping_case) + " case");
  }
  FEDFLOW_ASSIGN_OR_RETURN(Schema returns,
                           ResolveResultSchema(spec, *systems_));

  // The spec is captured by value; the body renders parameters as literals
  // at call time (a prepared-statement analog).
  const appsys::AppSystemRegistry* systems = systems_;
  const sim::LatencyModel* model = model_;
  sim::SystemState* state = state_;
  FederatedFunctionSpec body_spec = spec;
  body_spec.loop.enabled = false;

  fdbs::ProceduralBody body =
      [spec, body_spec, systems, model, state, returns](
          const std::vector<Value>& args,
          fdbs::SqlClient* client) -> Result<Table> {
    auto render_param = [&](const std::string& param) -> std::string {
      for (size_t i = 0; i < spec.params.size(); ++i) {
        if (EqualsIgnoreCase(spec.params[i].name, param)) {
          return LiteralSql(args[i]);
        }
      }
      return param;  // resolved per-iteration below (ITERATION)
    };

    if (!spec.loop.enabled) {
      FEDFLOW_ASSIGN_OR_RETURN(
          std::string sql, BuildSpecSelectSql(body_spec, *systems,
                                              render_param));
      return client->Query(sql);
    }

    // Cyclic case: client-side do-until loop, one statement per iteration.
    int64_t limit = 0;
    for (size_t i = 0; i < spec.params.size(); ++i) {
      if (EqualsIgnoreCase(spec.params[i].name, spec.loop.count_param)) {
        FEDFLOW_ASSIGN_OR_RETURN(limit, args[i].ToInt64());
      }
    }
    Table all(returns);
    int64_t iteration = 0;
    do {
      ++iteration;
      auto render_with_iteration =
          [&](const std::string& param) -> std::string {
        if (EqualsIgnoreCase(param, "ITERATION")) {
          return std::to_string(iteration);
        }
        return render_param(param);
      };
      FEDFLOW_ASSIGN_OR_RETURN(
          std::string sql,
          BuildSpecSelectSql(body_spec, *systems, render_with_iteration));
      FEDFLOW_ASSIGN_OR_RETURN(Table chunk, client->Query(sql));
      if (!spec.loop.union_all) all = Table(returns);  // keep last only
      for (Row& r : chunk.mutable_rows()) {
        FEDFLOW_RETURN_NOT_OK(all.AppendRow(std::move(r)));
      }
    } while (iteration < limit);
    return all;
  };

  (void)model;
  (void)state;
  auto fn = std::make_shared<fdbs::ProceduralTableFunction>(
      spec.name, spec.params, returns, std::move(body),
      model_->jdbc_statement_us);

  // Decorate with start/finish + warm-up costs, mirroring the SQL I-UDTF.
  class Decorated : public fdbs::TableFunction {
   public:
    Decorated(std::shared_ptr<fdbs::TableFunction> inner,
              const sim::LatencyModel* model, sim::SystemState* state)
        : inner_(std::move(inner)), model_(model), state_(state) {}
    const std::string& name() const override { return inner_->name(); }
    const std::vector<Column>& params() const override {
      return inner_->params();
    }
    const Schema& result_schema() const override {
      return inner_->result_schema();
    }
    Result<Table> Invoke(const std::vector<Value>& args,
                         fdbs::ExecContext& ctx) override {
      SimClock* clock = ctx.clock;
      obs::SpanScope span(ctx.trace, "java-iudtf:" + name(),
                          obs::Layer::kCoupling);
      if (clock != nullptr && state_ != nullptr) {
        switch (state_->QueryWarmth(name())) {
          case sim::SystemState::Warmth::kCold:
            clock->Charge(sim::steps::kWarmup,
                          model_->cold_infrastructure_us +
                              model_->first_run_function_us);
            break;
          case sim::SystemState::Warmth::kWarm:
            clock->Charge(sim::steps::kWarmup,
                          model_->first_run_function_us);
            break;
          case sim::SystemState::Warmth::kHot:
            break;
        }
      }
      if (clock != nullptr) {
        clock->Charge(sim::steps::kJavaStartI, model_->java_iudtf_start_us);
      }
      FEDFLOW_ASSIGN_OR_RETURN(Table out, inner_->Invoke(args, ctx));
      if (clock != nullptr) {
        clock->Charge(sim::steps::kJavaFinishI,
                      model_->java_iudtf_finish_us);
      }
      if (state_ != nullptr) state_->MarkRun(name());
      return out;
    }

   private:
    std::shared_ptr<fdbs::TableFunction> inner_;
    const sim::LatencyModel* model_;
    sim::SystemState* state_;
  };

  return db_->catalog().RegisterTableFunction(
      std::make_shared<Decorated>(std::move(fn), model_, state_));
}

}  // namespace fedflow::federation
