#include "federation/java_coupling.h"

#include <memory>

#include "common/strings.h"
#include "fdbs/procedural_function.h"
#include "obs/trace.h"
#include "plan/lower_sql.h"
#include "sim/flow_state.h"

namespace fedflow::federation {

bool JavaUdtfSupports(MappingCase c) { return c != MappingCase::kGeneral; }

namespace {

/// Renders a value as a SQL literal for parameter substitution.
std::string LiteralSql(const Value& v) {
  if (v.is_null()) return "NULL";
  if (v.type() == DataType::kVarchar) {
    std::string escaped;
    for (char c : v.AsVarchar()) {
      if (c == '\'') escaped += "''";
      else escaped.push_back(c);
    }
    return "'" + escaped + "'";
  }
  if (v.type() == DataType::kBool) return v.AsBool() ? "TRUE" : "FALSE";
  return v.ToString();
}

}  // namespace

Status JavaUdtfCoupling::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec, const plan::PlanOptions& options) {
  // Compile + optimize the plan ONCE at registration; the procedural body
  // interprets the captured plan directly, rendering parameters as literals
  // at call time (a prepared-statement analog).
  FEDFLOW_ASSIGN_OR_RETURN(plan::FedPlan fed_plan,
                           plan::BuildPlan(spec, *systems_, *model_, options));
  return RegisterFederatedFunction(
      spec, std::make_shared<const plan::FedPlan>(std::move(fed_plan)));
}

Status JavaUdtfCoupling::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec,
    std::shared_ptr<const plan::FedPlan> fed_plan) {
  if (!JavaUdtfSupports(fed_plan->mapping_case)) {
    return Status::Unsupported(
        std::string("the Java UDTF architecture cannot express the ") +
        MappingCaseName(fed_plan->mapping_case) + " case");
  }
  Schema returns = fed_plan->result_schema;

  fdbs::ProceduralBody body =
      [plan = std::move(fed_plan), returns](
          const std::vector<Value>& args,
          fdbs::SqlClient* client) -> Result<Table> {
    const plan::FedPlan& fed_plan = *plan;
    auto render_param = [&](const std::string& param) -> std::string {
      for (size_t i = 0; i < fed_plan.params.size(); ++i) {
        if (EqualsIgnoreCase(fed_plan.params[i].name, param)) {
          return LiteralSql(args[i]);
        }
      }
      return param;  // resolved per-iteration below (ITERATION)
    };

    if (!fed_plan.loop.enabled) {
      FEDFLOW_ASSIGN_OR_RETURN(std::string sql,
                               plan::RenderSelectSql(fed_plan, render_param));
      return client->Query(sql);
    }

    // Cyclic case: client-side do-until loop, one statement per iteration.
    int64_t limit = 0;
    for (size_t i = 0; i < fed_plan.params.size(); ++i) {
      if (EqualsIgnoreCase(fed_plan.params[i].name,
                           fed_plan.loop.count_param)) {
        FEDFLOW_ASSIGN_OR_RETURN(limit, args[i].ToInt64());
      }
    }
    Table all(returns);
    int64_t iteration = 0;
    do {
      ++iteration;
      auto render_with_iteration =
          [&](const std::string& param) -> std::string {
        if (EqualsIgnoreCase(param, "ITERATION")) {
          return std::to_string(iteration);
        }
        return render_param(param);
      };
      FEDFLOW_ASSIGN_OR_RETURN(
          std::string sql,
          plan::RenderSelectSql(fed_plan, render_with_iteration));
      FEDFLOW_ASSIGN_OR_RETURN(Table chunk, client->Query(sql));
      if (!fed_plan.loop.union_all) all = Table(returns);  // keep last only
      for (Row& r : chunk.mutable_rows()) {
        FEDFLOW_RETURN_NOT_OK(all.AppendRow(std::move(r)));
      }
    } while (iteration < limit);
    return all;
  };

  auto fn = std::make_shared<fdbs::ProceduralTableFunction>(
      spec.name, spec.params, returns, std::move(body),
      model_->jdbc_statement_us);

  // Decorate with start/finish + warm-up costs and the statement-level
  // retry, mirroring the SQL I-UDTF.
  class Decorated : public fdbs::TableFunction {
   public:
    Decorated(std::shared_ptr<fdbs::TableFunction> inner,
              const sim::LatencyModel* model, sim::SystemState* state,
              const sim::RetryPolicy* retry)
        : inner_(std::move(inner)), model_(model), state_(state),
          retry_(retry) {}
    const std::string& name() const override { return inner_->name(); }
    const std::vector<Column>& params() const override {
      return inner_->params();
    }
    const Schema& result_schema() const override {
      return inner_->result_schema();
    }
    Result<Table> Invoke(const std::vector<Value>& args,
                         fdbs::ExecContext& ctx) override {
      SimClock* clock = ctx.clock;
      // Per-flow warmth ledger with single-flow fallback (ExecContext::flow).
      sim::SystemState* state =
          ctx.flow != nullptr && ctx.flow->warmth != nullptr ? ctx.flow->warmth
                                                             : state_;
      obs::SpanScope span(ctx.trace, "java-iudtf:" + name(),
                          obs::Layer::kCoupling);
      if (clock != nullptr && state != nullptr) {
        switch (state->QueryWarmth(name())) {
          case sim::SystemState::Warmth::kCold:
            clock->Charge(sim::steps::kWarmup,
                          model_->cold_infrastructure_us +
                              model_->first_run_function_us);
            break;
          case sim::SystemState::Warmth::kWarm:
            clock->Charge(sim::steps::kWarmup,
                          model_->first_run_function_us);
            break;
          case sim::SystemState::Warmth::kHot:
            break;
        }
      }
      // Statement-level retry: the procedural body holds no state between
      // attempts, so a retriable failure re-interprets the WHOLE plan —
      // every statement it issues runs (and charges) again. Saga write
      // steps survive the restart through the dedup ledger.
      sim::RetryLoop retry(retry_, clock, ctx.metrics, name());
      while (true) {
        if (clock != nullptr) {
          clock->Charge(sim::steps::kJavaStartI, model_->java_iudtf_start_us);
        }
        Result<Table> out = inner_->Invoke(args, ctx);
        if (out.ok()) {
          if (clock != nullptr) {
            clock->Charge(sim::steps::kJavaFinishI,
                          model_->java_iudtf_finish_us);
          }
          if (state != nullptr) state->MarkRun(name());
          return out;
        }
        if (!retry.ShouldRetry(out.status())) {
          span.SetStatus(out.status());
          return out.status();
        }
        span.AddEvent("retrying statement", out.status().message());
        FEDFLOW_RETURN_NOT_OK(retry.Backoff());
      }
    }

   private:
    std::shared_ptr<fdbs::TableFunction> inner_;
    const sim::LatencyModel* model_;
    sim::SystemState* state_;
    const sim::RetryPolicy* retry_;
  };

  return db_->catalog().RegisterTableFunction(
      std::make_shared<Decorated>(std::move(fn), model_, state_, retry_));
}

}  // namespace fedflow::federation
