// The controller: the long-running mediator process the paper had to
// introduce for DB2's security model (UDTF process and database connection
// must be separate processes). It is started once when the environment boots,
// holds the connections to the application systems, and keeps the WfMS
// connect information alive — which is why removing it speeds up single calls
// (the paper's controller ablation).
#ifndef FEDFLOW_FEDERATION_CONTROLLER_H_
#define FEDFLOW_FEDERATION_CONTROLLER_H_

#include <atomic>
#include <string>
#include <vector>

#include "appsys/registry.h"
#include "common/result.h"
#include "common/table.h"
#include "sim/latency.h"

namespace fedflow::federation {

/// Long-lived dispatcher between UDTF processes and application systems.
class Controller {
 public:
  Controller(const appsys::AppSystemRegistry* systems,
             const sim::LatencyModel* model)
      : systems_(systems), model_(model) {}

  /// Boots the controller (once per environment start).
  void Start() { started_ = true; }
  void Stop() { started_ = false; }
  bool started() const { return started_; }

  /// Result of one dispatched local-function call.
  struct DispatchResult {
    Table table;
    VDuration app_cost_us = 0;       ///< server-side work in the app system
    VDuration dispatch_cost_us = 0;  ///< controller's own run (paper: ~0%)
  };

  /// Routes a local-function call to its application system. Fails when the
  /// controller has not been started (the environment is not booted).
  Result<DispatchResult> Dispatch(const std::string& system,
                                  const std::string& function,
                                  const std::vector<Value>& args) const;

  /// Number of dispatches since construction.
  int64_t dispatch_count() const { return dispatch_count_.load(); }

 private:
  const appsys::AppSystemRegistry* systems_;
  const sim::LatencyModel* model_;
  bool started_ = false;
  mutable std::atomic<int64_t> dispatch_count_{0};
};

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_CONTROLLER_H_
