#include "federation/med_wrapper.h"

#include "common/strings.h"

namespace fedflow::federation {

namespace {

/// Adapts one wrapper function to the FDBS table-function interface.
class WrapperUdtf : public fdbs::TableFunction {
 public:
  WrapperUdtf(std::shared_ptr<ForeignFunctionWrapper> wrapper,
              ForeignFunctionWrapper::ForeignFunction descriptor)
      : wrapper_(std::move(wrapper)), descriptor_(std::move(descriptor)) {}

  const std::string& name() const override { return descriptor_.name; }
  const std::vector<Column>& params() const override {
    return descriptor_.params;
  }
  const Schema& result_schema() const override {
    return descriptor_.result_schema;
  }

  Result<Table> Invoke(const std::vector<Value>& args,
                       fdbs::ExecContext& ctx) override {
    sim::RetryLoop retry(wrapper_->retry_policy(), ctx.clock, ctx.metrics,
                         descriptor_.name);
    while (true) {
      Result<Table> out = wrapper_->Execute(descriptor_.name, args, ctx);
      if (out.ok() || !retry.ShouldRetry(out.status())) return out;
      FEDFLOW_RETURN_NOT_OK(retry.Backoff());
    }
  }

  Result<RowSourcePtr> InvokeStream(const std::vector<Value>& args,
                                    fdbs::ExecContext& ctx,
                                    size_t batch_size) override {
    sim::RetryLoop retry(wrapper_->retry_policy(), ctx.clock, ctx.metrics,
                         descriptor_.name);
    while (true) {
      Result<RowSourcePtr> out =
          wrapper_->ExecuteStream(descriptor_.name, args, ctx, batch_size);
      if (out.ok() || !retry.ShouldRetry(out.status())) return out;
      FEDFLOW_RETURN_NOT_OK(retry.Backoff());
    }
  }

 private:
  std::shared_ptr<ForeignFunctionWrapper> wrapper_;
  ForeignFunctionWrapper::ForeignFunction descriptor_;
};

}  // namespace

Status RegisterWrapper(fdbs::Database* db,
                       std::shared_ptr<ForeignFunctionWrapper> wrapper) {
  for (const auto& fn : wrapper->Functions()) {
    FEDFLOW_RETURN_NOT_OK(db->catalog().RegisterTableFunction(
        std::make_shared<WrapperUdtf>(wrapper, fn)));
  }
  return Status::OK();
}

Status RegisterWrapperFunction(fdbs::Database* db,
                               std::shared_ptr<ForeignFunctionWrapper> wrapper,
                               const std::string& function) {
  for (const auto& fn : wrapper->Functions()) {
    if (EqualsIgnoreCase(fn.name, function)) {
      return db->catalog().RegisterTableFunction(
          std::make_shared<WrapperUdtf>(wrapper, fn));
    }
  }
  return Status::NotFound("wrapper " + wrapper->Name() +
                          " serves no function " + function);
}

}  // namespace fedflow::federation
