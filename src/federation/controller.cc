#include "federation/controller.h"

namespace fedflow::federation {

Result<Controller::DispatchResult> Controller::Dispatch(
    const std::string& system, const std::string& function,
    const std::vector<Value>& args) const {
  if (!started_) {
    return Status::ExecutionError(
        "controller not started; boot the integration environment first");
  }
  dispatch_count_.fetch_add(1);
  FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem * sys, systems_->Get(system));
  FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem::CallResult call,
                           sys->Call(function, args));
  DispatchResult result;
  result.table = std::move(call.table);
  result.app_cost_us = call.cost_us;
  result.dispatch_cost_us = model_->controller_dispatch_us;
  return result;
}

}  // namespace fedflow::federation
