#include "federation/integration_server.h"

#include "analysis/dataflow/dataflow_lint.h"
#include "analysis/plan_lint.h"
#include "analysis/spec_lint.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/stockkeeping.h"
#include "sim/flow_state.h"
#include "sql/ast.h"

namespace fedflow::federation {

const char* ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kWfms:
      return "WfMS approach";
    case Architecture::kUdtf:
      return "UDTF approach";
    case Architecture::kJavaUdtf:
      return "Java UDTF approach";
  }
  return "?";
}

Result<std::unique_ptr<IntegrationServer>> IntegrationServer::Create(
    Architecture arch, const appsys::Scenario& scenario,
    sim::LatencyModel model, ControllerPoolOptions pool_options) {
  std::unique_ptr<IntegrationServer> server(
      new IntegrationServer(arch, model, pool_options));
  FEDFLOW_RETURN_NOT_OK(server->systems_.Add(
      std::make_shared<appsys::StockKeepingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      server->systems_.Add(std::make_shared<appsys::PurchasingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      server->systems_.Add(std::make_shared<appsys::PdmSystem>(scenario)));

  // The couplings are wired with the pinned (primary) controller and its
  // ledger; pooled flows override both per invocation via ExecContext::flow.
  server->controller_pool_.AttachMetrics(&server->metrics_);
  Controller* primary = server->controller_pool_.primary();
  sim::SystemState* primary_state = server->controller_pool_.primary_state();
  if (arch == Architecture::kWfms) {
    wfms::EngineOptions options;
    options.navigation_cost_us = server->model_.wf_navigation_us;
    options.container_cost_us = server->model_.wf_container_us;
    options.helper_cost_us = server->model_.wf_helper_us;
    options.metrics = &server->metrics_;
    server->engine_ = std::make_unique<wfms::Engine>(options);
    server->wfms_ = std::make_unique<WfmsCoupling>(
        &server->db_, server->engine_.get(), &server->systems_,
        primary, &server->model_, primary_state,
        &server->fault_injector_, &server->retry_policy_);
  } else {
    // Both UDTF variants sit on the same A-UDTF access layer.
    server->udtf_ = std::make_unique<UdtfCoupling>(
        &server->db_, &server->systems_, primary,
        &server->model_, primary_state, &server->fault_injector_,
        &server->retry_policy_);
    FEDFLOW_RETURN_NOT_OK(server->udtf_->RegisterAccessUdtfs());
    if (arch == Architecture::kJavaUdtf) {
      server->java_ = std::make_unique<JavaUdtfCoupling>(
          &server->db_, &server->systems_, &server->model_, primary_state);
    }
  }

  server->controller_pool_.Start();
  primary_state->Boot();
  return server;
}

Status IntegrationServer::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec, const plan::PlanOptions& options) {
  // Static verification gate: a spec with error findings never reaches a
  // coupling; warnings are kept for the operator to query.
  std::vector<analysis::Diagnostic> diags = analysis::LintSpec(spec, systems_);
  if (!analysis::HasErrors(diags)) {
    // Plan-consistency gate (FF3xx): the lowerings of the optimized plan
    // must agree with it on call set, ordering and classification. Only
    // reachable for plannable specs, hence behind the spec-lint errors.
    std::vector<analysis::Diagnostic> plan_diags =
        analysis::LintPlan(spec, systems_, model_, options);
    for (analysis::Diagnostic& d : plan_diags) {
      diags.push_back(std::move(d));
    }
    // Deployment-consistency warning (FF310): a parallelized plan over a
    // single-controller pool serializes its parallel stages.
    std::vector<analysis::Diagnostic> pool_diags = analysis::LintPoolConfig(
        spec, options, controller_pool_.options().max_size);
    for (analysis::Diagnostic& d : pool_diags) {
      diags.push_back(std::move(d));
    }
    // Abstract-interpretation gate (FF4xx): schema, cardinality, budget and
    // tenant-flow dataflow analyses over the compiled plan, parameterized by
    // this deployment (deadline, retry policy, pool shape).
    analysis::DataflowOptions dopts;
    dopts.deadline_us = analysis_deadline_us_;
    dopts.retry = retry_policy_;
    dopts.pool_max_size = controller_pool_.options().max_size;
    dopts.per_tenant_quota = controller_pool_.options().per_tenant_quota;
    dopts.parallelize = options.parallelize;
    Result<analysis::DataflowResult> dataflow =
        analysis::RunDataflow(spec, systems_, model_, dopts);
    if (dataflow.ok()) {
      metrics_.Inc("analysis.dataflow.runs");
      for (analysis::Diagnostic& d : dataflow->diagnostics) {
        metrics_.Inc(d.severity == analysis::Severity::kError
                         ? "analysis.dataflow.errors"
                         : "analysis.dataflow.warnings");
        diags.push_back(std::move(d));
      }
    }
  }
  if (analysis::HasErrors(diags)) {
    return Status::InvalidArgument(
        "fedlint rejected spec '" + spec.name + "':\n" +
        analysis::FormatDiagnostics(analysis::Filter(
            diags, analysis::Severity::kError)));
  }
  for (analysis::Diagnostic& d : diags) {
    lint_warnings_.push_back(std::move(d));
  }
  switch (arch_) {
    case Architecture::kWfms:
      return wfms_->RegisterFederatedFunction(spec, options);
    case Architecture::kUdtf:
      return udtf_->RegisterFederatedFunction(spec, options);
    case Architecture::kJavaUdtf:
      return java_->RegisterFederatedFunction(spec, options);
  }
  return Status::Internal("bad architecture");
}

Result<Table> IntegrationServer::Query(const std::string& sql) {
  return db_.Execute(sql);
}

Result<IntegrationServer::TimedResult> IntegrationServer::QueryTimed(
    const std::string& sql) {
  return QueryTimedFor("default", "", sql);
}

Result<IntegrationServer::TimedResult> IntegrationServer::QueryTimedFor(
    const std::string& tenant, const std::string& function,
    const std::string& sql) {
  // Admission: lease a controller for the whole flow. With pool size 1 this
  // always returns the pinned controller — the legacy single-flow path.
  FEDFLOW_ASSIGN_OR_RETURN(ControllerPool::Lease lease,
                           controller_pool_.Checkout(tenant, function));
  FEDFLOW_ASSIGN_OR_RETURN(
      TimedResult result,
      RunFlow(lease.controller(), lease.ledger(), tenant, sql));
  // The checkout's warmth verdict is what the statement's federated function
  // experienced on the leased controller. Plain SQL (no affinity) reports
  // the default kHot, matching the pre-pool QueryTimed.
  if (!function.empty()) result.warmth = lease.warmth();
  return result;
}

Result<IntegrationServer::TimedResult> IntegrationServer::RunFlow(
    Controller* controller, sim::SystemState* ledger,
    const std::string& tenant, const std::string& sql) {
  sim::FlowState flow;
  flow.flow_id = next_flow_id_.fetch_add(1);
  flow.tenant = tenant;
  flow.faults = &fault_injector_;
  flow.controller = controller;
  flow.warmth = ledger;
  obs::TraceSession session(&tracer_, &flow.clock);
  flow.trace = &session;
  fdbs::ExecContext ctx;
  ctx.clock = &flow.clock;
  ctx.db = &db_;
  ctx.trace = &session;
  ctx.metrics = &metrics_;
  ctx.flow = &flow;
  Result<Table> table = [&] {
    // While the session observes the clock, every Charge/ChargeWork lands in
    // the current span — the completeness invariant that makes the span tree
    // reproduce the breakdown exactly.
    if (tracer_.enabled()) flow.clock.set_observer(&session);
    obs::SpanScope root(&session, "query", obs::Layer::kFdbs);
    root.SetAttribute("sql", sql);
    Result<Table> t = db_.Execute(sql, ctx);
    if (!t.ok()) root.SetStatus(t.status());
    return t;
  }();
  flow.clock.set_observer(nullptr);
  FEDFLOW_RETURN_NOT_OK(table.status());
  TimedResult result;
  result.table = std::move(table).ValueUnsafe();
  result.elapsed_us = flow.clock.now();
  result.breakdown = flow.clock.breakdown();
  return result;
}

std::string IntegrationServer::BuildCallSql(const std::string& name,
                                            const std::vector<Value>& args) {
  std::string sql = "SELECT * FROM TABLE (" + name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += sql::LiteralExpr(args[i]).ToSql();
  }
  sql += ")) AS R";
  return sql;
}

void IntegrationServer::RecordCallMetrics(const std::string& tenant,
                                          const std::string& name,
                                          const TimedResult& result) {
  const sim::SystemState::Warmth warmth = result.warmth;
  metrics_.Inc("call.count");
  metrics_.Inc("call.function." + name);
  metrics_.Inc(std::string("call.warmth.") + sim::WarmthName(warmth));
  metrics_.Observe(std::string("call.elapsed_us.") + sim::WarmthName(warmth),
                   result.elapsed_us);
  metrics_.Observe(
      "call.elapsed_us." + name + "." + sim::WarmthName(warmth),
      result.elapsed_us);
  if (tenant != "default") {
    obs::TenantMetrics scoped(&metrics_, tenant);
    scoped.Inc("call.count");
    scoped.Inc("call.function." + name);
    scoped.Observe("call.elapsed_us", result.elapsed_us);
  }
}

Result<IntegrationServer::TimedResult> IntegrationServer::CallFederated(
    const std::string& name, const std::vector<Value>& args) {
  return CallFederatedFor("default", name, args);
}

Result<IntegrationServer::TimedResult> IntegrationServer::CallFederatedFor(
    const std::string& tenant, const std::string& name,
    const std::vector<Value>& args) {
  FEDFLOW_ASSIGN_OR_RETURN(
      TimedResult result, QueryTimedFor(tenant, name, BuildCallSql(name, args)));
  RecordCallMetrics(tenant, name, result);
  return result;
}

Result<IntegrationServer::TimedResult> IntegrationServer::CallFederatedOnLease(
    const ControllerPool::Lease& lease, const std::string& tenant,
    const std::string& name, const std::vector<Value>& args) {
  if (!lease.valid()) {
    return Status::InvalidArgument(
        "CallFederatedOnLease: lease was already released");
  }
  // Pre-call verdict: what this function experiences on the leased
  // controller. Must be read before execution marks the function run.
  const sim::SystemState::Warmth warmth = lease.ledger()->QueryWarmth(name);
  FEDFLOW_ASSIGN_OR_RETURN(
      TimedResult result,
      RunFlow(lease.controller(), lease.ledger(), tenant,
              BuildCallSql(name, args)));
  result.warmth = warmth;
  RecordCallMetrics(tenant, name, result);
  return result;
}

void IntegrationServer::Reboot() {
  // No leases are outstanding when a caller reboots the environment (flows
  // release their controller before QueryTimedFor returns), so the pool
  // reboot cannot fail.
  (void)controller_pool_.Reboot();
}

}  // namespace fedflow::federation
