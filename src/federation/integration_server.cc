#include "federation/integration_server.h"

#include "analysis/plan_lint.h"
#include "analysis/spec_lint.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/stockkeeping.h"
#include "sql/ast.h"

namespace fedflow::federation {

const char* ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kWfms:
      return "WfMS approach";
    case Architecture::kUdtf:
      return "UDTF approach";
    case Architecture::kJavaUdtf:
      return "Java UDTF approach";
  }
  return "?";
}

Result<std::unique_ptr<IntegrationServer>> IntegrationServer::Create(
    Architecture arch, const appsys::Scenario& scenario,
    sim::LatencyModel model) {
  std::unique_ptr<IntegrationServer> server(
      new IntegrationServer(arch, model));
  FEDFLOW_RETURN_NOT_OK(server->systems_.Add(
      std::make_shared<appsys::StockKeepingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      server->systems_.Add(std::make_shared<appsys::PurchasingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      server->systems_.Add(std::make_shared<appsys::PdmSystem>(scenario)));

  server->state_.AttachMetrics(&server->metrics_);
  if (arch == Architecture::kWfms) {
    wfms::EngineOptions options;
    options.navigation_cost_us = server->model_.wf_navigation_us;
    options.container_cost_us = server->model_.wf_container_us;
    options.helper_cost_us = server->model_.wf_helper_us;
    options.metrics = &server->metrics_;
    server->engine_ = std::make_unique<wfms::Engine>(options);
    server->wfms_ = std::make_unique<WfmsCoupling>(
        &server->db_, server->engine_.get(), &server->systems_,
        &server->controller_, &server->model_, &server->state_,
        &server->fault_injector_, &server->retry_policy_);
  } else {
    // Both UDTF variants sit on the same A-UDTF access layer.
    server->udtf_ = std::make_unique<UdtfCoupling>(
        &server->db_, &server->systems_, &server->controller_,
        &server->model_, &server->state_, &server->fault_injector_,
        &server->retry_policy_);
    FEDFLOW_RETURN_NOT_OK(server->udtf_->RegisterAccessUdtfs());
    if (arch == Architecture::kJavaUdtf) {
      server->java_ = std::make_unique<JavaUdtfCoupling>(
          &server->db_, &server->systems_, &server->model_, &server->state_);
    }
  }

  server->controller_.Start();
  server->state_.Boot();
  return server;
}

Status IntegrationServer::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec, const plan::PlanOptions& options) {
  // Static verification gate: a spec with error findings never reaches a
  // coupling; warnings are kept for the operator to query.
  std::vector<analysis::Diagnostic> diags = analysis::LintSpec(spec, systems_);
  if (!analysis::HasErrors(diags)) {
    // Plan-consistency gate (FF3xx): the lowerings of the optimized plan
    // must agree with it on call set, ordering and classification. Only
    // reachable for plannable specs, hence behind the spec-lint errors.
    std::vector<analysis::Diagnostic> plan_diags =
        analysis::LintPlan(spec, systems_, model_, options);
    for (analysis::Diagnostic& d : plan_diags) {
      diags.push_back(std::move(d));
    }
  }
  if (analysis::HasErrors(diags)) {
    return Status::InvalidArgument(
        "fedlint rejected spec '" + spec.name + "':\n" +
        analysis::FormatDiagnostics(analysis::Filter(
            diags, analysis::Severity::kError)));
  }
  for (analysis::Diagnostic& d : diags) {
    lint_warnings_.push_back(std::move(d));
  }
  switch (arch_) {
    case Architecture::kWfms:
      return wfms_->RegisterFederatedFunction(spec, options);
    case Architecture::kUdtf:
      return udtf_->RegisterFederatedFunction(spec, options);
    case Architecture::kJavaUdtf:
      return java_->RegisterFederatedFunction(spec, options);
  }
  return Status::Internal("bad architecture");
}

Result<Table> IntegrationServer::Query(const std::string& sql) {
  return db_.Execute(sql);
}

Result<IntegrationServer::TimedResult> IntegrationServer::QueryTimed(
    const std::string& sql) {
  SimClock clock;
  obs::TraceSession session(&tracer_, &clock);
  fdbs::ExecContext ctx;
  ctx.clock = &clock;
  ctx.db = &db_;
  ctx.trace = &session;
  ctx.metrics = &metrics_;
  Result<Table> table = [&] {
    // While the session observes the clock, every Charge/ChargeWork lands in
    // the current span — the completeness invariant that makes the span tree
    // reproduce the breakdown exactly.
    if (tracer_.enabled()) clock.set_observer(&session);
    obs::SpanScope root(&session, "query", obs::Layer::kFdbs);
    root.SetAttribute("sql", sql);
    Result<Table> t = db_.Execute(sql, ctx);
    if (!t.ok()) root.SetStatus(t.status());
    return t;
  }();
  clock.set_observer(nullptr);
  FEDFLOW_RETURN_NOT_OK(table.status());
  TimedResult result;
  result.table = std::move(table).ValueUnsafe();
  result.elapsed_us = clock.now();
  result.breakdown = clock.breakdown();
  return result;
}

Result<IntegrationServer::TimedResult> IntegrationServer::CallFederated(
    const std::string& name, const std::vector<Value>& args) {
  sim::SystemState::Warmth warmth = state_.QueryWarmth(name);
  std::string sql = "SELECT * FROM TABLE (" + name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += sql::LiteralExpr(args[i]).ToSql();
  }
  sql += ")) AS R";
  FEDFLOW_ASSIGN_OR_RETURN(TimedResult result, QueryTimed(sql));
  result.warmth = warmth;
  metrics_.Inc("call.count");
  metrics_.Inc("call.function." + name);
  metrics_.Inc(std::string("call.warmth.") + sim::WarmthName(warmth));
  metrics_.Observe(std::string("call.elapsed_us.") + sim::WarmthName(warmth),
                   result.elapsed_us);
  metrics_.Observe(
      "call.elapsed_us." + name + "." + sim::WarmthName(warmth),
      result.elapsed_us);
  return result;
}

void IntegrationServer::Reboot() {
  controller_.Stop();
  controller_.Start();
  state_.Boot();
}

}  // namespace fedflow::federation
