#include "federation/integration_server.h"

#include <algorithm>

#include "analysis/dataflow/dataflow_lint.h"
#include "analysis/plan_lint.h"
#include "analysis/spec_lint.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/stockkeeping.h"
#include "cache/cache_key.h"
#include "sim/flow_state.h"
#include "sql/ast.h"

namespace fedflow::federation {

const char* ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kWfms:
      return "WfMS approach";
    case Architecture::kUdtf:
      return "UDTF approach";
    case Architecture::kJavaUdtf:
      return "Java UDTF approach";
  }
  return "?";
}

Result<std::unique_ptr<IntegrationServer>> IntegrationServer::Create(
    Architecture arch, const appsys::Scenario& scenario,
    sim::LatencyModel model, ControllerPoolOptions pool_options) {
  std::unique_ptr<IntegrationServer> server(
      new IntegrationServer(arch, model, pool_options));
  FEDFLOW_RETURN_NOT_OK(server->systems_.Add(
      std::make_shared<appsys::StockKeepingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      server->systems_.Add(std::make_shared<appsys::PurchasingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      server->systems_.Add(std::make_shared<appsys::PdmSystem>(scenario)));

  // The couplings are wired with the pinned (primary) controller and its
  // ledger; pooled flows override both per invocation via ExecContext::flow.
  server->controller_pool_.AttachMetrics(&server->metrics_);
  server->plan_cache_.AttachMetrics(&server->metrics_);
  server->result_cache_.AttachMetrics(&server->metrics_);
  // Slot evictions and reboots must flush the results priced on them.
  server->controller_pool_.AttachResultCache(&server->result_cache_);
  server->saga_runtime_.Configure(&server->systems_, model, &server->metrics_);
  // Adaptive admission: never cache a result whose modeled saving is below
  // the probe that would serve it.
  cache::ResultCacheOptions rc_options = server->result_cache_.options();
  rc_options.min_saved_cost_us = server->model_.cache_probe_us;
  server->result_cache_.set_options(rc_options);
  Controller* primary = server->controller_pool_.primary();
  sim::SystemState* primary_state = server->controller_pool_.primary_state();
  if (arch == Architecture::kWfms) {
    wfms::EngineOptions options;
    options.navigation_cost_us = server->model_.wf_navigation_us;
    options.container_cost_us = server->model_.wf_container_us;
    options.helper_cost_us = server->model_.wf_helper_us;
    options.metrics = &server->metrics_;
    server->engine_ = std::make_unique<wfms::Engine>(options);
    server->wfms_ = std::make_unique<WfmsCoupling>(
        &server->db_, server->engine_.get(), &server->systems_,
        primary, &server->model_, primary_state,
        &server->fault_injector_, &server->retry_policy_);
  } else {
    // Both UDTF variants sit on the same A-UDTF access layer.
    server->udtf_ = std::make_unique<UdtfCoupling>(
        &server->db_, &server->systems_, primary,
        &server->model_, primary_state, &server->fault_injector_,
        &server->retry_policy_);
    FEDFLOW_RETURN_NOT_OK(server->udtf_->RegisterAccessUdtfs());
    if (arch == Architecture::kJavaUdtf) {
      server->java_ = std::make_unique<JavaUdtfCoupling>(
          &server->db_, &server->systems_, &server->model_, primary_state,
          &server->retry_policy_);
    }
  }

  server->controller_pool_.Start();
  primary_state->Boot();
  return server;
}

Status IntegrationServer::RegisterFederatedFunction(
    const FederatedFunctionSpec& spec, const plan::PlanOptions& options) {
  // Static verification gate: a spec with error findings never reaches a
  // coupling; warnings are kept for the operator to query.
  std::vector<analysis::Diagnostic> diags = analysis::LintSpec(spec, systems_);
  std::shared_ptr<const plan::FedPlan> fed_plan;
  if (!analysis::HasErrors(diags)) {
    // Compile + optimize exactly once, at registration. The cached plan is
    // handed to the FF3xx lint, the dataflow analyses and the coupling — and
    // stays resident for per-call interpreters and fedplan EXPLAIN. When
    // compilation fails, LintPlan's own compile attempt reports FF304 below
    // and the registration is rejected on that diagnostic.
    Result<std::shared_ptr<const plan::FedPlan>> built =
        plan_cache_.GetOrBuild(spec, systems_, model_, options);
    if (built.ok()) fed_plan = *built;
    // Plan-consistency gate (FF3xx): the lowerings of the optimized plan
    // must agree with it on call set, ordering and classification. Only
    // reachable for plannable specs, hence behind the spec-lint errors.
    std::vector<analysis::Diagnostic> plan_diags =
        analysis::LintPlan(spec, systems_, model_, options, fed_plan.get());
    for (analysis::Diagnostic& d : plan_diags) {
      diags.push_back(std::move(d));
    }
    // Deployment-consistency warning (FF310): a parallelized plan over a
    // single-controller pool serializes its parallel stages.
    std::vector<analysis::Diagnostic> pool_diags = analysis::LintPoolConfig(
        spec, options, controller_pool_.options().max_size);
    for (analysis::Diagnostic& d : pool_diags) {
      diags.push_back(std::move(d));
    }
    // Abstract-interpretation gate (FF4xx): schema, cardinality, budget and
    // tenant-flow dataflow analyses over the compiled plan, parameterized by
    // this deployment (deadline, retry policy, pool shape).
    analysis::DataflowOptions dopts;
    dopts.deadline_us = analysis_deadline_us_;
    dopts.retry = retry_policy_;
    dopts.pool_max_size = controller_pool_.options().max_size;
    dopts.per_tenant_quota = controller_pool_.options().per_tenant_quota;
    dopts.parallelize = options.parallelize;
    // The server runs write-path functions as sagas (idempotency ledger +
    // compensation), so FF453 must not fire on retrying deployments.
    dopts.saga_coordination = true;
    Result<analysis::DataflowResult> dataflow =
        analysis::RunDataflow(spec, systems_, model_, dopts, fed_plan.get());
    if (dataflow.ok()) {
      metrics_.Inc("analysis.dataflow.runs");
      for (analysis::Diagnostic& d : dataflow->diagnostics) {
        metrics_.Inc(d.severity == analysis::Severity::kError
                         ? "analysis.dataflow.errors"
                         : "analysis.dataflow.warnings");
        diags.push_back(std::move(d));
      }
    }
  }
  if (analysis::HasErrors(diags)) {
    return Status::InvalidArgument(
        "fedlint rejected spec '" + spec.name + "':\n" +
        analysis::FormatDiagnostics(analysis::Filter(
            diags, analysis::Severity::kError)));
  }
  for (analysis::Diagnostic& d : diags) {
    lint_warnings_.push_back(std::move(d));
  }
  if (fed_plan == nullptr) {
    // Unreachable in practice (a plan that failed to compile was rejected by
    // FF304 above); kept as a legacy fallback that compiles once itself.
    switch (arch_) {
      case Architecture::kWfms:
        return wfms_->RegisterFederatedFunction(spec, options);
      case Architecture::kUdtf:
        return udtf_->RegisterFederatedFunction(spec, options);
      case Architecture::kJavaUdtf:
        return java_->RegisterFederatedFunction(spec, options);
    }
    return Status::Internal("bad architecture");
  }
  Status registered = [&] {
    switch (arch_) {
      case Architecture::kWfms:
        return wfms_->RegisterFederatedFunction(spec, *fed_plan);
      case Architecture::kUdtf:
        return udtf_->RegisterFederatedFunction(spec, *fed_plan);
      case Architecture::kJavaUdtf:
        // The procedural body shares ownership: interpreter and EXPLAIN read
        // the same cached instance.
        return java_->RegisterFederatedFunction(spec, fed_plan);
    }
    return Status::Internal("bad architecture");
  }();
  FEDFLOW_RETURN_NOT_OK(registered);
  // Write-path functions additionally register their saga view (a no-op for
  // read-only specs): the plan's execution order chains the writes the way
  // the lowering runs them.
  return saga_runtime_.Register(spec, fed_plan->order);
}

Result<Table> IntegrationServer::Query(const std::string& sql) {
  fdbs::ExecContext ctx;
  ctx.db = &db_;
  ctx.columnar = columnar_execution_;
  return db_.Execute(sql, ctx);
}

Result<IntegrationServer::TimedResult> IntegrationServer::QueryTimed(
    const std::string& sql) {
  return QueryTimedFor("default", "", sql);
}

Result<IntegrationServer::TimedResult> IntegrationServer::QueryTimedFor(
    const std::string& tenant, const std::string& function,
    const std::string& sql) {
  // Admission: lease a controller for the whole flow. With pool size 1 this
  // always returns the pinned controller — the legacy single-flow path.
  FEDFLOW_ASSIGN_OR_RETURN(ControllerPool::Lease lease,
                           controller_pool_.Checkout(tenant, function));
  FEDFLOW_ASSIGN_OR_RETURN(
      TimedResult result,
      RunFlow(lease.controller(), lease.ledger(), lease.slot(), tenant, sql));
  // The checkout's warmth verdict is what the statement's federated function
  // experienced on the leased controller. Plain SQL (no affinity) reports
  // the default kHot, matching the pre-pool QueryTimed.
  if (!function.empty()) result.warmth = lease.warmth();
  return result;
}

Result<IntegrationServer::TimedResult> IntegrationServer::RunFlow(
    Controller* controller, sim::SystemState* ledger, uint64_t slot,
    const std::string& tenant, const std::string& sql, txn::SagaExec* saga,
    VDuration* failed_elapsed_us) {
  sim::FlowState flow;
  flow.flow_id = next_flow_id_.fetch_add(1);
  flow.tenant = tenant;
  flow.faults = &fault_injector_;
  flow.controller = controller;
  flow.warmth = ledger;
  flow.slot = slot;
  flow.saga = saga;
  obs::TraceSession session(&tracer_, &flow.clock);
  flow.trace = &session;
  // Per-flow pipeline statistics (residency, batch counts, vectorized-filter
  // selectivities), exported as gauges after the flow. Stack-local so
  // concurrent flows never share a counter.
  PipelineStats pipeline_stats;
  fdbs::ExecContext ctx;
  ctx.clock = &flow.clock;
  ctx.db = &db_;
  ctx.trace = &session;
  ctx.metrics = &metrics_;
  ctx.flow = &flow;
  ctx.plan_cache = &plan_cache_;
  ctx.result_cache = &result_cache_;
  ctx.use_result_cache = caching_enabled_;
  ctx.columnar = columnar_execution_;
  ctx.pipeline_stats = &pipeline_stats;
  Result<Table> table = [&] {
    // While the session observes the clock, every Charge/ChargeWork lands in
    // the current span — the completeness invariant that makes the span tree
    // reproduce the breakdown exactly.
    if (tracer_.enabled()) flow.clock.set_observer(&session);
    obs::SpanScope root(&session, "query", obs::Layer::kFdbs);
    root.SetAttribute("sql", sql);
    Result<Table> t = db_.Execute(sql, ctx);
    if (!t.ok()) root.SetStatus(t.status());
    return t;
  }();
  flow.clock.set_observer(nullptr);
  obs::ExportPipelineStats(pipeline_stats, &metrics_);
  if (!table.ok()) {
    // The flow (and its clock) dies with the failure; surface the elapsed
    // virtual time so the saga abort can account the wasted forward work.
    if (failed_elapsed_us != nullptr) *failed_elapsed_us = flow.clock.now();
    return table.status();
  }
  TimedResult result;
  result.table = std::move(table).ValueUnsafe();
  result.elapsed_us = flow.clock.now();
  result.breakdown = flow.clock.breakdown();
  return result;
}

std::string IntegrationServer::BuildCallSql(const std::string& name,
                                            const std::vector<Value>& args) {
  std::string sql = "SELECT * FROM TABLE (" + name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += sql::LiteralExpr(args[i]).ToSql();
  }
  sql += ")) AS R";
  return sql;
}

void IntegrationServer::RecordCallMetrics(const std::string& tenant,
                                          const std::string& name,
                                          const TimedResult& result) {
  const sim::SystemState::Warmth warmth = result.warmth;
  // The function name is one dotted segment of the metric name; escaping it
  // keeps "Get.Stock" from aliasing a "Get" function's "Stock" sub-metric.
  const std::string fn = obs::EscapeMetricSegment(name);
  metrics_.Inc("call.count");
  metrics_.Inc("call.function." + fn);
  metrics_.Inc(std::string("call.warmth.") + sim::WarmthName(warmth));
  metrics_.Observe(std::string("call.elapsed_us.") + sim::WarmthName(warmth),
                   result.elapsed_us);
  metrics_.Observe(
      "call.elapsed_us." + fn + "." + sim::WarmthName(warmth),
      result.elapsed_us);
  if (tenant != "default") {
    obs::TenantMetrics scoped(&metrics_, tenant);
    scoped.Inc("call.count");
    scoped.Inc("call.function." + fn);
    scoped.Observe("call.elapsed_us", result.elapsed_us);
  }
}

cache::ResultCache::Key IntegrationServer::FederatedCacheKey(
    const std::string& name, const std::vector<Value>& args) const {
  cache::ResultCache::Key key;
  key.scope = cache::kFederatedScope;
  key.function = name;
  key.args = cache::FingerprintArgs(args);
  // Stamp the systems the cached plan calls into, in first-call order; with
  // no resident plan (e.g. a function registered through a coupling
  // directly), conservatively stamp every registered system.
  std::vector<std::string> stamped;
  if (std::shared_ptr<const plan::FedPlan> plan = plan_cache_.Lookup(name)) {
    for (const plan::PlanCall& call : plan->calls) {
      if (std::find(stamped.begin(), stamped.end(), call.system) ==
          stamped.end()) {
        stamped.push_back(call.system);
      }
    }
  } else {
    stamped = systems_.Names();
  }
  key.version = cache::DataVersionStamp(systems_, stamped);
  return key;
}

bool IntegrationServer::TryServeCached(sim::SystemState::Warmth warmth,
                                       const std::string& name,
                                       const std::vector<Value>& args,
                                       TimedResult* out) {
  // Hot slot + resident entry: the fleet generalization of the paper's hot
  // call — the modeled call is skipped entirely. Cold and warm calls always
  // run for real (the warm-up is the phenomenon under measurement).
  if (!caching_enabled_ || warmth != sim::SystemState::Warmth::kHot) {
    return false;
  }
  Table resident;
  if (!result_cache_.Lookup(FederatedCacheKey(name, args), &resident)) {
    return false;
  }
  out->table = std::move(resident);
  out->elapsed_us = model_.cache_hit_us;
  out->breakdown = TimeBreakdown();
  out->breakdown.Add(sim::steps::kCacheHit, model_.cache_hit_us);
  out->warmth = warmth;
  return true;
}

void IntegrationServer::FinishCachedCall(sim::SystemState::Warmth warmth,
                                         uint64_t slot,
                                         const std::string& tenant,
                                         const std::string& name,
                                         const std::vector<Value>& args,
                                         TimedResult* result) {
  if (!caching_enabled_) return;
  // A hot call probed the cache before falling through to the real flow;
  // the flow's own clock never saw that probe.
  if (warmth == sim::SystemState::Warmth::kHot) {
    result->elapsed_us += model_.cache_probe_us;
    result->breakdown.Add(sim::steps::kCacheProbe, model_.cache_probe_us);
  }
  cache::ResultCache::Entry entry;
  entry.table = result->table;
  entry.saved_cost_us = result->elapsed_us;
  entry.slot = slot;
  entry.tenant = tenant;
  // Keyed at the post-call data versions: a call that itself mutated a store
  // inserts under the new stamp and can never serve the pre-mutation state.
  result_cache_.Insert(FederatedCacheKey(name, args), std::move(entry));
}

Result<IntegrationServer::TimedResult> IntegrationServer::CallFederated(
    const std::string& name, const std::vector<Value>& args) {
  return CallFederatedFor("default", name, args);
}

Result<IntegrationServer::TimedResult> IntegrationServer::RunSagaCall(
    const txn::SagaSpecInfo& info, Controller* controller,
    sim::SystemState* ledger, uint64_t slot, const std::string& tenant,
    const std::string& name, const std::vector<Value>& args) {
  // Begin OUTSIDE every coupling retry loop: the idempotency keys must stay
  // stable across a WfMS checkpoint resume and across an I-UDTF whole
  // statement restart, or the dedup ledger could never recognize a retried
  // write. A write-path call is never served from (or inserted into) the
  // whole-call result cache — its effect is the point of the call.
  std::unique_ptr<txn::SagaExec> exec = saga_runtime_.Begin(info, args);
  VDuration failed_elapsed_us = 0;
  Result<TimedResult> result =
      RunFlow(controller, ledger, slot, tenant, BuildCallSql(name, args),
              exec.get(), &failed_elapsed_us);
  if (!result.ok()) {
    // Backward recovery: compensate the applied steps in reverse order. The
    // outcome (including the modeled abort cost) is queryable through
    // saga_runtime().LastOutcome(name); the caller sees the original error.
    (void)saga_runtime_.Abort(*exec, failed_elapsed_us, result.status());
    // Backward recovery supersedes forward recovery: the WfMS checkpoint
    // memoizes activities whose effects were just compensated, so a later
    // resume from it would skip re-applying the undone writes.
    if (wfms_ != nullptr) wfms_->wrapper()->ClearCheckpoint(name);
    return result.status();
  }
  saga_runtime_.Commit(*exec);
  RecordCallMetrics(tenant, name, *result);
  return result;
}

Result<IntegrationServer::TimedResult> IntegrationServer::CallFederatedFor(
    const std::string& tenant, const std::string& name,
    const std::vector<Value>& args) {
  // Admission: lease a controller for the whole call. With pool size 1 this
  // always returns the pinned controller — the legacy single-flow path.
  FEDFLOW_ASSIGN_OR_RETURN(ControllerPool::Lease lease,
                           controller_pool_.Checkout(tenant, name));
  const sim::SystemState::Warmth warmth = lease.warmth();
  if (const txn::SagaSpecInfo* info = saga_runtime_.Find(name)) {
    FEDFLOW_ASSIGN_OR_RETURN(
        TimedResult saga_result,
        RunSagaCall(*info, lease.controller(), lease.ledger(), lease.slot(),
                    tenant, name, args));
    saga_result.warmth = warmth;
    return saga_result;
  }
  TimedResult result;
  if (TryServeCached(warmth, name, args, &result)) {
    lease.ledger()->MarkRun(name);
    RecordCallMetrics(tenant, name, result);
    return result;
  }
  FEDFLOW_ASSIGN_OR_RETURN(
      result, RunFlow(lease.controller(), lease.ledger(), lease.slot(), tenant,
                      BuildCallSql(name, args)));
  result.warmth = warmth;
  FinishCachedCall(warmth, lease.slot(), tenant, name, args, &result);
  RecordCallMetrics(tenant, name, result);
  return result;
}

Result<IntegrationServer::TimedResult> IntegrationServer::CallFederatedOnLease(
    const ControllerPool::Lease& lease, const std::string& tenant,
    const std::string& name, const std::vector<Value>& args) {
  if (!lease.valid()) {
    return Status::InvalidArgument(
        "CallFederatedOnLease: lease was already released");
  }
  // Pre-call verdict: what this function experiences on the leased
  // controller. Must be read before execution marks the function run.
  const sim::SystemState::Warmth warmth = lease.ledger()->QueryWarmth(name);
  if (const txn::SagaSpecInfo* info = saga_runtime_.Find(name)) {
    FEDFLOW_ASSIGN_OR_RETURN(
        TimedResult saga_result,
        RunSagaCall(*info, lease.controller(), lease.ledger(), lease.slot(),
                    tenant, name, args));
    saga_result.warmth = warmth;
    return saga_result;
  }
  TimedResult result;
  if (TryServeCached(warmth, name, args, &result)) {
    lease.ledger()->MarkRun(name);
    RecordCallMetrics(tenant, name, result);
    return result;
  }
  FEDFLOW_ASSIGN_OR_RETURN(
      result, RunFlow(lease.controller(), lease.ledger(), lease.slot(), tenant,
                      BuildCallSql(name, args)));
  result.warmth = warmth;
  FinishCachedCall(warmth, lease.slot(), tenant, name, args, &result);
  RecordCallMetrics(tenant, name, result);
  return result;
}

void IntegrationServer::Reboot() {
  // No leases are outstanding when a caller reboots the environment (flows
  // release their controller before QueryTimedFor returns), so the pool
  // reboot cannot fail.
  (void)controller_pool_.Reboot();
}

}  // namespace fedflow::federation
