// The paper's purchasing scenario as federated-function specs: every example
// function of §1/§3/§4, one per heterogeneity case. These drive the examples,
// the integration tests and all reproduced experiments.
#ifndef FEDFLOW_FEDERATION_SAMPLE_SCENARIO_H_
#define FEDFLOW_FEDERATION_SAMPLE_SCENARIO_H_

#include <memory>
#include <vector>

#include "appsys/dataset.h"
#include "federation/integration_server.h"
#include "federation/spec.h"

namespace fedflow::federation {

/// Trivial case: German federated name over pdm.GetCompNo (§3).
FederatedFunctionSpec GibKompNrSpec();

/// Simple case: constant supplier 1234 and an INT -> BIGINT cast (§3).
FederatedFunctionSpec GetNumberSupp1234Spec();

/// Dependent, linear: GetSupplierNo -> GetQuality (§3).
FederatedFunctionSpec GetSuppQualSpec();

/// Independent (parallel): GetQuality || GetReliability by supplier number —
/// the parallel counterpart of GetSuppQual with the same function count (§4).
FederatedFunctionSpec GetSuppQualReliaSpec();

/// Independent with join: GetSubCompNo x GetCompSupp4Discount (§3).
FederatedFunctionSpec GetSubCompDiscountsSpec();

/// Dependent (1:n): GetSupplierNo + GetCompNo -> GetNumber; the paper's
/// Fig. 6 breakdown function with three local functions.
FederatedFunctionSpec GetNoSuppCompSpec();

/// Dependent (n:1): GetSupplierNo -> {GetQuality, GetReliability}.
FederatedFunctionSpec GetSuppInfoSpec();

/// Dependent, cyclic: do-until loop over pdm.GetCompName — workflow only
/// (§3/§4 loop-scaling experiment).
FederatedFunctionSpec AllCompNamesSpec();

/// The motivating example (Fig. 1): five local functions across all three
/// application systems.
FederatedFunctionSpec BuySuppCompSpec();

/// Write path (saga semantics): GetSupplierNo -> ReserveStock -> PlaceOrder
/// with ReleaseStock / CancelOrder compensations. NOT part of SampleSpecs()
/// — the saga tests and bench_saga register it explicitly, keeping every
/// read-only workload (and its goldens) untouched.
FederatedFunctionSpec ProcureComponentSpec();

/// All specs both architectures can express, in Fig. 5 order of increasing
/// mapping complexity.
std::vector<FederatedFunctionSpec> SampleSpecs();

/// All specs including the cyclic AllCompNames (WfMS architecture only).
std::vector<FederatedFunctionSpec> AllSampleSpecs();

/// Builds a booted server over a generated scenario with every expressible
/// sample function registered (under the UDTF architecture the cyclic spec
/// is skipped — it is unsupported there by construction). `pool_options`
/// sizes the controller pool; the default single-controller pool is
/// bit-identical to the pre-pool server.
Result<std::unique_ptr<IntegrationServer>> MakeSampleServer(
    Architecture arch, const appsys::ScenarioConfig& config = {},
    sim::LatencyModel model = {}, ControllerPoolOptions pool_options = {});

}  // namespace fedflow::federation

#endif  // FEDFLOW_FEDERATION_SAMPLE_SCENARIO_H_
