// Recursive-descent parser for the fedflow SQL subset.
#ifndef FEDFLOW_SQL_PARSER_H_
#define FEDFLOW_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace fedflow::sql {

/// Parses a single SQL statement (an optional trailing ';' is allowed).
/// Returns InvalidArgument with offset information on syntax errors.
Result<Statement> Parse(const std::string& input);

/// Parses a statement that must be a SELECT.
Result<SelectStmt> ParseSelect(const std::string& input);

/// Parses a bare scalar expression (used by tests and the workflow
/// transition-condition language, which reuses SQL expression syntax).
Result<ExprPtr> ParseExpression(const std::string& input);

}  // namespace fedflow::sql

#endif  // FEDFLOW_SQL_PARSER_H_
