// Abstract syntax tree for the fedflow SQL subset.
//
// The subset mirrors what the paper's prototype needed from DB2 UDB v7.1,
// plus common surface for post-processing function results:
//   SELECT [DISTINCT] ... FROM <tables and TABLE(func(args)) AS alias refs>
//     [WHERE ...] [GROUP BY ...] [HAVING ...] [ORDER BY ...] [LIMIT n]
//     with IN / BETWEEN / LIKE / CASE expressions
//   CREATE TABLE t (col TYPE, ...)
//   INSERT INTO t VALUES (...), (...) | INSERT INTO t SELECT ...
//   UPDATE t SET col = expr, ... [WHERE ...] / DELETE FROM t [WHERE ...]
//   CREATE FUNCTION f (p TYPE, ...) RETURNS TABLE (col TYPE, ...)
//     LANGUAGE SQL RETURN SELECT ...            -- SQL I-UDTFs
//   CREATE PROCEDURE p (...) BEGIN ... END      -- PSM, invoked via CALL
//   DROP TABLE t / DROP FUNCTION f / DROP PROCEDURE p
#ifndef FEDFLOW_SQL_AST_H_
#define FEDFLOW_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace fedflow::sql {

class Expr;
/// Expressions are immutable after parsing; shared ownership lets the planner
/// reuse subtrees without cloning.
using ExprPtr = std::shared_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kFunctionCall,
  kBinary,
  kUnary,
  kCase,
};

/// Binary operators, in SQL semantics.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kConcat,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kLike,  ///< SQL LIKE with % and _ wildcards
};

/// Unary operators.
enum class UnaryOp {
  kNeg,
  kNot,
  kIsNull,
  kIsNotNull,
};

/// SQL text of a binary operator ("+", "AND", ...).
const char* BinaryOpName(BinaryOp op);

/// Base expression node.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;
  ExprKind kind() const { return kind_; }

  /// Renders the expression back to SQL text.
  virtual std::string ToSql() const = 0;

 private:
  ExprKind kind_;
};

/// A constant.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}
  const Value& value() const { return value_; }
  std::string ToSql() const override;

 private:
  Value value_;
};

/// A possibly-qualified name reference: `alias.col`, bare `col`, or — inside
/// an SQL function body — `FunctionName.ParamName` (DB2 style).
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name)
      : Expr(ExprKind::kColumnRef),
        qualifier_(std::move(qualifier)),
        name_(std::move(name)) {}
  /// Empty when the reference is unqualified.
  const std::string& qualifier() const { return qualifier_; }
  const std::string& name() const { return name_; }
  std::string ToSql() const override;

 private:
  std::string qualifier_;
  std::string name_;
};

/// Scalar function call or aggregate. COUNT(*) is a call with star_arg set.
class FunctionCallExpr : public Expr {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args,
                   bool star_arg = false)
      : Expr(ExprKind::kFunctionCall),
        name_(std::move(name)),
        args_(std::move(args)),
        star_arg_(star_arg) {}
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  bool star_arg() const { return star_arg_; }
  std::string ToSql() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
  bool star_arg_;
};

/// Binary operation.
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  std::string ToSql() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Unary operation (negation, NOT, IS [NOT] NULL).
class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op_(op), operand_(std::move(operand)) {}
  UnaryOp op() const { return op_; }
  const ExprPtr& operand() const { return operand_; }
  std::string ToSql() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// Searched CASE expression: CASE WHEN c1 THEN v1 ... [ELSE v] END.
/// (The simple form CASE x WHEN v THEN ... is desugared by the parser.)
class CaseExpr : public Expr {
 public:
  struct Branch {
    ExprPtr condition;
    ExprPtr value;
  };
  CaseExpr(std::vector<Branch> branches, ExprPtr else_value)
      : Expr(ExprKind::kCase),
        branches_(std::move(branches)),
        else_value_(std::move(else_value)) {}
  const std::vector<Branch>& branches() const { return branches_; }
  /// Null when no ELSE was given (yields NULL).
  const ExprPtr& else_value() const { return else_value_; }
  std::string ToSql() const override;

 private:
  std::vector<Branch> branches_;
  ExprPtr else_value_;
};

/// One item of the SELECT list. Either `*` (optionally qualified) or an
/// expression with an optional output alias.
struct SelectItem {
  bool is_star = false;
  std::string star_qualifier;  ///< for `alias.*`; empty for bare `*`
  ExprPtr expr;                ///< null when is_star
  std::string alias;           ///< empty when none given
};

/// Kind of a FROM-clause item.
enum class TableRefKind {
  kBaseTable,      ///< `name [AS] alias`
  kTableFunction,  ///< `TABLE(fn(args)) AS alias` — DB2 UDTF reference
};

/// One FROM-clause item. Table-function arguments may reference columns of
/// FROM items to their left (DB2's lateral correlation), which is how the
/// paper's UDTF approach expresses precedence among local functions.
struct TableRef {
  TableRefKind kind = TableRefKind::kBaseTable;
  std::string name;            ///< table or function name
  std::string alias;           ///< correlation name (mandatory for functions)
  std::vector<ExprPtr> args;   ///< function arguments (kTableFunction only)
};

/// One ORDER BY key.
struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// SELECT statement.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;                 ///< null when absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;                ///< null when absent
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  /// Renders the statement back to SQL text.
  std::string ToSql() const;
};

/// CREATE TABLE.
struct CreateTableStmt {
  std::string name;
  Schema schema;
};

/// INSERT INTO ... VALUES (...) | INSERT INTO ... SELECT ...
struct InsertStmt {
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;  ///< VALUES form
  std::unique_ptr<SelectStmt> select;      ///< SELECT form (rows empty)
};

/// UPDATE table SET col = expr, ... [WHERE expr]. Base tables only — table
/// functions are read-only (the paper: "UDTFs only support read access").
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< null when absent
};

/// DELETE FROM table [WHERE expr].
struct DeleteStmt {
  std::string table;
  ExprPtr where;  ///< null when absent
};

/// CREATE FUNCTION ... LANGUAGE SQL RETURN SELECT — an SQL-bodied table
/// function (the paper's I-UDTF). The body is restricted to one SELECT,
/// exactly the product limitation §2 discusses.
struct CreateFunctionStmt {
  std::string name;
  std::vector<Column> params;
  Schema returns;
  std::unique_ptr<SelectStmt> body;
};

/// One statement of a PSM-style stored-procedure body.
///
/// The dialect (SQL99 PSM flavored, trimmed to what the paper's discussion
/// needs): DECLARE var TYPE; SET var = expr; IF cond THEN ... [ELSE ...]
/// END IF; WHILE cond DO ... END WHILE; RETURN <select>; EMIT <select>
/// (appends the select's rows to the procedure's result set — the cursor
/// analog).
struct PsmStatement {
  enum class Kind { kDeclare, kSet, kIf, kWhile, kReturn, kEmit };
  Kind kind = Kind::kDeclare;

  std::string var;                    ///< kDeclare / kSet target
  DataType var_type = DataType::kNull;  ///< kDeclare
  ExprPtr expr;                       ///< kSet value, kIf / kWhile condition
  std::vector<PsmStatement> then_branch;  ///< kIf / kWhile body
  std::vector<PsmStatement> else_branch;  ///< kIf
  std::unique_ptr<SelectStmt> select;     ///< kReturn / kEmit
};

/// CREATE PROCEDURE ... BEGIN ... END — a PSM stored procedure. Procedures
/// are invoked with CALL only; they cannot appear in a FROM clause (the
/// product restriction the paper §2 points out).
struct CreateProcedureStmt {
  std::string name;
  std::vector<Column> params;
  std::vector<PsmStatement> body;
};

/// CALL name(args) — invokes a stored procedure; yields its result set.
struct CallStmt {
  std::string name;
  std::vector<ExprPtr> args;
};

/// DROP TABLE / DROP FUNCTION / DROP PROCEDURE.
struct DropStmt {
  bool is_function = false;
  bool is_procedure = false;
  std::string name;
};

/// Statement discriminator.
enum class StatementKind {
  kSelect,
  kCreateTable,
  kInsert,
  kUpdate,
  kDelete,
  kCreateFunction,
  kCreateProcedure,
  kCall,
  kDrop,
};

/// A parsed statement; exactly the member matching `kind` is non-null.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateFunctionStmt> create_function;
  std::unique_ptr<CreateProcedureStmt> create_procedure;
  std::unique_ptr<CallStmt> call;
  std::unique_ptr<DropStmt> drop;
};

}  // namespace fedflow::sql

#endif  // FEDFLOW_SQL_AST_H_
