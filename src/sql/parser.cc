#include "sql/parser.h"

#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "sql/lexer.h"

namespace fedflow::sql {

namespace {

template <typename T, typename... Args>
ExprPtr MakeExpr(Args&&... args) {
  return std::make_shared<T>(std::forward<Args>(args)...);
}

/// Token-cursor parser. All Parse* methods return Result and never consume
/// past a failure point deterministically (errors abort the whole parse).
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (PeekKeyword("SELECT")) {
      FEDFLOW_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelectStmt());
      stmt.kind = StatementKind::kSelect;
      stmt.select = std::make_unique<SelectStmt>(std::move(sel));
    } else if (PeekKeyword("CREATE")) {
      Advance();
      if (PeekKeyword("TABLE")) {
        Advance();
        FEDFLOW_ASSIGN_OR_RETURN(CreateTableStmt ct, ParseCreateTableTail());
        stmt.kind = StatementKind::kCreateTable;
        stmt.create_table = std::make_unique<CreateTableStmt>(std::move(ct));
      } else if (PeekKeyword("FUNCTION")) {
        Advance();
        FEDFLOW_ASSIGN_OR_RETURN(CreateFunctionStmt cf,
                                 ParseCreateFunctionTail());
        stmt.kind = StatementKind::kCreateFunction;
        stmt.create_function =
            std::make_unique<CreateFunctionStmt>(std::move(cf));
      } else if (PeekKeyword("PROCEDURE")) {
        Advance();
        FEDFLOW_ASSIGN_OR_RETURN(CreateProcedureStmt cp,
                                 ParseCreateProcedureTail());
        stmt.kind = StatementKind::kCreateProcedure;
        stmt.create_procedure =
            std::make_unique<CreateProcedureStmt>(std::move(cp));
      } else {
        return Error("expected TABLE, FUNCTION or PROCEDURE after CREATE");
      }
    } else if (PeekKeyword("INSERT")) {
      Advance();
      FEDFLOW_ASSIGN_OR_RETURN(InsertStmt ins, ParseInsertTail());
      stmt.kind = StatementKind::kInsert;
      stmt.insert = std::make_unique<InsertStmt>(std::move(ins));
    } else if (PeekKeyword("UPDATE")) {
      Advance();
      UpdateStmt upd;
      FEDFLOW_ASSIGN_OR_RETURN(upd.table, ExpectIdentifier());
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("SET"));
      while (true) {
        std::pair<std::string, ExprPtr> assignment;
        FEDFLOW_ASSIGN_OR_RETURN(assignment.first, ExpectIdentifier());
        FEDFLOW_RETURN_NOT_OK(ExpectSymbol("="));
        FEDFLOW_ASSIGN_OR_RETURN(assignment.second, ParseExpr());
        upd.assignments.push_back(std::move(assignment));
        if (!ConsumeSymbol(",")) break;
      }
      if (ConsumeKeyword("WHERE")) {
        FEDFLOW_ASSIGN_OR_RETURN(upd.where, ParseExpr());
      }
      stmt.kind = StatementKind::kUpdate;
      stmt.update = std::make_unique<UpdateStmt>(std::move(upd));
    } else if (PeekKeyword("DELETE")) {
      Advance();
      DeleteStmt del;
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("FROM"));
      FEDFLOW_ASSIGN_OR_RETURN(del.table, ExpectIdentifier());
      if (ConsumeKeyword("WHERE")) {
        FEDFLOW_ASSIGN_OR_RETURN(del.where, ParseExpr());
      }
      stmt.kind = StatementKind::kDelete;
      stmt.del = std::make_unique<DeleteStmt>(std::move(del));
    } else if (PeekKeyword("CALL")) {
      Advance();
      CallStmt call;
      FEDFLOW_ASSIGN_OR_RETURN(call.name, ExpectIdentifier());
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol("("));
      if (!PeekSymbol(")")) {
        while (true) {
          FEDFLOW_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          call.args.push_back(std::move(arg));
          if (!ConsumeSymbol(",")) break;
        }
      }
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt.kind = StatementKind::kCall;
      stmt.call = std::make_unique<CallStmt>(std::move(call));
    } else if (PeekKeyword("DROP")) {
      Advance();
      DropStmt drop;
      if (PeekKeyword("TABLE")) {
        drop.is_function = false;
      } else if (PeekKeyword("FUNCTION")) {
        drop.is_function = true;
      } else if (PeekKeyword("PROCEDURE")) {
        drop.is_procedure = true;
      } else {
        return Error("expected TABLE, FUNCTION or PROCEDURE after DROP");
      }
      Advance();
      FEDFLOW_ASSIGN_OR_RETURN(drop.name, ExpectIdentifier());
      stmt.kind = StatementKind::kDrop;
      stmt.drop = std::make_unique<DropStmt>(std::move(drop));
    } else {
      return Error("expected SELECT, CREATE, INSERT, UPDATE, DELETE, CALL or DROP");
    }
    ConsumeSymbol(";");
    if (!AtEnd()) return Error("trailing tokens after statement");
    return stmt;
  }

  Result<SelectStmt> ParseSelectOnly() {
    FEDFLOW_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelectStmt());
    ConsumeSymbol(";");
    if (!AtEnd()) return Error<SelectStmt>("trailing tokens after SELECT");
    return sel;
  }

  Result<ExprPtr> ParseExpressionOnly() {
    FEDFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) return Error<ExprPtr>("trailing tokens after expression");
    return e;
  }

 private:
  // --- token helpers -------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!ConsumeKeyword(kw)) return ErrorStatus("expected " + kw);
    return Status::OK();
  }
  bool PeekSymbol(const std::string& s, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == s;
  }
  bool ConsumeSymbol(const std::string& s) {
    if (PeekSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& s) {
    if (!ConsumeSymbol(s)) return ErrorStatus("expected '" + s + "'");
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier) {
      return ErrorStatus("expected identifier");
    }
    std::string name = t.text;
    Advance();
    return name;
  }

  Status ErrorStatus(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at offset " +
                                   std::to_string(Peek().offset) + " (near '" +
                                   Peek().text + "')");
  }
  template <typename T = Statement>
  Result<T> Error(const std::string& msg) const {
    return ErrorStatus(msg);
  }

  static bool IsReserved(const std::string& word) {
    static const char* kReserved[] = {
        "SELECT", "FROM",  "WHERE",  "GROUP", "BY",    "HAVING", "ORDER",
        "ASC",    "DESC",  "LIMIT",  "AS",    "TABLE", "AND",    "OR",
        "NOT",    "NULL",  "TRUE",   "FALSE", "IS",    "VALUES", "INTO",
        "CREATE", "INSERT", "DROP",  "FUNCTION", "RETURNS", "LANGUAGE",
        "RETURN", "SQL",   "PROCEDURE", "CALL", "BEGIN", "END", "DECLARE",
        "SET",    "IF",    "THEN",   "ELSE",  "WHILE", "DO",    "EMIT",
        "CASE",   "WHEN",  "IN",     "BETWEEN", "LIKE", "DISTINCT",
        "UPDATE", "DELETE",
    };
    for (const char* kw : kReserved) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  // --- statements ----------------------------------------------------------
  Result<SelectStmt> ParseSelectStmt() {
    FEDFLOW_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SelectStmt sel;
    if (ConsumeKeyword("DISTINCT")) sel.distinct = true;
    // Select list.
    while (true) {
      SelectItem item;
      if (PeekSymbol("*")) {
        Advance();
        item.is_star = true;
      } else if (Peek().type == TokenType::kIdentifier &&
                 PeekSymbol(".", 1) && PeekSymbol("*", 2)) {
        item.is_star = true;
        item.star_qualifier = Peek().text;
        Advance();
        Advance();
        Advance();
      } else {
        FEDFLOW_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          FEDFLOW_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Peek().type == TokenType::kIdentifier &&
                   !IsReserved(Peek().text)) {
          item.alias = Peek().text;
          Advance();
        }
      }
      sel.items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    // FROM.
    if (ConsumeKeyword("FROM")) {
      while (true) {
        FEDFLOW_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        sel.from.push_back(std::move(ref));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("WHERE")) {
      FEDFLOW_ASSIGN_OR_RETURN(sel.where, ParseExpr());
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        FEDFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        sel.group_by.push_back(std::move(e));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      FEDFLOW_ASSIGN_OR_RETURN(sel.having, ParseExpr());
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        FEDFLOW_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("ASC");
        }
        sel.order_by.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      const Token& t = Peek();
      if (t.type != TokenType::kIntLiteral) {
        return Error<SelectStmt>("expected integer after LIMIT");
      }
      sel.limit = std::strtoll(t.text.c_str(), nullptr, 10);
      Advance();
    }
    return sel;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (PeekKeyword("TABLE")) {
      // TABLE ( func(args) ) AS alias — DB2 table-function reference.
      Advance();
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol("("));
      FEDFLOW_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier());
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol("("));
      if (!PeekSymbol(")")) {
        while (true) {
          FEDFLOW_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          ref.args.push_back(std::move(arg));
          if (!ConsumeSymbol(",")) break;
        }
      }
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
      // DB2 makes the correlation name mandatory for table functions.
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("AS"));
      FEDFLOW_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
      ref.kind = TableRefKind::kTableFunction;
      return ref;
    }
    ref.kind = TableRefKind::kBaseTable;
    FEDFLOW_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier());
    if (ConsumeKeyword("AS")) {
      FEDFLOW_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsReserved(Peek().text)) {
      ref.alias = Peek().text;
      Advance();
    }
    return ref;
  }

  Result<CreateTableStmt> ParseCreateTableTail() {
    CreateTableStmt ct;
    FEDFLOW_ASSIGN_OR_RETURN(ct.name, ExpectIdentifier());
    FEDFLOW_RETURN_NOT_OK(ExpectSymbol("("));
    FEDFLOW_ASSIGN_OR_RETURN(std::vector<Column> cols, ParseColumnList());
    FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
    ct.schema = Schema(std::move(cols));
    return ct;
  }

  Result<std::vector<Column>> ParseColumnList() {
    std::vector<Column> cols;
    while (true) {
      Column col;
      FEDFLOW_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      FEDFLOW_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
      FEDFLOW_ASSIGN_OR_RETURN(col.type, DataTypeFromName(type_name));
      // Optional length suffix, e.g. VARCHAR(20); accepted and ignored.
      if (ConsumeSymbol("(")) {
        if (Peek().type != TokenType::kIntLiteral) {
          return Error<std::vector<Column>>("expected length");
        }
        Advance();
        FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      cols.push_back(std::move(col));
      if (!ConsumeSymbol(",")) break;
    }
    return cols;
  }

  Result<InsertStmt> ParseInsertTail() {
    InsertStmt ins;
    FEDFLOW_RETURN_NOT_OK(ExpectKeyword("INTO"));
    FEDFLOW_ASSIGN_OR_RETURN(ins.table, ExpectIdentifier());
    if (PeekKeyword("SELECT")) {
      FEDFLOW_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelectStmt());
      ins.select = std::make_unique<SelectStmt>(std::move(sel));
      return ins;
    }
    FEDFLOW_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    while (true) {
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      while (true) {
        FEDFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!ConsumeSymbol(",")) break;
      }
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
      ins.rows.push_back(std::move(row));
      if (!ConsumeSymbol(",")) break;
    }
    return ins;
  }

  Result<CreateFunctionStmt> ParseCreateFunctionTail() {
    CreateFunctionStmt cf;
    FEDFLOW_ASSIGN_OR_RETURN(cf.name, ExpectIdentifier());
    FEDFLOW_RETURN_NOT_OK(ExpectSymbol("("));
    if (!PeekSymbol(")")) {
      FEDFLOW_ASSIGN_OR_RETURN(cf.params, ParseColumnList());
    }
    FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
    FEDFLOW_RETURN_NOT_OK(ExpectKeyword("RETURNS"));
    FEDFLOW_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    FEDFLOW_RETURN_NOT_OK(ExpectSymbol("("));
    FEDFLOW_ASSIGN_OR_RETURN(std::vector<Column> ret_cols, ParseColumnList());
    FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
    cf.returns = Schema(std::move(ret_cols));
    FEDFLOW_RETURN_NOT_OK(ExpectKeyword("LANGUAGE"));
    FEDFLOW_RETURN_NOT_OK(ExpectKeyword("SQL"));
    FEDFLOW_RETURN_NOT_OK(ExpectKeyword("RETURN"));
    FEDFLOW_ASSIGN_OR_RETURN(SelectStmt body, ParseSelectStmt());
    cf.body = std::make_unique<SelectStmt>(std::move(body));
    return cf;
  }

  Result<CreateProcedureStmt> ParseCreateProcedureTail() {
    CreateProcedureStmt cp;
    FEDFLOW_ASSIGN_OR_RETURN(cp.name, ExpectIdentifier());
    FEDFLOW_RETURN_NOT_OK(ExpectSymbol("("));
    if (!PeekSymbol(")")) {
      FEDFLOW_ASSIGN_OR_RETURN(cp.params, ParseColumnList());
    }
    FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
    FEDFLOW_RETURN_NOT_OK(ExpectKeyword("BEGIN"));
    FEDFLOW_ASSIGN_OR_RETURN(cp.body, ParsePsmStatements());
    FEDFLOW_RETURN_NOT_OK(ExpectKeyword("END"));
    return cp;
  }

  /// Parses PSM statements until (not consuming) END or ELSE.
  Result<std::vector<PsmStatement>> ParsePsmStatements() {
    std::vector<PsmStatement> stmts;
    while (!PeekKeyword("END") && !PeekKeyword("ELSE") && !AtEnd()) {
      FEDFLOW_ASSIGN_OR_RETURN(PsmStatement stmt, ParsePsmStatement());
      stmts.push_back(std::move(stmt));
    }
    return stmts;
  }

  Result<PsmStatement> ParsePsmStatement() {
    PsmStatement stmt;
    if (ConsumeKeyword("DECLARE")) {
      stmt.kind = PsmStatement::Kind::kDeclare;
      FEDFLOW_ASSIGN_OR_RETURN(stmt.var, ExpectIdentifier());
      FEDFLOW_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
      FEDFLOW_ASSIGN_OR_RETURN(stmt.var_type, DataTypeFromName(type_name));
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol(";"));
      return stmt;
    }
    if (ConsumeKeyword("SET")) {
      stmt.kind = PsmStatement::Kind::kSet;
      FEDFLOW_ASSIGN_OR_RETURN(stmt.var, ExpectIdentifier());
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol("="));
      FEDFLOW_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol(";"));
      return stmt;
    }
    if (ConsumeKeyword("IF")) {
      stmt.kind = PsmStatement::Kind::kIf;
      FEDFLOW_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("THEN"));
      FEDFLOW_ASSIGN_OR_RETURN(stmt.then_branch, ParsePsmStatements());
      if (ConsumeKeyword("ELSE")) {
        FEDFLOW_ASSIGN_OR_RETURN(stmt.else_branch, ParsePsmStatements());
      }
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("END"));
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("IF"));
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol(";"));
      return stmt;
    }
    if (ConsumeKeyword("WHILE")) {
      stmt.kind = PsmStatement::Kind::kWhile;
      FEDFLOW_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("DO"));
      FEDFLOW_ASSIGN_OR_RETURN(stmt.then_branch, ParsePsmStatements());
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("END"));
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("WHILE"));
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol(";"));
      return stmt;
    }
    if (ConsumeKeyword("RETURN")) {
      stmt.kind = PsmStatement::Kind::kReturn;
      FEDFLOW_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelectStmt());
      stmt.select = std::make_unique<SelectStmt>(std::move(sel));
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol(";"));
      return stmt;
    }
    if (ConsumeKeyword("EMIT")) {
      stmt.kind = PsmStatement::Kind::kEmit;
      FEDFLOW_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelectStmt());
      stmt.select = std::make_unique<SelectStmt>(std::move(sel));
      FEDFLOW_RETURN_NOT_OK(ExpectSymbol(";"));
      return stmt;
    }
    return Error<PsmStatement>(
        "expected DECLARE, SET, IF, WHILE, RETURN or EMIT");
  }

  // --- expressions, by precedence -----------------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    FEDFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      FEDFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = std::make_shared<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    FEDFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (ConsumeKeyword("AND")) {
      FEDFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = std::make_shared<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      FEDFLOW_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return MakeExpr<UnaryExpr>(UnaryOp::kNot, std::move(inner));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    FEDFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // IS [NOT] NULL postfix.
    if (PeekKeyword("IS")) {
      Advance();
      bool negated = ConsumeKeyword("NOT");
      FEDFLOW_RETURN_NOT_OK(ExpectKeyword("NULL"));
      return MakeExpr<UnaryExpr>(
          negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull, std::move(left));
    }
    // [NOT] IN / BETWEEN / LIKE postfixes.
    {
      bool negated = false;
      if (PeekKeyword("NOT") &&
          (PeekKeyword("IN", 1) || PeekKeyword("BETWEEN", 1) ||
           PeekKeyword("LIKE", 1))) {
        Advance();
        negated = true;
      }
      if (ConsumeKeyword("IN")) {
        // Desugared to an OR chain of equalities (NULL semantics preserved).
        FEDFLOW_RETURN_NOT_OK(ExpectSymbol("("));
        ExprPtr chain;
        while (true) {
          FEDFLOW_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
          ExprPtr eq = std::make_shared<BinaryExpr>(BinaryOp::kEq, left,
                                                    std::move(item));
          chain = chain == nullptr
                      ? std::move(eq)
                      : std::make_shared<BinaryExpr>(
                            BinaryOp::kOr, std::move(chain), std::move(eq));
          if (!ConsumeSymbol(",")) break;
        }
        FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
        if (negated) {
          return MakeExpr<UnaryExpr>(UnaryOp::kNot, std::move(chain));
        }
        return chain;
      }
      if (ConsumeKeyword("BETWEEN")) {
        // Desugared to x >= lo AND x <= hi.
        FEDFLOW_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
        FEDFLOW_RETURN_NOT_OK(ExpectKeyword("AND"));
        FEDFLOW_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
        ExprPtr both = std::make_shared<BinaryExpr>(
            BinaryOp::kAnd,
            std::make_shared<BinaryExpr>(BinaryOp::kGe, left, std::move(lo)),
            std::make_shared<BinaryExpr>(BinaryOp::kLe, left, std::move(hi)));
        if (negated) {
          return MakeExpr<UnaryExpr>(UnaryOp::kNot, std::move(both));
        }
        return both;
      }
      if (ConsumeKeyword("LIKE")) {
        FEDFLOW_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
        ExprPtr like = std::make_shared<BinaryExpr>(
            BinaryOp::kLike, std::move(left), std::move(pattern));
        if (negated) {
          return MakeExpr<UnaryExpr>(UnaryOp::kNot, std::move(like));
        }
        return like;
      }
      if (negated) return Error<ExprPtr>("dangling NOT");
    }
    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static const OpMap kOps[] = {
        {"<>", BinaryOp::kNe}, {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (PeekSymbol(m.sym)) {
        Advance();
        FEDFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return MakeExpr<BinaryExpr>(m.op, std::move(left),
                                            std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    FEDFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (PeekSymbol("+")) {
        op = BinaryOp::kAdd;
      } else if (PeekSymbol("-")) {
        op = BinaryOp::kSub;
      } else if (PeekSymbol("||")) {
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      Advance();
      FEDFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = std::make_shared<BinaryExpr>(op, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    FEDFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (PeekSymbol("*")) {
        op = BinaryOp::kMul;
      } else if (PeekSymbol("/")) {
        op = BinaryOp::kDiv;
      } else if (PeekSymbol("%")) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      Advance();
      FEDFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = std::make_shared<BinaryExpr>(op, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeSymbol("-")) {
      FEDFLOW_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      return MakeExpr<UnaryExpr>(UnaryOp::kNeg, std::move(inner));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntLiteral: {
        int64_t v = std::strtoll(t.text.c_str(), nullptr, 10);
        Advance();
        if (v >= INT32_MIN && v <= INT32_MAX) {
          return MakeExpr<LiteralExpr>(
              Value::Int(static_cast<int32_t>(v)));
        }
        return MakeExpr<LiteralExpr>(Value::BigInt(v));
      }
      case TokenType::kDoubleLiteral: {
        double v = std::strtod(t.text.c_str(), nullptr);
        Advance();
        return MakeExpr<LiteralExpr>(Value::Double(v));
      }
      case TokenType::kStringLiteral: {
        std::string s = t.text;
        Advance();
        return MakeExpr<LiteralExpr>(Value::Varchar(std::move(s)));
      }
      case TokenType::kSymbol:
        if (t.text == "(") {
          Advance();
          FEDFLOW_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        return Error<ExprPtr>("unexpected symbol in expression");
      case TokenType::kIdentifier: {
        if (EqualsIgnoreCase(t.text, "NULL")) {
          Advance();
          return MakeExpr<LiteralExpr>(Value::Null());
        }
        if (EqualsIgnoreCase(t.text, "TRUE")) {
          Advance();
          return MakeExpr<LiteralExpr>(Value::Bool(true));
        }
        if (EqualsIgnoreCase(t.text, "FALSE")) {
          Advance();
          return MakeExpr<LiteralExpr>(Value::Bool(false));
        }
        if (EqualsIgnoreCase(t.text, "CASE")) {
          Advance();
          // Simple form (CASE x WHEN v ...) desugars to the searched form.
          ExprPtr subject;
          if (!PeekKeyword("WHEN")) {
            FEDFLOW_ASSIGN_OR_RETURN(subject, ParseExpr());
          }
          std::vector<CaseExpr::Branch> branches;
          while (ConsumeKeyword("WHEN")) {
            FEDFLOW_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
            if (subject != nullptr) {
              cond = std::make_shared<BinaryExpr>(BinaryOp::kEq, subject,
                                                  std::move(cond));
            }
            FEDFLOW_RETURN_NOT_OK(ExpectKeyword("THEN"));
            FEDFLOW_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
            branches.push_back(
                CaseExpr::Branch{std::move(cond), std::move(value)});
          }
          if (branches.empty()) {
            return Error<ExprPtr>("CASE needs at least one WHEN");
          }
          ExprPtr else_value;
          if (ConsumeKeyword("ELSE")) {
            FEDFLOW_ASSIGN_OR_RETURN(else_value, ParseExpr());
          }
          FEDFLOW_RETURN_NOT_OK(ExpectKeyword("END"));
          return MakeExpr<CaseExpr>(std::move(branches),
                                    std::move(else_value));
        }
        std::string first = t.text;
        Advance();
        if (PeekSymbol("(")) {
          // Function call.
          Advance();
          std::vector<ExprPtr> args;
          bool star_arg = false;
          if (PeekSymbol("*")) {
            Advance();
            star_arg = true;
          } else if (!PeekSymbol(")")) {
            while (true) {
              FEDFLOW_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
              if (!ConsumeSymbol(",")) break;
            }
          }
          FEDFLOW_RETURN_NOT_OK(ExpectSymbol(")"));
          return MakeExpr<FunctionCallExpr>(std::move(first),
                                                    std::move(args), star_arg);
        }
        if (ConsumeSymbol(".")) {
          FEDFLOW_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier());
          return MakeExpr<ColumnRefExpr>(std::move(first),
                                                 std::move(second));
        }
        return MakeExpr<ColumnRefExpr>("", std::move(first));
      }
      case TokenType::kEnd:
        return Error<ExprPtr>("unexpected end of input in expression");
    }
    return Error<ExprPtr>("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& input) {
  FEDFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<SelectStmt> ParseSelect(const std::string& input) {
  FEDFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseSelectOnly();
}

Result<ExprPtr> ParseExpression(const std::string& input) {
  FEDFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseExpressionOnly();
}

}  // namespace fedflow::sql
