#include "sql/lexer.h"

#include <cctype>

namespace fedflow::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentCont(input[i])) ++i;
      tokens.push_back(
          {TokenType::kIdentifier, input.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(input[i]))) {
          return Status::InvalidArgument("malformed numeric literal at offset " +
                                         std::to_string(start));
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      tokens.push_back({is_double ? TokenType::kDoubleLiteral
                                  : TokenType::kIntLiteral,
                        input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      tokens.push_back({TokenType::kStringLiteral, std::move(text), start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      std::string two = input.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=" ||
          two == "||") {
        tokens.push_back({TokenType::kSymbol, two, start});
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "(),.*+-/%=<>;";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("illegal character '" + std::string(1, c) +
                                   "' at offset " + std::to_string(start));
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace fedflow::sql
