// SQL tokenizer for the fedflow SQL subset.
#ifndef FEDFLOW_SQL_LEXER_H_
#define FEDFLOW_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace fedflow::sql {

/// Token categories. Keywords stay kIdentifier at lex time; the parser matches
/// them case-insensitively, which keeps the lexer keyword-agnostic.
enum class TokenType {
  kIdentifier,      ///< bare identifier or keyword
  kIntLiteral,      ///< 123
  kDoubleLiteral,   ///< 1.5, .5, 2.
  kStringLiteral,   ///< 'abc' with '' escaping
  kSymbol,          ///< punctuation / operator, in `text`
  kEnd,             ///< end of input sentinel
};

/// One lexed token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   ///< raw text; string literals are unescaped
  size_t offset = 0;  ///< byte offset into the statement
};

/// Tokenizes `input`. Returns InvalidArgument on unterminated strings or
/// illegal characters. The result always ends with a kEnd token.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace fedflow::sql

#endif  // FEDFLOW_SQL_LEXER_H_
