#include "sql/ast.h"

#include <sstream>

namespace fedflow::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kConcat:
      return "||";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

std::string LiteralExpr::ToSql() const {
  if (value_.type() == DataType::kVarchar) {
    std::string escaped;
    for (char c : value_.AsVarchar()) {
      if (c == '\'') escaped += "''";
      else escaped.push_back(c);
    }
    return "'" + escaped + "'";
  }
  return value_.ToString();
}

std::string ColumnRefExpr::ToSql() const {
  if (qualifier_.empty()) return name_;
  return qualifier_ + "." + name_;
}

std::string FunctionCallExpr::ToSql() const {
  std::ostringstream os;
  os << name_ << "(";
  if (star_arg_) {
    os << "*";
  } else {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) os << ", ";
      os << args_[i]->ToSql();
    }
  }
  os << ")";
  return os.str();
}

std::string BinaryExpr::ToSql() const {
  return "(" + left_->ToSql() + " " + BinaryOpName(op_) + " " +
         right_->ToSql() + ")";
}

std::string UnaryExpr::ToSql() const {
  switch (op_) {
    case UnaryOp::kNeg:
      return "(-" + operand_->ToSql() + ")";
    case UnaryOp::kNot:
      return "(NOT " + operand_->ToSql() + ")";
    case UnaryOp::kIsNull:
      return "(" + operand_->ToSql() + " IS NULL)";
    case UnaryOp::kIsNotNull:
      return "(" + operand_->ToSql() + " IS NOT NULL)";
  }
  return "?";
}

std::string CaseExpr::ToSql() const {
  std::ostringstream os;
  os << "CASE";
  for (const Branch& b : branches_) {
    os << " WHEN " << b.condition->ToSql() << " THEN " << b.value->ToSql();
  }
  if (else_value_ != nullptr) os << " ELSE " << else_value_->ToSql();
  os << " END";
  return os.str();
}

std::string SelectStmt::ToSql() const {
  std::ostringstream os;
  os << "SELECT ";
  if (distinct) os << "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ", ";
    const SelectItem& it = items[i];
    if (it.is_star) {
      if (!it.star_qualifier.empty()) os << it.star_qualifier << ".";
      os << "*";
    } else {
      os << it.expr->ToSql();
      if (!it.alias.empty()) os << " AS " << it.alias;
    }
  }
  if (!from.empty()) {
    os << " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) os << ", ";
      const TableRef& tr = from[i];
      if (tr.kind == TableRefKind::kBaseTable) {
        os << tr.name;
        if (!tr.alias.empty()) os << " AS " << tr.alias;
      } else {
        os << "TABLE (" << tr.name << "(";
        for (size_t a = 0; a < tr.args.size(); ++a) {
          if (a > 0) os << ", ";
          os << tr.args[a]->ToSql();
        }
        os << ")) AS " << tr.alias;
      }
    }
  }
  if (where) os << " WHERE " << where->ToSql();
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i]->ToSql();
    }
  }
  if (having) os << " HAVING " << having->ToSql();
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by[i].expr->ToSql();
      if (!order_by[i].ascending) os << " DESC";
    }
  }
  if (limit.has_value()) os << " LIMIT " << *limit;
  return os.str();
}

}  // namespace fedflow::sql
