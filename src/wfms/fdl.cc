#include "wfms/fdl.h"

#include <cctype>
#include <map>
#include <memory>
#include <sstream>

#include "common/strings.h"
#include "sql/parser.h"

namespace fedflow::wfms {

namespace {

Status LineError(size_t line_no, const std::string& msg) {
  return Status::InvalidArgument("FDL line " + std::to_string(line_no) + ": " +
                                 msg);
}

/// Splits a line into whitespace-separated words, keeping parenthesized
/// groups (and quoted strings) intact as single words.
Result<std::vector<std::string>> SplitWords(const std::string& line,
                                            size_t line_no) {
  std::vector<std::string> words;
  size_t i = 0;
  const size_t n = line.size();
  while (i < n) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (line[i] == '(') {
      int depth = 0;
      while (i < n) {
        if (line[i] == '(') ++depth;
        if (line[i] == ')') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
        ++i;
      }
      if (depth != 0) return LineError(line_no, "unbalanced parentheses");
    } else {
      while (i < n && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    }
    words.push_back(line.substr(start, i - start));
  }
  return words;
}

/// Splits "(a, b, c)" on top-level commas.
Result<std::vector<std::string>> SplitArgs(const std::string& group,
                                           size_t line_no) {
  if (group.size() < 2 || group.front() != '(' || group.back() != ')') {
    return LineError(line_no, "expected a parenthesized list, got " + group);
  }
  std::string inner = group.substr(1, group.size() - 2);
  std::vector<std::string> args;
  int depth = 0;
  std::string cur;
  for (char c : inner) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      args.push_back(Trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!Trim(cur).empty()) args.push_back(Trim(cur));
  return args;
}

/// Parses one input-source spec: INPUT.f | Act.Col | Act.* | literal expr.
Result<InputSource> ParseSource(const std::string& text, size_t line_no) {
  // Activity.* (whole table)?
  size_t dot = text.find('.');
  if (dot != std::string::npos && dot + 2 == text.size() &&
      text[dot + 1] == '*') {
    return InputSource::FromActivity(text.substr(0, dot), "");
  }
  FEDFLOW_ASSIGN_OR_RETURN(sql::ExprPtr expr, sql::ParseExpression(text));
  if (expr->kind() == sql::ExprKind::kColumnRef) {
    const auto& ref = static_cast<const sql::ColumnRefExpr&>(*expr);
    if (ref.qualifier().empty()) {
      return LineError(line_no,
                       "input source must be qualified (INPUT.x or Act.Col): " +
                           text);
    }
    if (EqualsIgnoreCase(ref.qualifier(), "INPUT")) {
      return InputSource::FromProcessInput(ref.name());
    }
    return InputSource::FromActivity(ref.qualifier(), ref.name());
  }
  if (expr->kind() == sql::ExprKind::kLiteral) {
    return InputSource::Constant(
        static_cast<const sql::LiteralExpr&>(*expr).value());
  }
  // Negative literals parse as unary minus.
  if (expr->kind() == sql::ExprKind::kUnary) {
    const auto& un = static_cast<const sql::UnaryExpr&>(*expr);
    if (un.op() == sql::UnaryOp::kNeg &&
        un.operand()->kind() == sql::ExprKind::kLiteral) {
      const Value& v =
          static_cast<const sql::LiteralExpr&>(*un.operand()).value();
      if (v.type() == DataType::kInt) return InputSource::Constant(Value::Int(-v.AsInt()));
      if (v.type() == DataType::kBigInt) {
        return InputSource::Constant(Value::BigInt(-v.AsBigInt()));
      }
      if (v.type() == DataType::kDouble) {
        return InputSource::Constant(Value::Double(-v.AsDouble()));
      }
    }
  }
  return LineError(line_no, "unsupported input source: " + text);
}

/// Joins the remaining words back into one string (condition text).
std::string Rest(const std::vector<std::string>& words, size_t from) {
  std::vector<std::string> tail(words.begin() + from, words.end());
  return Join(tail, " ");
}

}  // namespace

Result<std::vector<ProcessDefinition>> ParseFdl(const std::string& text) {
  std::vector<ProcessDefinition> done;
  std::map<std::string, std::shared_ptr<ProcessDefinition>> by_name;

  std::unique_ptr<ProcessDefinition> current;
  std::vector<std::string> raw_lines = Split(text, '\n');

  // Handle '\' line continuations.
  std::vector<std::pair<std::string, size_t>> lines;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    std::string line = raw_lines[i];
    size_t first = i;
    while (!Trim(line).empty() && Trim(line).back() == '\\' &&
           i + 1 < raw_lines.size()) {
      std::string t = Trim(line);
      line = t.substr(0, t.size() - 1) + " " + raw_lines[i + 1];
      ++i;
    }
    lines.emplace_back(line, first + 1);
  }

  for (const auto& [raw, line_no] : lines) {
    std::string line = raw;
    size_t comment = line.find("--");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = Trim(line);
    if (line.empty()) continue;

    FEDFLOW_ASSIGN_OR_RETURN(std::vector<std::string> words,
                             SplitWords(line, line_no));
    const std::string head = ToUpper(words[0]);

    if (head == "PROCESS") {
      if (current != nullptr) {
        return LineError(line_no, "nested PROCESS (missing END?)");
      }
      if (words.size() < 2) return LineError(line_no, "PROCESS needs a name");
      current = std::make_unique<ProcessDefinition>();
      current->name = words[1];
      if (words.size() >= 3) {
        FEDFLOW_ASSIGN_OR_RETURN(std::vector<std::string> params,
                                 SplitArgs(words[2], line_no));
        for (const std::string& p : params) {
          std::vector<std::string> parts;
          std::istringstream ps(p);
          std::string w;
          while (ps >> w) parts.push_back(w);
          if (parts.size() != 2) {
            return LineError(line_no, "bad parameter: " + p);
          }
          FEDFLOW_ASSIGN_OR_RETURN(DataType t, DataTypeFromName(parts[1]));
          current->input_params.push_back(Column{parts[0], t});
        }
      }
      continue;
    }

    if (current == nullptr) {
      return LineError(line_no, "statement outside PROCESS ... END");
    }

    if (head == "END") {
      if (current->output_activity.empty() && !current->activities.empty()) {
        current->output_activity = current->activities.back().name;
      }
      FEDFLOW_RETURN_NOT_OK(ValidateProcess(*current));
      auto shared = std::make_shared<ProcessDefinition>(*current);
      by_name[ToUpper(current->name)] = shared;
      done.push_back(std::move(*current));
      current.reset();
      continue;
    }

    if (head == "OUTPUT") {
      if (words.size() != 2) return LineError(line_no, "OUTPUT needs a name");
      current->output_activity = words[1];
      continue;
    }

    if (head == "CONNECT") {
      // CONNECT from -> to [WHEN expr]
      if (words.size() < 4 || words[2] != "->") {
        return LineError(line_no, "expected CONNECT from -> to");
      }
      ControlConnector c;
      c.from = words[1];
      c.to = words[3];
      if (words.size() > 4) {
        if (!EqualsIgnoreCase(words[4], "WHEN")) {
          return LineError(line_no, "expected WHEN");
        }
        std::string cond = Rest(words, 5);
        if (cond.empty()) return LineError(line_no, "empty WHEN condition");
        Result<sql::ExprPtr> expr = sql::ParseExpression(cond);
        if (!expr.ok()) {
          return expr.status().WithContext("FDL line " +
                                           std::to_string(line_no));
        }
        c.condition = std::move(*expr);
      }
      current->connectors.push_back(std::move(c));
      continue;
    }

    if (head == "PROGRAM" || head == "HELPER" || head == "BLOCK") {
      if (words.size() < 2) return LineError(line_no, head + " needs a name");
      ActivityDef a;
      a.name = words[1];
      size_t i = 2;
      if (head == "PROGRAM") {
        a.kind = ActivityKind::kProgram;
        if (i + 1 >= words.size() || !EqualsIgnoreCase(words[i], "SYSTEM")) {
          return LineError(line_no, "expected SYSTEM <name>");
        }
        a.system = words[i + 1];
        i += 2;
        if (i + 1 >= words.size() || !EqualsIgnoreCase(words[i], "FUNCTION")) {
          return LineError(line_no, "expected FUNCTION <name>");
        }
        a.function = words[i + 1];
        i += 2;
      } else if (head == "HELPER") {
        a.kind = ActivityKind::kHelper;
        if (i + 1 >= words.size() || !EqualsIgnoreCase(words[i], "USING")) {
          return LineError(line_no, "expected USING <helper>");
        }
        a.helper = words[i + 1];
        i += 2;
      } else {
        a.kind = ActivityKind::kBlock;
        if (i + 1 >= words.size() || !EqualsIgnoreCase(words[i], "SUB")) {
          return LineError(line_no, "expected SUB <process>");
        }
        auto it = by_name.find(ToUpper(words[i + 1]));
        if (it == by_name.end()) {
          return LineError(line_no,
                           "BLOCK references unknown process " + words[i + 1] +
                               " (define it earlier in the document)");
        }
        a.sub = it->second;
        i += 2;
      }
      // Optional clauses in any order: JOIN OR|AND, IN (...), UNION,
      // MAXITER n, UNTIL <expr to end of line>.
      while (i < words.size()) {
        const std::string kw = ToUpper(words[i]);
        if (kw == "JOIN") {
          if (i + 1 >= words.size()) return LineError(line_no, "JOIN needs OR/AND");
          a.join = EqualsIgnoreCase(words[i + 1], "OR") ? JoinKind::kOr
                                                        : JoinKind::kAnd;
          i += 2;
        } else if (kw == "IN") {
          if (i + 1 >= words.size()) return LineError(line_no, "IN needs (...)");
          FEDFLOW_ASSIGN_OR_RETURN(std::vector<std::string> srcs,
                                   SplitArgs(words[i + 1], line_no));
          for (const std::string& s : srcs) {
            FEDFLOW_ASSIGN_OR_RETURN(InputSource src,
                                     ParseSource(s, line_no));
            a.inputs.push_back(std::move(src));
          }
          i += 2;
        } else if (kw == "UNION") {
          a.accumulate = BlockAccumulate::kUnionAll;
          i += 1;
        } else if (kw == "MAXITER") {
          if (i + 1 >= words.size()) {
            return LineError(line_no, "MAXITER needs a number");
          }
          a.max_iterations = std::atoi(words[i + 1].c_str());
          i += 2;
        } else if (kw == "UNTIL") {
          std::string cond = Rest(words, i + 1);
          if (cond.empty()) return LineError(line_no, "empty UNTIL condition");
          Result<sql::ExprPtr> expr = sql::ParseExpression(cond);
          if (!expr.ok()) {
            return expr.status().WithContext("FDL line " +
                                             std::to_string(line_no));
          }
          a.exit_condition = std::move(*expr);
          i = words.size();
        } else {
          return LineError(line_no, "unexpected token " + words[i]);
        }
      }
      current->activities.push_back(std::move(a));
      continue;
    }

    return LineError(line_no, "unknown statement " + words[0]);
  }

  if (current != nullptr) {
    return Status::InvalidArgument("FDL: missing END for process " +
                                   current->name);
  }
  return done;
}

namespace {

std::string SourceToFdl(const InputSource& s) {
  switch (s.kind) {
    case InputSource::Kind::kConstant: {
      if (s.constant.type() == DataType::kVarchar) {
        return "'" + s.constant.AsVarchar() + "'";
      }
      return s.constant.ToString();
    }
    case InputSource::Kind::kProcessInput:
      return "INPUT." + s.param;
    case InputSource::Kind::kActivityOutput:
      return s.activity + "." + (s.column.empty() ? "*" : s.column);
  }
  return "?";
}

void EmitProcess(const ProcessDefinition& def, std::ostringstream& os,
                 std::vector<std::string>* emitted) {
  // Emit block sub-processes first.
  for (const ActivityDef& a : def.activities) {
    if (a.kind == ActivityKind::kBlock && a.sub != nullptr) {
      bool already = false;
      for (const std::string& name : *emitted) {
        if (EqualsIgnoreCase(name, a.sub->name)) already = true;
      }
      if (!already) EmitProcess(*a.sub, os, emitted);
    }
  }
  emitted->push_back(def.name);

  os << "PROCESS " << def.name;
  if (!def.input_params.empty()) {
    os << " (";
    for (size_t i = 0; i < def.input_params.size(); ++i) {
      if (i > 0) os << ", ";
      os << def.input_params[i].name << " "
         << DataTypeName(def.input_params[i].type);
    }
    os << ")";
  }
  os << "\n";
  for (const ActivityDef& a : def.activities) {
    os << "  ";
    switch (a.kind) {
      case ActivityKind::kProgram:
        os << "PROGRAM " << a.name << " SYSTEM " << a.system << " FUNCTION "
           << a.function;
        break;
      case ActivityKind::kHelper:
        os << "HELPER " << a.name << " USING " << a.helper;
        break;
      case ActivityKind::kBlock:
        os << "BLOCK " << a.name << " SUB " << a.sub->name;
        break;
    }
    if (a.join == JoinKind::kOr) os << " JOIN OR";
    if (!a.inputs.empty()) {
      os << " IN (";
      for (size_t i = 0; i < a.inputs.size(); ++i) {
        if (i > 0) os << ", ";
        os << SourceToFdl(a.inputs[i]);
      }
      os << ")";
    }
    if (a.kind == ActivityKind::kBlock) {
      if (a.accumulate == BlockAccumulate::kUnionAll) os << " UNION";
      if (a.max_iterations != 10000) os << " MAXITER " << a.max_iterations;
      if (a.exit_condition != nullptr) {
        os << " UNTIL " << a.exit_condition->ToSql();
      }
    }
    os << "\n";
  }
  for (const ControlConnector& c : def.connectors) {
    os << "  CONNECT " << c.from << " -> " << c.to;
    if (c.condition != nullptr) os << " WHEN " << c.condition->ToSql();
    os << "\n";
  }
  os << "  OUTPUT " << def.output_activity << "\n";
  os << "END\n";
}

}  // namespace

std::string ToFdl(const ProcessDefinition& def) {
  std::ostringstream os;
  std::vector<std::string> emitted;
  EmitProcess(def, os, &emitted);
  return os.str();
}

}  // namespace fedflow::wfms
